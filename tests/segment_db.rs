//! Property tests of the zero-copy segment backend: for arbitrary
//! snapshots and arbitrary queries, [`SegmentDb`] must answer exactly like
//! [`InstructionDb`] (same matches, same order, same pagination), shard
//! merges must reproduce single-pass builds, and corrupt images must be
//! rejected with an error — never a panic.

use proptest::prelude::*;

use uops_info::db::{
    DbBackend, DbError, InstructionDb, LatencyEdge, Query, Segment, SegmentDb, Snapshot, SortKey,
    UarchMeta, VariantRecord,
};

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

const MNEMONICS: [&str; 7] = ["ADD", "ADC", "SHLD", "VPADDD", "DIV", "Ä\"Q\"", "MULPS"];
const VARIANTS: [&str; 4] = ["R64, R64", "XMM, XMM", "", "R64, M64 \\ esc"];
const EXTENSIONS: [&str; 3] = ["BASE", "AVX2", "AES"];
const UARCHES: [&str; 3] = ["Nehalem", "Haswell", "Skylake"];

/// Strategy: an optional float with a present-but-zero case.
fn arb_opt_f64() -> impl Strategy<Value = Option<f64>> {
    (0u8..3, 0.0f64..8.0).prop_map(|(tag, v)| match tag {
        0 => None,
        1 => Some(0.0),
        _ => Some(v),
    })
}

/// Strategy: a latency edge exercising every optional field.
fn arb_edge() -> impl Strategy<Value = LatencyEdge> {
    ((0u32..4, 0u32..4, 0.0f64..30.0, 0u8..2), (arb_opt_f64(), arb_opt_f64())).prop_map(
        |((source, target, cycles, upper), (same, low))| LatencyEdge {
            source,
            target,
            cycles,
            upper_bound: upper == 1,
            same_reg_cycles: same,
            low_value_cycles: low,
        },
    )
}

/// Strategy: one variant record drawn from small string pools.
fn arb_record() -> impl Strategy<Value = VariantRecord> {
    (
        (0usize..7, 0usize..4, 0usize..3, 0usize..3, 0u32..5),
        prop::collection::vec((1u16..0x100, 1u32..4), 0..4),
        (0u32..3, 0.0f64..8.0, arb_opt_f64(), arb_opt_f64(), arb_opt_f64()),
        prop::collection::vec(arb_edge(), 0..3),
    )
        .prop_map(
            |(
                (m, v, e, u, uops),
                mut ports,
                (unattributed, tp, tp_ports, tp_low, tp_breaking),
                latency,
            )| {
                ports.sort_unstable();
                ports.dedup_by_key(|(mask, _)| *mask);
                VariantRecord {
                    mnemonic: MNEMONICS[m].to_string(),
                    variant: VARIANTS[v].to_string(),
                    extension: EXTENSIONS[e].to_string(),
                    uarch: UARCHES[u].to_string(),
                    uop_count: uops,
                    ports,
                    unattributed,
                    tp_measured: tp,
                    tp_ports,
                    tp_low_values: tp_low,
                    tp_breaking,
                    latency,
                }
            },
        )
}

/// Strategy: a whole snapshot, including duplicate-key records (the
/// last-writer-wins path) and µarch metadata.
fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        prop::collection::vec((0u8..3, 2008u32..2020, 1u32..400, 0u32..50), 0..3),
        prop::collection::vec(arb_record(), 0..12),
    )
        .prop_map(|(metas, records)| {
            let mut snapshot = Snapshot::new("uops-info segment proptest");
            for (u, year, characterized, skipped) in metas {
                snapshot.upsert_uarch(UarchMeta {
                    name: UARCHES[u as usize].to_string(),
                    processor: format!("CPU-{year}"),
                    year,
                    ports: if year >= 2013 { 8 } else { 6 },
                    characterized,
                    skipped,
                });
            }
            snapshot.records = records;
            snapshot
        })
}

/// Strategy: an arbitrary query — filters, sort, direction, pagination.
fn arb_query() -> impl Strategy<Value = Query> {
    (
        (0usize..8, 0usize..5, 0usize..4, 0usize..4),
        (0u8..12, 0u8..3, 0u32..4, 0u8..2),
        (0u8..4, 0u8..2, 0usize..6, 0usize..8),
    )
        .prop_map(
            |((m, pfx, e, u), (port, port_on, min_uops, uops_on), (sort, desc, offset, limit))| {
                let mut q = Query::new();
                if m < MNEMONICS.len() {
                    q = q.mnemonic(MNEMONICS[m]);
                }
                if pfx < 4 {
                    q = q.mnemonic_prefix(["A", "V", "SH", ""][pfx]);
                }
                if e < EXTENSIONS.len() {
                    q = q.extension(EXTENSIONS[e]);
                }
                if u < UARCHES.len() {
                    q = q.uarch(UARCHES[u]);
                }
                if port_on == 0 {
                    q = q.uses_port(port);
                }
                if uops_on == 0 {
                    q = q.min_uops(min_uops);
                }
                let key =
                    [SortKey::Mnemonic, SortKey::Latency, SortKey::Throughput, SortKey::UopCount]
                        [sort as usize];
                q = if desc == 0 { q.sort_by(key) } else { q.sort_by_desc(key) };
                if limit < 7 {
                    q = q.limit(limit);
                }
                q.offset(offset)
            },
        )
}

/// The observable content of a result row, for cross-backend comparison.
fn row_key<B: DbBackend>(v: &uops_info::db::RecordView<'_, B>) -> (String, String, String, u32) {
    (v.mnemonic().to_string(), v.variant().to_string(), v.uarch().to_string(), v.uop_count())
}

// ---------------------------------------------------------------------------
// Equivalence properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any query over any snapshot: the zero-copy segment reader and the
    /// in-memory database return identical results — same total, same
    /// rows, same order, same page.
    #[test]
    fn segment_answers_every_query_like_instruction_db(
        snapshot in arb_snapshot(),
        queries in prop::collection::vec(arb_query(), 1..6),
    ) {
        let mem = InstructionDb::from_snapshot(&snapshot);
        let segment = Segment::from_bytes(Segment::encode(&snapshot)).expect("valid image");
        let seg = segment.db();
        prop_assert_eq!(seg.len(), mem.len());
        for query in &queries {
            let a = query.run(&mem);
            let b = query.run(&seg);
            prop_assert_eq!(a.total_matches, b.total_matches, "{:?}", query);
            let rows_a: Vec<_> = a.rows.iter().map(row_key).collect();
            let rows_b: Vec<_> = b.rows.iter().map(row_key).collect();
            prop_assert_eq!(rows_a, rows_b, "{:?}", query);
        }
    }

    /// The segment round-trips the snapshot losslessly (modulo canonical
    /// ordering and last-writer-wins dedup, which the in-memory database
    /// applies identically), and diff reports agree between backends.
    #[test]
    fn segment_roundtrip_and_diff_match(snapshot in arb_snapshot()) {
        let mem = InstructionDb::from_snapshot(&snapshot);
        let segment = Segment::from_bytes(Segment::encode(&snapshot)).expect("valid image");
        let seg = segment.db();
        prop_assert_eq!(seg.export_snapshot(), mem.to_snapshot());
        for (base, other) in [("Haswell", "Skylake"), ("Nehalem", "Haswell")] {
            let a = uops_info::db::diff_uarches(&mem, base, other);
            let b = uops_info::db::diff_uarches(&seg, base, other);
            prop_assert_eq!(a.changed, b.changed);
            prop_assert_eq!(a.unchanged, b.unchanged);
            prop_assert_eq!(a.only_in_base, b.only_in_base);
            prop_assert_eq!(a.only_in_other, b.only_in_other);
        }
    }

    /// Splitting a snapshot into per-uarch shards and merging the shard
    /// segments reproduces the single-pass image byte for byte.
    #[test]
    fn shard_merge_equals_single_pass(snapshot in arb_snapshot()) {
        let shards: Vec<Segment> = UARCHES
            .iter()
            .map(|uarch| {
                let mut shard = Snapshot::new(&*snapshot.generator);
                shard.records =
                    snapshot.records.iter().filter(|r| &r.uarch == uarch).cloned().collect();
                shard.uarches =
                    snapshot.uarches.iter().filter(|m| &m.name == uarch).cloned().collect();
                Segment::from_bytes(Segment::encode(&shard)).expect("valid shard")
            })
            .collect();
        let merged = Segment::merge(&shards);
        let single = Segment::encode(&snapshot);
        prop_assert_eq!(merged.as_bytes(), single.as_slice());
    }

    /// Truncating a valid image anywhere below its payload end yields an
    /// error — never a panic, never a silently shorter database.
    #[test]
    fn truncated_segments_error_not_panic(snapshot in arb_snapshot(), cut in 0.0f64..1.0) {
        let image = Segment::encode(&snapshot);
        let len = ((image.len() as f64) * cut) as usize;
        // Only whole-image (plus trailing padding) prefixes may validate.
        if let Ok(segment) = Segment::from_bytes(image[..len].to_vec()) {
            prop_assert_eq!(segment.db().len(), SegmentDb::open(&image).expect("valid").len());
        }
    }
}

// ---------------------------------------------------------------------------
// Targeted corruption (deterministic)
// ---------------------------------------------------------------------------

fn sample_image() -> Vec<u8> {
    let mut snapshot = Snapshot::new("corruption tests");
    snapshot.records.push(VariantRecord {
        mnemonic: "ADD".into(),
        variant: "R64, R64".into(),
        extension: "BASE".into(),
        uarch: "Skylake".into(),
        uop_count: 1,
        ports: vec![(0b11, 1)],
        tp_measured: 0.25,
        ..Default::default()
    });
    Segment::encode(&snapshot)
}

#[test]
fn bad_magic_is_rejected() {
    let mut image = sample_image();
    image[0] ^= 0xff;
    assert!(matches!(Segment::from_bytes(image), Err(DbError::Segment { offset: 0, .. })));
    assert!(matches!(
        Segment::from_bytes(b"UDB\x01 but not a segment".to_vec()),
        Err(DbError::Segment { .. })
    ));
}

#[test]
fn truncated_header_is_rejected() {
    for len in 0..32 {
        let image = sample_image();
        assert!(
            matches!(Segment::from_bytes(image[..len].to_vec()), Err(DbError::Segment { .. })),
            "header prefix of {len} bytes must be rejected"
        );
    }
}

#[test]
fn out_of_range_section_offsets_are_rejected() {
    let image = sample_image();
    let section_count = u32::from_le_bytes(image[16..20].try_into().unwrap()) as usize;
    // Point each section in turn far past the end of the image (8-aligned
    // so the alignment check cannot mask the bounds check).
    for i in 0..section_count {
        let mut bad = image.clone();
        let entry = 32 + i * 24;
        let huge = (image.len() as u64 + 8).next_multiple_of(8);
        bad[entry + 8..entry + 16].copy_from_slice(&huge.to_le_bytes());
        match Segment::from_bytes(bad) {
            Err(DbError::Segment { .. }) => {}
            other => panic!("section {i} with offset past EOF must error, got {other:?}"),
        }
    }
}

#[test]
fn oversized_section_lengths_are_rejected() {
    let image = sample_image();
    let mut bad = image.clone();
    // First section: length larger than the whole file.
    bad[32 + 16..32 + 24].copy_from_slice(&(image.len() as u64 + 1).to_le_bytes());
    assert!(matches!(Segment::from_bytes(bad), Err(DbError::Segment { .. })));
}

#[test]
fn unsupported_schema_is_rejected() {
    let mut image = sample_image();
    let newer = uops_info::db::SCHEMA_VERSION + 1;
    image[12..16].copy_from_slice(&newer.to_le_bytes());
    assert_eq!(
        Segment::from_bytes(image),
        Err(DbError::UnsupportedSchema { found: newer, supported: uops_info::db::SCHEMA_VERSION })
    );
}
