//! End-to-end integration tests: the full characterization pipeline (catalog
//! → code generation → simulated measurement → inference) validated against
//! the simulator's ground truth *from the outside*.
//!
//! The inference code in `uops-core` never sees the ground truth; these tests
//! are allowed to, because they play the role of the experimenter checking
//! the tool's output.

use std::collections::BTreeMap;
use std::sync::Arc;

use uops_info::prelude::*;
use uops_info::uarch::{characterize, TruthOptions, UarchConfig};

fn engine_for(catalog: &Catalog, arch: MicroArch) -> CharacterizationEngine<'_> {
    CharacterizationEngine::with_config(catalog, arch, EngineConfig::fast())
}

/// The inferred µop count and port usage must match the ground truth for a
/// cross-section of the catalog on several microarchitectures.
#[test]
fn inferred_port_usage_matches_ground_truth_for_a_sample() {
    let catalog = Catalog::intel_core();
    let sample = [
        ("ADD", "R64, R64"),
        ("ADC", "R64, R64"),
        ("IMUL", "R64, R64"),
        ("SHL", "R64, I8"),
        ("PADDD", "XMM, XMM"),
        ("PSHUFD", "XMM, XMM, I8"),
        ("MULPS", "XMM, XMM"),
        ("ADDPD", "XMM, XMM"),
        ("PBLENDVB", "XMM, XMM"),
        ("MOVQ2DQ", "XMM, MM"),
        ("MOVDQ2Q", "MM, XMM"),
        ("MOV", "R64, M64"),
        ("MOV", "M64, R64"),
        ("LEA", "R64, M64"),
        ("POPCNT", "R64, R64"),
    ];
    for arch in [MicroArch::Nehalem, MicroArch::Haswell, MicroArch::Skylake] {
        let backend = SimBackend::new(arch);
        let engine = engine_for(&catalog, arch);
        let cfg = UarchConfig::for_arch(arch);
        for (mnemonic, variant) in sample {
            let desc = catalog.find_variant(mnemonic, variant).expect("variant exists");
            if !arch.supports(desc.extension) {
                continue;
            }
            let profile = engine.characterize_variant(&backend, desc).expect("characterization");

            // Ground truth for the same binding style.
            let mut pool = RegisterPool::new();
            let arc = Arc::new(desc.clone());
            let inst = Inst::bind(&arc, &BTreeMap::new(), &mut pool).unwrap();
            let truth = characterize(&inst, &cfg, TruthOptions::default());

            assert_eq!(
                profile.uop_count as usize,
                truth.uop_count(),
                "{arch:?} {mnemonic} ({variant}): µop count mismatch"
            );
            let mut truth_usage: Vec<(PortSet, u32)> = truth.port_usage();
            truth_usage.sort();
            assert_eq!(
                profile.port_usage.entries(),
                truth_usage.as_slice(),
                "{arch:?} {mnemonic} ({variant}): port usage mismatch (inferred {})",
                profile.port_usage
            );
        }
    }
}

/// The inferred latency must match the ground truth's critical path for
/// instructions with a read-modify-write destination.
#[test]
fn inferred_latency_matches_ground_truth_critical_path() {
    let catalog = Catalog::intel_core();
    let arch = MicroArch::Skylake;
    let backend = SimBackend::new(arch);
    let cfg = UarchConfig::for_arch(arch);
    let engine = engine_for(&catalog, arch);
    for (mnemonic, variant) in [
        ("ADD", "R64, R64"),
        ("IMUL", "R64, R64"),
        ("PADDD", "XMM, XMM"),
        ("MULPS", "XMM, XMM"),
        ("AESDEC", "XMM, XMM"),
        ("POPCNT", "R64, R64"),
    ] {
        let desc = catalog.find_variant(mnemonic, variant).expect("variant exists");
        let profile = engine.characterize_variant(&backend, desc).expect("characterization");
        let mut pool = RegisterPool::new();
        let arc = Arc::new(desc.clone());
        let inst = Inst::bind(&arc, &BTreeMap::new(), &mut pool).unwrap();
        let truth = characterize(&inst, &cfg, TruthOptions::default());
        let measured = profile.latency_single_value().expect("latency measured");
        let expected = f64::from(truth.critical_path_latency());
        assert!(
            (measured - expected).abs() < 0.7,
            "{mnemonic} ({variant}): measured latency {measured:.2}, ground truth {expected}"
        );
    }
}

/// Throughput computed from the inferred port usage must agree with the
/// measured throughput for instructions without implicit dependencies.
#[test]
fn computed_and_measured_throughput_agree_for_simple_instructions() {
    let catalog = Catalog::intel_core();
    let arch = MicroArch::Skylake;
    let backend = SimBackend::new(arch);
    let engine = engine_for(&catalog, arch);
    for (mnemonic, variant) in
        [("PSHUFD", "XMM, XMM, I8"), ("PADDD", "XMM, XMM"), ("LEA", "R64, M64")]
    {
        let desc = catalog.find_variant(mnemonic, variant).expect("variant exists");
        let profile = engine.characterize_variant(&backend, desc).expect("characterization");
        let computed = profile.throughput.from_port_usage.expect("computed throughput");
        let measured = profile.throughput.measured;
        assert!(
            (computed - measured).abs() < 0.35,
            "{mnemonic}: computed {computed:.2} vs measured {measured:.2}"
        );
    }
}

/// The full engine flow works on every microarchitecture generation.
#[test]
fn every_microarchitecture_can_characterize_a_basic_instruction() {
    let catalog = Catalog::intel_core();
    for arch in MicroArch::ALL {
        let backend = SimBackend::new(arch);
        let engine = engine_for(&catalog, arch);
        let desc = catalog.find_variant("ADD", "R64, R64").unwrap();
        let profile = engine.characterize_variant(&backend, desc).expect("ADD characterization");
        assert_eq!(profile.uop_count, 1, "{arch:?}");
        assert!(profile.throughput.measured <= 0.6, "{arch:?}");
        let expected_ports = UarchConfig::for_arch(arch).int_alu;
        assert_eq!(profile.port_usage.uops_for(expected_ports), 1, "{arch:?}");
    }
}

/// AVX instructions are characterized with AVX blocking instructions and
/// still produce correct results.
#[test]
fn avx_instructions_use_the_avx_blocking_world() {
    let catalog = Catalog::intel_core();
    let arch = MicroArch::Skylake;
    let backend = SimBackend::new(arch);
    let engine = engine_for(&catalog, arch);
    let desc = catalog.find_variant("VPADDD", "YMM, YMM, YMM").unwrap();
    let profile = engine.characterize_variant(&backend, desc).expect("VPADDD characterization");
    assert_eq!(profile.uop_count, 1);
    assert_eq!(profile.port_usage.to_string(), "1*p015");
}

/// The XML output of the engine can be generated for multiple architectures
/// and contains one entry per instruction with per-architecture measurements.
#[test]
fn xml_output_for_multiple_architectures() {
    let catalog = Catalog::intel_core();
    let mut reports = Vec::new();
    for arch in [MicroArch::SandyBridge, MicroArch::Skylake] {
        let backend = SimBackend::new(arch);
        let engine = engine_for(&catalog, arch);
        reports.push(engine.characterize_matching(&backend, |d| {
            d.mnemonic == "AESDEC" && d.variant() == "XMM, XMM"
        }));
    }
    let xml = uops_info::core_::reports_to_xml(&reports);
    assert_eq!(xml.matches("<instruction ").count(), 1);
    assert!(xml.contains("Sandy Bridge"));
    assert!(xml.contains("Skylake"));
    assert!(xml.contains("latency"));
}
