//! Property-based tests (proptest) on the core data structures and
//! invariants: the LP solver, port sets, flag sets, registers, the catalog's
//! XML roundtrip, code sequences, the simulator's counters, and the
//! `uops-db` snapshot encodings.

use proptest::prelude::*;

use uops_info::db::{LatencyEdge, Snapshot, UarchMeta, VariantRecord};
use uops_info::isa::{Flag, FlagSet};
use uops_info::lp::{min_max_load, min_max_load_by_flow, optimal_assignment, PortUsageMap};
use uops_info::prelude::*;

// ---------------------------------------------------------------------------
// LP solver
// ---------------------------------------------------------------------------

/// Strategy: a random port usage over 8 ports with 1–5 combinations.
fn arb_port_usage() -> impl Strategy<Value = PortUsageMap> {
    prop::collection::vec((1u16..=0xff, 1u32..=4), 1..5).prop_map(|entries| {
        let mut map = PortUsageMap::new();
        for (mask, count) in entries {
            *map.entry(mask).or_insert(0.0) += f64::from(count);
        }
        map
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The exact subset-formula solver and the flow-based solver agree.
    #[test]
    fn lp_solvers_agree(usage in arb_port_usage()) {
        let exact = min_max_load(&usage, 0xff);
        let flow = min_max_load_by_flow(&usage, 0xff);
        prop_assert!((exact - flow).abs() < 1e-6, "exact {exact} vs flow {flow}");
    }

    /// The optimum respects the trivial lower bounds: total/µops divided by
    /// the number of ports, and the load of any single-port combination.
    #[test]
    fn lp_optimum_respects_lower_bounds(usage in arb_port_usage()) {
        let z = min_max_load(&usage, 0xff);
        let total: f64 = usage.values().sum();
        prop_assert!(z >= total / 8.0 - 1e-9);
        for (&mask, &count) in &usage {
            prop_assert!(z >= count / f64::from(mask.count_ones()) - 1e-9);
        }
        // And it is never larger than putting everything on one port.
        prop_assert!(z <= total + 1e-9);
    }

    /// The explicit assignment produced by `optimal_assignment` is a valid
    /// fractional schedule: shares are non-negative, sum to the µop counts,
    /// and only use allowed ports.
    #[test]
    fn lp_assignment_is_valid(usage in arb_port_usage()) {
        let a = optimal_assignment(&usage, 0xff);
        for ((mask, port), share) in &a.shares {
            prop_assert!(*share >= -1e-12);
            prop_assert!(mask & (1 << port) != 0);
        }
        for (&mask, &count) in &usage {
            let sum: f64 = a.shares.iter().filter(|((m, _), _)| *m == mask).map(|(_, s)| *s).sum();
            prop_assert!((sum - count).abs() < 1e-9);
        }
        prop_assert!(a.achieved_max_load + 1e-9 >= a.bottleneck);
    }
}

// ---------------------------------------------------------------------------
// Port sets and flag sets
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// PortSet display/parse roundtrip.
    #[test]
    fn portset_roundtrip(ports in prop::collection::btree_set(0u8..10, 1..6)) {
        let set: PortSet = ports.iter().copied().collect();
        let parsed = PortSet::parse(&set.to_string()).expect("parse");
        prop_assert_eq!(parsed, set);
        prop_assert_eq!(set.len() as usize, ports.len());
        for p in ports {
            prop_assert!(set.contains(p));
        }
    }

    /// Subset relations are consistent with the union.
    #[test]
    fn portset_subset_union(a in prop::collection::btree_set(0u8..10, 0..5),
                            b in prop::collection::btree_set(0u8..10, 0..5)) {
        let sa: PortSet = a.iter().copied().collect();
        let sb: PortSet = b.iter().copied().collect();
        let union = sa | sb;
        prop_assert!(sa.is_subset_of(union));
        prop_assert!(sb.is_subset_of(union));
        prop_assert_eq!(sa.is_strict_subset_of(sb), sa.is_subset_of(sb) && sa != sb);
        prop_assert_eq!((sa & sb).is_subset_of(sa), true);
    }

    /// FlagSet operations behave like ordinary set operations.
    #[test]
    fn flagset_operations(bits_a in 0u8..64, bits_b in 0u8..64) {
        let pick = |bits: u8| -> FlagSet {
            Flag::ALL
                .into_iter()
                .enumerate()
                .filter(|(i, _)| bits & (1 << i) != 0)
                .map(|(_, f)| f)
                .collect()
        };
        let a = pick(bits_a);
        let b = pick(bits_b);
        let union = a | b;
        let inter = a & b;
        for f in Flag::ALL {
            prop_assert_eq!(union.contains(f), a.contains(f) || b.contains(f));
            prop_assert_eq!(inter.contains(f), a.contains(f) && b.contains(f));
            prop_assert_eq!((a - b).contains(f), a.contains(f) && !b.contains(f));
            prop_assert_eq!((!a).contains(f), !a.contains(f));
        }
        prop_assert!(inter.is_subset_of(a) && inter.is_subset_of(b));
        prop_assert!(a.is_subset_of(union));
    }

    /// Register name/parse roundtrip over all files and widths.
    #[test]
    fn register_name_roundtrip(file in 0u8..3, index in 0u8..16, width_sel in 0u8..4) {
        let reg = match file {
            0 => {
                let width = [Width::W8, Width::W16, Width::W32, Width::W64][width_sel as usize];
                Register::gpr(index, width)
            }
            1 => {
                let width = if width_sel % 2 == 0 { Width::W128 } else { Width::W256 };
                Register::vec(index, width)
            }
            _ => Register::mmx(index % 8),
        };
        let parsed = Register::from_name(&reg.name()).expect("roundtrip");
        prop_assert_eq!(parsed, reg);
    }
}

// ---------------------------------------------------------------------------
// Catalog, code sequences, and the simulator
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Port-usage notation roundtrip for random usages.
    #[test]
    fn port_usage_notation_roundtrip(entries in prop::collection::vec(
        (prop::collection::btree_set(0u8..8, 1..4), 1u32..4), 1..4)) {
        let usage = PortUsage::from_entries(
            entries
                .into_iter()
                .map(|(ports, n)| (ports.into_iter().collect::<PortSet>(), n))
                .collect(),
        );
        let parsed = PortUsage::parse(&usage.to_string()).expect("parse");
        prop_assert_eq!(parsed, usage);
    }

    /// Repeating a code sequence scales the simulator's µop counters
    /// proportionally and never decreases the cycle count.
    #[test]
    fn simulator_counters_scale_with_repetition(n_instr in 1usize..6, reps in 2usize..5) {
        let catalog = Catalog::intel_core();
        let desc = variant_arc(&catalog, "ADD", "R64, R64").unwrap();
        let mut pool = RegisterPool::new();
        let copies = uops_info::core_::codegen::independent_copies(&desc, n_instr, &mut pool).unwrap();
        let seq: CodeSequence = copies.into_iter().collect();
        let sim = Pipeline::new(MicroArch::Skylake);
        let once = sim.execute(&seq);
        let repeated = sim.execute(&seq.repeat(reps));
        let overhead = 6u64;
        prop_assert_eq!(
            (repeated.uops_total - overhead),
            (once.uops_total - overhead) * reps as u64
        );
        prop_assert!(repeated.core_cycles >= once.core_cycles);
        prop_assert_eq!(repeated.instructions_retired, once.instructions_retired * reps as u64);
    }

    /// The measurement harness reports per-iteration values that are
    /// independent of the unroll configuration (within tolerance).
    #[test]
    fn measurement_is_unroll_invariant(base in 4usize..8, extra in 20usize..40) {
        let catalog = Catalog::intel_core();
        let desc = variant_arc(&catalog, "PADDD", "XMM, XMM").unwrap();
        let mut pool = RegisterPool::new();
        let inst = Inst::bind(&desc, &std::collections::BTreeMap::new(), &mut pool).unwrap();
        let mut seq = CodeSequence::new();
        seq.push(inst);
        let backend = SimBackend::new(MicroArch::Haswell);
        let cfg_a = MeasurementConfig { base_unroll: base, large_unroll: base + extra, repetitions: 1, warmup: false };
        let cfg_b = MeasurementConfig::default();
        let a = uops_info::measure::measure(&backend, &seq, &cfg_a, RunContext::default());
        let b = uops_info::measure::measure(&backend, &seq, &cfg_b, RunContext::default());
        prop_assert!((a.cycles - b.cycles).abs() < 0.35, "a={} b={}", a.cycles, b.cycles);
        prop_assert!((a.uops_total - b.uops_total).abs() < 0.2);
    }
}

// ---------------------------------------------------------------------------
// Catalog-wide invariants (plain tests, not proptest, but over all variants)
// ---------------------------------------------------------------------------

/// Every catalog variant can be bound with fresh operands and printed, and
/// its source/destination sets are consistent with its operand descriptions.
#[test]
fn catalog_variants_bind_and_print() {
    let catalog = Catalog::intel_core();
    let mut bound = 0usize;
    for desc in catalog.iter() {
        let arc = std::sync::Arc::new(desc.clone());
        let mut pool = RegisterPool::new();
        let Ok(inst) = Inst::bind(&arc, &std::collections::BTreeMap::new(), &mut pool) else {
            continue;
        };
        let text = inst.to_intel_syntax();
        assert!(text.starts_with(&desc.mnemonic), "{text} does not start with {}", desc.mnemonic);
        for &s in &desc.source_indices() {
            assert!(desc.operands[s].read);
        }
        for &d in &desc.destination_indices() {
            assert!(desc.operands[d].write);
        }
        bound += 1;
    }
    assert!(bound > 2000, "only {bound} variants could be bound");
}

/// The catalog's XML roundtrip preserves every variant.
#[test]
fn catalog_xml_roundtrip_is_lossless() {
    let catalog = Catalog::intel_core();
    let xml = uops_info::isa::xml::catalog_to_xml(&catalog);
    let parsed = uops_info::isa::xml::catalog_from_xml(&xml).expect("parse");
    assert_eq!(parsed.len(), catalog.len());
    for (a, b) in catalog.iter().zip(parsed.iter()) {
        assert_eq!(a.mnemonic, b.mnemonic);
        assert_eq!(a.variant(), b.variant());
        assert_eq!(a.extension, b.extension);
        assert_eq!(a.category, b.category);
    }
}

// ---------------------------------------------------------------------------
// uops-db snapshots: lossless, byte-identical, forward-compatible encodings
// ---------------------------------------------------------------------------

/// Strategy: an optional float with a present-but-zero case.
fn arb_opt_f64() -> impl Strategy<Value = Option<f64>> {
    (0u8..3, 0.0f64..8.0).prop_map(|(tag, v)| match tag {
        0 => None,
        1 => Some(0.0),
        _ => Some(v),
    })
}

/// Strategy: a latency edge with all optional fields exercised.
fn arb_edge() -> impl Strategy<Value = LatencyEdge> {
    ((0u32..4, 0u32..4, 0.0f64..30.0, 0u8..2), (arb_opt_f64(), arb_opt_f64())).prop_map(
        |((source, target, cycles, upper), (same, low))| LatencyEdge {
            source,
            target,
            cycles,
            upper_bound: upper == 1,
            same_reg_cycles: same,
            low_value_cycles: low,
        },
    )
}

/// Strategy: one variant record drawn from small string pools (including
/// strings that need escaping) with sorted port entries.
fn arb_record() -> impl Strategy<Value = VariantRecord> {
    const MNEMONICS: [&str; 6] = ["ADD", "SHLD", "VPADDD", "A<B>", "Ä\"Q\"", "DIV\n"];
    const VARIANTS: [&str; 4] = ["R64, R64", "XMM, XMM", "", "R64, M64 \\ esc"];
    const EXTENSIONS: [&str; 3] = ["BASE", "AVX2", "AES"];
    const UARCHES: [&str; 3] = ["Nehalem", "Haswell", "Skylake"];
    (
        (0usize..6, 0usize..4, 0usize..3, 0usize..3, 0u32..5),
        prop::collection::vec((1u16..0x100, 1u32..4), 0..4),
        (0u32..3, 0.0f64..8.0, arb_opt_f64(), arb_opt_f64(), arb_opt_f64()),
        prop::collection::vec(arb_edge(), 0..3),
    )
        .prop_map(
            |(
                (m, v, e, u, uops),
                mut ports,
                (unattributed, tp, tp_ports, tp_low, tp_breaking),
                latency,
            )| {
                // The JSON encoding stores ports in the paper's notation,
                // which is canonical (sorted); keep the model canonical too.
                ports.sort_unstable();
                ports.dedup_by_key(|(mask, _)| *mask);
                VariantRecord {
                    mnemonic: MNEMONICS[m].to_string(),
                    variant: VARIANTS[v].to_string(),
                    extension: EXTENSIONS[e].to_string(),
                    uarch: UARCHES[u].to_string(),
                    uop_count: uops,
                    ports,
                    unattributed,
                    tp_measured: tp,
                    tp_ports,
                    tp_low_values: tp_low,
                    tp_breaking,
                    latency,
                }
            },
        )
}

/// Strategy: a whole snapshot with uarch metadata and records.
fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        prop::collection::vec((0u8..3, 2008u32..2020, 1u32..400, 0u32..50), 0..3),
        prop::collection::vec(arb_record(), 0..6),
    )
        .prop_map(|(metas, records)| {
            const UARCHES: [&str; 3] = ["Nehalem", "Haswell", "Skylake"];
            let mut snapshot = Snapshot::new("uops-info proptest");
            for (u, year, characterized, skipped) in metas {
                snapshot.upsert_uarch(UarchMeta {
                    name: UARCHES[u as usize].to_string(),
                    processor: format!("CPU-{year}"),
                    year,
                    ports: if year >= 2013 { 8 } else { 6 },
                    characterized,
                    skipped,
                });
            }
            snapshot.records = records;
            snapshot
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary encoding: decode(encode(s)) == s, and re-encoding the decoded
    /// snapshot is byte-identical.
    #[test]
    fn snapshot_binary_roundtrip(snapshot in arb_snapshot()) {
        let bytes = uops_info::db::codec::encode(&snapshot);
        let decoded = uops_info::db::codec::decode(&bytes).expect("decode");
        prop_assert_eq!(&decoded, &snapshot);
        prop_assert_eq!(uops_info::db::codec::encode(&decoded), bytes);
    }

    /// JSON encoding: from_json(to_json(s)) == s, and re-encoding is
    /// byte-identical.
    #[test]
    fn snapshot_json_roundtrip(snapshot in arb_snapshot()) {
        let text = uops_info::db::json::to_json(&snapshot);
        let parsed = uops_info::db::json::from_json(&text).expect("parse");
        prop_assert_eq!(&parsed, &snapshot);
        prop_assert_eq!(uops_info::db::json::to_json(&parsed), text);
    }

    /// Forward compatibility: unknown fields appended by a future producer
    /// are skipped, not rejected — in both encodings.
    #[test]
    fn snapshot_decoders_skip_unknown_fields(snapshot in arb_snapshot()) {
        // Binary: append three unknown top-level fields (varint field 99,
        // fixed64 field 100, length-delimited field 101).
        let mut bytes = uops_info::db::codec::encode(&snapshot);
        let put_varint = |out: &mut Vec<u8>, mut v: u64| {
            loop {
                let byte = (v & 0x7f) as u8;
                v >>= 7;
                if v == 0 { out.push(byte); break; }
                out.push(byte | 0x80);
            }
        };
        put_varint(&mut bytes, 99 << 3); // wire type 0
        put_varint(&mut bytes, 1234);
        put_varint(&mut bytes, (100 << 3) | 1); // wire type 1
        bytes.extend_from_slice(&1.5f64.to_le_bytes());
        put_varint(&mut bytes, (101 << 3) | 2); // wire type 2
        put_varint(&mut bytes, 6);
        bytes.extend_from_slice(b"future");
        let decoded = uops_info::db::codec::decode(&bytes).expect("skip unknown binary fields");
        prop_assert_eq!(&decoded, &snapshot);

        // JSON: splice an unknown key (with nested structure) into the
        // document a future producer might write.
        let text = uops_info::db::json::to_json(&snapshot);
        let extended = text.replacen(
            "{\n",
            "{\n  \"future_key\": {\"nested\": [1, 2.5, \"x\", null, true]},\n",
            1,
        );
        let parsed = uops_info::db::json::from_json(&extended)
            .expect("skip unknown JSON keys");
        prop_assert_eq!(&parsed, &snapshot);
    }

    /// Database ingestion: the indexes agree with a linear scan for every
    /// (uarch, port) pair, and Query results match brute-force filtering.
    #[test]
    fn db_indexes_agree_with_linear_scan(snapshot in arb_snapshot()) {
        let db = InstructionDb::from_snapshot(&snapshot);
        for uarch in ["Nehalem", "Haswell", "Skylake"] {
            for port in 0u8..10 {
                let indexed = db.ids_by_port(uarch, port).len();
                let scanned = db
                    .iter()
                    .filter(|v| {
                        v.uarch() == uarch && v.record().port_union & (1u16 << port) != 0
                    })
                    .count();
                prop_assert_eq!(indexed, scanned, "uarch {} port {}", uarch, port);
            }
            let q = Query::new().uarch(uarch).min_uops(1).run(&db);
            let brute = db
                .iter()
                .filter(|v| v.uarch() == uarch && v.record().uop_count >= 1)
                .count();
            prop_assert_eq!(q.total_matches, brute);
        }
    }
}
