//! End-to-end determinism of the parallel characterization sweep: a sweep
//! fanned out over the work-stealing pool must produce a report — profiles,
//! skip list, and their ordering — identical to the serial sweep's, and the
//! canonical binary encoding of the resulting snapshot must be
//! byte-identical. This is what lets `build_db --threads N` replace the
//! serial pipeline without any observable output change.
//!
//! CI runs this suite in both debug and `--release` (worker interleavings
//! differ with optimization levels; determinism must hold in both).

use uops_info::core_::{reports_to_snapshot, Parallelism};
use uops_info::prelude::*;

/// The slice characterized by these tests: mixed ALU/shift/vector/AES plus
/// an unsupported system instruction so the skip path is exercised too.
fn in_slice(d: &InstructionDesc) -> bool {
    matches!(
        d.mnemonic.as_str(),
        "ADD" | "ADC" | "SHLD" | "AESDEC" | "PADDD" | "MULPS" | "VADDPS" | "RDMSR"
    )
}

fn sweep(arch: MicroArch, catalog: &Catalog, parallelism: Parallelism) -> CharacterizationReport {
    let backend = SimBackend::new(arch);
    // A fresh engine per sweep: the parallel run must also build the
    // one-time setup (blocking discovery, calibration) under contention.
    let engine = CharacterizationEngine::with_config(catalog, arch, EngineConfig::fast());
    engine.characterize_matching_parallel(&backend, in_slice, parallelism)
}

#[test]
fn parallel_sweep_report_is_identical_to_serial() {
    let catalog = Catalog::intel_core();
    let serial = sweep(MicroArch::Skylake, &catalog, Parallelism::Serial);
    let parallel = sweep(MicroArch::Skylake, &catalog, Parallelism::Fixed(4));

    assert!(serial.characterized_count() > 10, "slice must be non-trivial");
    assert!(!serial.skipped.is_empty(), "RDMSR must be skipped");
    assert_eq!(serial.arch, parallel.arch);
    assert_eq!(serial.profiles, parallel.profiles, "profiles must match in catalog order");
    assert_eq!(serial.skipped, parallel.skipped, "skip list must match in catalog order");
}

#[test]
fn parallel_sweep_snapshot_is_byte_identical_to_serial() {
    let catalog = Catalog::intel_core();
    let arches = [MicroArch::Haswell, MicroArch::Skylake];

    let encode = |parallelism: Parallelism| {
        let reports: Vec<CharacterizationReport> =
            arches.iter().map(|&arch| sweep(arch, &catalog, parallelism)).collect();
        let mut snapshot = reports_to_snapshot(&reports);
        snapshot.canonicalize();
        uops_info::db::codec::encode(&snapshot)
    };

    let serial_bytes = encode(Parallelism::Serial);
    let parallel_bytes = encode(Parallelism::Fixed(4));
    assert!(!serial_bytes.is_empty());
    assert_eq!(serial_bytes, parallel_bytes, "canonical snapshot bytes must be identical");
}
