//! The follow-on performance predictor mentioned in the paper's conclusion:
//! an IACA-like static analyzer that uses the *inferred* instruction
//! characterizations (not the simulator's ground truth) to predict the port
//! pressure, bottleneck, and block throughput of small loop kernels — and,
//! unlike IACA, accounts for loop-carried dependency chains.
//!
//! Run with `cargo run --release --example predict_kernel`.

use std::collections::BTreeMap;

use uops_info::core_::{codegen::independent_copies, Predictor};
use uops_info::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::intel_core();
    let arch = MicroArch::Skylake;
    let backend = SimBackend::new(arch);
    let engine = CharacterizationEngine::with_config(&catalog, arch, EngineConfig::fast());

    // Characterize the instructions our kernels use.
    let used = ["ADD", "IMUL", "PSHUFD", "MULPS", "MOV"];
    let report = engine.characterize_matching(&backend, |d| {
        used.contains(&d.mnemonic.as_str()) && !d.attrs.locked && !d.attrs.rep_prefix
    });
    println!(
        "characterized {} instruction variants on {} for the predictor\n",
        report.characterized_count(),
        arch.name()
    );
    let predictor = Predictor::new(&catalog, &report)?;

    // Kernel 1: eight independent ADDs — front-end / port bound.
    let add = variant_arc(&catalog, "ADD", "R64, R64")?;
    let mut pool = RegisterPool::new();
    let independent: CodeSequence = independent_copies(&add, 8, &mut pool)?.into_iter().collect();

    // Kernel 2: a loop-carried IMUL chain — latency bound.
    let imul = variant_arc(&catalog, "IMUL", "R64, R64")?;
    let a = Register::gpr(3, Width::W64);
    let b = Register::gpr(6, Width::W64);
    let mut pool = RegisterPool::new();
    let mut chain = CodeSequence::new();
    for (dst, src) in [(a, b), (b, a)] {
        let mut assign = BTreeMap::new();
        assign.insert(0, Op::Reg(dst));
        assign.insert(1, Op::Reg(src));
        chain.push(Inst::bind(&imul, &assign, &mut pool)?);
    }

    // Kernel 3: a mixed shuffle + multiply kernel — shuffle-port bound.
    let pshufd = variant_arc(&catalog, "PSHUFD", "XMM, XMM, I8")?;
    let mulps = variant_arc(&catalog, "MULPS", "XMM, XMM")?;
    let mut pool = RegisterPool::new();
    let mut mixed = CodeSequence::new();
    for i in 0..3u8 {
        let mut assign = BTreeMap::new();
        assign.insert(0, Op::Reg(Register::vec(i, Width::W128)));
        assign.insert(1, Op::Reg(Register::vec(8, Width::W128)));
        assign.insert(2, Op::Imm(0));
        mixed.push(Inst::bind(&pshufd, &assign, &mut pool)?);
    }
    for i in 3..5u8 {
        let mut assign = BTreeMap::new();
        assign.insert(0, Op::Reg(Register::vec(i, Width::W128)));
        assign.insert(1, Op::Reg(Register::vec(9, Width::W128)));
        mixed.push(Inst::bind(&mulps, &assign, &mut pool)?);
    }

    for (name, kernel) in [
        ("8 independent ADDs", &independent),
        ("IMUL chain (2)", &chain),
        ("3×PSHUFD + 2×MULPS", &mixed),
    ] {
        let prediction = predictor.predict(kernel);
        let measured = uops_info::measure::measure(
            &backend,
            kernel,
            &MeasurementConfig::default(),
            RunContext::default(),
        );
        println!("## {name}");
        println!("{prediction}");
        println!("  simulator measurement: {:.2} cycles/iteration\n", measured.cycles);
    }
    Ok(())
}
