//! Latency matrices for the paper's case-study instructions (§7.3.1, §7.3.2):
//! per-operand-pair latencies of the AES round instructions and of SHLD on
//! several microarchitectures, including the same-register behaviour that
//! explains the discrepancies between previously published numbers.
//!
//! Run with `cargo run --release --example latency_matrix`.

use uops_info::prelude::*;

fn print_latency_table(
    catalog: &Catalog,
    mnemonic: &str,
    variant: &str,
    archs: &[MicroArch],
) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n=== {mnemonic} ({variant}) ===");
    let desc = catalog
        .find_variant(mnemonic, variant)
        .ok_or_else(|| format!("unknown variant {mnemonic} ({variant})"))?;
    for &arch in archs {
        if !arch.supports(desc.extension) {
            println!("{:<14} not supported", arch.name());
            continue;
        }
        let backend = SimBackend::new(arch);
        let analyzer = LatencyAnalyzer::new(&backend, catalog, MeasurementConfig::fast())?;
        let map = analyzer.infer(&std::sync::Arc::new(desc.clone()))?;
        print!("{:<14}", arch.name());
        for ((s, d), v) in map.iter() {
            let bound = if v.is_upper_bound { "≤" } else { "" };
            print!("  lat({s}→{d}) = {bound}{:.1}", v.cycles);
            if let Some(same) = v.same_register_cycles {
                print!(" [same reg: {same:.1}]");
            }
        }
        println!();
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::intel_core();

    // §7.3.1: the AES round instructions. On Sandy Bridge and Ivy Bridge the
    // round key is only needed by the final XOR, so lat(key, dst) is ~1 cycle
    // while lat(state, dst) is 8 cycles; Westmere and Haswell behave
    // uniformly.
    print_latency_table(
        &catalog,
        "AESDEC",
        "XMM, XMM",
        &[
            MicroArch::Westmere,
            MicroArch::SandyBridge,
            MicroArch::IvyBridge,
            MicroArch::Haswell,
            MicroArch::Skylake,
        ],
    )?;

    // §7.3.2: SHLD. The operand-pair view explains why Agner Fog reports 3
    // cycles on Nehalem while the manual and Granlund report 4; on Skylake
    // the instruction is faster when both operands use the same register.
    print_latency_table(
        &catalog,
        "SHLD",
        "R64, R64, I8",
        &[MicroArch::Nehalem, MicroArch::Haswell, MicroArch::Skylake],
    )?;

    // A memory-operand example: the load is visible in the memory → register
    // pair while the register → register pair stays small.
    print_latency_table(&catalog, "ADD", "R64, M64", &[MicroArch::Skylake])?;

    Ok(())
}
