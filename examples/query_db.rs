//! Walkthrough of the `uops-db` layer: characterize a catalog slice on two
//! microarchitectures, persist the results as a snapshot, reload it into the
//! indexed database, and answer the questions uops.info answers — filtered
//! queries, port membership, and cross-generation diffs.
//!
//! Run with `cargo run --release --example query_db`.

use uops_info::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::intel_core();
    let selection = [
        ("ADD", "R64, R64"),
        ("ADC", "R64, R64"),
        ("SHLD", "R64, R64, I8"),
        ("AESDEC", "XMM, XMM"),
        ("PADDD", "XMM, XMM"),
        ("MULPS", "XMM, XMM"),
        ("DIV", "R32"),
    ];

    // 1. Characterize on two generations.
    let mut reports = Vec::new();
    for uarch in [MicroArch::Haswell, MicroArch::Skylake] {
        let backend = SimBackend::new(uarch);
        let engine = CharacterizationEngine::with_config(&catalog, uarch, EngineConfig::fast());
        let report = engine.characterize_matching(&backend, |d| {
            selection.iter().any(|(m, v)| d.mnemonic == *m && d.variant() == *v)
        });
        eprintln!("{}: characterized {} variants", uarch.name(), report.characterized_count());
        reports.push(report);
    }

    // 2. Persist: reports → snapshot → binary bytes (and back). The same
    //    snapshot also serializes to JSON and XML.
    let snapshot = reports_to_snapshot(&reports);
    let bytes = uops_info::db::codec::encode(&snapshot);
    eprintln!("snapshot: {} records, {} bytes binary", snapshot.len(), bytes.len());
    let restored = uops_info::db::codec::decode(&bytes)?;
    assert_eq!(restored, snapshot);

    // 3. Load into the indexed, interned database.
    let db = InstructionDb::from_snapshot(&restored);

    // Which instructions may use port 0 on Skylake?
    println!("port 0 users on Skylake:");
    let result = Query::new().uarch("Skylake").uses_port(0).sort_by(SortKey::Mnemonic).run(&db);
    for row in &result.rows {
        println!("  {:<8} {:<16} {}", row.mnemonic(), row.variant(), row.ports_notation());
    }

    // Multi-µop variants, slowest first, first page of two.
    println!("\nmulti-µop variants on Skylake (top 2 by latency):");
    let result =
        Query::new().uarch("Skylake").min_uops(2).sort_by_desc(SortKey::Latency).limit(2).run(&db);
    println!("  ({} matches total)", result.total_matches);
    for row in &result.rows {
        println!(
            "  {:<8} {:<16} {} µops, {:.2} cycles",
            row.mnemonic(),
            row.variant(),
            row.record().uop_count,
            row.record().max_latency.unwrap_or(0.0),
        );
    }

    // 4. What changed between Haswell and Skylake?
    let diff = diff_uarches(&db, "Haswell", "Skylake");
    println!("\nHaswell → Skylake: {} compared, {} changed", diff.compared(), diff.changed.len());
    for delta in &diff.changed {
        println!("  {} {} changed:", delta.mnemonic, delta.variant);
        for change in &delta.changes {
            println!("    {change:?}");
        }
    }

    // 5. The serving path: the same snapshot as a zero-copy segment. The
    //    reader answers the same queries without decoding any record —
    //    this is the format to ship to query replicas.
    let segment = Segment::from_bytes(Segment::encode(&snapshot))?;
    let seg_db = segment.db();
    let result = Query::new().uarch("Skylake").uses_port(0).sort_by(SortKey::Mnemonic).run(&seg_db);
    println!(
        "\nsegment reader ({} bytes, 0 records decoded): {} port-0 users on Skylake",
        segment.as_bytes().len(),
        result.total_matches
    );
    Ok(())
}
