//! Port-usage survey: run Algorithm 1 on a set of instructions across
//! several microarchitectures and compare against the conclusions of the
//! naive run-in-isolation methodology (§5.1, §7.3.3, §7.3.4).
//!
//! Run with `cargo run --release --example port_usage_survey`.

use uops_info::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::intel_core();

    let cases: &[(&str, &str, MicroArch)] = &[
        // §5.1: a port usage of 2*p05 looks identical to 1*p0 + 1*p5 in
        // isolation.
        ("PBLENDVB", "XMM, XMM", MicroArch::Nehalem),
        // §5.1: ADC on Haswell is 1*p0156 + 1*p06, not 2*p0156.
        ("ADC", "R64, R64", MicroArch::Haswell),
        // §7.3.3: the second µop of MOVQ2DQ can use ports 0, 1, and 5.
        ("MOVQ2DQ", "XMM, MM", MicroArch::Skylake),
        // §7.3.4: MOVDQ2Q on Haswell and Sandy Bridge.
        ("MOVDQ2Q", "MM, XMM", MicroArch::Haswell),
        ("MOVDQ2Q", "MM, XMM", MicroArch::SandyBridge),
        // Ordinary instructions for reference.
        ("ADD", "R64, R64", MicroArch::Skylake),
        ("PSHUFD", "XMM, XMM, I8", MicroArch::Skylake),
        ("MOV", "M64, R64", MicroArch::Skylake),
        ("VHADDPD", "XMM, XMM, XMM", MicroArch::Skylake),
    ];

    println!(
        "{:<24} {:<14} {:<20} {:<20}",
        "instruction", "uarch", "Algorithm 1", "naive (isolation)"
    );
    for (mnemonic, variant, arch) in cases {
        let desc = catalog
            .find_variant(mnemonic, variant)
            .ok_or_else(|| format!("unknown variant {mnemonic} ({variant})"))?;
        let backend = SimBackend::new(*arch);
        let engine = CharacterizationEngine::with_config(&catalog, *arch, EngineConfig::fast());
        let profile = engine.characterize_variant(&backend, desc)?;
        let naive = profile
            .naive_port_usage
            .as_ref()
            .map(|n| n.interpretation.to_string())
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<24} {:<14} {:<20} {:<20}",
            format!("{mnemonic} ({variant})"),
            arch.name(),
            profile.port_usage.to_string(),
            naive
        );
    }

    println!("\nWhere the two columns differ, the run-in-isolation heuristic of prior work");
    println!("misattributes µops to ports — exactly the cases discussed in the paper.");
    Ok(())
}
