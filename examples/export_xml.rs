//! Produce the machine-readable output of §6.4: characterize a set of
//! instructions on two microarchitectures and emit the combined XML document
//! (in the style of the uops.info XML file) plus a JSON summary.
//!
//! Run with `cargo run --release --example export_xml > uops.xml`.

use uops_info::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::intel_core();
    let selection = [
        ("ADD", "R64, R64"),
        ("ADC", "R64, R64"),
        ("SHLD", "R64, R64, I8"),
        ("AESDEC", "XMM, XMM"),
        ("MOVQ2DQ", "XMM, MM"),
        ("PBLENDVB", "XMM, XMM"),
        ("MULPS", "XMM, XMM"),
        ("DIV", "R32"),
    ];

    let mut reports = Vec::new();
    for arch in [MicroArch::Skylake, MicroArch::Haswell] {
        let backend = SimBackend::new(arch);
        let engine = CharacterizationEngine::with_config(&catalog, arch, EngineConfig::fast());
        let report = engine.characterize_matching(&backend, |d| {
            selection.iter().any(|(m, v)| d.mnemonic == *m && d.variant() == *v)
        });
        eprintln!("{}: characterized {} variants", arch.name(), report.characterized_count());
        reports.push(report);
    }

    // XML goes to stdout; a JSON summary of the first architecture to stderr.
    print!("{}", uops_info::core_::reports_to_xml(&reports));
    eprintln!("\nJSON summary for {}:", reports[0].arch.map(|a| a.name()).unwrap_or("?"));
    eprintln!("{}", uops_info::core_::report_to_json(&reports[0]));
    Ok(())
}
