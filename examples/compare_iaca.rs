//! Compare measured characterizations against the IACA-analogue static
//! analyzer (§6.3, §7.2): per-instruction discrepancies and the aggregate
//! agreement statistics of Table 1 for one microarchitecture.
//!
//! Run with `cargo run --release --example compare_iaca`.

use uops_info::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::intel_core();
    let arch = MicroArch::Skylake;
    let backend = SimBackend::new(arch);
    let engine = CharacterizationEngine::with_config(&catalog, arch, EngineConfig::fast());

    // Characterize a sample of the catalog (every 12th variant) to keep the
    // example quick; `uops-bench`'s `table1` binary does the full sweep.
    let report = engine.characterize_matching(&backend, |d| d.uid % 12 == 0);
    println!(
        "characterized {} variants on {} ({} skipped)",
        report.characterized_count(),
        arch.name(),
        report.skipped.len()
    );

    // Convert to the comparison format and compute the Table 1 row.
    let measured: Vec<(MeasuredInstruction, InstructionDesc)> = report
        .profiles
        .iter()
        .filter_map(|p| {
            let desc = catalog.try_get(p.uid)?;
            Some((
                MeasuredInstruction::new(desc, p.uop_count, p.port_usage.entries().to_vec()),
                desc.clone(),
            ))
        })
        .collect();
    let stats = compare_against_iaca(arch, &measured);
    println!(
        "\nIACA versions: {}   µops agree: {:.2}%   ports agree (among matching µops): {:.2}%",
        stats.versions.clone().unwrap_or_else(|| "-".to_string()),
        stats.uops_match_excl_pct(),
        stats.ports_match_pct()
    );

    // Show a few per-instruction disagreements.
    println!("\nexample disagreements (measured vs IACA):");
    let mut shown = 0;
    for (m, desc) in &measured {
        if shown >= 10 {
            break;
        }
        for version in IacaVersion::supporting(arch) {
            let Some(analyzer) = IacaAnalyzer::new(arch, version) else { continue };
            let Some(view) = analyzer.analyze_instruction(desc) else { continue };
            if view.uop_count != m.uop_count {
                println!(
                    "  {:<28} measured {} µops, {} reports {}",
                    format!("{} ({})", m.mnemonic, m.variant),
                    m.uop_count,
                    version,
                    view.uop_count
                );
                shown += 1;
                break;
            }
        }
    }
    if shown == 0 {
        println!("  (none in this sample)");
    }
    Ok(())
}
