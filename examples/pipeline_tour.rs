//! A tour of the simulated pipeline (Figure 1 of the paper): the port layout
//! and functional-unit-to-port mapping of every supported microarchitecture,
//! and a demonstration of the performance counters the measurements rely on.
//!
//! Run with `cargo run --release --example pipeline_tour`.

use std::collections::BTreeMap;

use uops_info::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Simulated Intel Core microarchitectures (Figure 1 / Table 1):\n");
    println!(
        "{:<14} {:<18} {:>5} {:>6} {:>6}  functional units per port",
        "uarch", "reference CPU", "ports", "issue", "ROB"
    );
    for arch in MicroArch::ALL {
        let cfg = UarchConfig::for_arch(arch);
        let mut per_port: BTreeMap<u8, Vec<&str>> = BTreeMap::new();
        let units: [(&str, PortSet); 10] = [
            ("ALU", cfg.int_alu),
            ("shift", cfg.int_shift),
            ("mul", cfg.int_mul),
            ("div", cfg.divider),
            ("branch", cfg.branch),
            ("load", cfg.load),
            ("st-addr", cfg.store_addr),
            ("st-data", cfg.store_data),
            ("vec-alu", cfg.vec_alu),
            ("shuffle", cfg.vec_shuffle),
        ];
        for (name, ports) in units {
            for p in ports.iter() {
                per_port.entry(p).or_default().push(name);
            }
        }
        let summary: Vec<String> =
            per_port.iter().map(|(p, u)| format!("p{p}:{}", u.join("/"))).collect();
        println!(
            "{:<14} {:<18} {:>5} {:>6} {:>6}  {}",
            arch.name(),
            arch.reference_processor(),
            cfg.port_count,
            cfg.issue_width,
            cfg.rob_size,
            summary.join(" ")
        );
    }

    // Demonstrate the performance counters: run a small dependency chain and
    // an independent sequence on the simulator and show cycles and per-port
    // µops — the only observables the inference algorithms use.
    println!("\nPerformance-counter demonstration on Skylake:");
    let catalog = Catalog::intel_core();
    let desc = variant_arc(&catalog, "ADD", "R64, R64")?;
    let mut pool = RegisterPool::new();
    let mut chain = CodeSequence::new();
    let r = Register::gpr(3, Width::W64);
    let s = Register::gpr(6, Width::W64);
    for _ in 0..32 {
        let mut a = std::collections::BTreeMap::new();
        a.insert(0, Op::Reg(r));
        a.insert(1, Op::Reg(s));
        chain.push(Inst::bind(&desc, &a, &mut pool)?);
    }
    let sim = Pipeline::new(MicroArch::Skylake);
    let counters: PerfCounters = sim.execute(&chain);
    println!("  dependent ADD chain (32 instructions): {counters}");

    let mut pool = RegisterPool::new();
    let independent: CodeSequence =
        uops_info::core_::codegen::independent_copies(&desc, 32, &mut pool)?.into_iter().collect();
    let counters = sim.execute(&independent);
    println!("  independent ADDs    (32 instructions): {counters}");
    println!("\nThe dependent chain is limited by latency, the independent sequence by the");
    println!("number of ALU ports and the issue width — exactly the contrast the paper's");
    println!("latency and throughput definitions capture.");
    Ok(())
}
