//! Quickstart: characterize a handful of instructions on Skylake and print
//! their port usage, latency, and throughput.
//!
//! Run with `cargo run --release --example quickstart`.

use uops_info::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The instruction catalog plays the role of the XED-derived XML file of
    // the paper: it describes operands (including implicit ones) for every
    // instruction variant.
    let catalog = Catalog::intel_core();
    println!("catalog: {} instruction variants", catalog.len());

    // The backend is where microbenchmarks run. `SimBackend` executes them on
    // the cycle-level pipeline simulator; a hardware backend could implement
    // the same trait using performance counters.
    let arch = MicroArch::Skylake;
    let backend = SimBackend::new(arch);
    let engine = CharacterizationEngine::with_config(&catalog, arch, EngineConfig::fast());

    let interesting = [
        ("ADD", "R64, R64"),
        ("ADC", "R64, R64"),
        ("IMUL", "R64, R64"),
        ("PADDD", "XMM, XMM"),
        ("PSHUFD", "XMM, XMM, I8"),
        ("MULPS", "XMM, XMM"),
        ("AESDEC", "XMM, XMM"),
        ("MOV", "R64, M64"),
        ("MOV", "M64, R64"),
        ("DIV", "R32"),
    ];

    println!(
        "\n{:<22} {:>5}  {:<18} {:>9} {:>9}  latency (per operand pair)",
        "instruction", "µops", "ports", "tp meas", "tp ports"
    );
    for (mnemonic, variant) in interesting {
        let desc = catalog
            .find_variant(mnemonic, variant)
            .ok_or_else(|| format!("unknown variant {mnemonic} ({variant})"))?;
        let profile = engine.characterize_variant(&backend, desc)?;
        let tp_ports = profile
            .throughput
            .from_port_usage
            .map(|v| format!("{v:>9.2}"))
            .unwrap_or_else(|| format!("{:>9}", "-"));
        println!(
            "{:<22} {:>5}  {:<18} {:>9.2} {}  {}",
            profile.mnemonic.clone() + " (" + &profile.variant + ")",
            profile.uop_count,
            profile.port_usage.to_string(),
            profile.throughput.measured,
            tp_ports,
            profile.latency
        );
    }

    println!(
        "\nDone. See `examples/latency_matrix.rs` and `examples/port_usage_survey.rs` for more."
    );
    Ok(())
}
