//! Walkthrough of the serving stack: characterize a catalog slice, persist
//! it as a zero-copy segment, boot the HTTP server over it, and query it
//! the way a downstream tool (uiCA-style per-instruction lookups) would —
//! over the wire, with the response cache doing the heavy lifting on
//! repeats.
//!
//! Run with `cargo run --release --example serve_db`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use uops_info::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Characterize a small slice on one generation and persist it as a
    //    segment — the serving format: replicas ship the file and open it
    //    in place.
    let catalog = Catalog::intel_core();
    let selection =
        [("ADD", "R64, R64"), ("ADC", "R64, R64"), ("MULPS", "XMM, XMM"), ("DIV", "R32")];
    let backend = SimBackend::new(MicroArch::Skylake);
    let engine =
        CharacterizationEngine::with_config(&catalog, MicroArch::Skylake, EngineConfig::fast());
    let report = engine.characterize_matching(&backend, |d| {
        selection.iter().any(|(m, v)| d.mnemonic == *m && d.variant() == *v)
    });
    let snapshot = report_to_snapshot(&report);
    let segment = Arc::new(Segment::from_bytes(Segment::encode(&snapshot))?);
    eprintln!("segment: {} records", snapshot.len());

    // 2. Service + server: sharded LRU response cache over the segment,
    //    HTTP/1.1 workers on the task pool. Port 0 = pick a free port.
    let service = Arc::new(QueryService::from_segment(Arc::clone(&segment), 16 << 20));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service), 2)?;
    let addr = server.local_addr();
    let handle = server.spawn();
    eprintln!("listening on http://{addr}");

    // 3. Query it over the wire, twice — the second answer comes from the
    //    cache without touching planner, executor, or encoder.
    for round in ["cold", "warm"] {
        let mut stream = TcpStream::connect(addr)?;
        write!(
            stream,
            "GET /v1/query?uarch=Skylake&sort=latency&desc=1 HTTP/1.1\r\nHost: e\r\n\
             Connection: close\r\n\r\n"
        )?;
        let mut response = String::new();
        stream.read_to_string(&mut response)?;
        let body = response.split("\r\n\r\n").nth(1).unwrap_or("");
        eprintln!("--- {round} response ---\n{body}");
    }
    let stats = service.stats();
    eprintln!(
        "cache: {} hit(s), {} miss(es); executor ran {} time(s)",
        stats.cache.hits, stats.cache.misses, stats.executions
    );
    assert_eq!(stats.executions, 1, "the warm request must be a pure cache hit");

    // 4. The same request in-process returns byte-identical content.
    let plan = Query::new().uarch("Skylake").sort_by_desc(SortKey::Latency).into_plan();
    let in_process = service.query(&plan, Encoding::Json);
    eprintln!("in-process bytes: {} (cache hit #{})", in_process.body.len(), stats.cache.hits + 1);

    handle.shutdown();
    Ok(())
}
