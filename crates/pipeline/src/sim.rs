//! The out-of-order pipeline simulator.
//!
//! The simulator models the aspects of Intel Core CPUs that the paper's
//! algorithms depend on (§3.1):
//!
//! * in-order issue of µops with a limited issue width,
//! * register renaming over general-purpose registers, vector registers,
//!   individual status flags, and memory cells,
//! * special handling in the renamer: NOP elimination, zero idioms,
//!   dependency-breaking idioms, and (probabilistic) move elimination,
//! * dynamic scheduling of µops onto execution ports, where each port accepts
//!   at most one µop per cycle and equally loaded ports are balanced,
//! * functional-unit latencies, a non-pipelined divider, load and store µops
//!   with store-to-load forwarding, bypass delays between the vector-integer
//!   and floating-point domains, and partial-register stalls.
//!
//! The observable output is a set of [`PerfCounters`]: elapsed core cycles
//! and µops executed per port — exactly what the real hardware exposes.

use std::collections::HashMap;

use uops_asm::{CodeSequence, Inst, Op, Resource};
use uops_isa::{OperandKind, RegFile, Width};
use uops_uarch::{
    characterize, Domain, FuKind, MicroArch, TruthOptions, UarchConfig, UopInput, UopOutput,
    MAX_PORTS,
};

use crate::counters::PerfCounters;

/// Options controlling a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Seed for the pseudo-random decisions of the renamer (move
    /// elimination).
    pub seed: u64,
    /// Use divider operand values that lead to low latency (§5.2.5).
    pub divider_low_latency: bool,
    /// Constant measurement overhead added to the cycle counter, modelling
    /// the serializing instructions and counter reads that wrap the measured
    /// code (§6.2). The measurement harness removes it by differencing.
    pub overhead_cycles: u64,
    /// Constant number of overhead µops (on the load ports) added by the
    /// counter-reading code.
    pub overhead_uops: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            seed: 0x5eed,
            divider_low_latency: false,
            overhead_cycles: 42,
            overhead_uops: 6,
        }
    }
}

/// Extra latency (cycles) charged when an instruction reads a wider part of a
/// general-purpose register than the previous writer produced (partial
/// register stall).
const PARTIAL_REGISTER_STALL: u32 = 3;

/// The cycle-level simulator for one microarchitecture.
#[derive(Debug, Clone)]
pub struct Pipeline {
    cfg: UarchConfig,
    opts: SimOptions,
}

/// Where the value of a renamed resource comes from.
#[derive(Debug, Clone, Copy)]
enum Producer {
    /// Produced by the dynamic µop with this index.
    Uop(usize),
    /// Available at the given cycle without an execution µop (eliminated
    /// instructions, initial register state).
    Ready(u64),
}

#[derive(Debug, Clone, Copy)]
struct WriterInfo {
    producer: Producer,
    /// Width of the written register portion (for partial-register stalls).
    width: Option<Width>,
    /// Bypass domain of the producing µop.
    domain: Domain,
}

#[derive(Debug, Clone, Copy)]
struct Dep {
    producer: Producer,
    extra_latency: u32,
}

#[derive(Debug, Clone)]
struct DynUop {
    ports: uops_uarch::PortSet,
    fu: FuKind,
    latency: u32,
    divider_occupancy: u32,
    deps: Vec<Dep>,
    issue_cycle: u64,
}

impl Pipeline {
    /// Creates a simulator for the given microarchitecture with default
    /// options.
    #[must_use]
    pub fn new(arch: MicroArch) -> Pipeline {
        Pipeline { cfg: UarchConfig::for_arch(arch), opts: SimOptions::default() }
    }

    /// Creates a simulator with explicit options.
    #[must_use]
    pub fn with_options(arch: MicroArch, opts: SimOptions) -> Pipeline {
        Pipeline { cfg: UarchConfig::for_arch(arch), opts }
    }

    /// The microarchitecture configuration used by this simulator.
    #[must_use]
    pub fn config(&self) -> &UarchConfig {
        &self.cfg
    }

    /// The simulation options.
    #[must_use]
    pub fn options(&self) -> SimOptions {
        self.opts
    }

    /// Executes a code sequence once and returns the performance counters.
    #[must_use]
    pub fn execute(&self, code: &CodeSequence) -> PerfCounters {
        let truth_opts = TruthOptions { divider_low_latency: self.opts.divider_low_latency };
        let mut rng = SplitMix64::new(self.opts.seed);

        let mut writers: HashMap<Resource, WriterInfo> = HashMap::new();
        let mut uops: Vec<DynUop> = Vec::new();
        let mut issue_slots: u64 = 0;
        let mut instructions_retired: u64 = 0;

        for inst in code.iter() {
            instructions_retired += 1;
            let char_ = characterize(inst, &self.cfg, truth_opts);
            let issue_cycle = issue_slots / u64::from(self.cfg.issue_width);

            if char_.eliminated {
                // The instruction is handled by the renamer; its results are
                // available as soon as it issues.
                for res in inst.writes() {
                    writers.insert(
                        res,
                        WriterInfo {
                            producer: Producer::Ready(issue_cycle),
                            width: None,
                            domain: Domain::Int,
                        },
                    );
                }
                issue_slots += 1;
                continue;
            }

            if char_.mov_elim_candidate && rng.next_f64() < self.cfg.mov_elimination_rate {
                // Move elimination: the destination is renamed to the
                // source's physical register; no µop executes.
                let source = inst
                    .reads()
                    .into_iter()
                    .find(|r| matches!(r, Resource::Reg(..)))
                    .and_then(|r| writers.get(&r).copied());
                let info = source.unwrap_or(WriterInfo {
                    producer: Producer::Ready(issue_cycle),
                    width: None,
                    domain: Domain::Int,
                });
                for res in inst.writes() {
                    writers.insert(res, info);
                }
                issue_slots += 1;
                continue;
            }

            // Expand the instruction's µops.
            let mut temp_producer: HashMap<u8, usize> = HashMap::new();
            let divider_occ = char_
                .divider_occupancy
                .map(|(low, high)| if self.opts.divider_low_latency { low } else { high })
                .unwrap_or(0);
            for spec in &char_.uops {
                let dyn_idx = uops.len();
                let mut deps: Vec<Dep> = Vec::new();

                for input in &spec.inputs {
                    match input {
                        UopInput::Temp(t) => {
                            if let Some(&producer) = temp_producer.get(t) {
                                deps.push(Dep {
                                    producer: Producer::Uop(producer),
                                    extra_latency: 0,
                                });
                            }
                        }
                        UopInput::Addr(i) => {
                            if let Some(mem) = inst.operand(*i).memory() {
                                let res = Resource::of_register(mem.base);
                                if let Some(info) = writers.get(&res) {
                                    deps.push(dep_from_writer(
                                        info,
                                        spec.fu.domain(),
                                        None,
                                        self.cfg.bypass_delay,
                                    ));
                                }
                            }
                        }
                        UopInput::Op(i) => {
                            for (res, read_width) in operand_read_resources(inst, *i) {
                                if let Some(info) = writers.get(&res) {
                                    deps.push(dep_from_writer(
                                        info,
                                        spec.fu.domain(),
                                        read_width,
                                        self.cfg.bypass_delay,
                                    ));
                                }
                            }
                        }
                    }
                }

                // Store-to-load forwarding: a load additionally depends on
                // the most recent store to the same memory cell.
                if spec.fu == FuKind::Load {
                    for input in &spec.inputs {
                        if let UopInput::Addr(i) = input {
                            if let Some(mem) = inst.operand(*i).memory() {
                                let res = Resource::Mem(mem.cell());
                                if let Some(info) = writers.get(&res) {
                                    deps.push(dep_from_writer(info, spec.fu.domain(), None, 0));
                                }
                            }
                        }
                    }
                }

                uops.push(DynUop {
                    ports: spec.ports,
                    fu: spec.fu,
                    latency: spec.latency,
                    divider_occupancy: divider_occ.max(spec.latency),
                    deps,
                    issue_cycle,
                });

                // Record outputs.
                for output in &spec.outputs {
                    match output {
                        UopOutput::Temp(t) => {
                            temp_producer.insert(*t, dyn_idx);
                        }
                        UopOutput::Op(i) => {
                            for (res, width) in operand_write_resources(inst, *i) {
                                writers.insert(
                                    res,
                                    WriterInfo {
                                        producer: Producer::Uop(dyn_idx),
                                        width,
                                        domain: spec.fu.domain(),
                                    },
                                );
                            }
                        }
                    }
                }
                issue_slots += 1;
            }
        }

        self.schedule(&uops, issue_slots, instructions_retired)
    }

    /// Schedules the dynamic µops onto ports and produces the counters.
    fn schedule(
        &self,
        uops: &[DynUop],
        issue_slots: u64,
        instructions_retired: u64,
    ) -> PerfCounters {
        let port_count = self.cfg.port_count as usize;
        let mut port_busy: Vec<Vec<bool>> = vec![Vec::new(); port_count];
        let mut port_counts = [0u64; MAX_PORTS as usize];
        let mut completion: Vec<u64> = Vec::with_capacity(uops.len());
        let mut divider_free: u64 = 0;
        let mut last_cycle: u64 = issue_slots / u64::from(self.cfg.issue_width);

        for uop in uops {
            // Earliest cycle at which the µop's operands are ready.
            let mut ready = uop.issue_cycle + 1;
            for dep in &uop.deps {
                let avail = match dep.producer {
                    Producer::Uop(idx) => completion[idx],
                    Producer::Ready(cycle) => cycle,
                };
                ready = ready.max(avail + u64::from(dep.extra_latency));
            }
            if uop.fu == FuKind::Div {
                ready = ready.max(divider_free);
            }

            // Find the first cycle at which one of the allowed ports is free;
            // among free ports prefer the least-loaded one (the hardware
            // balances equally capable ports).
            let mut cycle = ready;
            let port = loop {
                let mut best: Option<u8> = None;
                for p in uop.ports.iter() {
                    let p_usize = p as usize;
                    if p_usize >= port_count {
                        continue;
                    }
                    let busy = port_busy[p_usize].get(cycle as usize).copied().unwrap_or(false);
                    if !busy {
                        best = match best {
                            None => Some(p),
                            Some(b) if port_counts[p_usize] < port_counts[b as usize] => Some(p),
                            other => other,
                        };
                    }
                }
                if let Some(p) = best {
                    break p;
                }
                cycle += 1;
            };

            let p_usize = port as usize;
            if port_busy[p_usize].len() <= cycle as usize {
                port_busy[p_usize].resize(cycle as usize + 1, false);
            }
            port_busy[p_usize][cycle as usize] = true;
            port_counts[p_usize] += 1;

            if uop.fu == FuKind::Div {
                divider_free = cycle + u64::from(uop.divider_occupancy.max(1));
            }

            let done = cycle + u64::from(uop.latency);
            completion.push(done);
            last_cycle = last_cycle.max(done);
        }

        let mut counters = PerfCounters::zero();
        counters.core_cycles = last_cycle + self.opts.overhead_cycles;
        counters.uops_port = port_counts;
        counters.uops_total = uops.len() as u64 + self.opts.overhead_uops;
        // The overhead µops of the measurement code land on the load ports.
        if let Some(p) = self.cfg.load.first() {
            counters.uops_port[p as usize] += self.opts.overhead_uops;
        }
        counters.instructions_retired = instructions_retired;
        counters
    }
}

/// Builds a dependency edge from a writer, applying bypass delays between
/// vector domains and partial-register stalls.
fn dep_from_writer(
    info: &WriterInfo,
    consumer_domain: Domain,
    read_width: Option<Width>,
    bypass_delay: u32,
) -> Dep {
    let mut extra = 0;
    let cross_domain = matches!(
        (info.domain, consumer_domain),
        (Domain::VecInt, Domain::VecFp) | (Domain::VecFp, Domain::VecInt)
    );
    if cross_domain {
        extra += bypass_delay;
    }
    if let (Some(written), Some(read)) = (info.width, read_width) {
        if written.bits() < 32 && read.bits() > written.bits() {
            extra += PARTIAL_REGISTER_STALL;
        }
    }
    Dep { producer: info.producer, extra_latency: extra }
}

/// The architectural resources (and access widths) read through operand `i`.
fn operand_read_resources(inst: &Inst, i: usize) -> Vec<(Resource, Option<Width>)> {
    let desc = inst.desc();
    let od = &desc.operands[i];
    match (od.kind, inst.operand(i)) {
        (OperandKind::Reg(class), Op::Reg(r)) => {
            vec![(Resource::of_register(r), Some(class.width))]
        }
        (OperandKind::FixedReg(f), Op::Reg(r)) => vec![(Resource::of_register(r), Some(f.width))],
        (OperandKind::Mem(_), Op::Mem(m)) => vec![(Resource::Mem(m.cell()), None)],
        (OperandKind::Flags(_), Op::Flags(set)) => {
            set.iter().map(|f| (Resource::Flag(f), None)).collect()
        }
        _ => Vec::new(),
    }
}

/// The architectural resources (and written widths) written through operand
/// `i`.
fn operand_write_resources(inst: &Inst, i: usize) -> Vec<(Resource, Option<Width>)> {
    let desc = inst.desc();
    let od = &desc.operands[i];
    match (od.kind, inst.operand(i)) {
        (OperandKind::Reg(class), Op::Reg(r)) => {
            // Writes to 32-bit GPRs zero the upper half (full-width writes);
            // 8/16-bit writes are partial.
            let effective = if r.file == RegFile::Gpr && class.width == Width::W32 {
                Width::W64
            } else {
                class.width
            };
            vec![(Resource::of_register(r), Some(effective))]
        }
        (OperandKind::FixedReg(f), Op::Reg(r)) => vec![(Resource::of_register(r), Some(f.width))],
        (OperandKind::Mem(_), Op::Mem(m)) => vec![(Resource::Mem(m.cell()), None)],
        (OperandKind::Flags(_), Op::Flags(set)) => {
            set.iter().map(|f| (Resource::Flag(f), None)).collect()
        }
        _ => Vec::new(),
    }
}

/// A small deterministic PRNG (SplitMix64) for the renamer's probabilistic
/// decisions. Using a fixed algorithm keeps simulations reproducible across
/// platforms.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use uops_asm::{variant_arc, Inst, RegisterPool};
    use uops_isa::{gpr, Catalog, Register};

    fn catalog() -> Catalog {
        Catalog::intel_core()
    }

    /// A chain of `len` dependent MOVSX instructions alternating between two
    /// registers.
    fn movsx_chain(c: &Catalog, len: usize) -> CodeSequence {
        let desc = variant_arc(c, "MOVSX", "R64, R16").unwrap();
        let mut pool = RegisterPool::new();
        let a = Register::gpr(gpr::RBX, Width::W64);
        let b = Register::gpr(gpr::RCX, Width::W64);
        let mut seq = CodeSequence::new();
        for i in 0..len {
            let (dst, src) = if i % 2 == 0 { (a, b) } else { (b, a) };
            let mut assign = BTreeMap::new();
            assign.insert(0, uops_asm::Op::Reg(dst));
            assign.insert(1, uops_asm::Op::Reg(src.with_width(Width::W16)));
            seq.push(Inst::bind(&desc, &assign, &mut pool).unwrap());
        }
        seq
    }

    /// `len` independent copies of `ADD r, r` using distinct registers.
    fn independent_adds(c: &Catalog, len: usize) -> CodeSequence {
        let desc = variant_arc(c, "ADD", "R64, R64").unwrap();
        let mut seq = CodeSequence::new();
        for i in 0..len {
            let mut pool = RegisterPool::new();
            let dst = Register::gpr([3, 6, 7, 8][i % 4], Width::W64);
            let src = Register::gpr([9, 10, 11, 12][i % 4], Width::W64);
            let mut assign = BTreeMap::new();
            assign.insert(0, uops_asm::Op::Reg(dst));
            assign.insert(1, uops_asm::Op::Reg(src));
            seq.push(Inst::bind(&desc, &assign, &mut pool).unwrap());
        }
        seq
    }

    #[test]
    fn dependent_chain_runs_at_latency() {
        let c = catalog();
        let sim = Pipeline::new(MicroArch::Skylake);
        let short = sim.execute(&movsx_chain(&c, 10));
        let long = sim.execute(&movsx_chain(&c, 110));
        // MOVSX latency is 1 cycle: 100 extra instructions ≈ 100 extra cycles.
        let delta = long.core_cycles - short.core_cycles;
        assert!((95..=110).contains(&delta), "delta = {delta}");
    }

    #[test]
    fn independent_adds_run_at_throughput() {
        let c = catalog();
        let sim = Pipeline::new(MicroArch::Skylake);
        let short = sim.execute(&independent_adds(&c, 40));
        let long = sim.execute(&independent_adds(&c, 440));
        let delta = long.core_cycles - short.core_cycles;
        // Four ALU ports but issue width 4: ~1 cycle per 4 instructions.
        let per_inst = delta as f64 / 400.0;
        assert!(per_inst < 0.4, "per-instruction time {per_inst}");
    }

    #[test]
    fn counters_include_constant_overhead() {
        let c = catalog();
        let sim = Pipeline::new(MicroArch::Haswell);
        let empty = sim.execute(&CodeSequence::new());
        assert_eq!(empty.core_cycles, SimOptions::default().overhead_cycles);
        assert_eq!(empty.uops_total, SimOptions::default().overhead_uops);
        assert_eq!(empty.instructions_retired, 0);
        let one = sim.execute(&movsx_chain(&c, 1));
        assert!(one.core_cycles > empty.core_cycles);
    }

    #[test]
    fn port_usage_of_isolated_alu_instruction_spreads_across_ports() {
        let c = catalog();
        let sim = Pipeline::new(MicroArch::Skylake);
        let counters = sim.execute(&independent_adds(&c, 400));
        let cfg = sim.config();
        // All µops land on the integer ALU ports and are roughly balanced.
        let total_alu: u64 = cfg.int_alu.iter().map(|p| counters.port(p)).sum();
        assert!(total_alu >= 400);
        for p in cfg.int_alu.iter() {
            let share = counters.port(p) as f64 / 400.0;
            assert!(share > 0.15, "port {p} got share {share}");
        }
        // Ports outside the ALU set (e.g. port 4, store data) see nothing.
        assert_eq!(counters.port(4), 0);
    }

    #[test]
    fn store_load_pair_forwards() {
        let c = catalog();
        let store = variant_arc(&c, "MOV", "M64, R64").unwrap();
        let load = variant_arc(&c, "MOV", "R64, M64").unwrap();
        let mut pool = RegisterPool::new();
        let cell = pool.mem_at(0, Width::W64);
        let data = Register::gpr(gpr::RBX, Width::W64);
        let mut seq = CodeSequence::new();
        for _ in 0..64 {
            let mut a = BTreeMap::new();
            a.insert(0, uops_asm::Op::Mem(cell));
            a.insert(1, uops_asm::Op::Reg(data));
            seq.push(Inst::bind(&store, &a, &mut pool).unwrap());
            let mut b = BTreeMap::new();
            b.insert(0, uops_asm::Op::Reg(data));
            b.insert(1, uops_asm::Op::Mem(cell));
            seq.push(Inst::bind(&load, &b, &mut pool).unwrap());
        }
        let sim = Pipeline::new(MicroArch::Skylake);
        let counters = sim.execute(&seq);
        // The store/load pair forms a dependence chain through memory: the
        // run time must scale with the forwarding latency, i.e. clearly more
        // than 1 cycle per pair and less than a full cache round trip.
        let cycles_per_pair = (counters.core_cycles - 42) as f64 / 64.0;
        assert!(cycles_per_pair >= 5.0, "cycles per store/load pair: {cycles_per_pair}");
        assert!(cycles_per_pair <= 20.0, "cycles per store/load pair: {cycles_per_pair}");
    }

    #[test]
    fn eliminated_nops_use_no_ports() {
        let c = catalog();
        let desc = variant_arc(&c, "NOP", "").unwrap();
        let mut pool = RegisterPool::new();
        let mut seq = CodeSequence::new();
        for _ in 0..100 {
            seq.push(Inst::bind(&desc, &BTreeMap::new(), &mut pool).unwrap());
        }
        let sim = Pipeline::new(MicroArch::Skylake);
        let counters = sim.execute(&seq);
        assert_eq!(counters.uops_total, SimOptions::default().overhead_uops);
        // NOPs still take issue bandwidth: 100 NOPs at 4 per cycle ≈ 25 cycles.
        assert!(counters.core_cycles >= 42 + 20);
        assert_eq!(counters.instructions_retired, 100);
    }

    #[test]
    fn zero_idiom_breaks_dependency_chain() {
        // XOR RBX, RBX between two dependent ADDs removes the dependency on
        // Sandy Bridge and later.
        let c = catalog();
        let add = variant_arc(&c, "ADD", "R64, R64").unwrap();
        let xor = variant_arc(&c, "XOR", "R64, R64").unwrap();
        let rbx = Register::gpr(gpr::RBX, Width::W64);
        let rcx = Register::gpr(gpr::RCX, Width::W64);
        let build = |with_idiom: bool| {
            let mut pool = RegisterPool::new();
            let mut seq = CodeSequence::new();
            for _ in 0..100 {
                let mut a = BTreeMap::new();
                a.insert(0, uops_asm::Op::Reg(rbx));
                a.insert(1, uops_asm::Op::Reg(rcx));
                seq.push(Inst::bind(&add, &a, &mut pool).unwrap());
                if with_idiom {
                    let mut x = BTreeMap::new();
                    x.insert(0, uops_asm::Op::Reg(rbx));
                    x.insert(1, uops_asm::Op::Reg(rbx));
                    seq.push(Inst::bind(&xor, &x, &mut pool).unwrap());
                }
            }
            seq
        };
        let sim = Pipeline::new(MicroArch::Skylake);
        let chained = sim.execute(&build(false));
        let broken = sim.execute(&build(true));
        // Without the idiom the ADDs form a 100-cycle dependency chain; with
        // it they are independent and run much faster despite having more
        // instructions.
        assert!(broken.core_cycles < chained.core_cycles);
    }

    #[test]
    fn move_elimination_is_probabilistic_and_seeded() {
        let c = catalog();
        let mov = variant_arc(&c, "MOV", "R64, R64").unwrap();
        let rbx = Register::gpr(gpr::RBX, Width::W64);
        let rcx = Register::gpr(gpr::RCX, Width::W64);
        let mut pool = RegisterPool::new();
        let mut seq = CodeSequence::new();
        for i in 0..300 {
            let (dst, src) = if i % 2 == 0 { (rbx, rcx) } else { (rcx, rbx) };
            let mut a = BTreeMap::new();
            a.insert(0, uops_asm::Op::Reg(dst));
            a.insert(1, uops_asm::Op::Reg(src));
            seq.push(Inst::bind(&mov, &a, &mut pool).unwrap());
        }
        let ivb = Pipeline::new(MicroArch::IvyBridge);
        let counters = ivb.execute(&seq);
        let executed = counters.uops_total - SimOptions::default().overhead_uops;
        // Roughly one third of the moves should be eliminated.
        assert!(executed < 300, "some moves must be eliminated, executed = {executed}");
        assert!(executed > 120, "not all moves may be eliminated, executed = {executed}");
        // Same seed → same result.
        let again = ivb.execute(&seq);
        assert_eq!(counters, again);
        // Sandy Bridge has no GPR move elimination.
        let snb = Pipeline::new(MicroArch::SandyBridge);
        let snb_counters = snb.execute(&seq);
        assert_eq!(snb_counters.uops_total - SimOptions::default().overhead_uops, 300);
    }

    #[test]
    fn divider_is_not_pipelined() {
        let c = catalog();
        let div = variant_arc(&c, "DIV", "R32").unwrap();
        let build = |n: usize| {
            let mut pool = RegisterPool::new();
            let mut seq = CodeSequence::new();
            let divisor = Register::gpr(gpr::RBX, Width::W32);
            for _ in 0..n {
                let mut a = BTreeMap::new();
                a.insert(0, uops_asm::Op::Reg(divisor));
                seq.push(Inst::bind(&div, &a, &mut pool).unwrap());
            }
            seq
        };
        let sim = Pipeline::new(MicroArch::Skylake);
        let short = sim.execute(&build(5));
        let long = sim.execute(&build(25));
        let per_div = (long.core_cycles - short.core_cycles) as f64 / 20.0;
        // Each division occupies the divider for many cycles even though the
        // divisions are "independent" (they share implicit RAX/RDX anyway).
        assert!(per_div > 10.0, "cycles per division: {per_div}");
    }

    #[test]
    fn bypass_delay_between_domains() {
        let c = catalog();
        // Chain ADDPS (FP domain) with PADDD (integer domain) on the same register.
        let addps = variant_arc(&c, "ADDPS", "XMM, XMM").unwrap();
        let paddd = variant_arc(&c, "PADDD", "XMM, XMM").unwrap();
        let xmm1 = Register::vec(1, Width::W128);
        let build = |mix: bool| {
            let mut pool = RegisterPool::new();
            let mut seq = CodeSequence::new();
            for i in 0..100 {
                let desc = if mix && i % 2 == 0 { &paddd } else { &addps };
                let mut a = BTreeMap::new();
                a.insert(0, uops_asm::Op::Reg(xmm1));
                a.insert(1, uops_asm::Op::Reg(xmm1));
                seq.push(Inst::bind(desc, &a, &mut pool).unwrap());
            }
            seq
        };
        let sim = Pipeline::new(MicroArch::Haswell);
        let pure = sim.execute(&build(false));
        let mixed = sim.execute(&build(true));
        // The mixed chain alternates domains. Every cross-domain edge pays
        // the bypass delay, but PADDD itself is faster (1 vs 3 cycles), so we
        // only check that the bypass delay is visible: the mixed chain must
        // be slower than a hypothetical chain of 50 ADDPS + 50 PADDD without
        // bypass (50*3 + 50*1 = 200 cycles).
        let mixed_cycles = mixed.core_cycles - 42;
        assert!(mixed_cycles > 200, "mixed chain too fast: {mixed_cycles}");
        assert!(pure.core_cycles - 42 >= 290);
    }

    #[test]
    fn partial_register_stall_penalty() {
        let c = catalog();
        // MOV BL, CL (8-bit write) followed by a 64-bit read of RBX.
        let mov8 = variant_arc(&c, "MOV", "R8, R8").unwrap();
        let add64 = variant_arc(&c, "ADD", "R64, R64").unwrap();
        let rbx = Register::gpr(gpr::RBX, Width::W64);
        let rcx = Register::gpr(gpr::RCX, Width::W64);
        let mut pool = RegisterPool::new();
        let mut seq = CodeSequence::new();
        for _ in 0..50 {
            let mut a = BTreeMap::new();
            a.insert(0, uops_asm::Op::Reg(rbx.with_width(Width::W8)));
            a.insert(1, uops_asm::Op::Reg(rcx.with_width(Width::W8)));
            seq.push(Inst::bind(&mov8, &a, &mut pool).unwrap());
            let mut b = BTreeMap::new();
            b.insert(0, uops_asm::Op::Reg(rcx));
            b.insert(1, uops_asm::Op::Reg(rbx));
            seq.push(Inst::bind(&add64, &b, &mut pool).unwrap());
        }
        let sim = Pipeline::new(MicroArch::Skylake);
        let counters = sim.execute(&seq);
        let per_pair = (counters.core_cycles - 42) as f64 / 50.0;
        assert!(per_pair >= 4.0, "partial-register stall not visible: {per_pair} cycles per pair");
    }
}
