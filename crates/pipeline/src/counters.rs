//! Hardware performance counters of the simulated CPU.
//!
//! The paper's measurements rely on exactly two kinds of counters (§3.3,
//! §6.2): the number of elapsed core cycles, and the number of µops executed
//! on each port. [`PerfCounters`] exposes the same information for a
//! simulated run.

use std::fmt;
use std::ops::Sub;

use serde::{Deserialize, Serialize};

use uops_uarch::MAX_PORTS;

/// A snapshot of the performance counters after executing a code sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PerfCounters {
    /// Elapsed core clock cycles.
    pub core_cycles: u64,
    /// Number of µops executed on each port (indexed by port number).
    pub uops_port: [u64; MAX_PORTS as usize],
    /// Total number of µops executed on any port.
    pub uops_total: u64,
    /// Number of instructions retired (including µop-less instructions such
    /// as NOPs and eliminated moves).
    pub instructions_retired: u64,
}

impl PerfCounters {
    /// An all-zero counter snapshot.
    #[must_use]
    pub fn zero() -> PerfCounters {
        PerfCounters::default()
    }

    /// The number of µops executed on the given port.
    #[must_use]
    pub fn port(&self, port: u8) -> u64 {
        self.uops_port.get(port as usize).copied().unwrap_or(0)
    }

    /// The sum of µops over a set of ports.
    #[must_use]
    pub fn uops_on_ports(&self, ports: uops_uarch::PortSet) -> u64 {
        ports.iter().map(|p| self.port(p)).sum()
    }

    /// Scales all counters by `1/divisor` (as floating-point averages), used
    /// when a measurement covers several copies of a code sequence.
    #[must_use]
    pub fn per_iteration(&self, divisor: f64) -> CounterAverages {
        assert!(divisor > 0.0, "divisor must be positive");
        CounterAverages {
            core_cycles: self.core_cycles as f64 / divisor,
            uops_port: self.uops_port.map(|v| v as f64 / divisor),
            uops_total: self.uops_total as f64 / divisor,
        }
    }
}

impl Sub for PerfCounters {
    type Output = PerfCounters;

    /// Element-wise saturating difference (end − start).
    fn sub(self, rhs: PerfCounters) -> PerfCounters {
        let mut uops_port = [0u64; MAX_PORTS as usize];
        for (i, slot) in uops_port.iter_mut().enumerate() {
            *slot = self.uops_port[i].saturating_sub(rhs.uops_port[i]);
        }
        PerfCounters {
            core_cycles: self.core_cycles.saturating_sub(rhs.core_cycles),
            uops_port,
            uops_total: self.uops_total.saturating_sub(rhs.uops_total),
            instructions_retired: self
                .instructions_retired
                .saturating_sub(rhs.instructions_retired),
        }
    }
}

impl fmt::Display for PerfCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles, {} µops [", self.core_cycles, self.uops_total)?;
        let mut first = true;
        for (p, &count) in self.uops_port.iter().enumerate() {
            if count > 0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "p{p}: {count}")?;
                first = false;
            }
        }
        write!(f, "]")
    }
}

/// Per-iteration averages of the performance counters (fractional values).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CounterAverages {
    /// Average core cycles per iteration.
    pub core_cycles: f64,
    /// Average µops per port per iteration.
    pub uops_port: [f64; MAX_PORTS as usize],
    /// Average total µops per iteration.
    pub uops_total: f64,
}

impl CounterAverages {
    /// Average µops on the given port.
    #[must_use]
    pub fn port(&self, port: u8) -> f64 {
        self.uops_port.get(port as usize).copied().unwrap_or(0.0)
    }

    /// Sum of the average µops over a set of ports.
    #[must_use]
    pub fn uops_on_ports(&self, ports: uops_uarch::PortSet) -> f64 {
        ports.iter().map(|p| self.port(p)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uops_uarch::PortSet;

    #[test]
    fn difference_is_elementwise() {
        let mut end = PerfCounters::zero();
        end.core_cycles = 100;
        end.uops_port[0] = 10;
        end.uops_port[5] = 4;
        end.uops_total = 14;
        end.instructions_retired = 12;
        let mut start = PerfCounters::zero();
        start.core_cycles = 40;
        start.uops_port[0] = 3;
        start.uops_total = 3;
        start.instructions_retired = 2;
        let d = end - start;
        assert_eq!(d.core_cycles, 60);
        assert_eq!(d.port(0), 7);
        assert_eq!(d.port(5), 4);
        assert_eq!(d.uops_total, 11);
        assert_eq!(d.instructions_retired, 10);
    }

    #[test]
    fn per_iteration_scaling() {
        let mut c = PerfCounters::zero();
        c.core_cycles = 200;
        c.uops_port[1] = 100;
        c.uops_total = 100;
        let avg = c.per_iteration(100.0);
        assert!((avg.core_cycles - 2.0).abs() < 1e-9);
        assert!((avg.port(1) - 1.0).abs() < 1e-9);
        assert!((avg.uops_total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn port_set_summation() {
        let mut c = PerfCounters::zero();
        c.uops_port[0] = 2;
        c.uops_port[1] = 3;
        c.uops_port[5] = 5;
        assert_eq!(c.uops_on_ports(PortSet::of(&[0, 1, 5])), 10);
        assert_eq!(c.uops_on_ports(PortSet::of(&[2, 3])), 0);
    }

    #[test]
    #[should_panic(expected = "divisor must be positive")]
    fn zero_divisor_panics() {
        let _ = PerfCounters::zero().per_iteration(0.0);
    }

    #[test]
    fn display_lists_active_ports() {
        let mut c = PerfCounters::zero();
        c.core_cycles = 7;
        c.uops_port[2] = 1;
        c.uops_total = 1;
        let s = c.to_string();
        assert!(s.contains("7 cycles"));
        assert!(s.contains("p2: 1"));
    }
}
