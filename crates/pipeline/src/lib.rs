//! # uops-pipeline
//!
//! A cycle-level out-of-order pipeline simulator of Intel Core
//! microarchitectures (Nehalem through Coffee Lake), standing in for the real
//! hardware the paper measures.
//!
//! The simulator consumes [`uops_asm::CodeSequence`]s, decodes each
//! instruction into µops using the hidden ground truth of [`uops_uarch`], and
//! models renaming (move elimination, zero idioms), dynamic scheduling onto
//! execution ports, functional-unit latencies, a non-pipelined divider,
//! loads/stores with store-to-load forwarding, bypass delays, and
//! partial-register stalls. Its only observable output is a
//! [`PerfCounters`] snapshot — elapsed core cycles and µops per port — which
//! is exactly the interface the paper's algorithms use on real hardware.
//!
//! ## Example
//!
//! ```rust
//! use uops_pipeline::Pipeline;
//! use uops_uarch::MicroArch;
//! use uops_asm::CodeSequence;
//!
//! let sim = Pipeline::new(MicroArch::Skylake);
//! let counters = sim.execute(&CodeSequence::new());
//! assert!(counters.core_cycles > 0); // measurement overhead only
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod counters;
pub mod sim;

pub use counters::{CounterAverages, PerfCounters};
pub use sim::{Pipeline, SimOptions};
