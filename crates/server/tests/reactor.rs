//! Reactor-transport integration tests (Linux only): byte-parity with
//! the thread-per-connection transport, slow-loris (byte-at-a-time)
//! delivery through the resumable parser, pipelining across shards, and
//! idle-timeout eviction by the timer wheel.
#![cfg(target_os = "linux")]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use uops_db::{Segment, Snapshot, VariantRecord};
use uops_serve::{QueryService, Server, ServerOptions};

fn service() -> Arc<QueryService> {
    let mut s = Snapshot::new("reactor test");
    for (m, uarch, mask, tp) in [
        ("ADD", "Skylake", 0b0110_0011u16, 0.25),
        ("ADC", "Skylake", 0b0100_0001, 0.5),
        ("ADD", "Haswell", 0b0110_0011, 0.25),
    ] {
        s.records.push(VariantRecord {
            mnemonic: m.into(),
            variant: "R64, R64".into(),
            extension: "BASE".into(),
            uarch: uarch.into(),
            uop_count: 1,
            ports: vec![(mask, 1)],
            tp_measured: tp,
            ..Default::default()
        });
    }
    let segment = Arc::new(Segment::from_bytes(Segment::encode(&s)).expect("segment"));
    Arc::new(QueryService::from_segment(segment, 1 << 20))
}

/// Reads one Content-Length-framed response (headers + body). Pass
/// `expect_body = false` for `HEAD` responses, which advertise a length
/// but carry no bytes.
fn read_response_framed(stream: &mut TcpStream, expect_body: bool) -> Vec<u8> {
    let mut out = Vec::new();
    let mut byte = [0u8; 1];
    while !out.ends_with(b"\r\n\r\n") {
        assert_eq!(stream.read(&mut byte).expect("read header"), 1, "unexpected EOF");
        out.push(byte[0]);
    }
    let text = String::from_utf8_lossy(&out).to_string();
    let body_len: usize = if expect_body {
        text.lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .map_or(0, |v| v.trim().parse().expect("length"))
    } else {
        0
    };
    let at = out.len();
    out.resize(at + body_len, 0);
    stream.read_exact(&mut out[at..]).expect("read body");
    out
}

/// [`read_response_framed`] for responses that carry their advertised
/// body.
fn read_response(stream: &mut TcpStream) -> Vec<u8> {
    read_response_framed(stream, true)
}

#[test]
fn reactor_responses_match_the_thread_transport_byte_for_byte() {
    let service = service();
    let pool = Server::bind("127.0.0.1:0", Arc::clone(&service), 1).expect("bind pool").spawn();
    let reactor = Server::bind_reactor("127.0.0.1:0", service, 2, ServerOptions::default())
        .expect("bind reactor")
        .spawn();

    let requests: &[(&[u8], bool)] = &[
        (b"GET /v1/query?uarch=Skylake HTTP/1.1\r\nHost: t\r\n\r\n", true),
        (b"HEAD /v1/query?uarch=Skylake HTTP/1.1\r\nHost: t\r\n\r\n", false),
        (b"GET /v1/record/ADD HTTP/1.1\r\nHost: t\r\n\r\n", true),
        (b"GET /v1/diff?base=Haswell&other=Skylake HTTP/1.1\r\nHost: t\r\n\r\n", true),
        (b"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n", true),
        (b"GET /v1/query?bogus=1 HTTP/1.1\r\nHost: t\r\n\r\n", true),
    ];
    let mut via_pool = TcpStream::connect(pool.local_addr()).expect("connect pool");
    let mut via_reactor = TcpStream::connect(reactor.local_addr()).expect("connect reactor");
    for (request, has_body) in requests {
        via_pool.write_all(request).expect("send pool");
        via_reactor.write_all(request).expect("send reactor");
        let expected = read_response_framed(&mut via_pool, *has_body);
        let got = read_response_framed(&mut via_reactor, *has_body);
        assert_eq!(
            String::from_utf8_lossy(&got),
            String::from_utf8_lossy(&expected),
            "transports disagree on {}",
            String::from_utf8_lossy(request)
        );
    }
    drop((via_pool, via_reactor));
    pool.shutdown();
    reactor.shutdown();
}

#[test]
fn slow_loris_bytes_and_pipelining_parse_identically() {
    let service = service();
    let server = Server::bind_reactor("127.0.0.1:0", service, 1, ServerOptions::default())
        .expect("bind reactor");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    // Baseline: one request delivered whole.
    let request: &[u8] = b"GET /v1/query?uarch=Skylake HTTP/1.1\r\nHost: t\r\n\r\n";
    stream.write_all(request).expect("send");
    let expected = read_response(&mut stream);

    // Three pipelined requests, delivered one byte per write: the parser
    // must resume mid-head across hundreds of EAGAIN-separated reads, and
    // the completion loop must drain the pipelined follow-ups.
    let pipelined: Vec<u8> = request.iter().chain(request).chain(request).copied().collect();
    for &byte in &pipelined {
        stream.write_all(&[byte]).expect("send byte");
    }
    for round in 0..3 {
        let got = read_response(&mut stream);
        assert_eq!(
            String::from_utf8_lossy(&got),
            String::from_utf8_lossy(&expected),
            "byte-at-a-time response {round} differs from whole-request delivery"
        );
    }
    drop(stream);
    handle.shutdown();
}

/// A service whose query response is far larger than the kernel can
/// buffer on a loopback socket pair (send buffer + receive window), so a
/// peer that never reads leaves the reactor parked mid-response.
fn big_service() -> Arc<QueryService> {
    let mut s = Snapshot::new("reactor write-stall test");
    for i in 0..60_000u32 {
        s.records.push(VariantRecord {
            mnemonic: format!("OP{i:05}"),
            variant: format!("R64, R64, PAD_{i:064}"),
            extension: "BASE".into(),
            uarch: "Skylake".into(),
            uop_count: 1,
            ports: vec![(0b0110_0011, 1)],
            tp_measured: 0.25,
            ..Default::default()
        });
    }
    let segment = Arc::new(Segment::from_bytes(Segment::encode(&s)).expect("segment"));
    let service = Arc::new(QueryService::from_segment(segment, 1 << 20));
    // Whole-body responses only: this test stalls the single
    // `Content-Length` write path (the chunked-export stall has its own
    // coverage), so streaming is disabled.
    service.set_stream_threshold(0);
    service
}

#[test]
fn a_peer_that_stops_reading_is_evicted_at_the_write_stall_timeout() {
    let options = ServerOptions {
        // Keep-alive eviction is pushed far out so the only sub-second
        // eviction path is the write-stall one.
        keep_alive_timeout: Duration::from_secs(30),
        write_stall_timeout: Duration::from_millis(300),
        ..Default::default()
    };
    let server = Server::bind_reactor("127.0.0.1:0", big_service(), 1, options).expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    // Request the multi-megabyte response, then stop reading entirely:
    // the kernel buffers fill, the reactor's write returns `Pending` with
    // no further progress, and the stall timer must evict the connection.
    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled.write_all(b"GET /v1/query?uarch=Skylake HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
    std::thread::sleep(Duration::from_millis(1500));

    // Draining now yields whatever the kernel had buffered, then EOF (or
    // a reset) — never the complete response.
    let mut tail = Vec::new();
    stalled.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let drained = match stalled.read_to_end(&mut tail) {
        Ok(_) => tail.len(),
        Err(_) => tail.len(), // reset mid-drain still proves eviction
    };
    let text = String::from_utf8_lossy(&tail[..tail.len().min(4096)]).to_string();
    let advertised: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .expect("response head was sent before the stall");
    assert!(
        advertised > 4 << 20,
        "test premise: response ({advertised} B) must exceed kernel buffering"
    );
    assert!(
        drained < advertised,
        "the stalled connection must have been cut off mid-response \
         ({drained} of {advertised} body bytes arrived)"
    );

    // The eviction is attributed to the slow-reader counter and the
    // server keeps serving.
    let mut fresh = TcpStream::connect(addr).expect("connect fresh");
    fresh.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
    let metrics = String::from_utf8_lossy(&read_response(&mut fresh)).to_string();
    let evictions: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("uops_http_slow_reader_evictions_total "))
        .and_then(|v| v.trim().parse().ok())
        .expect("slow-reader counter");
    assert_eq!(evictions, 1, "exactly one write-stall eviction:\n{metrics}");

    drop((stalled, fresh));
    handle.shutdown();
}

#[test]
fn stalled_half_request_is_evicted_at_the_idle_timeout() {
    let service = service();
    let options =
        ServerOptions { keep_alive_timeout: Duration::from_millis(300), ..Default::default() };
    let server = Server::bind_reactor("127.0.0.1:0", service, 1, options).expect("bind reactor");
    let addr = server.local_addr();
    let handle = server.spawn();

    // A healthy connection keeps working while the stalled one is evicted.
    let mut healthy = TcpStream::connect(addr).expect("connect healthy");
    let mut stalled = TcpStream::connect(addr).expect("connect stalled");
    stalled.write_all(b"GET /v1/query?uarch=Skylake HTT").expect("send half");

    // Well past the 300ms timeout (+ coarse-tick slack): the reactor must
    // have dropped the stalled connection without writing anything.
    std::thread::sleep(Duration::from_millis(1200));
    let mut tail = Vec::new();
    stalled.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    stalled.read_to_end(&mut tail).expect("EOF read");
    assert!(
        tail.is_empty(),
        "a stalled half-request gets eviction (clean close), not a response: {:?}",
        String::from_utf8_lossy(&tail)
    );

    // Eviction shows in the connection gauges, and the healthy (also idle
    // past the timeout) connection was evicted too — so a fresh one still
    // gets served.
    let mut err = [0u8; 1];
    healthy.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap_or(());
    healthy.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    assert_eq!(healthy.read(&mut err).expect("evicted idle conn reads EOF"), 0);

    let mut fresh = TcpStream::connect(addr).expect("connect fresh");
    fresh.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
    let metrics = String::from_utf8_lossy(&read_response(&mut fresh)).to_string();
    let closed: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("uops_http_connections_closed_total "))
        .and_then(|v| v.trim().parse().ok())
        .expect("closed counter");
    assert!(closed >= 2, "both idle connections were evicted, saw {closed}:\n{metrics}");

    drop((fresh, healthy, stalled));
    handle.shutdown();
}

/// The reactor surfaces per-shard connection balance in `/v1/stats`: a
/// `shards` object with the live-connection and accepted vectors plus a
/// min/max/mean/spread skew summary, so rebalance drift is observable
/// without scraping `/metrics`.
#[test]
fn stats_reports_per_shard_connection_skew() {
    const SHARDS: usize = 2;
    let server = Server::bind_reactor("127.0.0.1:0", service(), SHARDS, ServerOptions::default())
        .expect("bind reactor");
    let addr = server.local_addr();
    let handle = server.spawn();

    // Park a few keep-alive connections so the gauges have something to
    // show, then read stats over one of them.
    let mut parked: Vec<TcpStream> = (0..3)
        .map(|_| {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .write_all(b"GET /v1/query?uarch=Skylake HTTP/1.1\r\nHost: t\r\n\r\n")
                .expect("send");
            let response = read_response(&mut stream);
            assert!(response.starts_with(b"HTTP/1.1 200"));
            stream
        })
        .collect();
    let stats = {
        let stream = parked.last_mut().expect("parked");
        stream.write_all(b"GET /v1/stats HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
        String::from_utf8_lossy(&read_response(stream)).to_string()
    };

    assert!(stats.contains(&format!("\"shards\": {{\"count\": {SHARDS}, ")), "{stats}");
    for field in ["\"connections\": [", "\"accepted\": [", "\"skew\": {\"min\": "] {
        assert!(stats.contains(field), "missing {field} in {stats}");
    }
    // Three live connections across two shards: the summed vector and the
    // skew bounds must agree with that.
    let section = stats.split("\"shards\": ").nth(1).expect("shards section");
    let connections: Vec<i64> = section
        .split("\"connections\": [")
        .nth(1)
        .and_then(|rest| rest.split(']').next())
        .expect("connections vector")
        .split(", ")
        .map(|n| n.parse().expect("gauge value"))
        .collect();
    assert_eq!(connections.len(), SHARDS);
    assert_eq!(connections.iter().sum::<i64>(), 3, "{stats}");
    let min: i64 = section
        .split("\"min\": ")
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit() && c != '-').next())
        .and_then(|n| n.parse().ok())
        .expect("skew min");
    let max: i64 = section
        .split("\"max\": ")
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit() && c != '-').next())
        .and_then(|n| n.parse().ok())
        .expect("skew max");
    assert_eq!(min, *connections.iter().min().expect("min"));
    assert_eq!(max, *connections.iter().max().expect("max"));

    drop(parked);
    handle.shutdown();
}
