//! Batch-protocol correctness: for arbitrary databases, plan sets, and
//! encodings, a `/v1/batch` request must frame exactly the bytes that N
//! individual queries would return — regardless of the request encoding
//! (newline text vs TLV), the cache temperature of each plan, or errors
//! mid-batch. Chunked exports must likewise reassemble to the exact
//! whole-body encoding.

use std::sync::Arc;

use proptest::prelude::*;

use uops_db::{
    BinaryEncoder, JsonEncoder, Query, QueryExec, QueryPlan, ResultEncoder, Segment, Snapshot,
    SortKey, VariantRecord, XmlEncoder,
};
use uops_serve::service::BatchScratch;
use uops_serve::{encode_batch_request, http, Encoding, QueryService};

const MNEMONICS: [&str; 6] = ["ADD", "ADC", "SHLD", "VPADDD", "DIV", "MULPS"];
const VARIANTS: [&str; 3] = ["R64, R64", "XMM, XMM", "R64, M64"];
const EXTENSIONS: [&str; 3] = ["BASE", "AVX2", "AES"];
const UARCHES: [&str; 3] = ["Nehalem", "Haswell", "Skylake"];

/// Malformed plan spellings the parser rejects, mixed into batches to
/// exercise the per-frame error path.
const BAD_PLANS: [&str; 3] = ["bogus=1", "sort=size", "limit=banana"];

fn arb_record() -> impl Strategy<Value = VariantRecord> {
    ((0usize..6, 0usize..3, 0usize..3, 0usize..3), (1u32..5, 1u16..0x100, 0.0f64..8.0)).prop_map(
        |((m, v, e, u), (uops, mask, tp))| VariantRecord {
            mnemonic: MNEMONICS[m].to_string(),
            variant: VARIANTS[v].to_string(),
            extension: EXTENSIONS[e].to_string(),
            uarch: UARCHES[u].to_string(),
            uop_count: uops,
            ports: vec![(mask, uops)],
            tp_measured: tp,
            ..Default::default()
        },
    )
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    prop::collection::vec(arb_record(), 1..24).prop_map(|records| {
        let mut snapshot = Snapshot::new("batch parity proptest");
        snapshot.records = records;
        snapshot
    })
}

/// A small pool of heterogeneous plans, including the match-all plan
/// (empty query string — only expressible in the TLV request encoding)
/// and malformed spellings that must 400 frame-locally.
fn arb_plan_text() -> impl Strategy<Value = String> {
    (0usize..10, 0usize..3, 0usize..6, 0u8..10).prop_map(|(shape, u, m, port)| {
        let uarch = UARCHES[u];
        let mnemonic = MNEMONICS[m];
        match shape {
            0 => Query::new().into_plan().to_query_string(),
            1 => Query::new().uarch(uarch).into_plan().to_query_string(),
            2 => Query::new().uarch(uarch).uses_port(port).into_plan().to_query_string(),
            3 => Query::new()
                .mnemonic(mnemonic)
                .sort_by(SortKey::Latency)
                .into_plan()
                .to_query_string(),
            4 => Query::new().mnemonic_prefix("V").min_uops(2).into_plan().to_query_string(),
            5 => Query::new()
                .uarch(uarch)
                .sort_by_desc(SortKey::Throughput)
                .limit(3)
                .into_plan()
                .to_query_string(),
            6 => Query::new().extension("AVX2").offset(1).limit(2).into_plan().to_query_string(),
            7 => Query::new().uarch("Ice Lake").into_plan().to_query_string(), // unmatchable
            _ => BAD_PLANS[(shape + m) % BAD_PLANS.len()].to_string(),
        }
    })
}

/// Runs one batch through the service and returns its decoded frames,
/// round-tripping through the real wire framing (`write_batch` →
/// `decode_batch_response`) so the framing itself is under test too.
fn batch_frames(
    service: &QueryService,
    body: &[u8],
    encoding: Encoding,
) -> Result<Vec<(u16, Vec<u8>)>, u16> {
    let mut out = http::BatchBody::default();
    let mut scratch = BatchScratch::default();
    service.batch(body, encoding, &mut out, &mut scratch).map_err(|response| response.status)?;
    let mut wire = Vec::new();
    let mut cursor = 0;
    let progress = http::write_batch(&mut wire, b"", &out, &mut cursor).expect("Vec write");
    assert!(matches!(progress, http::WriteProgress::Complete), "Vec writes never block");
    assert_eq!(wire.len(), out.wire_len(), "wire_len must predict the emitted bytes");
    Ok(uops_serve::decode_batch_response(&wire).expect("self-produced framing decodes"))
}

fn encode_expected(segment: &Segment, plan: &QueryPlan, encoding: Encoding) -> Vec<u8> {
    let db = segment.db();
    let result = QueryExec::new().run(plan, &db);
    match encoding {
        Encoding::Json => JsonEncoder.encode_result(&result),
        Encoding::Binary => BinaryEncoder.encode_result(&result),
        Encoding::Xml => XmlEncoder.encode_result(&result),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The core parity property: every batch frame is byte-identical to
    /// the single-query response for the same plan — across arbitrary
    /// snapshots, plan sets (valid, unmatchable, and malformed), all
    /// three response encodings, both request encodings, and any
    /// hit/miss mix (`warm_mask` pre-caches a subset as singles).
    #[test]
    fn batch_frames_match_singles_byte_for_byte(
        snapshot in arb_snapshot(),
        plans in prop::collection::vec(arb_plan_text(), 1..8),
        warm_mask in 0usize..256,
    ) {
        let segment = Arc::new(
            Segment::from_bytes(Segment::encode(&snapshot)).expect("valid segment"),
        );
        let service = QueryService::from_segment(Arc::clone(&segment), 1 << 20);

        for &encoding in &[Encoding::Json, Encoding::Binary, Encoding::Xml] {
            // Pre-warm an arbitrary subset through the single-query path
            // so the batch sees an interleaved hit/miss mix.
            for (i, plan) in plans.iter().enumerate() {
                if warm_mask & (1 << (i % 8)) != 0 {
                    let _ = service.query_wire(plan, encoding);
                }
            }
            let singles: Vec<_> =
                plans.iter().map(|plan| service.query_wire(plan, encoding)).collect();

            // TLV expresses every plan, including the empty (match-all)
            // spelling that newline framing cannot carry.
            let plan_refs: Vec<&str> = plans.iter().map(String::as_str).collect();
            let tlv = encode_batch_request(&plan_refs);
            let frames = batch_frames(&service, &tlv, encoding).expect("non-empty batch");
            prop_assert_eq!(frames.len(), plans.len());
            for ((status, body), single) in frames.iter().zip(&singles) {
                prop_assert_eq!(*status, single.status);
                prop_assert_eq!(
                    &body[..], &single.body[..],
                    "batch frame must equal the single-query bytes",
                );
            }

            // When every plan survives newline framing, the text request
            // encoding must produce the identical frames.
            if plans.iter().all(|p| !p.is_empty()) {
                let text = plans.join("\n");
                let text_frames =
                    batch_frames(&service, text.as_bytes(), encoding).expect("non-empty batch");
                prop_assert_eq!(&text_frames, &frames, "text and TLV requests must agree");
            }

            // Batch results land in the shared cache: singles issued
            // *after* the batch return the very same bytes.
            for (plan, (status, body)) in plans.iter().zip(&frames) {
                let after = service.query_wire(plan, encoding);
                prop_assert_eq!(after.status, *status);
                prop_assert_eq!(&after.body[..], &body[..]);
            }
        }

        // Ground-truth spot check: every 200 frame matches uncached
        // in-process execution (not just the service's own single path).
        for plan in &plans {
            if let Ok(parsed) = QueryPlan::parse(plan) {
                let response = service.query_wire(plan, Encoding::Json);
                prop_assert_eq!(response.status, 200);
                prop_assert_eq!(
                    &response.body[..],
                    &encode_expected(&segment, &parsed, Encoding::Json)[..],
                );
            }
        }
    }

    /// Streamed (chunked) exports must reassemble to exactly the bytes
    /// the whole-body encoder would have produced, for any snapshot and
    /// streamable encoding.
    #[test]
    fn streamed_exports_reassemble_to_whole_body_bytes(
        snapshot in arb_snapshot(),
        shape in 0usize..3,
    ) {
        let segment = Arc::new(
            Segment::from_bytes(Segment::encode(&snapshot)).expect("valid segment"),
        );
        let plan = match shape {
            0 => Query::new().into_plan(),
            1 => Query::new().uarch("Skylake").into_plan(),
            _ => Query::new().sort_by(SortKey::Latency).into_plan(),
        };
        for &encoding in &[Encoding::Json, Encoding::Binary] {
            let expected = encode_expected(&segment, &plan, encoding);
            // A cold service per encoding: cached hits never stream, and
            // this property is about the streaming path.
            let service = QueryService::from_segment(Arc::clone(&segment), 1 << 20);
            service.set_stream_threshold(1);
            match service.query_streaming(&plan, encoding) {
                uops_serve::service::QueryReply::Full(response) => {
                    // At or below the threshold the reply stays whole-body
                    // and already-exact.
                    prop_assert_eq!(response.status, 200);
                    prop_assert_eq!(&response.body[..], &expected[..]);
                }
                uops_serve::service::QueryReply::Stream(mut stream) => {
                    let mut reassembled = Vec::new();
                    let mut chunk = Vec::new();
                    while stream.next_chunk(&mut chunk) {
                        prop_assert!(!chunk.is_empty(), "streams never emit empty chunks");
                        reassembled.extend_from_slice(&chunk);
                    }
                    prop_assert_eq!(
                        &reassembled[..], &expected[..],
                        "chunk concatenation must equal the whole-body encoding",
                    );
                }
            }
        }
    }
}

#[test]
fn empty_and_malformed_batches_fail_the_envelope() {
    let mut snapshot = Snapshot::new("batch envelope errors");
    snapshot.records.push(VariantRecord {
        mnemonic: "ADD".into(),
        variant: "R64, R64".into(),
        extension: "BASE".into(),
        uarch: "Skylake".into(),
        uop_count: 1,
        ports: vec![(0b0110_0011, 1)],
        tp_measured: 0.25,
        ..Default::default()
    });
    let segment = Arc::new(Segment::from_bytes(Segment::encode(&snapshot)).expect("valid segment"));
    let service = QueryService::from_segment(segment, 1 << 20);
    assert_eq!(batch_frames(&service, b"", Encoding::Json), Err(400), "empty batch");
    assert_eq!(
        batch_frames(&service, b"UQB\x01\xff", Encoding::Json),
        Err(400),
        "truncated TLV frame"
    );
    assert_eq!(
        batch_frames(&service, &[0xfe, 0xed, 0xfa, 0xce], Encoding::Json),
        Err(400),
        "non-UTF-8 non-TLV body"
    );
}
