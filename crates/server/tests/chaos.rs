//! Chaos suite: drives both transports through deterministic, scripted
//! syscall faults (`--features fault-injection`) — short writes
//! mid-vectored-response, `ECONNRESET` while an error response drains,
//! `EMFILE` storms on accept, and a peer that stops reading — and
//! asserts the robustness layer's contracts: byte-parity of successful
//! responses, clean eviction of failed connections, a server that keeps
//! serving afterwards, and monotone `accept_errors` / `accept_rescues` /
//! `slow_reader_evictions` counters.
//!
//! The fault script is process-global, so every test serializes on one
//! mutex and runs its server with a single worker (pool) or shard
//! (reactor) and a single live client connection at a time — fault
//! consumption is then fully ordered, with no sleeps as synchronization.

#![cfg(feature = "fault-injection")]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use uops_db::{GenerationStore, Segment, Snapshot, VariantRecord};
use uops_serve::{fault, QueryService, Server, ServerHandle, ServerOptions};

/// Serializes tests sharing the global fault script.
static SCRIPT_LOCK: Mutex<()> = Mutex::new(());

fn snapshot() -> Snapshot {
    let mut s = Snapshot::new("chaos test");
    for (m, uarch, mask, tp) in [
        ("ADD", "Skylake", 0b0110_0011u16, 0.25),
        ("ADC", "Skylake", 0b0100_0001, 0.5),
        ("ADD", "Haswell", 0b0110_0011, 0.25),
    ] {
        s.records.push(VariantRecord {
            mnemonic: m.into(),
            variant: "R64, R64".into(),
            extension: "BASE".into(),
            uarch: uarch.into(),
            uop_count: 1,
            ports: vec![(mask, 1)],
            tp_measured: tp,
            ..Default::default()
        });
    }
    s
}

fn service() -> Arc<QueryService> {
    let segment = Arc::new(Segment::from_bytes(Segment::encode(&snapshot())).expect("segment"));
    Arc::new(QueryService::from_segment(segment, 1 << 20))
}

fn spawn_pool() -> (ServerHandle, SocketAddr) {
    let server = Server::bind_with("127.0.0.1:0", service(), 1, ServerOptions::default())
        .expect("bind pool");
    let addr = server.local_addr();
    (server.spawn(), addr)
}

#[cfg(target_os = "linux")]
fn spawn_reactor() -> (ServerHandle, SocketAddr) {
    let server = Server::bind_reactor("127.0.0.1:0", service(), 1, ServerOptions::default())
        .expect("bind reactor");
    let addr = server.local_addr();
    (server.spawn(), addr)
}

const GET: &[u8] = b"GET /v1/query?uarch=Skylake&port=0 HTTP/1.1\r\nHost: c\r\n\r\n";

/// Sends `request` on a fresh connection and reads until the peer closes
/// or the full `Content-Length` body has arrived; returns the raw bytes.
fn exchange_once(addr: SocketAddr, request: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request).expect("send");
    let mut out = Vec::new();
    read_one_response(&mut stream, &mut out);
    out
}

/// Reads one full response (headers + advertised body); panics on EOF
/// before completion.
fn read_one_response(stream: &mut TcpStream, out: &mut Vec<u8>) {
    let mut byte = [0u8; 1];
    while !out.ends_with(b"\r\n\r\n") {
        assert_eq!(stream.read(&mut byte).expect("read header"), 1, "EOF inside header");
        out.push(byte[0]);
    }
    let text = String::from_utf8_lossy(out).to_string();
    let body_len: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .map_or(0, |v| v.trim().parse().expect("length"));
    let at = out.len();
    out.resize(at + body_len, 0);
    stream.read_exact(&mut out[at..]).expect("read body");
}

/// Reads until EOF/reset, returning whatever arrived (an aborted
/// connection's last gasp).
fn read_until_closed(stream: &mut TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return out,
            Ok(n) => out.extend_from_slice(&buf[..n]),
        }
    }
}

fn lock_script() -> std::sync::MutexGuard<'static, ()> {
    let guard = SCRIPT_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    fault::reset();
    guard
}

/// Short writes chop the vectored response into arbitrary fragments; the
/// resumable-write cursor must reassemble it byte-for-byte.
fn short_write_byte_parity(addr: SocketAddr) {
    let baseline = exchange_once(addr, GET);
    assert!(baseline.starts_with(b"HTTP/1.1 200"), "baseline must succeed");

    // Fragment the next response: 3 bytes, then 1, then 7, then whole.
    fault::inject_write(fault::WriteFault::Short(3));
    fault::inject_write(fault::WriteFault::Short(1));
    fault::inject_write(fault::WriteFault::Short(7));
    let fragmented = exchange_once(addr, GET);
    assert_eq!(fragmented, baseline, "short writes must not corrupt the response");
}

#[test]
fn short_writes_keep_byte_parity_on_the_pool_transport() {
    let _guard = lock_script();
    let (handle, addr) = spawn_pool();
    short_write_byte_parity(addr);
    fault::reset();
    handle.shutdown();
}

#[cfg(target_os = "linux")]
#[test]
fn short_writes_keep_byte_parity_on_the_reactor_transport() {
    let _guard = lock_script();
    let (handle, addr) = spawn_reactor();
    short_write_byte_parity(addr);
    fault::reset();
    handle.shutdown();
}

/// A peer that resets the connection while a parse error's response is
/// draining: the connection must be evicted cleanly and the server must
/// keep serving.
fn reset_during_draining(addr: SocketAddr) {
    let mut bad = TcpStream::connect(addr).expect("connect");
    // The next write (the 400 response for this malformed request) dies
    // with ECONNRESET.
    fault::inject_write(fault::WriteFault::Reset);
    bad.write_all(b"BOGUS REQUEST\r\n\r\n").expect("send garbage");
    let leftovers = read_until_closed(&mut bad);
    assert!(
        !leftovers.starts_with(b"HTTP/1.1 400"),
        "the injected reset must have killed the error response"
    );
    drop(bad);

    // The failed connection is gone; a fresh one serves normally.
    let after = exchange_once(addr, GET);
    assert!(after.starts_with(b"HTTP/1.1 200"), "server must survive the reset");
}

#[test]
fn connection_reset_while_draining_is_clean_on_the_pool_transport() {
    let _guard = lock_script();
    let (handle, addr) = spawn_pool();
    reset_during_draining(addr);
    fault::reset();
    handle.shutdown();
}

#[cfg(target_os = "linux")]
#[test]
fn connection_reset_while_draining_is_clean_on_the_reactor_transport() {
    let _guard = lock_script();
    let (handle, addr) = spawn_reactor();
    reset_during_draining(addr);
    fault::reset();
    handle.shutdown();
}

/// Attempts to read one full response; returns `None` if the connection
/// dies (EOF or reset) before a complete response arrives — the
/// signature of a rescued-and-reset connection.
fn try_read_response(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    let mut byte = [0u8; 1];
    while !out.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(1) => out.push(byte[0]),
            Ok(_) | Err(_) => return None,
        }
    }
    let text = String::from_utf8_lossy(&out).to_string();
    let body_len: usize = match text.lines().find_map(|l| l.strip_prefix("Content-Length: ")) {
        Some(v) => v.trim().parse().ok()?,
        None => 0,
    };
    let at = out.len();
    out.resize(at + body_len, 0);
    stream.read_exact(&mut out[at..]).ok()?;
    Some(out)
}

/// One `EMFILE` storm cycle: inject the accept failure and verify that
/// exactly one connection lands in the rescue path — accepted on the
/// reserve fd and actively reset, so its client sees EOF, never a
/// response — while the cycle ends with a normally served request.
///
/// *Which* connection is the victim depends on where the accept loop is
/// when the fault is scripted. If it is already parked inside a real
/// blocking `accept` (the script was checked before parking), the first
/// connection is served and the loop's *next* pass consumes the fault,
/// blocking in the rescue accept until the second connection arrives. If
/// the loop had not yet reached the script check (or, on the reactor,
/// where the check always runs on epoll wake), the first connection is
/// rescued directly. The cycle handles both orderings, so no sleeps are
/// needed to pin the loop's position.
fn emfile_cycle(addr: SocketAddr) {
    fault::inject_accept_error(fault::EMFILE);
    let mut first = TcpStream::connect(addr).expect("connect");
    first.write_all(GET).expect("send");
    let served_first = try_read_response(&mut first).is_some();
    drop(first);
    if served_first {
        // The fault is still queued: the accept loop consumes it on its
        // next pass and the rescue claims this second connection.
        let mut victim = TcpStream::connect(addr).expect("victim connect");
        victim.write_all(GET).ok();
        assert!(
            try_read_response(&mut victim).is_none(),
            "the rescued connection must not have been served"
        );
    }

    let after = exchange_once(addr, GET);
    assert!(after.starts_with(b"HTTP/1.1 200"), "server must survive the storm cycle");
}

#[test]
fn emfile_storms_are_rescued_on_the_pool_transport() {
    let _guard = lock_script();
    let server = Server::bind_with("127.0.0.1:0", service(), 1, ServerOptions::default())
        .expect("bind pool");
    let addr = server.local_addr();
    let metrics = server.metrics();
    let handle = server.spawn();
    let (errors_before, rescues_before) =
        (metrics.accept_errors.get(), metrics.accept_rescues.get());
    for _ in 0..3 {
        emfile_cycle(addr);
    }
    assert!(metrics.accept_errors.get() >= errors_before + 3, "accept_errors must be monotone");
    assert!(metrics.accept_rescues.get() >= rescues_before + 3, "every cycle must be rescued");
    fault::reset();
    handle.shutdown();
}

#[cfg(target_os = "linux")]
#[test]
fn emfile_storms_are_rescued_on_the_reactor_transport() {
    let _guard = lock_script();
    let server = Server::bind_reactor("127.0.0.1:0", service(), 1, ServerOptions::default())
        .expect("bind reactor");
    let addr = server.local_addr();
    let metrics = server.metrics();
    let handle = server.spawn();
    let (errors_before, rescues_before) =
        (metrics.accept_errors.get(), metrics.accept_rescues.get());
    for _ in 0..3 {
        emfile_cycle(addr);
    }
    assert!(metrics.accept_errors.get() >= errors_before + 3, "accept_errors must be monotone");
    assert!(metrics.accept_rescues.get() >= rescues_before + 3, "every cycle must be rescued");
    fault::reset();
    handle.shutdown();
}

/// A peer that stops reading entirely: on the blocking transport a
/// scripted `WouldBlock` stands in for the send timeout expiring with
/// zero bytes accepted, and the connection must be evicted immediately
/// with the `slow_reader_evictions` counter advanced. (The reactor
/// equivalent is timer-driven and lives in `tests/reactor.rs` — a
/// scripted `WouldBlock` would park its edge-triggered state machine
/// forever.)
#[test]
fn a_stalled_reader_is_evicted_on_the_pool_transport() {
    let _guard = lock_script();
    let server = Server::bind_with("127.0.0.1:0", service(), 1, ServerOptions::default())
        .expect("bind pool");
    let addr = server.local_addr();
    let metrics = server.metrics();
    let handle = server.spawn();

    // Warm exchange on a keep-alive connection.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(GET).expect("send");
    let mut warm = Vec::new();
    read_one_response(&mut stream, &mut warm);
    assert!(warm.starts_with(b"HTTP/1.1 200"));

    let evictions_before = metrics.slow_reader_evictions.get();
    // The next response write observes a full send-timeout window with
    // zero bytes accepted (scripted, so no actual waiting).
    fault::inject_write(fault::WriteFault::WouldBlock);
    stream.write_all(GET).expect("send to stalled server");
    let leftovers = read_until_closed(&mut stream);
    assert!(leftovers.is_empty(), "eviction must not leak a partial response");
    drop(stream);

    assert_eq!(
        metrics.slow_reader_evictions.get(),
        evictions_before + 1,
        "the stalled connection must be counted as a slow-reader eviction"
    );

    // The server keeps serving.
    let after = exchange_once(addr, GET);
    assert!(after.starts_with(b"HTTP/1.1 200"));
    fault::reset();
    handle.shutdown();
}

// ---- live data plane: filesystem faults at the swap boundary ----

static DIRS: AtomicU32 = AtomicU32::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let n = DIRS.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("uops_chaos_{tag}_{}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Boots a pool server whose service is backed by a freshly bootstrapped
/// [`GenerationStore`] (generation 1) with ingest enabled.
fn spawn_pool_with_store(dir: &PathBuf) -> (ServerHandle, SocketAddr, Arc<GenerationStore>) {
    let store = Arc::new(
        GenerationStore::bootstrap(
            dir,
            Arc::new(Segment::from_bytes(Segment::encode(&snapshot())).expect("segment")),
            fault::store_io(),
        )
        .expect("bootstrap store"),
    );
    let service = service();
    let generation = store.current();
    assert!(service.swap_segment(Arc::clone(&generation.segment), generation.id));
    let options =
        ServerOptions { ingest_store: Some(Arc::clone(&store)), ..ServerOptions::default() };
    let server = Server::bind_with("127.0.0.1:0", service, 1, options).expect("bind pool");
    let addr = server.local_addr();
    (server.spawn(), addr, store)
}

/// A snapshot disjoint from [`snapshot`] so a successful ingest visibly
/// grows the served store.
fn extra_snapshot() -> Snapshot {
    let mut s = Snapshot::new("chaos ingest");
    s.records.push(VariantRecord {
        mnemonic: "XOR".into(),
        variant: "R64, R64".into(),
        extension: "BASE".into(),
        uarch: "Skylake".into(),
        uop_count: 1,
        ports: vec![(0b0110_0011, 1)],
        tp_measured: 0.25,
        ..Default::default()
    });
    s
}

/// POSTs `body` to `/v1/ingest` on a fresh connection.
fn post_ingest(addr: SocketAddr, body: &[u8]) -> Vec<u8> {
    let head =
        format!("POST /v1/ingest HTTP/1.1\r\nHost: c\r\nContent-Length: {}\r\n\r\n", body.len());
    let mut request = head.into_bytes();
    request.extend_from_slice(body);
    exchange_once(addr, &request)
}

/// An errno-scripted fault on each of the four publish mutations in turn:
/// every failed ingest must answer 503, leave the served bytes and the
/// live generation untouched, and leave the store retryable — the final
/// un-faulted ingest succeeds and swaps.
#[test]
fn fs_faults_at_every_publish_step_never_tear_the_served_generation() {
    let _guard = lock_script();
    let dir = scratch_dir("fs_steps");
    let (handle, addr, store) = spawn_pool_with_store(&dir);
    let baseline = exchange_once(addr, GET);
    assert!(baseline.starts_with(b"HTTP/1.1 200"), "baseline must succeed");
    let update = uops_db::codec::encode(&extra_snapshot());

    for (op, errno) in [
        (fault::FsOp::Write, fault::ENOSPC),
        (fault::FsOp::Fsync, fault::EIO),
        (fault::FsOp::Rename, fault::EIO),
        (fault::FsOp::DirSync, fault::EIO),
    ] {
        fault::inject_fs(op, fault::FsFault::Errno(errno));
        let rejected = post_ingest(addr, &update);
        assert!(
            rejected.starts_with(b"HTTP/1.1 503"),
            "faulted publish ({op:?}) must answer 503: {}",
            String::from_utf8_lossy(&rejected)
        );
        assert_eq!(store.current().id, 1, "a failed publish must not advance the generation");
        let after = exchange_once(addr, GET);
        assert_eq!(after, baseline, "a failed publish ({op:?}) must not change served bytes");
        fault::reset();
    }

    // No fault scripted: the same update now publishes and swaps.
    let accepted = post_ingest(addr, &update);
    assert!(
        accepted.starts_with(b"HTTP/1.1 200"),
        "retry after fault must succeed: {}",
        String::from_utf8_lossy(&accepted)
    );
    assert_eq!(store.current().id, 2);
    let stats = exchange_once(addr, b"GET /v1/stats HTTP/1.1\r\nHost: c\r\n\r\n");
    let stats = String::from_utf8_lossy(&stats).to_string();
    assert!(stats.contains("\"generation\": 2"), "{stats}");
    assert!(stats.contains("\"records\": 4"), "ingest must merge the new record: {stats}");
    fault::reset();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A fault between the image rename and the manifest rename leaves an
/// orphan image on disk; the server keeps serving the old generation and
/// the next boot quarantines the orphan.
#[test]
fn fs_fault_between_image_and_manifest_quarantines_on_reboot() {
    let _guard = lock_script();
    let dir = scratch_dir("fs_orphan");
    let (handle, addr, store) = spawn_pool_with_store(&dir);
    let update = uops_db::codec::encode(&extra_snapshot());

    // Publish order: image W,F,R,D then manifest W,F,R,D. Failing the
    // second *write* (the manifest temp) strands gen-2.seg as an orphan.
    fault::inject_fs(fault::FsOp::Write, fault::FsFault::Pass);
    fault::inject_fs(fault::FsOp::Write, fault::FsFault::Errno(fault::EIO));
    let rejected = post_ingest(addr, &update);
    assert!(rejected.starts_with(b"HTTP/1.1 503"), "{}", String::from_utf8_lossy(&rejected));
    assert_eq!(store.current().id, 1, "the torn publish must not swap");
    assert!(dir.join("gen-2.seg").exists(), "the orphan image must be on disk");
    fault::reset();
    handle.shutdown();

    // Reboot against the same directory: generation 1 recovers, the
    // orphan is renamed aside and counted.
    let recovered = GenerationStore::open(&dir).expect("open").expect("manifest exists");
    assert_eq!(recovered.store.current().id, 1);
    assert_eq!(recovered.quarantined, 1, "the orphan must be quarantined");
    assert!(!dir.join("gen-2.seg").exists());
    let _ = std::fs::remove_dir_all(&dir);
}
