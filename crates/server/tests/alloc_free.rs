//! The allocation-free-hot-path proof: a counting global allocator wraps
//! the system allocator, a real server is booted over a real socket, the
//! connection is warmed past its setup allocations, and then hundreds of
//! keep-alive requests — raw fast-lane hits, `HEAD`s, `If-None-Match`
//! revalidations, and all-hit `/v1/batch` POSTs — are driven through the
//! full transport + service + db stack while the allocation counter must
//! not move **at all**.
//!
//! Both sides of the socket live in this process, so the counter sees the
//! client too; the client therefore reuses preallocated request/response
//! buffers, which makes the zero-delta assertion strictly stronger (it
//! proves client and server together allocate nothing in steady state).
//!
//! The same battery runs against **both transports** — the default
//! thread-per-connection pool and (on Linux) the epoll reactor — since
//! both promise the same allocation-free steady state over the same
//! shared answer path.
//!
//! This file holds exactly one `#[test]` so no concurrent test can
//! allocate in the background of the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use uops_db::{Segment, Snapshot, VariantRecord};
use uops_serve::{QueryService, Server, ServerOptions};

/// Counts every heap allocation (alloc, alloc_zeroed, realloc) made by
/// any thread in the process.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

fn snapshot() -> Snapshot {
    let mut s = Snapshot::new("alloc-free test");
    for (m, uarch, mask, tp) in [
        ("ADD", "Skylake", 0b0110_0011u16, 0.25),
        ("ADC", "Skylake", 0b0100_0001, 0.5),
        ("SHLD", "Skylake", 0b0000_0010, 1.5),
        ("ADD", "Haswell", 0b0110_0011, 0.25),
    ] {
        s.records.push(VariantRecord {
            mnemonic: m.into(),
            variant: "R64, R64".into(),
            extension: "BASE".into(),
            uarch: uarch.into(),
            uop_count: 1,
            ports: vec![(mask, 1)],
            tp_measured: tp,
            ..Default::default()
        });
    }
    s
}

/// Sends `request` and reads exactly `expected.len()` response bytes into
/// `scratch`, asserting byte-identity with the warmup capture. Nothing
/// here allocates.
fn exchange(stream: &mut TcpStream, request: &[u8], expected: &[u8], scratch: &mut [u8]) {
    stream.write_all(request).expect("send");
    let scratch = &mut scratch[..expected.len()];
    stream.read_exact(scratch).expect("read");
    assert!(scratch == expected, "response changed between warmup and steady state");
}

/// Reads one response during warmup, returning its exact bytes: headers
/// through the blank line, then `Content-Length` body bytes. Pass
/// `expect_body = false` for `HEAD` responses (length advertised, no
/// bytes) — 304s advertise no length at all, so either value works.
fn read_response(stream: &mut TcpStream, expect_body: bool) -> Vec<u8> {
    let mut out = Vec::new();
    let mut byte = [0u8; 1];
    while !out.ends_with(b"\r\n\r\n") {
        assert_eq!(stream.read(&mut byte).expect("read header"), 1, "unexpected EOF");
        out.push(byte[0]);
    }
    let text = String::from_utf8_lossy(&out).to_string();
    let body_len: usize = if expect_body {
        text.lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .map_or(0, |v| v.trim().parse().expect("length"))
    } else {
        0
    };
    let at = out.len();
    out.resize(at + body_len, 0);
    stream.read_exact(&mut out[at..]).expect("read body");
    out
}

/// Overload controls enabled but generously sized: admission checks,
/// queue-limit checks, deadline arming, and uncached-capacity accounting
/// all run on every request in the measured window — and must allocate
/// nothing. (The limits are high enough that nothing actually sheds: the
/// measured window is all cache hits, and a shed 503 for an unparsed
/// query would allocate in query parsing, outside the proof's scope.)
fn overload_options() -> ServerOptions {
    ServerOptions {
        max_inflight: 1024,
        queue_depth: 1024,
        request_deadline: Some(std::time::Duration::from_secs(30)),
        ..ServerOptions::default()
    }
}

#[test]
fn steady_state_keep_alive_requests_allocate_nothing() {
    let segment = Arc::new(Segment::from_bytes(Segment::encode(&snapshot())).expect("segment"));
    let service = Arc::new(QueryService::from_segment(segment, 1 << 20));
    service.set_max_uncached_inflight(1024);

    let pool = Server::bind_with("127.0.0.1:0", Arc::clone(&service), 1, overload_options())
        .expect("bind pool");
    run_battery(pool, "thread-per-connection");

    // The reactor transport must uphold the same guarantee: its slab,
    // wheel, and connection buffers are all reused in steady state.
    #[cfg(target_os = "linux")]
    {
        let reactor = Server::bind_reactor("127.0.0.1:0", service, 2, overload_options())
            .expect("bind reactor");
        run_battery(reactor, "reactor");
    }
}

/// The full warmup + measured-window battery against one booted server.
fn run_battery(server: Server, transport: &str) {
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    // The request mix: a hot GET (raw fast-lane hit), the same target as
    // HEAD, and an If-None-Match revalidation (304). The ETag is learned
    // from the warmup response.
    let get = b"GET /v1/query?uarch=Skylake&port=5 HTTP/1.1\r\nHost: a\r\n\r\n".to_vec();
    let head = b"HEAD /v1/query?uarch=Skylake&port=5 HTTP/1.1\r\nHost: a\r\n\r\n".to_vec();

    stream.write_all(&get).expect("warm get");
    let get_response = read_response(&mut stream, true);
    let etag = String::from_utf8_lossy(&get_response)
        .lines()
        .find_map(|l| l.strip_prefix("ETag: ").map(str::to_string))
        .expect("200 carries an ETag");
    let conditional = format!(
        "GET /v1/query?uarch=Skylake&port=5 HTTP/1.1\r\nHost: a\r\nIf-None-Match: {etag}\r\n\r\n"
    )
    .into_bytes();

    // Warm every path twice more: fast-lane promotion happened on the
    // first request; these settle scratch capacities on both sides.
    let mut head_response = Vec::new();
    let mut conditional_response = Vec::new();
    for _ in 0..2 {
        stream.write_all(&get).expect("warm");
        assert_eq!(read_response(&mut stream, true), get_response, "hit parity");
        stream.write_all(&head).expect("warm");
        head_response = read_response(&mut stream, false);
        stream.write_all(&conditional).expect("warm");
        conditional_response = read_response(&mut stream, false);
    }
    assert!(head_response.ends_with(b"\r\n\r\n"), "HEAD has no body");
    assert!(
        String::from_utf8_lossy(&conditional_response).starts_with("HTTP/1.1 304"),
        "matching If-None-Match revalidates"
    );

    // Batch round: two hot plans per POST. After warmup the whole batch
    // path — bounded body read, per-plan cache probes, frame assembly,
    // vectored response write — runs out of per-connection buffers and
    // cache Arcs, so it must be allocation-free too.
    let batch_body: &[u8] = b"uarch=Skylake&port=5\nuarch=Skylake";
    let mut batch_request = format!(
        "POST /v1/batch HTTP/1.1\r\nHost: a\r\nContent-Length: {}\r\n\r\n",
        batch_body.len()
    )
    .into_bytes();
    batch_request.extend_from_slice(batch_body);
    let mut batch_response = Vec::new();
    for _ in 0..3 {
        stream.write_all(&batch_request).expect("warm batch");
        batch_response = read_response(&mut stream, true);
    }
    assert!(
        String::from_utf8_lossy(&batch_response).starts_with("HTTP/1.1 200"),
        "batch warmup must succeed: {}",
        String::from_utf8_lossy(&batch_response)
    );

    // Telemetry is on by default — prove it is live before the measured
    // window (the scrape itself allocates, which is why it sits outside).
    let metrics_get = b"GET /metrics HTTP/1.1\r\nHost: a\r\n\r\n".to_vec();
    stream.write_all(&metrics_get).expect("metrics probe");
    let metrics_before = String::from_utf8_lossy(&read_response(&mut stream, true)).to_string();
    assert!(metrics_before.starts_with("HTTP/1.1 200"), "{metrics_before}");
    let requests_before = exposition_value(&metrics_before, "uops_http_requests_total");
    assert!(requests_before > 0, "telemetry must be recording:\n{metrics_before}");

    let mut scratch = vec![0u8; get_response.len().max(batch_response.len()).max(64)];

    // ---- the measured window ----
    const ROUNDS: usize = 100;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..ROUNDS {
        exchange(&mut stream, &get, &get_response, &mut scratch);
        exchange(&mut stream, &head, &head_response, &mut scratch);
        exchange(&mut stream, &conditional, &conditional_response, &mut scratch);
        exchange(&mut stream, &batch_request, &batch_response, &mut scratch);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "steady-state hit path must be allocation-free on the {} transport: \
         {} allocations across {} requests",
        transport,
        after - before,
        ROUNDS * 4,
    );

    // Telemetry recorded throughout the zero-allocation window: the
    // request counter advanced by exactly the measured requests plus the
    // first scrape, all without a single allocation.
    stream.write_all(&metrics_get).expect("metrics probe");
    let metrics_after = String::from_utf8_lossy(&read_response(&mut stream, true)).to_string();
    let requests_after = exposition_value(&metrics_after, "uops_http_requests_total");
    assert_eq!(
        requests_after - requests_before,
        (ROUNDS as u64) * 4 + 1,
        "every measured request must be counted:\n{metrics_after}"
    );

    // Close the client first so the draining worker sees EOF instead of
    // sitting out the idle keep-alive timeout.
    drop(stream);
    handle.shutdown();
}

/// Reads the value of an unlabeled counter/gauge sample out of a
/// Prometheus text exposition.
fn exposition_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| line.strip_prefix(name)?.strip_prefix(' ')?.trim().parse().ok())
        .unwrap_or_else(|| panic!("no sample {name} in exposition"))
}
