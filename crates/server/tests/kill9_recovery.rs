//! Crash-safety integration test driving the **real `serve` binary**
//! through a SIGKILL mid-publish: boot with `--data-dir`, ingest under
//! concurrent read load, stall the publish at a scripted filesystem
//! fault point (`UOPS_FAULT_FS`), kill(9) the process mid-stall, and
//! reboot against the same directory. The recovered generation's
//! responses must be byte-identical (headers included — the ETag is
//! content-derived) to the last durable generation's, and the orphan
//! image stranded by the kill must be quarantined and counted.

#![cfg(all(feature = "fault-injection", unix))]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use uops_db::{Segment, Snapshot, VariantRecord};

fn sample_snapshot() -> Snapshot {
    let mut s = Snapshot::new("kill9 test");
    let mut add = |m: &str, uarch: &str, uops: u32, mask: u16, tp: f64| {
        s.records.push(VariantRecord {
            mnemonic: m.into(),
            variant: "R64, R64".into(),
            extension: "BASE".into(),
            uarch: uarch.into(),
            uop_count: uops,
            ports: vec![(mask, uops)],
            tp_measured: tp,
            ..Default::default()
        });
    };
    add("ADD", "Skylake", 1, 0b0110_0011, 0.25);
    add("ADC", "Skylake", 1, 0b0100_0001, 0.5);
    add("DIV", "Skylake", 10, 0b0000_0001, 6.0);
    s
}

fn update_snapshot() -> Snapshot {
    let mut s = Snapshot::new("kill9 update");
    s.records.push(VariantRecord {
        mnemonic: "XOR".into(),
        variant: "R64, R64".into(),
        extension: "BASE".into(),
        uarch: "Skylake".into(),
        uop_count: 1,
        ports: vec![(0b0110_0011, 1)],
        tp_measured: 0.25,
        ..Default::default()
    });
    s
}

struct ServeGuard {
    child: Child,
    addr: String,
    /// stdout lines printed at boot (listening / metrics / data plane).
    announce: Vec<String>,
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Boots `serve --segment ... --data-dir ...`, optionally with a
/// `UOPS_FAULT_FS` script, and reads the boot announcement lines.
fn boot(segment_path: &PathBuf, data_dir: &PathBuf, fault_fs: Option<&str>) -> ServeGuard {
    let mut command = Command::new(env!("CARGO_BIN_EXE_serve"));
    command
        .arg("--segment")
        .arg(segment_path)
        .arg("--data-dir")
        .arg(data_dir)
        .args(["--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    match fault_fs {
        Some(spec) => command.env("UOPS_FAULT_FS", spec),
        None => command.env_remove("UOPS_FAULT_FS"),
    };
    let mut child = command.spawn().expect("spawn serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut announce = Vec::new();
    // Three boot lines: listening, metrics, data plane.
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read announce line");
        announce.push(line.trim().to_string());
    }
    let addr = announce[0]
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in {:?}", announce[0]))
        .to_string();
    ServeGuard { child, addr, announce }
}

/// One full exchange on a fresh connection, returning the **raw response
/// bytes** (status line, headers, body) so byte-identity covers the ETag.
fn raw_exchange(addr: &str, request: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request).expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    raw
}

fn raw_get(addr: &str, target: &str) -> Vec<u8> {
    raw_exchange(
        addr,
        format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

const EXPORTS: [&str; 3] = ["/v1/query?uarch=Skylake", "/v1/query?format=binary", "/v1/record/ADD"];

#[test]
fn sigkill_mid_publish_recovers_the_previous_generation_byte_identically() {
    static BOOTS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let boot_n = BOOTS.fetch_add(1, Ordering::Relaxed);
    let tag = format!("uops_kill9_{}_{boot_n}", std::process::id());
    let segment_path = std::env::temp_dir().join(format!("{tag}.seg"));
    let data_dir = std::env::temp_dir().join(format!("{tag}.d"));
    let _ = std::fs::remove_dir_all(&data_dir);
    Segment::write(&sample_snapshot(), &segment_path).expect("write segment");

    // Boot with the publish stalled at the *manifest rename* of the first
    // ingest: bootstrap consumes renames 1-2 (image + manifest of
    // generation 1), the ingest's image rename is 3 (pass, stranding
    // gen-2.seg as a durable orphan), and its manifest rename is 4 —
    // stalled for 60 s, which the SIGKILL lands inside.
    let spec = "rename:pass,rename:pass,rename:pass,rename:stall=60000";
    let server = boot(&segment_path, &data_dir, Some(spec));
    assert!(
        server.announce[2].contains("generation 1"),
        "fresh data dir must bootstrap generation 1: {:?}",
        server.announce
    );

    // Baselines of the durable generation, raw bytes including headers.
    let baselines: Vec<Vec<u8>> =
        EXPORTS.iter().map(|target| raw_get(&server.addr, target)).collect();
    for (target, raw) in EXPORTS.iter().zip(&baselines) {
        assert!(raw.starts_with(b"HTTP/1.1 200"), "baseline {target} must succeed");
    }

    // Concurrent read load for the whole stall window.
    let stop = Arc::new(AtomicBool::new(false));
    let failures = Arc::new(AtomicU64::new(0));
    let load = {
        let addr = server.addr.clone();
        let stop = Arc::clone(&stop);
        let failures = Arc::clone(&failures);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let raw = raw_get(&addr, EXPORTS[0]);
                if !raw.starts_with(b"HTTP/1.1 200") {
                    failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
    };

    // Fire the ingest. The publish stalls inside the scripted rename, so
    // the response never arrives — send it and leave the socket open.
    let body = uops_db::codec::encode(&update_snapshot());
    let mut ingest = TcpStream::connect(&server.addr).expect("connect ingest");
    let head =
        format!("POST /v1/ingest HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n", body.len());
    ingest.write_all(head.as_bytes()).expect("send ingest head");
    ingest.write_all(&body).expect("send ingest body");
    std::thread::sleep(Duration::from_millis(600));

    // Mid-stall, reads still serve the old generation (the swap happens
    // only after a durable publish; readers never block on it).
    let mid_stall = raw_get(&server.addr, EXPORTS[0]);
    assert_eq!(mid_stall, baselines[0], "reads mid-publish must serve the old generation");
    stop.store(true, Ordering::Relaxed);
    load.join().expect("load thread");
    assert_eq!(failures.load(Ordering::Relaxed), 0, "no request may fail during the stall");

    // SIGKILL mid-publish: no drain, no cleanup.
    let mut server = server;
    server.child.kill().expect("SIGKILL");
    let _ = server.child.wait();
    drop(ingest);

    // The kill stranded the next generation's image, but the manifest
    // still names generation 1 as the durable truth.
    assert!(data_dir.join("gen-2.seg").exists(), "the orphan image must survive the kill");
    let manifest = std::fs::read_to_string(data_dir.join("MANIFEST")).expect("manifest");
    assert!(manifest.contains("gen-1.seg"), "{manifest}");
    assert!(!manifest.contains("gen-2.seg"), "the torn generation must not be in the manifest");

    // Reboot against the same directory, no faults: generation 1 is
    // recovered, the orphan quarantined and counted, and every export is
    // byte-identical to the pre-crash baseline.
    let reboot = boot(&segment_path, &data_dir, None);
    assert!(
        reboot.announce[2].contains("generation 1"),
        "reboot must recover generation 1: {:?}",
        reboot.announce
    );
    for (target, baseline) in EXPORTS.iter().zip(&baselines) {
        let recovered = raw_get(&reboot.addr, target);
        assert_eq!(
            recovered, *baseline,
            "recovered export {target} must be byte-identical to the durable generation"
        );
    }
    assert!(!data_dir.join("gen-2.seg").exists(), "the orphan must be renamed aside");
    let stats = String::from_utf8(raw_get(&reboot.addr, "/v1/stats")).expect("stats utf-8");
    assert!(stats.contains("\"generation\": 1"), "{stats}");
    assert!(stats.contains("\"quarantined\": 1"), "{stats}");

    drop(reboot);
    let _ = std::fs::remove_file(&segment_path);
    let _ = std::fs::remove_dir_all(&data_dir);
}
