//! Response-cache correctness under concurrency: for arbitrary databases
//! and arbitrary plans, the bytes a cached [`QueryService`] returns —
//! first touch (miss) or any later touch (hit), from any number of
//! concurrent reader threads — must be byte-identical to an uncached
//! in-process `QueryExec` + encoder run over the same segment.

use std::sync::Arc;

use proptest::prelude::*;

use uops_db::{
    BinaryEncoder, JsonEncoder, Query, QueryExec, QueryPlan, ResultEncoder, Segment, Snapshot,
    SortKey, VariantRecord, XmlEncoder,
};
use uops_serve::{respond, Encoding, QueryService};

const MNEMONICS: [&str; 6] = ["ADD", "ADC", "SHLD", "VPADDD", "DIV", "MULPS"];
const VARIANTS: [&str; 3] = ["R64, R64", "XMM, XMM", "R64, M64"];
const EXTENSIONS: [&str; 3] = ["BASE", "AVX2", "AES"];
const UARCHES: [&str; 3] = ["Nehalem", "Haswell", "Skylake"];

fn arb_record() -> impl Strategy<Value = VariantRecord> {
    ((0usize..6, 0usize..3, 0usize..3, 0usize..3), (1u32..5, 1u16..0x100, 0.0f64..8.0)).prop_map(
        |((m, v, e, u), (uops, mask, tp))| VariantRecord {
            mnemonic: MNEMONICS[m].to_string(),
            variant: VARIANTS[v].to_string(),
            extension: EXTENSIONS[e].to_string(),
            uarch: UARCHES[u].to_string(),
            uop_count: uops,
            ports: vec![(mask, uops)],
            tp_measured: tp,
            ..Default::default()
        },
    )
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    prop::collection::vec(arb_record(), 1..24).prop_map(|records| {
        let mut snapshot = Snapshot::new("cache parity proptest");
        snapshot.records = records;
        snapshot
    })
}

/// A small pool of heterogeneous plans (indexed, residual-only, sorted,
/// paginated, unmatchable).
fn arb_plan() -> impl Strategy<Value = QueryPlan> {
    (0usize..8, 0usize..3, 0usize..6, 0u8..10).prop_map(|(shape, u, m, port)| {
        let uarch = UARCHES[u];
        let mnemonic = MNEMONICS[m];
        match shape {
            0 => Query::new().into_plan(),
            1 => Query::new().uarch(uarch).into_plan(),
            2 => Query::new().uarch(uarch).uses_port(port).into_plan(),
            3 => Query::new().mnemonic(mnemonic).sort_by(SortKey::Latency).into_plan(),
            4 => Query::new().mnemonic_prefix("V").min_uops(2).into_plan(),
            5 => Query::new().uarch(uarch).sort_by_desc(SortKey::Throughput).limit(3).into_plan(),
            6 => Query::new().extension("AVX2").offset(1).limit(2).into_plan(),
            _ => Query::new().uarch("Ice Lake").into_plan(), // unmatchable
        }
    })
}

fn encode_expected(segment: &Segment, plan: &QueryPlan, encoding: Encoding) -> Vec<u8> {
    let db = segment.db();
    let result = QueryExec::new().run(plan, &db);
    match encoding {
        Encoding::Json => JsonEncoder.encode_result(&result),
        Encoding::Binary => BinaryEncoder.encode_result(&result),
        Encoding::Xml => XmlEncoder.encode_result(&result),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn concurrent_cached_responses_match_uncached_bytes(
        snapshot in arb_snapshot(),
        plans in prop::collection::vec(arb_plan(), 1..8),
    ) {
        let segment = Arc::new(
            Segment::from_bytes(Segment::encode(&snapshot)).expect("valid segment"),
        );
        let service = QueryService::from_segment(Arc::clone(&segment), 1 << 20);

        // The ground truth: uncached, in-process execution + encoding.
        let encodings = [Encoding::Json, Encoding::Binary, Encoding::Xml];
        let expected: Vec<Vec<Vec<u8>>> = plans
            .iter()
            .map(|plan| {
                encodings.iter().map(|&enc| encode_expected(&segment, plan, enc)).collect()
            })
            .collect();

        // Hammer the shared service from several readers, each walking the
        // plan set in a different rotation so hits and misses interleave.
        const READERS: usize = 4;
        const ROUNDS: usize = 3;
        uops_pool::scope(|s| {
            for reader in 0..READERS {
                let service = &service;
                let plans = &plans;
                let expected = &expected;
                s.spawn(move || {
                    for round in 0..ROUNDS {
                        for i in 0..plans.len() {
                            let at = (i + reader + round) % plans.len();
                            for (e, &encoding) in encodings.iter().enumerate() {
                                let response = service.query(&plans[at], encoding);
                                assert_eq!(response.status, 200);
                                assert_eq!(
                                    &*response.body, &expected[at][e][..],
                                    "reader {reader} round {round} plan {at} {encoding:?}",
                                );
                            }
                        }
                    }
                });
            }
        });

        let stats = service.stats();
        let total = (READERS * ROUNDS * plans.len() * encodings.len()) as u64;
        prop_assert_eq!(stats.cache.hits + stats.cache.misses, total);
        // Deduplicated plans may collapse; executions can never exceed the
        // distinct (plan, encoding) space and must stay far below the
        // request count once the cache warms up.
        let distinct: std::collections::HashSet<String> =
            plans.iter().map(QueryPlan::to_query_string).collect();
        prop_assert!(
            stats.executions <= (distinct.len() * encodings.len()) as u64 * READERS as u64,
            "executions {} for {} distinct plans",
            stats.executions,
            distinct.len(),
        );
        prop_assert!(stats.cache.hits > 0, "repeated identical requests must hit");
    }

    /// The raw fast lane is a third way to ask the same question: for any
    /// plan, the verbatim-target tier (miss *and* hit), the fingerprint
    /// tier, and uncached in-process execution must all produce the same
    /// bytes — and two spellings of one target must share ETags.
    #[test]
    fn raw_fast_lane_responses_match_uncached_bytes(
        snapshot in arb_snapshot(),
        plans in prop::collection::vec(arb_plan(), 1..6),
    ) {
        let segment = Arc::new(
            Segment::from_bytes(Segment::encode(&snapshot)).expect("valid segment"),
        );
        let service = QueryService::from_segment(Arc::clone(&segment), 1 << 20);
        let encodings = [Encoding::Json, Encoding::Binary, Encoding::Xml];

        for plan in &plans {
            let query_string = plan.to_query_string();
            for &encoding in &encodings {
                let expected = encode_expected(&segment, plan, encoding);
                // Two spellings of the same request: format= appended and
                // prepended. Distinct raw-tier entries, one fingerprint
                // entry, identical bytes.
                let suffixed = if query_string.is_empty() {
                    format!("/v1/query?format={}", encoding.wire_name())
                } else {
                    format!("/v1/query?{query_string}&format={}", encoding.wire_name())
                };
                let prefixed = if query_string.is_empty() {
                    suffixed.clone()
                } else {
                    format!("/v1/query?format={}&{query_string}", encoding.wire_name())
                };
                let miss = respond(&service, "GET", &suffixed);
                let hit = respond(&service, "GET", &suffixed);
                let respelled = respond(&service, "GET", &prefixed);
                prop_assert_eq!(miss.status, 200);
                for (label, response) in
                    [("miss", &miss), ("hit", &hit), ("respelled", &respelled)]
                {
                    prop_assert_eq!(
                        &*response.body, &expected[..],
                        "{} for {} must match uncached execution", label, suffixed,
                    );
                }
                prop_assert_eq!(miss.etag, hit.etag);
                prop_assert_eq!(
                    miss.etag, respelled.etag,
                    "spelling must not change the ETag",
                );
            }
        }
        let stats = service.stats();
        prop_assert!(stats.raw.hits >= plans.len() as u64 * encodings.len() as u64);
        prop_assert_eq!(
            stats.executions, stats.encodes,
            "every execution is encoded exactly once",
        );
    }
}

#[test]
fn disabled_cache_still_returns_identical_bytes() {
    let mut snapshot = Snapshot::new("uncached parity");
    snapshot.records.push(VariantRecord {
        mnemonic: "ADD".into(),
        variant: "R64, R64".into(),
        extension: "BASE".into(),
        uarch: "Skylake".into(),
        uop_count: 1,
        ports: vec![(0b0110_0011, 1)],
        tp_measured: 0.25,
        ..Default::default()
    });
    let segment = Arc::new(Segment::from_bytes(Segment::encode(&snapshot)).expect("valid segment"));
    let cached = QueryService::from_segment(Arc::clone(&segment), 1 << 20);
    let uncached = QueryService::from_segment(Arc::clone(&segment), 0);
    let plan = Query::new().uarch("Skylake").into_plan();
    for _ in 0..3 {
        let a = cached.query(&plan, Encoding::Json);
        let b = uncached.query(&plan, Encoding::Json);
        assert_eq!(a.body, b.body);
        assert_eq!(&*a.body, &encode_expected(&segment, &plan, Encoding::Json)[..]);
    }
    assert_eq!(uncached.stats().executions, 3, "disabled cache executes every time");
    assert_eq!(cached.stats().executions, 1, "enabled cache executes once");
}
