//! Cached/uncached parity **across the swap boundary**: while the served
//! store swaps generations under concurrent readers, every response must
//! carry the bytes of one coherent generation — body, ETag, and
//! generation stamp all from the same snapshot of the world, never a
//! torn mix — on the service layer and on both HTTP transports.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use uops_db::{
    BinaryEncoder, JsonEncoder, Query, QueryExec, QueryPlan, ResultEncoder, Segment, Snapshot,
    SortKey, VariantRecord, XmlEncoder,
};
use uops_serve::{respond, Encoding, QueryService, Server, ServerOptions};

const MNEMONICS: [&str; 6] = ["ADD", "ADC", "SHLD", "VPADDD", "DIV", "MULPS"];
const VARIANTS: [&str; 3] = ["R64, R64", "XMM, XMM", "R64, M64"];
const EXTENSIONS: [&str; 3] = ["BASE", "AVX2", "AES"];
const UARCHES: [&str; 3] = ["Nehalem", "Haswell", "Skylake"];

fn arb_record() -> impl Strategy<Value = VariantRecord> {
    ((0usize..6, 0usize..3, 0usize..3, 0usize..3), (1u32..5, 1u16..0x100, 0.0f64..8.0)).prop_map(
        |((m, v, e, u), (uops, mask, tp))| VariantRecord {
            mnemonic: MNEMONICS[m].to_string(),
            variant: VARIANTS[v].to_string(),
            extension: EXTENSIONS[e].to_string(),
            uarch: UARCHES[u].to_string(),
            uop_count: uops,
            ports: vec![(mask, uops)],
            tp_measured: tp,
            ..Default::default()
        },
    )
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    prop::collection::vec(arb_record(), 1..16).prop_map(|records| {
        let mut snapshot = Snapshot::new("swap parity proptest");
        snapshot.records = records;
        snapshot
    })
}

fn arb_plan() -> impl Strategy<Value = QueryPlan> {
    (0usize..6, 0usize..3, 0usize..6, 0u8..10).prop_map(|(shape, u, m, port)| {
        let uarch = UARCHES[u];
        let mnemonic = MNEMONICS[m];
        match shape {
            0 => Query::new().into_plan(),
            1 => Query::new().uarch(uarch).into_plan(),
            2 => Query::new().uarch(uarch).uses_port(port).into_plan(),
            3 => Query::new().mnemonic(mnemonic).sort_by(SortKey::Latency).into_plan(),
            4 => Query::new().uarch(uarch).sort_by_desc(SortKey::Throughput).limit(3).into_plan(),
            _ => Query::new().extension("AVX2").offset(1).limit(2).into_plan(),
        }
    })
}

fn encode_expected(segment: &Segment, plan: &QueryPlan, encoding: Encoding) -> Vec<u8> {
    let db = segment.db();
    let result = QueryExec::new().run(plan, &db);
    match encoding {
        Encoding::Json => JsonEncoder.encode_result(&result),
        Encoding::Binary => BinaryEncoder.encode_result(&result),
        Encoding::Xml => XmlEncoder.encode_result(&result),
    }
}

/// The generation ladder: generation 0 is the base segment the service
/// boots on; each later generation merges in one more disjoint record so
/// every generation's full export is distinct.
fn generation_ladder(base: &Snapshot, rungs: usize) -> Vec<Arc<Segment>> {
    let mut ladder =
        vec![Arc::new(Segment::from_bytes(Segment::encode(base)).expect("base segment"))];
    for rung in 0..rungs {
        let mut extra = Snapshot::new("swap parity rung");
        extra.records.push(VariantRecord {
            mnemonic: format!("GEN{rung}"),
            variant: "R64, R64".into(),
            extension: "BASE".into(),
            uarch: "Skylake".into(),
            uop_count: 1 + rung as u32,
            ports: vec![(0b0000_0001, 1)],
            tp_measured: 1.0,
            ..Default::default()
        });
        let incoming = Segment::from_bytes(Segment::encode(&extra)).expect("rung segment");
        ladder.push(Arc::new(Segment::merge_refs(&[ladder.last().expect("rung"), &incoming])));
    }
    ladder
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Concurrent readers issue random plans through both cache tiers
    /// while a swapper walks the generation ladder. Every response must
    /// match the ground-truth bytes of **the generation it is stamped
    /// with** — a body from one generation with a stamp (or cache slot)
    /// from another is the torn mix this test exists to catch.
    #[test]
    fn swapping_generations_never_serves_torn_bytes(
        base in arb_snapshot(),
        plans in prop::collection::vec(arb_plan(), 1..6),
    ) {
        const GENERATIONS: usize = 4;
        let ladder = generation_ladder(&base, GENERATIONS);
        let service = QueryService::from_segment(Arc::clone(&ladder[0]), 1 << 20);

        let encodings = [Encoding::Json, Encoding::Binary, Encoding::Xml];
        // expected[g][plan][encoding]: ground truth per generation.
        let expected: Vec<Vec<Vec<Vec<u8>>>> = ladder
            .iter()
            .map(|segment| {
                plans
                    .iter()
                    .map(|plan| {
                        encodings.iter().map(|&e| encode_expected(segment, plan, e)).collect()
                    })
                    .collect()
            })
            .collect();

        const READERS: usize = 3;
        let done = AtomicBool::new(false);
        uops_pool::scope(|s| {
            for reader in 0..READERS {
                let service = &service;
                let plans = &plans;
                let expected = &expected;
                let done = &done;
                s.spawn(move || {
                    let mut round = 0usize;
                    while !done.load(Ordering::Relaxed) || round < 2 {
                        for i in 0..plans.len() {
                            let at = (i + reader + round) % plans.len();
                            for (e, &encoding) in encodings.iter().enumerate() {
                                let response = service.query(&plans[at], encoding);
                                assert_eq!(response.status, 200);
                                let generation = response.generation as usize;
                                assert!(
                                    generation < expected.len(),
                                    "stamp {generation} beyond the ladder",
                                );
                                assert_eq!(
                                    &*response.body, &expected[generation][at][e][..],
                                    "reader {reader} plan {at} {encoding:?}: body must match \
                                     the generation it is stamped with",
                                );
                            }
                        }
                        round += 1;
                    }
                });
            }
            // The swapper: walk the ladder while the readers hammer.
            for (id, segment) in ladder.iter().enumerate().skip(1) {
                assert!(service.swap_segment(Arc::clone(segment), id as u64));
                std::thread::yield_now();
            }
            done.store(true, Ordering::Relaxed);
        });

        // Settled: the final generation serves everywhere, cache included.
        prop_assert_eq!(service.generation(), GENERATIONS as u64);
        for (at, plan) in plans.iter().enumerate() {
            for (e, &encoding) in encodings.iter().enumerate() {
                let response = service.query(plan, encoding);
                prop_assert_eq!(response.generation, GENERATIONS as u64);
                prop_assert_eq!(&*response.body, &expected[GENERATIONS][at][e][..]);
            }
        }
    }

    /// Same contract through the raw fast lane: `respond` pins one
    /// generation per request, so the verbatim-target tier must never
    /// leak pre-swap bytes once the swap's epoch advance lands.
    #[test]
    fn raw_lane_respects_the_swap_boundary(
        base in arb_snapshot(),
        plans in prop::collection::vec(arb_plan(), 1..4),
    ) {
        let ladder = generation_ladder(&base, 2);
        let service = QueryService::from_segment(Arc::clone(&ladder[0]), 1 << 20);
        let targets: Vec<String> = plans
            .iter()
            .map(|plan| {
                let qs = plan.to_query_string();
                if qs.is_empty() {
                    "/v1/query?format=json".to_string()
                } else {
                    format!("/v1/query?{qs}&format=json")
                }
            })
            .collect();

        for (id, segment) in ladder.iter().enumerate() {
            if id > 0 {
                prop_assert!(service.swap_segment(Arc::clone(segment), id as u64));
            }
            for (at, target) in targets.iter().enumerate() {
                let expected = encode_expected(segment, &plans[at], Encoding::Json);
                // Miss (fills the raw tier at this epoch) then hit.
                let miss = respond(&service, "GET", target);
                let hit = respond(&service, "GET", target);
                prop_assert_eq!(miss.status, 200);
                prop_assert_eq!(
                    &*miss.body, &expected[..],
                    "generation {} target {}", id, target,
                );
                prop_assert_eq!(&*hit.body, &expected[..]);
                prop_assert_eq!(hit.generation, id as u64, "raw hits must carry their epoch");
            }
        }
    }
}

// ---- HTTP transports ----

/// Reads one full `Connection: close` response off `stream`.
fn raw_get(addr: std::net::SocketAddr, target: &str) -> Vec<u8> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    raw
}

fn split_response(raw: &[u8]) -> (String, Vec<u8>) {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator in {:?}", String::from_utf8_lossy(raw)));
    (String::from_utf8_lossy(&raw[..head_end]).to_string(), raw[head_end + 4..].to_vec())
}

fn etag_of(head: &str) -> u64 {
    let hex = head
        .lines()
        .find_map(|l| l.strip_prefix("ETag: \""))
        .and_then(|rest| rest.strip_suffix('"'))
        .unwrap_or_else(|| panic!("no ETag in {head}"));
    u64::from_str_radix(hex, 16).expect("hex etag")
}

/// Drives `server` (already spawned) through swaps under read load and
/// asserts every HTTP response is a coherent (body, ETag) pair from
/// exactly one generation.
fn swap_coherence_over_http(
    service: &Arc<QueryService>,
    addr: std::net::SocketAddr,
    ladder: &[Arc<Segment>],
) {
    const TARGET: &str = "/v1/query?format=json";
    // Ground truth per generation: body bytes + the ETag a service pinned
    // to that generation would emit (ETag = plan fingerprint ⊕ content
    // hash, so a reference service over the same segment reproduces it).
    let truth: Vec<(Vec<u8>, u64)> = ladder
        .iter()
        .map(|segment| {
            let reference = QueryService::from_segment(Arc::clone(segment), 0);
            let response = respond(&reference, "GET", TARGET);
            assert_eq!(response.status, 200);
            (response.body.to_vec(), response.etag.expect("cacheable response has an ETag"))
        })
        .collect();

    let stop = AtomicBool::new(false);
    uops_pool::scope(|s| {
        for _reader in 0..2 {
            let stop = &stop;
            let truth = &truth;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let raw = raw_get(addr, TARGET);
                    let (head, body) = split_response(&raw);
                    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
                    let etag = etag_of(&head);
                    let matched = truth
                        .iter()
                        .enumerate()
                        .find(|(_, (expected, _))| expected[..] == body[..]);
                    let (generation, (_, expected_etag)) =
                        matched.expect("body must match some coherent generation");
                    assert_eq!(
                        etag, *expected_etag,
                        "ETag must come from the same generation ({generation}) as the body",
                    );
                }
            });
        }
        for (id, segment) in ladder.iter().enumerate().skip(1) {
            assert!(service.swap_segment(Arc::clone(segment), id as u64));
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Settled on the last generation.
    let raw = raw_get(addr, TARGET);
    let (head, body) = split_response(&raw);
    let last = truth.last().expect("ladder");
    assert_eq!(body[..], last.0[..], "after the last swap only the new generation serves");
    assert_eq!(etag_of(&head), last.1);
}

fn http_base() -> Snapshot {
    let mut base = Snapshot::new("swap parity http");
    base.records.push(VariantRecord {
        mnemonic: "ADD".into(),
        variant: "R64, R64".into(),
        extension: "BASE".into(),
        uarch: "Skylake".into(),
        uop_count: 1,
        ports: vec![(0b0110_0011, 1)],
        tp_measured: 0.25,
        ..Default::default()
    });
    base
}

#[test]
fn swaps_are_coherent_on_the_pool_transport() {
    let ladder = generation_ladder(&http_base(), 5);
    let service = Arc::new(QueryService::from_segment(Arc::clone(&ladder[0]), 1 << 20));
    let server =
        Server::bind_with("127.0.0.1:0", Arc::clone(&service), 2, ServerOptions::default())
            .expect("bind pool");
    let addr = server.local_addr();
    let handle = server.spawn();
    swap_coherence_over_http(&service, addr, &ladder);
    handle.shutdown();
}

#[cfg(target_os = "linux")]
#[test]
fn swaps_are_coherent_on_the_reactor_transport() {
    let ladder = generation_ladder(&http_base(), 5);
    let service = Arc::new(QueryService::from_segment(Arc::clone(&ladder[0]), 1 << 20));
    let server =
        Server::bind_reactor("127.0.0.1:0", Arc::clone(&service), 2, ServerOptions::default())
            .expect("bind reactor");
    let addr = server.local_addr();
    let handle = server.spawn();
    swap_coherence_over_http(&service, addr, &ladder);
    handle.shutdown();
}
