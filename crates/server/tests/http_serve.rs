//! Integration tests driving the **real `serve` binary**: boot it over a
//! segment file, talk HTTP/1.1 to it over a TCP socket, and assert that
//! every payload is byte-identical to an in-process `QueryExec` + encoder
//! run over the same segment — plus the CLI contract (unknown flags exit
//! non-zero with usage) and the counter-asserted cache behavior.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use uops_db::{
    BinaryEncoder, JsonEncoder, Query, QueryExec, QueryPlan, ResultEncoder, Segment, Snapshot,
    SortKey, VariantRecord,
};

fn sample_snapshot() -> Snapshot {
    let mut s = Snapshot::new("http_serve test");
    let mut add = |m: &str, uarch: &str, uops: u32, mask: u16, tp: f64| {
        s.records.push(VariantRecord {
            mnemonic: m.into(),
            variant: "R64, R64".into(),
            extension: "BASE".into(),
            uarch: uarch.into(),
            uop_count: uops,
            ports: vec![(mask, uops)],
            tp_measured: tp,
            ..Default::default()
        });
    };
    add("ADD", "Skylake", 1, 0b0110_0011, 0.25);
    add("ADC", "Skylake", 1, 0b0100_0001, 0.5);
    add("ADC", "Haswell", 2, 0b0100_0001, 1.0);
    add("DIV", "Skylake", 10, 0b0000_0001, 6.0);
    add("SHLD", "Haswell", 4, 0b0000_0010, 1.5);
    s
}

/// The spawned server plus its segment file; both cleaned up on drop so a
/// failing assertion never leaks a process or a temp file.
struct ServeGuard {
    child: Child,
    addr: String,
    segment_path: PathBuf,
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.segment_path);
    }
}

fn boot_server(extra_args: &[&str]) -> (ServeGuard, Segment) {
    // Unique per call: the default test harness runs these tests
    // concurrently in one process, so a pid-only name would have them
    // truncating each other's segment files mid-open.
    static BOOTS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let boot = BOOTS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let snapshot = sample_snapshot();
    let segment_path =
        std::env::temp_dir().join(format!("uops_http_serve_{}_{boot}.seg", std::process::id()));
    let segment = Segment::write(&snapshot, &segment_path).expect("write segment");

    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .arg("--segment")
        .arg(&segment_path)
        .args(["--addr", "127.0.0.1:0", "--threads", "2"])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");

    // The first stdout line announces the bound address.
    let stdout = child.stdout.take().expect("stdout piped");
    let mut first_line = String::new();
    BufReader::new(stdout).read_line(&mut first_line).expect("read announce line");
    let addr = first_line
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in {first_line:?}"))
        .to_string();
    (ServeGuard { child, addr, segment_path }, segment)
}

/// One full HTTP/1.1 exchange on a fresh connection; returns (status,
/// body bytes).
fn http_get(addr: &str, target: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator in {:?}", String::from_utf8_lossy(&raw)));
    let head = String::from_utf8_lossy(&raw[..head_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head}"));
    (status, raw[head_end + 4..].to_vec())
}

/// Reads `field` out of the named cache-tier object (`"cache"` = the
/// fingerprint tier, `"raw"` = the fast lane) or, for `tier = ""`, a
/// top-level field of the `/v1/stats` payload.
fn stats_field(addr: &str, tier: &str, field: &str) -> u64 {
    let (status, body) = http_get(addr, "/v1/stats");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("stats is UTF-8");
    let scope = if tier.is_empty() {
        text.as_str()
    } else {
        text.split(&format!("\"{tier}\": "))
            .nth(1)
            .and_then(|rest| rest.split('}').next())
            .unwrap_or_else(|| panic!("tier {tier} not in {text}"))
    };
    scope
        .split(&format!("\"{field}\": "))
        .nth(1)
        .and_then(|rest| {
            rest.split(|c: char| !c.is_ascii_digit()).next().and_then(|n| n.parse().ok())
        })
        .unwrap_or_else(|| panic!("field {field} not in {scope}"))
}

#[test]
fn http_responses_are_byte_identical_to_in_process_exec() {
    let (server, segment) = boot_server(&["--cache-mb", "8"]);
    let segment = Arc::new(segment);

    let cases = [
        "",
        "uarch=Skylake",
        "uarch=Skylake&port=5",
        "uarch=Skylake&sort=latency&desc=1&limit=2",
        "mnemonic=ADC&sort=throughput",
        "prefix=S&min_uops=2",
        "uarch=Coffee%20Lake",
    ];
    for query_string in cases {
        let plan = QueryPlan::parse(query_string).expect("plan");
        let db = segment.db();
        let expected_json = JsonEncoder.encode_result(&QueryExec::new().run(&plan, &db));
        let expected_binary = BinaryEncoder.encode_result(&QueryExec::new().run(&plan, &db));

        let target = if query_string.is_empty() {
            "/v1/query".to_string()
        } else {
            format!("/v1/query?{query_string}")
        };
        let (status, body) = http_get(&server.addr, &target);
        assert_eq!(status, 200, "{target}");
        assert_eq!(body, expected_json, "JSON parity for {target}");

        let sep = if query_string.is_empty() { "?" } else { "&" };
        let (status, body) = http_get(&server.addr, &format!("{target}{sep}format=binary"));
        assert_eq!(status, 200);
        assert_eq!(body, expected_binary, "binary parity for {target}");
    }

    // /v1/record/{name} parity: same pipeline as a mnemonic query.
    let db = segment.db();
    let plan = Query::new().mnemonic("ADC").into_plan();
    let expected = JsonEncoder.encode_result(&QueryExec::new().run(&plan, &db));
    let (status, body) = http_get(&server.addr, "/v1/record/ADC");
    assert_eq!(status, 200);
    assert_eq!(body, expected, "record endpoint parity");

    // /v1/diff works over HTTP and is deterministic.
    let (status, diff1) = http_get(&server.addr, "/v1/diff?base=Haswell&other=Skylake");
    assert_eq!(status, 200);
    let (_, diff2) = http_get(&server.addr, "/v1/diff?base=Haswell&other=Skylake");
    assert_eq!(diff1, diff2);
    assert!(String::from_utf8_lossy(&diff1).contains("\"base\": \"Haswell\""));
}

#[test]
fn cache_hits_skip_planner_and_encoder_counters() {
    let (server, _segment) = boot_server(&["--cache-mb", "4"]);

    let (status, first) = http_get(&server.addr, "/v1/query?uarch=Skylake&port=5");
    assert_eq!(status, 200);
    let executions_cold = stats_field(&server.addr, "", "executions");
    let encodes_cold = stats_field(&server.addr, "", "encodes");
    assert_eq!(executions_cold, 1);

    let (_, second) = http_get(&server.addr, "/v1/query?uarch=Skylake&port=5");
    assert_eq!(first, second, "cached response must be byte-identical");
    assert_eq!(
        stats_field(&server.addr, "", "executions"),
        executions_cold,
        "a cache hit must not invoke the planner/executor"
    );
    assert_eq!(
        stats_field(&server.addr, "", "encodes"),
        encodes_cold,
        "a cache hit must not invoke the encoder"
    );
    // The verbatim repeat is a raw fast-lane hit; the fingerprint tier is
    // never even probed.
    assert_eq!(stats_field(&server.addr, "raw", "hits"), 1);
    assert_eq!(stats_field(&server.addr, "cache", "hits"), 0);

    // A different spelling of the same plan misses the fast lane but hits
    // the fingerprint tier: still no execution.
    let (_, respelled) = http_get(&server.addr, "/v1/query?port=5&uarch=Skylake");
    assert_eq!(first, respelled, "respelled plan must return identical bytes");
    assert_eq!(stats_field(&server.addr, "cache", "hits"), 1);
    assert_eq!(stats_field(&server.addr, "", "executions"), executions_cold);

    // Differently spelled but semantically different request: a miss.
    let (_, _third) = http_get(&server.addr, "/v1/query?uarch=Haswell");
    assert_eq!(stats_field(&server.addr, "", "executions"), executions_cold + 1);
}

#[test]
fn error_statuses_over_http() {
    let (server, _segment) = boot_server(&[]);
    let (status, body) = http_get(&server.addr, "/v1/query?uarhc=Skylake");
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("unknown query parameter"));
    let (status, _) = http_get(&server.addr, "/v1/nope");
    assert_eq!(status, 404);
    let (status, _) = http_get(&server.addr, "/v1/query?sort=size");
    assert_eq!(status, 400);

    // Unbounded-sort parity spot check stays 200 even with odd spellings.
    let (status, _) = http_get(&server.addr, "/v1/query?uarch=Skylake&sort=uops");
    assert_eq!(status, 200);
}

#[test]
#[cfg(target_os = "linux")]
fn reactor_flag_boots_the_event_driven_transport() {
    let (server, segment) = boot_server(&["--reactor=2"]);
    let segment = Arc::new(segment);

    // Responses through the reactor are byte-identical to in-process
    // execution, exactly as with the default transport.
    let plan = QueryPlan::parse("uarch=Skylake").expect("plan");
    let expected = JsonEncoder.encode_result(&QueryExec::new().run(&plan, &segment.db()));
    let (status, body) = http_get(&server.addr, "/v1/query?uarch=Skylake");
    assert_eq!(status, 200);
    assert_eq!(body, expected, "reactor transport must frame identical bytes");

    // Telemetry is threaded through the reactor: the request above shows
    // up in the exposition.
    let (status, metrics) = http_get(&server.addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8_lossy(&metrics).to_string();
    assert!(text.contains("uops_http_requests_total 1"), "{text}");
    assert!(text.contains("uops_http_accept_errors_total 0"), "{text}");
}
#[test]
fn unknown_flags_exit_nonzero_with_usage() {
    let output = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--segment", "x.seg", "--bogus-flag"])
        .output()
        .expect("run serve");
    assert_eq!(output.status.code(), Some(2), "unknown flag must exit 2");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown option: --bogus-flag"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");

    let output = Command::new(env!("CARGO_BIN_EXE_serve")).output().expect("run serve");
    assert_eq!(output.status.code(), Some(2), "--segment is required");
    assert!(String::from_utf8_lossy(&output.stderr).contains("--segment is required"));

    let output =
        Command::new(env!("CARGO_BIN_EXE_serve")).arg("--help").output().expect("run serve");
    assert_eq!(output.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&output.stdout).contains("usage:"));
}

/// One raw HTTP/1.1 exchange on a fresh connection; returns (status,
/// header block, body bytes).
fn http_raw(addr: &str, request: &str) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator in {:?}", String::from_utf8_lossy(&raw)));
    let head = String::from_utf8_lossy(&raw[..head_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head}"));
    (status, head, raw[head_end + 4..].to_vec())
}

fn header_value<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines().find_map(|line| {
        let (n, v) = line.split_once(':')?;
        n.trim().eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

#[test]
fn head_requests_return_get_headers_without_a_body() {
    let (server, _segment) = boot_server(&["--cache-mb", "4"]);
    let target = "/v1/query?uarch=Skylake";
    let (status, get_head, get_body) =
        http_raw(&server.addr, &format!("GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n"));
    assert_eq!(status, 200);
    assert!(!get_body.is_empty());
    let (status, head_head, head_body) =
        http_raw(&server.addr, &format!("HEAD {target} HTTP/1.1\r\nConnection: close\r\n\r\n"));
    assert_eq!(status, 200);
    assert!(head_body.is_empty(), "HEAD must not carry a body");
    assert_eq!(get_head, head_head, "HEAD headers must be identical to GET's");
    assert_eq!(
        header_value(&head_head, "Content-Length").and_then(|v| v.parse::<usize>().ok()),
        Some(get_body.len()),
        "HEAD advertises the GET body length"
    );
    // HEAD shares GET's fast-lane entry.
    assert_eq!(stats_field(&server.addr, "raw", "hits"), 1);

    // Unsupported methods are still rejected.
    let (status, ..) =
        http_raw(&server.addr, "DELETE /v1/query HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 405);
}

#[test]
fn conditional_requests_revalidate_with_304() {
    let (server, _segment) = boot_server(&["--cache-mb", "4"]);
    let target = "/v1/query?uarch=Skylake&port=5";
    let (status, head, body) =
        http_raw(&server.addr, &format!("GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n"));
    assert_eq!(status, 200);
    let etag = header_value(&head, "ETag").expect("200 carries an ETag").to_string();
    assert_eq!(etag.len(), 18, "strong quoted 64-bit tag: {etag}");

    // Matching If-None-Match: 304, no body, same ETag echoed.
    let (status, not_modified_head, not_modified_body) = http_raw(
        &server.addr,
        &format!("GET {target} HTTP/1.1\r\nIf-None-Match: {etag}\r\nConnection: close\r\n\r\n"),
    );
    assert_eq!(status, 304);
    assert!(not_modified_body.is_empty(), "304 must not carry a body");
    assert_eq!(header_value(&not_modified_head, "ETag"), Some(etag.as_str()));
    assert_eq!(header_value(&not_modified_head, "Content-Length"), None);

    // Stale tag: full 200 with the body again.
    let (status, _, full_body) = http_raw(
        &server.addr,
        &format!(
            "GET {target} HTTP/1.1\r\nIf-None-Match: \"0000000000000000\"\r\n\
             Connection: close\r\n\r\n"
        ),
    );
    assert_eq!(status, 200);
    assert_eq!(full_body, body);

    // The error and stats endpoints never offer revalidation.
    let (status, head, _) =
        http_raw(&server.addr, "GET /v1/stats HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    assert_eq!(header_value(&head, "ETag"), None, "stats must not be revalidatable");
    let (status, head, _) =
        http_raw(&server.addr, "GET /v1/query?bogus=1 HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 400);
    assert_eq!(header_value(&head, "ETag"), None, "errors must not be revalidatable");
}

#[test]
fn etag_tracks_the_served_content() {
    // Two servers over different data: same plan, different ETags.
    let (server_a, _seg_a) = boot_server(&[]);
    let etag_of = |addr: &str| {
        let (status, head, _) =
            http_raw(addr, "GET /v1/query?uarch=Skylake HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200);
        header_value(&head, "ETag").expect("etag").to_string()
    };
    let a = etag_of(&server_a.addr);
    assert_eq!(a, etag_of(&server_a.addr), "ETag is stable for unchanged content");

    // Rewrite the segment with one record dropped and reboot.
    let mut snapshot = sample_snapshot();
    snapshot.records.pop();
    let boot = {
        let path = server_a.segment_path.clone();
        drop(server_a);
        Segment::write(&snapshot, &path).expect("rewrite segment");
        path
    };
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .arg("--segment")
        .arg(&boot)
        .args(["--addr", "127.0.0.1:0", "--threads", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut first_line = String::new();
    BufReader::new(stdout).read_line(&mut first_line).expect("read announce line");
    let addr = first_line
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("address")
        .to_string();
    let b = etag_of(&addr);
    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_file(&boot);
    assert_ne!(a, b, "a changed segment content hash must change every ETag");
}

#[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
#[test]
fn mmap_backed_server_answers_identically() {
    let (server, segment) = boot_server(&["--cache-mb", "4"]);
    let (mmap_server, _seg) = boot_server(&["--cache-mb", "4", "--mmap"]);
    let segment = Arc::new(segment);
    for target in
        ["/v1/query?uarch=Skylake", "/v1/query?uarch=Haswell&sort=latency", "/v1/record/ADC"]
    {
        let (status_a, body_a) = http_get(&server.addr, target);
        let (status_b, body_b) = http_get(&mmap_server.addr, target);
        assert_eq!((status_a, &body_a), (status_b, &body_b), "{target}");
    }
    // Ground truth: in-process execution over the owned segment.
    let plan = QueryPlan::parse("uarch=Skylake").expect("plan");
    let db = segment.db();
    let expected = JsonEncoder.encode_result(&QueryExec::new().run(&plan, &db));
    let (_, body) = http_get(&mmap_server.addr, "/v1/query?uarch=Skylake");
    assert_eq!(body, expected, "mmap-backed HTTP bytes == in-process bytes");
}

/// Reads one sample value out of a Prometheus text exposition;
/// `selector` is the full series name including any label set, e.g.
/// `uops_cache_hits_total{tier="raw"}`.
fn exposition_value(text: &str, selector: &str) -> u64 {
    text.lines()
        .find_map(|line| line.strip_prefix(selector)?.strip_prefix(' ')?.trim().parse().ok())
        .unwrap_or_else(|| panic!("no sample {selector} in exposition:\n{text}"))
}

#[test]
fn metrics_exposition_parses_and_counts_requests() {
    let (server, _segment) = boot_server(&["--cache-mb", "4"]);

    // A mixed request battery: 3 queries (1 miss + 2 raw hits), a record
    // lookup, and a 404.
    for target in ["/v1/query?uarch=Skylake", "/v1/query?uarch=Skylake", "/v1/query?uarch=Skylake"]
    {
        assert_eq!(http_get(&server.addr, target).0, 200);
    }
    assert_eq!(http_get(&server.addr, "/v1/record/ADC").0, 200);
    assert_eq!(http_get(&server.addr, "/nope").0, 404);

    let (status, head, body) =
        http_raw(&server.addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    assert!(header_value(&head, "Content-Type").unwrap_or("").starts_with("text/plain"), "{head}");
    let text = String::from_utf8(body).expect("exposition is UTF-8");

    // Every non-comment line is `name[{labels}] value` with a numeric
    // value, and every series is preceded by HELP/TYPE headers.
    let mut typed: Vec<&str> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            typed.push(rest.split_whitespace().next().expect("type line"));
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line {line}"));
        let name = series.split('{').next().expect("name");
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| typed.contains(base))
            .unwrap_or(name);
        assert!(typed.contains(&base), "series {name} has no TYPE header");
        assert!(value.parse::<f64>().is_ok() || value == "+Inf", "bad value in {line}");
    }

    // The battery above is fully accounted for: 5 requests, none of which
    // were /metrics (this scrape is only counted after it is written).
    assert_eq!(exposition_value(&text, "uops_http_requests_total"), 5);
    assert_eq!(exposition_value(&text, "uops_http_responses_total{class=\"2xx\"}"), 4);
    assert_eq!(exposition_value(&text, "uops_http_responses_total{class=\"4xx\"}"), 1);
    // Latency histogram counts match the requests served, per route.
    assert_eq!(
        exposition_value(&text, "uops_http_request_latency_nanoseconds_count{route=\"/v1/query\"}"),
        3
    );
    assert_eq!(
        exposition_value(
            &text,
            "uops_http_request_latency_nanoseconds_count{route=\"/v1/record\"}"
        ),
        1
    );
    assert_eq!(
        exposition_value(&text, "uops_http_request_latency_nanoseconds_count{route=\"other\"}"),
        1
    );
    // Tier attribution: 1 uncached execution, 2 raw fast-lane hits.
    assert_eq!(exposition_value(&text, "uops_service_latency_nanoseconds_count{tier=\"raw\"}"), 2);
    assert!(
        exposition_value(&text, "uops_service_latency_nanoseconds_count{tier=\"uncached\"}") >= 1
    );
    assert_eq!(exposition_value(&text, "uops_cache_hits_total{tier=\"raw\"}"), 2);
    // Executor stage histograms saw the uncached requests.
    assert!(exposition_value(&text, "uops_exec_stage_nanoseconds_count{stage=\"execute\"}") >= 2);
    // Pool tasks ran (one per connection; the scrape's own task is still
    // in flight, and the previous one may be mid-completion).
    assert!(exposition_value(&text, "uops_pool_tasks_executed_total") >= 4);

    // Counter monotonicity across scrapes: the scrape above is now also
    // counted, plus one more query.
    assert_eq!(http_get(&server.addr, "/v1/query?uarch=Skylake").0, 200);
    let (_, text2) = http_get(&server.addr, "/metrics");
    let text2 = String::from_utf8(text2).expect("utf-8");
    assert_eq!(exposition_value(&text2, "uops_http_requests_total"), 7);
    assert_eq!(
        exposition_value(&text2, "uops_http_request_latency_nanoseconds_count{route=\"/metrics\"}"),
        1
    );

    // The additive per-stage stats keys ride along in /v1/stats.
    let (_, stats_body) = http_get(&server.addr, "/v1/stats");
    let stats_text = String::from_utf8(stats_body).expect("utf-8");
    assert!(stats_text.contains("\"stages\""), "{stats_text}");
    assert!(stats_text.contains("\"p99_ns\""), "{stats_text}");
}

#[test]
fn metrics_is_always_fresh_and_never_cached() {
    let (server, _segment) = boot_server(&[]);
    assert_eq!(http_get(&server.addr, "/v1/query?uarch=Skylake").0, 200);

    let (status, head, first) =
        http_raw(&server.addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    assert_eq!(header_value(&head, "ETag"), None, "/metrics must not be revalidatable");

    // An identical repeat must be freshly rendered, not a cache hit: the
    // request counter inside the payload has moved on.
    let (status, _, second) =
        http_raw(&server.addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    let first = String::from_utf8(first).expect("utf-8");
    let second = String::from_utf8(second).expect("utf-8");
    assert!(
        exposition_value(&second, "uops_http_requests_total")
            > exposition_value(&first, "uops_http_requests_total"),
        "repeated scrapes must re-render, never serve cached bytes"
    );
    // ...and neither scrape entered a cache tier.
    assert_eq!(stats_field(&server.addr, "raw", "entries"), 1, "only the query is cached");
    assert_eq!(stats_field(&server.addr, "raw", "hits"), 0);
    assert_eq!(stats_field(&server.addr, "cache", "entries"), 1);

    // Query parameters are rejected rather than ignored.
    let (status, _) = http_get(&server.addr, "/metrics?x=1");
    assert_eq!(status, 400);
}

#[test]
fn no_telemetry_flag_disables_metrics_but_not_serving() {
    let (server, _segment) = boot_server(&["--no-telemetry"]);
    assert_eq!(http_get(&server.addr, "/v1/query?uarch=Skylake").0, 200);
    let (status, body) = http_get(&server.addr, "/metrics");
    assert_eq!(status, 404, "metrics must 404 with telemetry disabled");
    assert!(String::from_utf8_lossy(&body).contains("telemetry is disabled"));
    assert_eq!(http_get(&server.addr, "/v1/stats").0, 200);
}

#[test]
fn access_log_writes_sampled_json_lines_to_stderr() {
    // boot_server nulls stderr, so spawn directly with it piped.
    let snapshot = sample_snapshot();
    let segment_path =
        std::env::temp_dir().join(format!("uops_http_serve_log_{}.seg", std::process::id()));
    Segment::write(&snapshot, &segment_path).expect("write segment");
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .arg("--segment")
        .arg(&segment_path)
        .args(["--addr", "127.0.0.1:0", "--threads", "1", "--access-log=2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut first_line = String::new();
    reader.read_line(&mut first_line).expect("read announce line");
    let addr = first_line
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("address")
        .to_string();
    let mut second_line = String::new();
    reader.read_line(&mut second_line).expect("read metrics line");
    assert!(second_line.contains("/metrics"), "telemetry announce: {second_line}");

    // Four requests with every-2 sampling: exactly two logged lines.
    for _ in 0..4 {
        assert_eq!(http_get(&addr, "/v1/query?uarch=Skylake").0, 200);
    }
    // Give the background writer a beat to drain and flush before the
    // process is killed.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let _ = child.kill();
    let _ = child.wait();
    let mut stderr_text = String::new();
    child.stderr.take().expect("stderr piped").read_to_string(&mut stderr_text).expect("stderr");
    let _ = std::fs::remove_file(&segment_path);
    let lines: Vec<&str> = stderr_text.lines().filter(|l| l.starts_with('{')).collect();
    assert_eq!(lines.len(), 2, "every-2 sampling over 4 requests:\n{stderr_text}");
    for line in lines {
        assert!(line.contains("\"route\":\"/v1/query\""), "{line}");
        assert!(line.contains("\"status\":200"), "{line}");
        assert!(line.contains("\"tier\":"), "{line}");
        assert!(line.contains("\"total_us\":"), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }
}

#[test]
fn sort_orders_survive_the_wire() {
    let (server, segment) = boot_server(&["--cache-mb", "1"]);
    let db = segment.db();
    for sort in [SortKey::Mnemonic, SortKey::Latency, SortKey::Throughput, SortKey::UopCount] {
        let plan = Query::new().uarch("Skylake").sort_by_desc(sort).into_plan();
        let expected = JsonEncoder.encode_result(&QueryExec::new().run(&plan, &db));
        let (status, body) =
            http_get(&server.addr, &format!("/v1/query?{}", plan.to_query_string()));
        assert_eq!(status, 200);
        assert_eq!(body, expected, "{sort:?}");
    }
}

/// `SIGTERM` triggers a graceful drain: the server stops accepting,
/// finishes what it has, and the process exits 0 (not killed-by-signal).
#[cfg(target_os = "linux")]
#[test]
fn sigterm_drains_gracefully_and_exits_zero() {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGTERM: i32 = 15;

    let (mut server, _segment) = boot_server(&["--drain-timeout", "5"]);

    // A completed exchange proves the accept loop is live — and, since
    // the signal handler is installed before the accept loop spawns, that
    // the handler is in place before we send the signal.
    let (status, _) = http_get(&server.addr, "/v1/query?uarch=Skylake");
    assert_eq!(status, 200);

    assert_eq!(unsafe { kill(server.child.id() as i32, SIGTERM) }, 0, "signal delivery");

    // With no connections left open the drain completes quickly; a stuck
    // drain (or a death-by-signal) fails here rather than hanging.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let exit = loop {
        if let Some(exit) = server.child.try_wait().expect("try_wait") {
            break exit;
        }
        assert!(std::time::Instant::now() < deadline, "server did not drain within 10 s");
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    assert_eq!(exit.code(), Some(0), "graceful drain must exit 0, got {exit:?}");

    // New connections are refused (or reset) after the drain.
    match TcpStream::connect(&server.addr) {
        Ok(mut conn) => {
            let _ = write!(conn, "GET /v1/stats HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut buf = [0u8; 1];
            assert_eq!(conn.read(&mut buf).unwrap_or(0), 0, "no server behind the socket");
        }
        Err(_) => {} // refused outright: the listener is gone
    }
}

/// One `POST` exchange with a (possibly binary) body on a fresh
/// connection; returns (status, header block, body bytes).
fn http_post(addr: &str, target: &str, body: &[u8]) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .expect("send head");
    stream.write_all(body).expect("send body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator in {:?}", String::from_utf8_lossy(&raw)));
    let head = String::from_utf8_lossy(&raw[..head_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head}"));
    (status, head, raw[head_end + 4..].to_vec())
}

/// Decodes a `Transfer-Encoding: chunked` body back into the payload
/// bytes, asserting the framing (hex sizes, per-chunk CRLFs, terminal
/// zero chunk) along the way.
fn decode_chunked(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut at = 0;
    loop {
        let line_end = at
            + body[at..]
                .windows(2)
                .position(|w| w == b"\r\n")
                .unwrap_or_else(|| panic!("no chunk-size line at offset {at}"));
        let size = std::str::from_utf8(&body[at..line_end])
            .ok()
            .and_then(|hex| usize::from_str_radix(hex.trim(), 16).ok())
            .unwrap_or_else(|| panic!("bad chunk size {:?}", &body[at..line_end]));
        at = line_end + 2;
        if size == 0 {
            assert_eq!(&body[at..], b"\r\n", "terminal chunk ends the stream");
            return out;
        }
        out.extend_from_slice(&body[at..at + size]);
        assert_eq!(&body[at + size..at + size + 2], b"\r\n", "chunk payload ends with CRLF");
        at += size + 2;
    }
}

#[test]
fn batch_endpoint_matches_singles_for_text_and_tlv() {
    let (server, _segment) = boot_server(&["--cache-mb", "4"]);
    let plans = ["uarch=Skylake", "mnemonic=ADC&sort=throughput", "uarch=Haswell&min_uops=2"];

    // Ground truth: the single-query endpoint, one request per plan.
    let singles: Vec<Vec<u8>> = plans
        .iter()
        .map(|plan| {
            let (status, body) = http_get(&server.addr, &format!("/v1/query?{plan}"));
            assert_eq!(status, 200, "{plan}");
            body
        })
        .collect();

    let text_body = plans.join("\n");
    let (status, head, body) = http_post(&server.addr, "/v1/batch", text_body.as_bytes());
    assert_eq!(status, 200);
    assert_eq!(
        header_value(&head, "Content-Type"),
        Some("application/x-uops-batch"),
        "batch responses use the framed media type"
    );
    let frames = uops_serve::decode_batch_response(&body).expect("response framing");
    assert_eq!(frames.len(), plans.len());
    for (((frame_status, frame), single), plan) in frames.iter().zip(&singles).zip(&plans) {
        assert_eq!(*frame_status, 200, "{plan}");
        assert_eq!(frame, single, "batch frame must be byte-identical to the single for {plan}");
    }

    // The TLV request encoding produces the identical response bytes.
    let tlv = uops_serve::encode_batch_request(&plans);
    let (status, _, tlv_body) = http_post(&server.addr, "/v1/batch", &tlv);
    assert_eq!(status, 200);
    assert_eq!(tlv_body, body, "TLV and newline batches must frame identical bytes");

    // A bad plan mid-batch gets its own 400 frame; its neighbors answer.
    let (status, _, body) =
        http_post(&server.addr, "/v1/batch", b"uarch=Skylake\nbogus=1\nmnemonic=ADC");
    assert_eq!(status, 200, "per-plan errors do not fail the envelope");
    let frames = uops_serve::decode_batch_response(&body).expect("response framing");
    let statuses: Vec<u16> = frames.iter().map(|(s, _)| *s).collect();
    assert_eq!(statuses, [200, 400, 200]);
    assert!(String::from_utf8_lossy(&frames[1].1).contains("unknown query parameter"));

    // An empty batch is an envelope-level 400.
    let (status, _, _) = http_post(&server.addr, "/v1/batch", b"");
    assert_eq!(status, 400);
}

#[test]
fn plan_handles_round_trip_over_http() {
    let (server, _segment) = boot_server(&["--cache-mb", "4"]);

    // Register a plan; the response carries the fingerprint handle and
    // echoes the canonical spelling.
    let (status, _, body) = http_post(&server.addr, "/v1/plan", b"port=5&uarch=Skylake");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("registration is JSON");
    let fingerprint = text
        .split("\"fingerprint\": \"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or_else(|| panic!("no fingerprint in {text}"))
        .to_string();
    assert_eq!(fingerprint.len(), 16, "64-bit hex handle: {fingerprint}");
    assert!(text.contains("\"plan\": "), "{text}");

    // The handle answers byte-identically to the wire-plan spelling, in
    // both encodings.
    let (_, expected_json) = http_get(&server.addr, "/v1/query?uarch=Skylake&port=5");
    let (status, body) = http_get(&server.addr, &format!("/v1/plan/{fingerprint}"));
    assert_eq!(status, 200);
    assert_eq!(body, expected_json, "handle lookup == wire query (JSON)");
    let (_, expected_binary) =
        http_get(&server.addr, "/v1/query?uarch=Skylake&port=5&format=binary");
    let (status, body) = http_get(&server.addr, &format!("/v1/plan/{fingerprint}?format=binary"));
    assert_eq!(status, 200);
    assert_eq!(body, expected_binary, "handle lookup == wire query (binary)");

    // Re-registration is idempotent: same fingerprint back.
    let (status, _, body) = http_post(&server.addr, "/v1/plan", b"uarch=Skylake&port=5");
    assert_eq!(status, 200);
    assert!(
        String::from_utf8_lossy(&body).contains(&fingerprint),
        "canonicalized re-registration returns the same handle"
    );

    // Unknown handles 404; junk handles 400.
    let (status, _) = http_get(&server.addr, "/v1/plan/0000000000000000");
    assert_eq!(status, 404);
    let (status, _) = http_get(&server.addr, "/v1/plan/not-hex");
    assert_eq!(status, 400);
}

#[test]
fn wrong_methods_get_405_with_an_allow_header() {
    let (server, _segment) = boot_server(&[]);
    let cases = [
        ("DELETE", "/v1/query?uarch=Skylake", "GET, HEAD"),
        ("POST", "/v1/query", "GET, HEAD"),
        ("PUT", "/v1/record/ADD", "GET, HEAD"),
        ("GET", "/v1/batch", "POST"),
        ("PUT", "/v1/batch", "POST"),
        ("DELETE", "/v1/plan", "POST"),
        ("POST", "/v1/plan/0011223344556677", "GET, HEAD"),
        ("POST", "/metrics", "GET, HEAD"),
        ("PATCH", "/v1/stats", "GET, HEAD"),
    ];
    for (method, target, allow) in cases {
        let (status, head, _) = http_raw(
            &server.addr,
            &format!("{method} {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
        );
        assert_eq!(status, 405, "{method} {target}");
        assert_eq!(header_value(&head, "Allow"), Some(allow), "{method} {target}");
    }
    // Allowed methods never carry the header.
    let (status, head, _) = http_raw(
        &server.addr,
        "GET /v1/query?uarch=Skylake HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert_eq!(header_value(&head, "Allow"), None, "200s must not advertise Allow");
}

#[test]
fn oversize_bodies_are_refused_with_413() {
    let (server, _segment) = boot_server(&["--max-body", "64"]);
    let oversize = vec![b'a'; 200];
    let (status, _, body) = http_post(&server.addr, "/v1/batch", &oversize);
    assert_eq!(status, 413, "declared length past --max-body is refused up front");
    assert!(String::from_utf8_lossy(&body).contains("limit"));

    // Within the limit the endpoint still works.
    let (status, _, body) = http_post(&server.addr, "/v1/batch", b"uarch=Skylake");
    assert_eq!(status, 200);
    let frames = uops_serve::decode_batch_response(&body).expect("response framing");
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].0, 200);
}

#[test]
fn large_results_stream_chunked_with_byte_parity() {
    let (server, segment) = boot_server(&["--stream-threshold", "1", "--cache-mb", "4"]);
    let segment = Arc::new(segment);
    let db = segment.db();
    let plan = QueryPlan::parse("uarch=Skylake").expect("plan");

    // A 3-row result clears the forced 1-row threshold, so the response
    // arrives chunked — and its concatenated chunks are byte-identical to
    // the whole-body encoding.
    let expected_json = JsonEncoder.encode_result(&QueryExec::new().run(&plan, &db));
    let (status, head, body) = http_raw(
        &server.addr,
        "GET /v1/query?uarch=Skylake HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert_eq!(header_value(&head, "Transfer-Encoding"), Some("chunked"), "{head}");
    assert_eq!(header_value(&head, "Content-Length"), None, "chunked carries no length");
    assert_eq!(header_value(&head, "ETag"), None, "streams are not revalidatable");
    assert_eq!(decode_chunked(&body), expected_json, "chunks reassemble the exact encoding");

    let expected_binary = BinaryEncoder.encode_result(&QueryExec::new().run(&plan, &db));
    let (status, head, body) = http_raw(
        &server.addr,
        "GET /v1/query?uarch=Skylake&format=binary HTTP/1.1\r\nHost: t\r\n\
         Connection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert_eq!(header_value(&head, "Transfer-Encoding"), Some("chunked"), "{head}");
    assert_eq!(decode_chunked(&body), expected_binary, "binary chunks reassemble too");

    // HEAD of a streamed target: the chunked head, zero chunks.
    let (status, head, body) = http_raw(
        &server.addr,
        "HEAD /v1/query?uarch=Skylake HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert_eq!(header_value(&head, "Transfer-Encoding"), Some("chunked"), "{head}");
    assert!(body.is_empty(), "HEAD must not emit chunks");

    // XML always stays whole-body (its encoder needs the full document).
    let (status, head, _) = http_raw(
        &server.addr,
        "GET /v1/query?uarch=Skylake&format=xml HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert!(header_value(&head, "Content-Length").is_some(), "XML stays whole-body: {head}");

    // Sub-threshold results stay whole-body even with streaming armed.
    let (status, head, _) = http_raw(
        &server.addr,
        "GET /v1/record/DIV HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert!(header_value(&head, "Content-Length").is_some(), "1-row result: {head}");
}

#[cfg(target_os = "linux")]
#[test]
fn reactor_streams_batches_and_exposes_per_shard_metrics() {
    let (server, segment) = boot_server(&["--reactor=2", "--stream-threshold", "1"]);
    let segment = Arc::new(segment);

    // Chunked streaming over the reactor transport, byte-identical to the
    // in-process encoding.
    let plan = QueryPlan::parse("uarch=Skylake").expect("plan");
    let expected = JsonEncoder.encode_result(&QueryExec::new().run(&plan, &segment.db()));
    let (status, head, body) = http_raw(
        &server.addr,
        "GET /v1/query?uarch=Skylake HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert_eq!(header_value(&head, "Transfer-Encoding"), Some("chunked"), "{head}");
    assert_eq!(decode_chunked(&body), expected, "reactor chunks reassemble the encoding");

    // Batch POSTs (the reactor's body-read path) work end to end.
    let (status, _, body) = http_post(&server.addr, "/v1/batch", b"uarch=Skylake\nmnemonic=ADC");
    assert_eq!(status, 200);
    let frames = uops_serve::decode_batch_response(&body).expect("response framing");
    assert_eq!(frames.iter().map(|(s, _)| *s).collect::<Vec<_>>(), [200, 200]);

    // Per-shard accounting: both shards expose series, and every
    // connection so far was attributed to one of them. (Which shard the
    // kernel hands each connection to is its business, so only the sum is
    // asserted.)
    let (status, metrics) = http_get(&server.addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(metrics).expect("exposition is UTF-8");
    for shard in ["0", "1"] {
        assert!(
            text.contains(&format!("uops_http_shard_connections{{shard=\"{shard}\"}}")),
            "shard {shard} gauge missing:\n{text}"
        );
    }
    let accepted: u64 = ["0", "1"]
        .iter()
        .map(|shard| {
            exposition_value(&text, &format!("uops_http_shard_accepted_total{{shard=\"{shard}\"}}"))
        })
        .sum();
    assert!(accepted >= 3, "3 prior connections must be attributed to shards, saw {accepted}");
}

/// The live data plane end-to-end against the real binary: boot with
/// `--data-dir`, ingest a segment image over `POST /v1/ingest`, and see
/// the merged generation swap in with the new record queryable and both
/// the stats generation and the record count advanced. Without
/// `--data-dir`, ingest answers 403.
#[test]
fn ingest_publishes_a_new_generation_and_swaps_it_live() {
    let data_dir =
        std::env::temp_dir().join(format!("uops_http_serve_ingest_{}.d", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let dir_arg = data_dir.to_str().expect("utf-8 temp dir").to_string();
    let (server, _segment) = boot_server(&["--data-dir", &dir_arg]);

    assert_eq!(stats_field(&server.addr, "", "generation"), 1, "fresh dir bootstraps gen 1");
    let records_before = stats_field(&server.addr, "", "records");
    let (_, before_body) = http_get(&server.addr, "/v1/record/XABC");

    // Ingest one new record as a raw segment image.
    let mut extra = Snapshot::new("ingest update");
    extra.records.push(VariantRecord {
        mnemonic: "XABC".into(),
        variant: "R64, R64".into(),
        extension: "BASE".into(),
        uarch: "Skylake".into(),
        uop_count: 2,
        ports: vec![(0b0000_0011, 2)],
        tp_measured: 1.0,
        ..Default::default()
    });
    let image = Segment::encode(&extra);
    let (status, _, body) = http_post(&server.addr, "/v1/ingest", &image);
    let body = String::from_utf8_lossy(&body).to_string();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"generation\": 2"), "{body}");
    assert!(body.contains("\"swapped\": true"), "{body}");

    assert_eq!(stats_field(&server.addr, "", "generation"), 2);
    assert_eq!(stats_field(&server.addr, "", "records"), records_before + 1);
    // Two swaps so far: boot (onto generation 1) and the ingest.
    assert_eq!(stats_field(&server.addr, "", "swaps"), 2);
    let (status, record) = http_get(&server.addr, "/v1/record/XABC");
    assert_eq!(status, 200, "the ingested record must be queryable");
    assert_ne!(record, before_body, "the ingested record must change the response");
    assert!(String::from_utf8_lossy(&record).contains("XABC"));

    // Garbage neither magic claims is rejected with no store effect.
    let (status, _, body) = http_post(&server.addr, "/v1/ingest", b"not a segment");
    assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
    assert_eq!(stats_field(&server.addr, "", "generation"), 2);

    drop(server);
    let _ = std::fs::remove_dir_all(&data_dir);
}

/// `http_get` variant that tolerates non-200 statuses without panicking
/// in the helpers above.
fn http_get_status_body(addr: &str, target: &str) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator in {:?}", String::from_utf8_lossy(&raw)));
    let head = String::from_utf8_lossy(&raw[..head_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head}"));
    (status, head, raw[head_end + 4..].to_vec())
}

/// Ingest without `--data-dir` is refused: the store is immutable.
#[test]
fn ingest_without_a_data_dir_answers_403() {
    let (server, _segment) = boot_server(&[]);
    let (status, _, body) = http_post(&server.addr, "/v1/ingest", b"anything");
    assert_eq!(status, 403, "{}", String::from_utf8_lossy(&body));
    let (status, _, _) = http_get_status_body(&server.addr, "/v1/ingest");
    assert_eq!(status, 405, "ingest is POST-only");
}
