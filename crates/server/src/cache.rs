//! The sharded LRU response cache.
//!
//! Entries store **encoded response bytes** keyed by the 64-bit
//! fingerprint of the canonical request (see
//! [`uops_db::QueryPlan::fingerprint`]), so a hit skips plan resolution,
//! execution, *and* encoding — the whole request pipeline collapses to a
//! hash lookup plus an `Arc` clone. The map is split into shards, each
//! behind its own mutex, so concurrent readers on different shards never
//! contend; within a shard, a classic slab-backed doubly-linked LRU list
//! gives O(1) get/insert/evict.
//!
//! Two details worth calling out:
//!
//! * **Collision safety.** 64-bit fingerprints can collide in principle, so
//!   every entry also stores its canonical request string and a hit
//!   requires an exact match — a collision is a miss, never a wrong
//!   response.
//! * **Byte budget.** Capacity is bounded by payload bytes (plus a fixed
//!   per-entry overhead estimate), not entry count, because response sizes
//!   vary by orders of magnitude between a point lookup and an unbounded
//!   scan. The budget is split evenly across shards; eviction pops each
//!   shard's LRU tail until that shard fits.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use uops_telemetry::Counter;

/// Estimated bookkeeping bytes per entry (slab node, map slot, request
/// string header), counted against the byte budget so "many tiny entries"
/// cannot blow past it.
const ENTRY_OVERHEAD: usize = 128;

/// Index value meaning "no node" in the intrusive LRU list.
const NIL: usize = usize::MAX;

/// One cached, fully encoded response.
#[derive(Debug, Clone)]
pub struct CachedResponse {
    /// MIME type of the payload.
    pub content_type: &'static str,
    /// The strong entity tag of the payload (plan fingerprint ⊕ store
    /// content hash), stored so conditional requests (`If-None-Match` →
    /// `304`) are answered from the cache without touching the body.
    pub etag: u64,
    /// The encoded bytes, shared — a hit clones the `Arc`, not the bytes.
    pub body: Arc<[u8]>,
    /// The store generation whose bytes these are. Doubles as the epoch
    /// stamp: entries from any generation other than the cache's current
    /// epoch are misses on get and dropped on insert, so a request that
    /// raced a swap can never plant or resurrect stale bytes.
    pub generation: u64,
}

/// Counter snapshot of a [`ResponseCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that missed (including collisions).
    pub misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Responses too large to cache at all (bigger than one shard's
    /// budget); they are served but never stored, so a hot oversized
    /// response shows up here rather than masquerading as ordinary misses.
    pub uncacheable: u64,
    /// Live entries across all shards.
    pub entries: usize,
    /// Payload + overhead bytes currently held.
    pub bytes: usize,
    /// The configured byte budget (0 = caching disabled).
    pub capacity_bytes: usize,
}

struct Node {
    key: u64,
    request: String,
    response: CachedResponse,
    prev: usize,
    next: usize,
}

/// Identity hasher for maps keyed by an already-computed fnv1a-64 hash:
/// re-hashing a hash through SipHash would cost more than the bucket
/// probe it guards. fnv1a's multiplicative mixing leaves the low bits
/// well distributed, which is all `HashMap` bucket selection needs.
#[derive(Default, Clone, Copy)]
pub(crate) struct PrehashedKey(u64);

impl std::hash::Hasher for PrehashedKey {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _: &[u8]) {
        unreachable!("prehashed maps are keyed by u64, which hashes via write_u64");
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// A `HashMap` keyed by a precomputed fnv1a-64 hash.
pub(crate) type PrehashedMap<V> = HashMap<u64, V, std::hash::BuildHasherDefault<PrehashedKey>>;

/// One shard: an open-addressed map from fingerprint to slab slot plus an
/// intrusive LRU list threaded through the slab.
struct Shard {
    map: PrehashedMap<usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            map: PrehashedMap::default(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn entry_cost(node_request: &str, body: &[u8]) -> usize {
        node_request.len() + body.len() + ENTRY_OVERHEAD
    }

    fn remove_slot(&mut self, slot: usize) {
        self.detach(slot);
        let node = &self.slab[slot];
        self.bytes -= Shard::entry_cost(&node.request, &node.response.body);
        self.map.remove(&node.key);
        // Empty the node (cheap) and recycle the slot.
        self.slab[slot].request = String::new();
        self.slab[slot].response.body = Arc::from(&[][..]);
        self.free.push(slot);
    }
}

/// A sharded, byte-budgeted LRU cache of encoded responses. See the module
/// docs for the design.
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    capacity_bytes: usize,
    /// The store generation this cache currently serves; bumped (with a
    /// full flush) by [`ResponseCache::advance_epoch`] when the live
    /// store swaps.
    epoch: AtomicU64,
    // Live telemetry counters (wait-free, allocation-free); borrowable into
    // a `uops_telemetry::Registry` via the `*_counter()` accessors, so the
    // `/metrics` exposition reads the same atomics `stats()` snapshots.
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    uncacheable: Counter,
}

impl std::fmt::Debug for ResponseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ResponseCache")
            .field("shards", &self.shards.len())
            .field("stats", &stats)
            .finish()
    }
}

impl ResponseCache {
    /// Creates a cache holding at most `capacity_bytes` across `shards`
    /// shards (both clamped to at least 1 shard; a zero byte budget
    /// disables caching entirely — every get misses, inserts are dropped).
    #[must_use]
    pub fn new(capacity_bytes: usize, shards: usize) -> ResponseCache {
        let shards = shards.max(1);
        ResponseCache {
            shard_budget: capacity_bytes / shards,
            capacity_bytes,
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            epoch: AtomicU64::new(0),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
            uncacheable: Counter::new(),
        }
    }

    /// The live hit counter (for telemetry registration).
    #[must_use]
    pub fn hits_counter(&self) -> &Counter {
        &self.hits
    }

    /// The live miss counter (for telemetry registration).
    #[must_use]
    pub fn misses_counter(&self) -> &Counter {
        &self.misses
    }

    /// The live eviction counter (for telemetry registration).
    #[must_use]
    pub fn evictions_counter(&self) -> &Counter {
        &self.evictions
    }

    /// The live uncacheable-response counter (for telemetry registration).
    #[must_use]
    pub fn uncacheable_counter(&self) -> &Counter {
        &self.uncacheable
    }

    fn shard_for(&self, key: u64) -> &Mutex<Shard> {
        // The low bits of an FNV fingerprint are well mixed; spread on them.
        &self.shards[(key as usize) % self.shards.len()]
    }

    /// Looks up the response cached for `(key, request)`, promoting it to
    /// most-recently-used. The full `request` string must match the stored
    /// one — a fingerprint collision counts as a miss.
    #[must_use]
    pub fn get(&self, key: u64, request: &str) -> Option<CachedResponse> {
        self.get_matching(key, |stored| stored.as_bytes() == request.as_bytes())
    }

    /// [`ResponseCache::get`] for a request key held in pieces: a hit
    /// requires the stored request string to equal the concatenation of
    /// `parts`, compared piecewise so the caller never materializes the
    /// joined string. The batch path probes `["q/", enc, "?", plan-line]`
    /// allocation-free with the same collision safety as [`get`].
    ///
    /// [`get`]: ResponseCache::get
    #[must_use]
    pub fn get_parts(&self, key: u64, parts: &[&[u8]]) -> Option<CachedResponse> {
        self.get_matching(key, |stored| {
            let stored = stored.as_bytes();
            if stored.len() != parts.iter().map(|p| p.len()).sum::<usize>() {
                return false;
            }
            let mut at = 0;
            parts.iter().all(|part| {
                let matches = &stored[at..at + part.len()] == *part;
                at += part.len();
                matches
            })
        })
    }

    fn get_matching(&self, key: u64, matches: impl Fn(&str) -> bool) -> Option<CachedResponse> {
        if self.capacity_bytes == 0 {
            self.misses.inc();
            return None;
        }
        let epoch = self.epoch.load(Ordering::Relaxed);
        let mut shard = self.shard_for(key).lock().expect("cache shard mutex");
        let hit = shard.map.get(&key).copied().and_then(|slot| {
            (shard.slab[slot].response.generation == epoch && matches(&shard.slab[slot].request))
                .then_some(slot)
        });
        match hit {
            Some(slot) => {
                shard.detach(slot);
                shard.push_front(slot);
                let response = shard.slab[slot].response.clone();
                drop(shard);
                self.hits.inc();
                Some(response)
            }
            None => {
                drop(shard);
                self.misses.inc();
                None
            }
        }
    }

    /// Inserts (or replaces) the response for `(key, request)` and evicts
    /// least-recently-used entries until the shard fits its budget again.
    /// Responses larger than a whole shard budget are not cached, and
    /// responses whose generation stamp is not the cache's current epoch
    /// are dropped: the producing request pinned a store generation at
    /// entry, so a response computed against a pre-swap store can never
    /// be served once the swap's flush has run — even if the insert
    /// itself lands after the flush.
    pub fn insert(&self, key: u64, request: &str, response: CachedResponse) {
        if self.capacity_bytes == 0 || response.generation != self.epoch.load(Ordering::Relaxed) {
            return;
        }
        let cost = Shard::entry_cost(request, &response.body);
        if cost > self.shard_budget {
            self.uncacheable.inc();
            return;
        }
        let mut evicted = 0u64;
        {
            let mut shard = self.shard_for(key).lock().expect("cache shard mutex");
            if let Some(slot) = shard.map.get(&key).copied() {
                // Same fingerprint: replace (collision or refresh either way).
                shard.remove_slot(slot);
            }
            while shard.bytes + cost > self.shard_budget && shard.tail != NIL {
                let victim = shard.tail;
                shard.remove_slot(victim);
                evicted += 1;
            }
            let node = Node { key, request: request.to_string(), response, prev: NIL, next: NIL };
            let slot = match shard.free.pop() {
                Some(slot) => {
                    shard.slab[slot] = node;
                    slot
                }
                None => {
                    shard.slab.push(node);
                    shard.slab.len() - 1
                }
            };
            shard.push_front(slot);
            shard.map.insert(key, slot);
            shard.bytes += cost;
        }
        if evicted > 0 {
            self.evictions.add(evicted);
        }
    }

    /// Moves the cache to a new store generation: sets the epoch and
    /// flushes every shard. Returns how many entries were dropped. Cold
    /// path — called once per generation swap.
    pub fn advance_epoch(&self, epoch: u64) -> usize {
        self.epoch.store(epoch, Ordering::Relaxed);
        let mut flushed = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard mutex");
            flushed += shard.map.len();
            *shard = Shard::new();
        }
        flushed
    }

    /// The store generation this cache currently accepts and serves.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// A snapshot of the hit/miss/eviction counters and occupancy.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0;
        let mut bytes = 0;
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard mutex");
            entries += shard.map.len();
            bytes += shard.bytes;
        }
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            uncacheable: self.uncacheable.get(),
            entries,
            bytes,
            capacity_bytes: self.capacity_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response(payload: &str) -> CachedResponse {
        CachedResponse {
            content_type: "text/plain",
            etag: 7,
            body: Arc::from(payload.as_bytes()),
            generation: 0,
        }
    }

    fn cache_with_room_for(entries: usize) -> ResponseCache {
        // Single shard so eviction order is fully deterministic; payloads in
        // the tests are all `len == 1`.
        ResponseCache::new(entries * (ENTRY_OVERHEAD + 2), 1)
    }

    #[test]
    fn eviction_follows_lru_order() {
        let cache = cache_with_room_for(3);
        cache.insert(1, "a", response("A"));
        cache.insert(2, "b", response("B"));
        cache.insert(3, "c", response("C"));
        // Touch "a": it becomes most-recently-used, so "b" is now the tail.
        assert!(cache.get(1, "a").is_some());
        cache.insert(4, "d", response("D"));
        assert!(cache.get(2, "b").is_none(), "LRU entry b must be evicted");
        assert!(cache.get(1, "a").is_some(), "recently used entry survives");
        assert!(cache.get(3, "c").is_some());
        assert!(cache.get(4, "d").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn eviction_cascades_until_the_budget_fits() {
        let cache = cache_with_room_for(2);
        cache.insert(1, "a", response("A"));
        cache.insert(2, "b", response("B"));
        // An entry close to a whole shard's budget evicts both.
        let big = "x".repeat(ENTRY_OVERHEAD + 2);
        cache.insert(3, "c", response(&big));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.entries, 1);
        assert!(cache.get(3, "c").is_some());
    }

    #[test]
    fn counters_track_hits_misses_evictions() {
        let cache = cache_with_room_for(1);
        assert!(cache.get(7, "q").is_none());
        cache.insert(7, "q", response("Q"));
        assert!(cache.get(7, "q").is_some());
        assert!(cache.get(7, "q").is_some());
        cache.insert(8, "r", response("R")); // evicts q
        assert!(cache.get(7, "q").is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (2, 2, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0 && stats.bytes <= stats.capacity_bytes);
    }

    #[test]
    fn fingerprint_collisions_are_misses_not_wrong_answers() {
        let cache = cache_with_room_for(4);
        cache.insert(42, "query-one", response("1"));
        // Same fingerprint, different canonical request: must not be served
        // entry "1".
        assert!(cache.get(42, "query-two").is_none());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn split_key_lookups_match_piecewise_and_stay_collision_safe() {
        let cache = cache_with_room_for(4);
        cache.insert(9, "q/json?uarch=Skylake", response("S"));
        let hit = cache
            .get_parts(9, &[b"q/", b"json", b"?", b"uarch=Skylake"])
            .expect("piecewise-equal parts hit");
        assert_eq!(&hit.body[..], b"S");
        // Same total length, different bytes: a collision stays a miss.
        assert!(cache.get_parts(9, &[b"q/", b"json", b"?", b"uarch=Icelake"]).is_none());
        // Different total length misses before any byte compare.
        assert!(cache.get_parts(9, &[b"q/json?uarch=Skylake", b"x"]).is_none());
        // A piecewise hit promotes: it must keep the entry alive under
        // whole-string gets too.
        assert!(cache.get(9, "q/json?uarch=Skylake").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResponseCache::new(0, 4);
        cache.insert(1, "a", response("A"));
        assert!(cache.get(1, "a").is_none());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn oversized_responses_are_passed_through_uncached() {
        let cache = ResponseCache::new(64, 1);
        cache.insert(1, "big", response(&"x".repeat(1024)));
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().uncacheable, 1, "oversized inserts are counted");
        assert!(cache.get(1, "big").is_none());
    }

    #[test]
    fn replacement_updates_bytes_and_slots_recycle() {
        let cache = cache_with_room_for(8);
        for round in 0..32 {
            let body = format!("{round}");
            cache.insert(
                round % 8,
                "k",
                CachedResponse {
                    content_type: "text/plain",
                    etag: 7,
                    body: Arc::from(body.as_bytes()),
                    generation: 0,
                },
            );
        }
        let stats = cache.stats();
        assert!(stats.entries <= 8);
        assert!(stats.bytes <= stats.capacity_bytes);
    }

    #[test]
    fn epoch_advance_flushes_and_rejects_stale_inserts() {
        let cache = cache_with_room_for(4);
        cache.insert(1, "a", response("A"));
        assert!(cache.get(1, "a").is_some());

        assert_eq!(cache.advance_epoch(7), 1, "one live entry flushed");
        assert!(cache.get(1, "a").is_none(), "flushed on swap");

        // An insert stamped with the old generation (an in-flight request
        // that pinned the pre-swap store) is dropped, not served.
        cache.insert(1, "a", response("stale"));
        assert!(cache.get(1, "a").is_none());

        // Current-generation inserts flow normally.
        cache.insert(2, "b", CachedResponse { generation: 7, ..response("B") });
        assert_eq!(&cache.get(2, "b").expect("current epoch hit").body[..], b"B");
        assert_eq!(cache.epoch(), 7);
    }

    #[test]
    fn shards_partition_the_keyspace() {
        let cache = ResponseCache::new(16 * (ENTRY_OVERHEAD + 2), 4);
        for key in 0..16u64 {
            cache.insert(key, "k", response("V"));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 16, "even spread must not evict at 25% occupancy per shard");
        for key in 0..16u64 {
            assert!(cache.get(key, "k").is_some());
        }
    }
}
