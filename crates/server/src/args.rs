//! The small, shared command-line parser used by the workspace binaries
//! (`serve`, `build_db`, `serve_smoke`).
//!
//! Declarative: a [`CliSpec`] names the flags that take values, the boolean
//! flags, and how many positional arguments are allowed. Anything else —
//! an unknown flag, a flag missing its value, excess positionals — is an
//! error, and [`CliSpec::parse_or_exit`] turns errors into the
//! conventional CLI contract: message + usage on stderr, **exit status 2**
//! (unknown flags are never silently ignored), with `--help`/`-h` printing
//! usage and exiting 0.

use std::fmt::Display;
use std::str::FromStr;

/// What a binary accepts on its command line.
#[derive(Debug, Clone, Copy)]
pub struct CliSpec<'a> {
    /// Binary name, used in error messages.
    pub name: &'a str,
    /// The usage string printed by `--help` and on errors.
    pub usage: &'a str,
    /// Flags that consume the following argument (or an inline
    /// `--flag=value`) as their value.
    pub value_flags: &'a [&'a str],
    /// Flags that stand alone.
    pub bool_flags: &'a [&'a str],
    /// Flags usable either bare (like a boolean) or with an inline
    /// `--flag=value` — never consuming the following argument. Bare and
    /// valued forms both make [`ParsedArgs::flag`] true; only the valued
    /// form gives [`ParsedArgs::value`] something to return.
    pub optional_value_flags: &'a [&'a str],
    /// Maximum number of positional (non-flag) arguments.
    pub max_positional: usize,
}

/// The parsed command line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    values: Vec<(String, String)>,
    flags: Vec<String>,
    /// Positional arguments, in order.
    pub positional: Vec<String>,
}

impl ParsedArgs {
    /// The value of a `--flag VALUE` pair (last occurrence wins).
    #[must_use]
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.values.iter().rev().find(|(f, _)| f == flag).map(|(_, v)| v.as_str())
    }

    /// Whether a boolean flag was given.
    #[must_use]
    pub fn flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// Parses the value of `--flag` as `T`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the value does not parse.
    pub fn parsed_value<T>(&self, flag: &str) -> Result<Option<T>, String>
    where
        T: FromStr,
        T::Err: Display,
    {
        match self.value(flag) {
            None => Ok(None),
            Some(raw) => {
                raw.parse().map(Some).map_err(|e| format!("invalid value {raw:?} for {flag}: {e}"))
            }
        }
    }
}

impl CliSpec<'_> {
    /// Parses an argument iterator (exclude the program name).
    ///
    /// # Errors
    ///
    /// Returns a message for unknown flags, missing values, and excess
    /// positionals. `--help`/`-h` is reported as `Err` of the usage text
    /// marker (callers using [`CliSpec::parse_or_exit`] never see it).
    pub fn parse(&self, args: impl Iterator<Item = String>) -> Result<ParsedArgs, CliError> {
        let mut parsed = ParsedArgs::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            if arg == "--help" || arg == "-h" {
                return Err(CliError::Help);
            }
            // Inline `--flag=value` spelling (positionals containing '='
            // fall through untouched).
            if arg.starts_with("--") {
                if let Some((name, value)) = arg.split_once('=') {
                    if self.value_flags.contains(&name) {
                        parsed.values.push((name.to_string(), value.to_string()));
                    } else if self.optional_value_flags.contains(&name) {
                        parsed.flags.push(name.to_string());
                        parsed.values.push((name.to_string(), value.to_string()));
                    } else if self.bool_flags.contains(&name) {
                        return Err(CliError::Usage(format!("{name} does not take a value")));
                    } else {
                        return Err(CliError::Usage(format!("unknown option: {name}")));
                    }
                    continue;
                }
            }
            if self.value_flags.contains(&arg.as_str()) {
                let Some(value) = args.next() else {
                    return Err(CliError::Usage(format!("{arg} requires a value")));
                };
                parsed.values.push((arg, value));
            } else if self.bool_flags.contains(&arg.as_str())
                || self.optional_value_flags.contains(&arg.as_str())
            {
                parsed.flags.push(arg);
            } else if arg.starts_with('-') && arg != "-" {
                return Err(CliError::Usage(format!("unknown option: {arg}")));
            } else {
                if parsed.positional.len() >= self.max_positional {
                    return Err(CliError::Usage(if self.max_positional == 0 {
                        format!("unexpected argument: {arg}")
                    } else {
                        format!(
                            "at most {} positional argument(s) allowed, got extra: {arg}",
                            self.max_positional
                        )
                    }));
                }
                parsed.positional.push(arg);
            }
        }
        Ok(parsed)
    }

    /// Parses [`std::env::args`], exiting the process on `--help` (status
    /// 0) or any error (message + usage on stderr, status 2).
    #[must_use]
    pub fn parse_or_exit(&self) -> ParsedArgs {
        match self.parse(std::env::args().skip(1)) {
            Ok(parsed) => parsed,
            Err(CliError::Help) => {
                println!("usage: {}", self.usage);
                std::process::exit(0);
            }
            Err(CliError::Usage(message)) => self.exit_usage(&message),
        }
    }

    /// Prints `message` + usage to stderr and exits with status 2 — the
    /// shared error path for post-parse validation (bad flag combinations,
    /// unparseable values).
    pub fn exit_usage(&self, message: &str) -> ! {
        eprintln!("{}: {message}", self.name);
        eprintln!("usage: {}", self.usage);
        std::process::exit(2);
    }
}

/// Outcome of [`CliSpec::parse`] short of a parsed argument list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help` was requested.
    Help,
    /// A usage error (unknown flag, missing value, excess positional).
    Usage(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: CliSpec<'static> = CliSpec {
        name: "test",
        usage: "test [--threads N] [--serial] [--log[=N]] [PREFIX]",
        value_flags: &["--threads"],
        bool_flags: &["--serial"],
        optional_value_flags: &["--log"],
        max_positional: 1,
    };

    fn parse(args: &[&str]) -> Result<ParsedArgs, CliError> {
        SPEC.parse(args.iter().map(ToString::to_string))
    }

    #[test]
    fn parses_values_flags_and_positionals() {
        let parsed = parse(&["--threads", "4", "--serial", "out"]).expect("parse");
        assert_eq!(parsed.value("--threads"), Some("4"));
        assert_eq!(parsed.parsed_value::<usize>("--threads"), Ok(Some(4)));
        assert!(parsed.flag("--serial"));
        assert_eq!(parsed.positional, vec!["out"]);
        assert_eq!(parsed.value("--missing"), None);
        assert!(!parsed.flag("--missing"));
    }

    #[test]
    fn last_value_wins() {
        let parsed = parse(&["--threads", "2", "--threads", "8"]).expect("parse");
        assert_eq!(parsed.value("--threads"), Some("8"));
    }

    #[test]
    fn inline_equals_spelling_is_accepted() {
        let parsed = parse(&["--threads=4", "out"]).expect("parse");
        assert_eq!(parsed.parsed_value::<usize>("--threads"), Ok(Some(4)));
        assert_eq!(parsed.positional, vec!["out"]);
        // '=' in a positional stays positional.
        let parsed = parse(&["a=b"]).expect("parse");
        assert_eq!(parsed.positional, vec!["a=b"]);
        // Empty inline value is a value (validation is the caller's job).
        let parsed = parse(&["--threads="]).expect("parse");
        assert_eq!(parsed.value("--threads"), Some(""));
    }

    #[test]
    fn optional_value_flags_work_bare_and_valued() {
        let parsed = parse(&["--log"]).expect("parse");
        assert!(parsed.flag("--log"));
        assert_eq!(parsed.value("--log"), None);

        let parsed = parse(&["--log=16"]).expect("parse");
        assert!(parsed.flag("--log"));
        assert_eq!(parsed.parsed_value::<u64>("--log"), Ok(Some(16)));

        // Never consumes the next argument: "16" is positional here.
        let parsed = parse(&["--log", "16"]).expect("parse");
        assert!(parsed.flag("--log"));
        assert_eq!(parsed.value("--log"), None);
        assert_eq!(parsed.positional, vec!["16"]);
    }

    #[test]
    fn inline_value_on_a_boolean_or_unknown_flag_is_an_error() {
        assert_eq!(
            parse(&["--serial=yes"]),
            Err(CliError::Usage("--serial does not take a value".into()))
        );
        assert_eq!(parse(&["--nope=1"]), Err(CliError::Usage("unknown option: --nope".into())));
    }

    #[test]
    fn unknown_flags_are_errors_not_ignored() {
        assert_eq!(
            parse(&["--trheads", "4"]),
            Err(CliError::Usage("unknown option: --trheads".into()))
        );
    }

    #[test]
    fn missing_value_and_excess_positionals_are_errors() {
        assert!(matches!(parse(&["--threads"]), Err(CliError::Usage(_))));
        assert!(matches!(parse(&["a", "b"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn bad_typed_values_are_reported() {
        let parsed = parse(&["--threads", "many"]).expect("parse");
        let err = parsed.parsed_value::<usize>("--threads").unwrap_err();
        assert!(err.contains("many"), "{err}");
    }

    #[test]
    fn help_is_distinguished() {
        assert_eq!(parse(&["--help"]), Err(CliError::Help));
        assert_eq!(parse(&["-h"]), Err(CliError::Help));
    }
}
