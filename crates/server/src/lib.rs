//! # uops-serve
//!
//! The serving stack of the uops.info reproduction: the paper's artifact
//! is consumed as a *queried web resource* (downstream tools like uiCA hit
//! per-instruction lookup endpoints at high volume), and this crate serves
//! a characterization database to that kind of traffic. It is the top of a
//! three-layer split:
//!
//! 1. **db** (`uops-db`): the canonical [`QueryPlan`] (cache key + wire
//!    request), the [`uops_db::QueryExec`] executor, and deterministic
//!    [`uops_db::ResultEncoder`]s;
//! 2. **service** ([`QueryService`]): transport-agnostic — owns an `Arc`
//!    of a segment-backed database and **two cache tiers** of encoded
//!    bytes. The *fingerprint tier* (a sharded LRU [`ResponseCache`]
//!    keyed by the canonical plan fingerprint) makes a hit skip planning,
//!    execution, and encoding; the *raw fast lane* (a second tier keyed
//!    by the **verbatim request target**) additionally skips
//!    percent-decoding, plan parsing, canonicalization, and
//!    fingerprinting — a hot URL collapses to one hash, one map probe,
//!    and an `Arc` bump. Both tiers verify the full request string on
//!    hit, so a 64-bit collision is a miss, never a wrong answer.
//!    Every cacheable response carries a strong **ETag** (plan
//!    fingerprint ⊕ store content hash); `If-None-Match` revalidations
//!    answer `304 Not Modified` with no body at all.
//! 3. **transport** ([`Server`]): a dependency-free HTTP/1.1 server whose
//!    accept/worker loop runs on [`uops_pool::TaskPool`], routing `GET`
//!    and `HEAD` on `/v1/query`, `/v1/record/{mnemonic}`, `/v1/diff`, and
//!    `/v1/stats`. The hot path is **allocation-free and
//!    syscall-minimal**: requests parse in place out of a reusable
//!    per-connection buffer, responses assemble in a reusable scratch
//!    from precomputed header fragments, and head + body leave in a
//!    single vectored write (verified by a counting-global-allocator
//!    integration test driving real sockets).
//!
//! Responses over HTTP are byte-identical to in-process
//! `QueryExec` + encoder output for the same database — the transport adds
//! framing, never content — which is asserted end-to-end in this crate's
//! integration tests and CI's `serve-smoke` job.
//!
//! ## Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use uops_db::Segment;
//! use uops_serve::{QueryService, Server};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let segment = Arc::new(Segment::open("uops.seg")?);
//! let service = Arc::new(QueryService::from_segment(segment, 64 << 20));
//! let server = Server::bind("127.0.0.1:8080", service, 4)?;
//! println!("listening on http://{}", server.local_addr());
//! server.run(); // accept loop; never returns
//! # Ok(())
//! # }
//! ```
//!
//! Then: `curl 'http://127.0.0.1:8080/v1/query?uarch=Skylake&port=5'`.
//! Responses carry a strong `ETag`; a revalidation
//! (`curl -H 'If-None-Match: "<etag>"' ...`) returns `304 Not Modified`
//! with no body, and `curl -I` (`HEAD`) returns the headers alone. With
//! the `mmap` feature (`cargo build --features mmap`, 64-bit Unix),
//! `serve --mmap`
//! maps the segment file instead of reading it — O(header) open and
//! page-cache sharing across replicas ([`uops_db::Segment::open_mmap`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access_log;
pub mod args;
pub mod cache;
pub mod fault;
pub mod http;
pub mod metrics;
#[cfg(target_os = "linux")]
pub mod net;
pub mod service;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use uops_db::plan::decode_component;
use uops_db::{GenerationStore, QueryPlan, Segment};
use uops_pool::TaskPool;
use uops_telemetry::{saturating_ns, Span};

pub use access_log::{AccessEntry, AccessLog};
pub use cache::{CacheStats, CachedResponse, ResponseCache};
pub use metrics::{render_metrics, Route, ServerMetrics};
pub use service::{
    decode_batch_response, encode_batch_request, Encoding, QueryService, ResponseTier,
    ServiceResponse, ServiceStats,
};

/// How long an idle keep-alive connection may sit between requests.
const KEEP_ALIVE_TIMEOUT: Duration = Duration::from_secs(5);
/// Default cap on request bodies (`POST /v1/batch`, `POST /v1/plan`);
/// larger declared bodies are refused with `413` before a byte is read.
const DEFAULT_MAX_BODY: usize = 1 << 20;
/// `Allow` value for the read-only routes.
const ALLOW_READ: &str = "GET, HEAD";
/// `Allow` value for the body-carrying routes (`/v1/batch`, `/v1/plan`).
const ALLOW_POST: &str = "POST";
/// How long a write may sit with zero bytes accepted by the peer before
/// the connection is evicted as a slow reader.
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(5);
/// Most requests served over one connection before it is closed.
const MAX_REQUESTS_PER_CONNECTION: usize = 1024;

/// Preformatted 503 sent to connections rejected at admission, before a
/// worker or reactor slot is ever assigned. Static so the reject path
/// allocates nothing — overload is exactly when allocation pressure
/// hurts most — and framed `Connection: close` so clients don't retry on
/// the doomed socket. The body matches
/// [`service::QueryService`]'s shed response.
pub(crate) const OVERLOAD_RESPONSE: &[u8] = b"HTTP/1.1 503 Service Unavailable\r\n\
Content-Type: application/json\r\n\
Content-Length: 46\r\n\
Retry-After: 1\r\n\
Connection: close\r\n\
\r\n\
{\"error\": \"server overloaded, retry shortly\"}\n";

/// Answers one request by its verbatim target, trying the raw fast lane
/// first: a repeated hot URL is served straight from the raw-target cache
/// tier — no percent-decoding, no plan parsing, no canonicalization, no
/// fingerprinting, no allocation — falling through to [`route`] (and the
/// fingerprint tier inside the service) on a miss, after which cacheable
/// 200s are promoted into the fast lane for the next identical target.
///
/// `HEAD` shares `GET`'s cache entries; the transport suppresses the body.
#[must_use]
pub fn respond(service: &QueryService, method: &str, target: &str) -> ServiceResponse {
    if method != "GET" && method != "HEAD" {
        return ServiceResponse::error(405, "only GET and HEAD are supported");
    }
    if let Some(hit) = service.raw_response(target) {
        return hit;
    }
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };
    let response = route(service, "GET", path, query);
    // Promote cacheable results into the fast lane. Errors carry no ETag
    // and /v1/stats would cache its own staleness; both stay out.
    if response.status == 200 && path != "/v1/stats" {
        service.raw_store(target, &response);
    }
    response
}

/// Routes one parsed request to the service. Transport-independent (and
/// directly testable): the HTTP layer only frames what this returns.
/// `HEAD` routes exactly like `GET` (the transport suppresses the body).
#[must_use]
pub fn route(service: &QueryService, method: &str, path: &str, query: &str) -> ServiceResponse {
    if method != "GET" && method != "HEAD" {
        return ServiceResponse::error(405, "only GET and HEAD are supported");
    }
    // Split the format selector off the query string; the remaining pairs
    // belong to the endpoint (and QueryPlan parsing stays strict).
    let pairs = match uops_db::plan::parse_query_pairs(query) {
        Ok(pairs) => pairs,
        Err(e) => return ServiceResponse::error(400, &e.to_string()),
    };
    let (rest, encoding) = match split_format(pairs) {
        Ok(split) => split,
        Err(response) => return response,
    };
    let format_given = encoding.is_some();
    let encoding = encoding.unwrap_or(Encoding::Json);

    // A `(key, slot)` assignment that is as strict about duplicates as
    // QueryPlan's own parser: the second occurrence is a 400, never a
    // silent last-win.
    fn assign(slot: &mut Option<String>, key: &str, value: String) -> Result<(), ServiceResponse> {
        if slot.replace(value).is_some() {
            return Err(ServiceResponse::error(400, &format!("duplicate query parameter {key:?}")));
        }
        Ok(())
    }

    match path {
        "/v1/query" => {
            // The plan-parse stage of the uncached pipeline (mirrors
            // QueryService::query_wire for the wire-string entry point).
            let span = Span::start(&service.exec_stage_metrics().parse_ns);
            let parsed = QueryPlan::from_pairs(rest);
            metrics::stage_scratch::set_parse(span.finish());
            match parsed {
                Ok(plan) => service.query(&plan, encoding),
                Err(e) => ServiceResponse::error(400, &e.to_string()),
            }
        }
        "/v1/diff" => {
            let mut base = None;
            let mut other = None;
            for (key, value) in rest {
                let result = match key.as_str() {
                    "base" => assign(&mut base, &key, value),
                    "other" => assign(&mut other, &key, value),
                    _ => {
                        return ServiceResponse::error(
                            400,
                            &format!("unknown diff parameter {key:?}"),
                        );
                    }
                };
                if let Err(response) = result {
                    return response;
                }
            }
            match (base, other) {
                (Some(base), Some(other)) => service.diff(&base, &other, encoding),
                _ => ServiceResponse::error(400, "diff requires base= and other="),
            }
        }
        "/v1/stats" => {
            if !rest.is_empty() || format_given {
                return ServiceResponse::error(400, "stats takes no parameters");
            }
            service.stats_response()
        }
        _ => match path.strip_prefix("/v1/record/") {
            Some(raw_name) if !raw_name.is_empty() && !raw_name.contains('/') => {
                // Path segments decode percent-escapes only — unlike query
                // components, a literal `+` is a literal plus (RFC 3986),
                // so shield it from decode_component's `+`-to-space rule.
                let name = match decode_component(&raw_name.replace('+', "%2B")) {
                    Ok(name) => name,
                    Err(e) => return ServiceResponse::error(400, &e.to_string()),
                };
                let mut uarch = None;
                for (key, value) in rest {
                    let result = match key.as_str() {
                        "uarch" => assign(&mut uarch, &key, value),
                        _ => {
                            return ServiceResponse::error(
                                400,
                                &format!("unknown record parameter {key:?}"),
                            );
                        }
                    };
                    if let Err(response) = result {
                        return response;
                    }
                }
                service.record(&name, uarch.as_deref(), encoding)
            }
            _ => ServiceResponse::error(404, &format!("no route for {path}")),
        },
    }
}

/// Splits the `format` selector out of parsed query pairs, as strict
/// about duplicates and unknown values as `QueryPlan`'s own parser.
fn split_format(
    pairs: Vec<(String, String)>,
) -> Result<(Vec<(String, String)>, Option<Encoding>), ServiceResponse> {
    let mut encoding = None;
    let mut rest: Vec<(String, String)> = Vec::with_capacity(pairs.len());
    for (key, value) in pairs {
        if key == "format" {
            // As strict as QueryPlan's own duplicate-key rejection: two
            // `format` values must not silently last-win.
            if encoding.is_some() {
                return Err(ServiceResponse::error(400, "duplicate query parameter \"format\""));
            }
            match Encoding::from_wire_name(&value) {
                Some(enc) => encoding = Some(enc),
                None => {
                    return Err(ServiceResponse::error(
                        400,
                        &format!("unknown format {value:?} (expected json|binary|xml)"),
                    ));
                }
            }
        } else {
            rest.push((key, value));
        }
    }
    Ok((rest, encoding))
}

/// Parses a `/v1/query` query string into `(plan, encoding)` with the
/// same strictness (and the same parse-stage timing) as [`route`]'s
/// `/v1/query` arm.
fn parse_query_plan(
    service: &QueryService,
    query: &str,
) -> Result<(QueryPlan, Encoding), ServiceResponse> {
    let pairs = match uops_db::plan::parse_query_pairs(query) {
        Ok(pairs) => pairs,
        Err(e) => return Err(ServiceResponse::error(400, &e.to_string())),
    };
    let (rest, encoding) = split_format(pairs)?;
    let span = Span::start(&service.exec_stage_metrics().parse_ns);
    let parsed = QueryPlan::from_pairs(rest);
    metrics::stage_scratch::set_parse(span.finish());
    match parsed {
        Ok(plan) => Ok((plan, encoding.unwrap_or(Encoding::Json))),
        Err(e) => Err(ServiceResponse::error(400, &e.to_string())),
    }
}

/// Parses a query string that may carry **only** a `format` selector
/// (`/v1/batch`, `/v1/plan/{fingerprint}`).
fn format_only(query: &str, endpoint: &str) -> Result<Encoding, ServiceResponse> {
    let pairs = match uops_db::plan::parse_query_pairs(query) {
        Ok(pairs) => pairs,
        Err(e) => return Err(ServiceResponse::error(400, &e.to_string())),
    };
    let (rest, encoding) = split_format(pairs)?;
    if let Some((key, _)) = rest.first() {
        return Err(ServiceResponse::error(400, &format!("unknown {endpoint} parameter {key:?}")));
    }
    Ok(encoding.unwrap_or(Encoding::Json))
}

/// [`respond`] with large-result streaming on `/v1/query`: the raw fast
/// lane is probed first (streams never enter it, so a hit is always a
/// whole body), then `/v1/query` routes through
/// [`QueryService::query_streaming`] — a result page past the streaming
/// threshold comes back as a [`service::StreamBody`] for chunked
/// emission instead of a materialized body. Every other path behaves
/// exactly like [`respond`]. Caller guarantees `method` is `GET`/`HEAD`.
fn respond_streaming(service: &QueryService, target: &str) -> service::QueryReply {
    use service::QueryReply;
    if let Some(hit) = service.raw_response(target) {
        return QueryReply::Full(hit);
    }
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };
    if path == "/v1/query" {
        match parse_query_plan(service, query) {
            Ok((plan, encoding)) => match service.query_streaming(&plan, encoding) {
                QueryReply::Full(response) => {
                    if response.status == 200 {
                        service.raw_store(target, &response);
                    }
                    QueryReply::Full(response)
                }
                stream => stream,
            },
            Err(response) => QueryReply::Full(response),
        }
    } else {
        let response = route(service, "GET", path, query);
        if response.status == 200 && path != "/v1/stats" {
            service.raw_store(target, &response);
        }
        QueryReply::Full(response)
    }
}

/// Telemetry and logging options for a [`Server`]
/// ([`Server::bind_with`], [`Server::bind_reactor`]); [`Default`]
/// matches [`Server::bind`]: telemetry on, no access log, 5 s keep-alive
/// timeout.
#[derive(Debug)]
pub struct ServerOptions {
    /// Disable all metric recording and the `/metrics` endpoint (which
    /// then answers 404). The decision is made once at bind time; the hot
    /// path pays a single predictable branch either way.
    pub no_telemetry: bool,
    /// Sampled structured access log (see [`AccessLog`]); `None` logs
    /// nothing.
    pub access_log: Option<AccessLog>,
    /// How long an idle keep-alive connection may sit between requests
    /// before it is closed. On the thread-per-connection transport this
    /// is the socket read timeout; on the reactor it is enforced by the
    /// timer wheel (coarse ticks of `timeout / 8`, so eviction lands
    /// within ~12% past the nominal deadline).
    pub keep_alive_timeout: Duration,
    /// Cap on concurrently served connections (`0` = unlimited). Beyond
    /// it, new connections are answered with a preformatted static 503 +
    /// `Retry-After` and closed — rejected, never queued. The reactor
    /// divides the cap evenly across shards.
    pub max_inflight: usize,
    /// Cap on connections queued for a pool worker (`0` = unbounded;
    /// thread-per-connection transport only). A full queue rejects with
    /// the same static 503 instead of growing without bound.
    pub queue_depth: usize,
    /// Per-request deadline budget, armed when the parsed request is in
    /// hand and checked between the execute/encode pipeline stages. Only
    /// uncached work is shed on expiry — both cache tiers keep serving
    /// under overload. `None` disables deadline shedding.
    pub request_deadline: Option<Duration>,
    /// How long a response write may sit with zero bytes accepted before
    /// the connection is evicted as a slow reader (so a stalled peer
    /// cannot pin a response buffer forever). On the
    /// thread-per-connection transport this is the socket send timeout;
    /// on the reactor the timer wheel enforces it with the same coarse
    /// ticks as `keep_alive_timeout`.
    pub write_stall_timeout: Duration,
    /// Cap on request bodies in bytes (`0` = the 1 MiB default). A
    /// request declaring a larger `Content-Length` is answered `413`
    /// without reading a byte of the body, and the connection closes
    /// (the unread body would desynchronize keep-alive framing).
    pub max_body: usize,
    /// Durable generation store backing `POST /v1/ingest`. `None` (the
    /// default) disables ingestion: the route answers `403` and the
    /// served store is immutable for the process lifetime.
    pub ingest_store: Option<Arc<GenerationStore>>,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            no_telemetry: false,
            access_log: None,
            keep_alive_timeout: KEEP_ALIVE_TIMEOUT,
            max_inflight: 0,
            queue_depth: 0,
            request_deadline: None,
            write_stall_timeout: WRITE_STALL_TIMEOUT,
            max_body: DEFAULT_MAX_BODY,
            ingest_store: None,
        }
    }
}

/// Everything a worker needs to serve one connection; shared across
/// connections (and, on the reactor, across shards) behind one `Arc` so
/// accepting costs a single clone.
pub(crate) struct ConnState {
    pub(crate) service: Arc<QueryService>,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) access_log: Option<AccessLog>,
    pub(crate) telemetry: bool,
    pub(crate) keep_alive_timeout: Duration,
    pub(crate) max_inflight: usize,
    pub(crate) request_deadline: Option<Duration>,
    pub(crate) write_stall_timeout: Duration,
    pub(crate) max_body: usize,
    pub(crate) ingest_store: Option<Arc<GenerationStore>>,
    /// Connections currently owned by a pool worker (running or queued).
    /// Maintained independently of telemetry so admission control works
    /// with `--no-telemetry`. The reactor tracks occupancy per shard via
    /// its slab instead.
    pub(crate) inflight: AtomicUsize,
}

/// Cross-thread shutdown plumbing shared by the server's threads and its
/// [`ServerHandle`]: a flag, plus transport-appropriate wakeups — the
/// blocking accept loop is woken by a throwaway connection, reactor
/// shards by their eventfds.
pub(crate) struct ShutdownSignal {
    flag: AtomicBool,
    /// Set (before `flag`) when the shutdown should drain: stop
    /// accepting but let in-flight requests finish. Cleared again by
    /// [`ShutdownSignal::trigger`] if a drain deadline forces a hard
    /// stop.
    graceful: AtomicBool,
    #[cfg(target_os = "linux")]
    wakes: Vec<Arc<net::sys::EventFd>>,
}

impl ShutdownSignal {
    fn new() -> ShutdownSignal {
        ShutdownSignal {
            flag: AtomicBool::new(false),
            graceful: AtomicBool::new(false),
            #[cfg(target_os = "linux")]
            wakes: Vec::new(),
        }
    }

    #[cfg(target_os = "linux")]
    fn with_wakes(wakes: Vec<Arc<net::sys::EventFd>>) -> ShutdownSignal {
        ShutdownSignal { flag: AtomicBool::new(false), graceful: AtomicBool::new(false), wakes }
    }

    pub(crate) fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    pub(crate) fn is_graceful(&self) -> bool {
        self.graceful.load(Ordering::SeqCst)
    }

    fn trigger(&self, addr: SocketAddr) {
        self.graceful.store(false, Ordering::SeqCst);
        self.flag.store(true, Ordering::SeqCst);
        self.wake(addr);
    }

    fn trigger_graceful(&self, addr: SocketAddr) {
        self.graceful.store(true, Ordering::SeqCst);
        self.flag.store(true, Ordering::SeqCst);
        self.wake(addr);
    }

    fn wake(&self, addr: SocketAddr) {
        #[cfg(target_os = "linux")]
        if !self.wakes.is_empty() {
            for wake in &self.wakes {
                wake.notify();
            }
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(addr);
    }
}

/// The two ways a [`Server`] can move bytes.
enum Transport {
    /// Thread-per-connection: a blocking accept loop handing connections
    /// to a [`TaskPool`] of workers (the default).
    Pool { listener: TcpListener, pool: TaskPool },
    /// Event-driven: N epoll reactor shards, each with its own
    /// `SO_REUSEPORT` listener ([`Server::bind_reactor`]).
    #[cfg(target_os = "linux")]
    Reactor { shards: Vec<net::reactor::Shard> },
}

/// The HTTP/1.1 server. The default transport is a listener plus a
/// [`TaskPool`] of workers, one task per accepted connection
/// (keep-alive: a worker serves a connection until it closes, times out
/// idle, or exhausts its request budget). On Linux,
/// [`Server::bind_reactor`] selects the event-driven transport instead:
/// epoll reactor shards multiplexing thousands of non-blocking
/// connections per thread — same routing, same caches, same telemetry,
/// different concurrency regime (see [`net`]).
pub struct Server {
    transport: Transport,
    state: Arc<ConnState>,
    local_addr: SocketAddr,
    shutdown: Arc<ShutdownSignal>,
}

/// A handle to a server running on background threads
/// ([`Server::spawn`]); dropping it without [`ServerHandle::shutdown`]
/// leaves the server running detached.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<ShutdownSignal>,
    accept_thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains in-flight connections, and joins the accept
    /// thread.
    pub fn shutdown(self) {
        self.shutdown.trigger(self.local_addr);
        let _ = self.accept_thread.join();
    }

    /// Graceful drain: stops accepting, lets in-flight requests finish
    /// (keep-alive connections are closed after their current response),
    /// and joins the accept thread. If the drain has not completed within
    /// `drain_timeout`, falls back to the hard shutdown path.
    pub fn shutdown_graceful(self, drain_timeout: Duration) {
        self.shutdown.trigger_graceful(self.local_addr);
        let deadline = Instant::now() + drain_timeout;
        while !self.accept_thread.is_finished() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        if !self.accept_thread.is_finished() {
            // Deadline blown: demote to a hard stop and wake the
            // transport again so it observes the downgrade.
            self.shutdown.trigger(self.local_addr);
        }
        let _ = self.accept_thread.join();
    }
}

impl Server {
    /// Binds `addr` and prepares `threads` workers (the accept loop itself
    /// runs on the caller via [`Server::run`], or on a background thread
    /// via [`Server::spawn`]).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, service: Arc<QueryService>, threads: usize) -> std::io::Result<Server> {
        Server::bind_with(addr, service, threads, ServerOptions::default())
    }

    /// [`Server::bind`] with explicit [`ServerOptions`] (telemetry off,
    /// access log).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_with(
        addr: &str,
        service: Arc<QueryService>,
        threads: usize,
        options: ServerOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let telemetry = !options.no_telemetry;
        let metrics = Arc::new(ServerMetrics::new());
        let pool_metrics = telemetry.then(|| Arc::clone(&metrics.pool));
        let pool = TaskPool::with_queue_limit(
            threads,
            "uops-serve-worker",
            pool_metrics,
            options.queue_depth,
        );
        Ok(Server {
            transport: Transport::Pool { listener, pool },
            state: Arc::new(ConnState {
                service,
                metrics,
                access_log: options.access_log,
                telemetry,
                keep_alive_timeout: options.keep_alive_timeout,
                max_inflight: options.max_inflight,
                request_deadline: options.request_deadline,
                write_stall_timeout: options.write_stall_timeout,
                max_body: if options.max_body == 0 { DEFAULT_MAX_BODY } else { options.max_body },
                ingest_store: options.ingest_store,
                inflight: AtomicUsize::new(0),
            }),
            local_addr,
            shutdown: Arc::new(ShutdownSignal::new()),
        })
    }

    /// Binds the event-driven reactor transport (Linux only): `shards`
    /// single-threaded epoll event loops, each owning its own
    /// `SO_REUSEPORT` listener on `addr` and multiplexing its share of
    /// the connections through non-blocking state machines. Prefer this
    /// over [`Server::bind`] when the workload is many concurrent,
    /// mostly idle keep-alive connections (10k+): a parked connection
    /// costs a slab entry and an fd, not a thread.
    ///
    /// Routing, caching, telemetry, and the access log are identical to
    /// the thread-per-connection transport; responses are byte-for-byte
    /// the same.
    ///
    /// # Errors
    ///
    /// Propagates bind and epoll/eventfd setup failures.
    #[cfg(target_os = "linux")]
    pub fn bind_reactor(
        addr: &str,
        service: Arc<QueryService>,
        shards: usize,
        options: ServerOptions,
    ) -> std::io::Result<Server> {
        let shards = shards.max(1);
        let (local_addr, listeners) = net::listener::bind_shard_listeners(addr, shards)?;
        let telemetry = !options.no_telemetry;
        let state = Arc::new(ConnState {
            service,
            metrics: Arc::new(ServerMetrics::new()),
            access_log: options.access_log,
            telemetry,
            keep_alive_timeout: options.keep_alive_timeout,
            max_inflight: options.max_inflight,
            request_deadline: options.request_deadline,
            write_stall_timeout: options.write_stall_timeout,
            max_body: if options.max_body == 0 { DEFAULT_MAX_BODY } else { options.max_body },
            ingest_store: options.ingest_store,
            inflight: AtomicUsize::new(0),
        });
        state.metrics.shard_count.store(shards, Ordering::Relaxed);
        // Surface per-shard connection balance in /v1/stats: the gauges
        // already exist for /metrics; this renders the raw vectors plus a
        // skew summary so rebalance drift is visible without Prometheus.
        {
            let metrics = Arc::clone(&state.metrics);
            state.service.set_stats_extension(move |body| {
                use std::fmt::Write as _;
                let shards =
                    metrics.shard_count.load(Ordering::Relaxed).min(metrics::MAX_SHARDS).max(1);
                let mut min = i64::MAX;
                let mut max = 0_i64;
                let mut total = 0_i64;
                let _ = write!(body, ",\n  \"shards\": {{\"count\": {shards}, \"connections\": [");
                for shard in 0..shards {
                    let live = metrics.shard_connections[shard].get();
                    if shard > 0 {
                        body.push_str(", ");
                    }
                    let _ = write!(body, "{live}");
                    min = min.min(live);
                    max = max.max(live);
                    total += live;
                }
                body.push_str("], \"accepted\": [");
                for shard in 0..shards {
                    if shard > 0 {
                        body.push_str(", ");
                    }
                    let _ = write!(body, "{}", metrics.shard_accepted[shard].get());
                }
                let _ = write!(
                    body,
                    "], \"skew\": {{\"min\": {min}, \"max\": {max}, \"mean\": {}, \"spread\": {}}}}}",
                    total / shards as i64,
                    max - min,
                );
            });
        }
        let wakes = (0..shards)
            .map(|_| net::sys::EventFd::new().map(Arc::new))
            .collect::<std::io::Result<Vec<_>>>()?;
        let shutdown = Arc::new(ShutdownSignal::with_wakes(wakes.clone()));
        // Divide the connection cap evenly; any remainder rounds up so
        // the shards' caps sum to at least the requested total.
        let conn_cap = if options.max_inflight == 0 {
            0
        } else {
            options.max_inflight.div_ceil(shards).max(1)
        };
        let mut shard_loops = Vec::with_capacity(shards);
        for (index, (listener, wake)) in listeners.into_iter().zip(wakes).enumerate() {
            shard_loops.push(net::reactor::Shard::new(
                listener,
                wake,
                Arc::clone(&state),
                Arc::clone(&shutdown),
                conn_cap,
                index,
            )?);
        }
        Ok(Server {
            transport: Transport::Reactor { shards: shard_loops },
            state,
            local_addr,
            shutdown,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// This server's transport metric set (live atomics — read them any
    /// time, e.g. for benchmark percentile extraction).
    #[must_use]
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.state.metrics)
    }

    /// Whether this server records telemetry and serves `/metrics`.
    #[must_use]
    pub fn telemetry_enabled(&self) -> bool {
        self.state.telemetry
    }

    /// Runs the server on the calling thread until shutdown is signalled
    /// (never, unless [`Server::spawn`] wrapped it): the accept loop for
    /// the pool transport, shard 0's event loop (with shards 1..N on
    /// their own threads) for the reactor.
    pub fn run(self) {
        let Server { transport, state, shutdown, .. } = self;
        match transport {
            Transport::Pool { listener, pool } => run_pool(listener, state, pool, shutdown),
            #[cfg(target_os = "linux")]
            Transport::Reactor { shards } => run_reactor(shards),
        }
    }

    /// Moves the accept loop to a background thread, returning a handle
    /// for address discovery and graceful shutdown (tests, benchmarks,
    /// embedding).
    #[must_use]
    pub fn spawn(self) -> ServerHandle {
        let local_addr = self.local_addr;
        let shutdown = Arc::clone(&self.shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("uops-serve-accept".into())
            .spawn(move || self.run())
            .expect("spawn accept thread");
        ServerHandle { local_addr, shutdown, accept_thread }
    }
}

/// One reserve file descriptor held open so `EMFILE` accept failures can
/// be answered actively instead of with blind backoff: closing the
/// reserve frees exactly one fd, the pending connection is accepted into
/// it and immediately closed (the peer sees a prompt reset rather than a
/// connect that hangs in the backlog), and the reserve is reopened for
/// the next storm. `/dev/null` keeps the reserve off the network.
pub(crate) struct AcceptRescue {
    reserve: Option<std::fs::File>,
}

impl AcceptRescue {
    pub(crate) fn new() -> AcceptRescue {
        AcceptRescue { reserve: AcceptRescue::open_reserve() }
    }

    fn open_reserve() -> Option<std::fs::File> {
        std::fs::File::open("/dev/null").ok()
    }

    /// Called after an `EMFILE`-class accept error: spend the reserve fd
    /// to accept-and-close one pending connection. Returns `true` if a
    /// connection was actively reset (counted as an `accept_rescue`);
    /// `false` means no fd headroom could be found and the caller should
    /// back off instead.
    pub(crate) fn rescue(&mut self, listener: &TcpListener) -> bool {
        self.reserve = None;
        // Plain accept, not the fault shim: the scripted failure was
        // already consumed by the accept that brought us here. The
        // accepted stream drops immediately — that close IS the rescue.
        let rescued = listener.accept().is_ok();
        self.reserve = AcceptRescue::open_reserve();
        rescued
    }
}

/// Best-effort static 503 to a connection rejected at admission: one
/// write of preformatted bytes, then drop (close). No allocation, no
/// worker, no cache interaction.
fn reject_overload(mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = std::io::Write::write(&mut stream, OVERLOAD_RESPONSE);
}

/// The thread-per-connection accept loop. Transient accept failures
/// (`EINTR`, spurious `EAGAIN`) retry immediately. Resource-exhaustion
/// failures (`EMFILE` under fd pressure, `ENFILE`) spend the
/// [`AcceptRescue`] reserve fd to actively reset the pending connection —
/// only falling back to a brief sleep when even that fails — so fd
/// exhaustion degrades to fast rejects instead of a backlog of hung
/// connects. Admission control runs before a worker is committed: past
/// `max_inflight` live connections or a full worker queue, the connection
/// gets the static 503 and is closed.
fn run_pool(
    listener: TcpListener,
    state: Arc<ConnState>,
    pool: TaskPool,
    shutdown: Arc<ShutdownSignal>,
) {
    let mut rescue = AcceptRescue::new();
    loop {
        let accepted = fault::accept(&listener);
        if shutdown.is_triggered() {
            break;
        }
        let stream = match accepted {
            Ok((stream, _)) => stream,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::Interrupted | std::io::ErrorKind::WouldBlock
                ) =>
            {
                if state.telemetry {
                    state.metrics.accept_errors.inc();
                }
                continue;
            }
            Err(e) => {
                if state.telemetry {
                    state.metrics.accept_errors.inc();
                }
                // EMFILE/ENFILE leave the connection in the backlog, so
                // the rescue's accept is guaranteed not to block. Other
                // errors (e.g. ECONNABORTED) may have nothing pending —
                // back off briefly instead.
                let fd_exhausted = matches!(e.raw_os_error(), Some(23 | 24));
                if fd_exhausted && rescue.rescue(&listener) {
                    if state.telemetry {
                        state.metrics.accept_rescues.inc();
                    }
                } else {
                    std::thread::sleep(Duration::from_millis(10));
                }
                continue;
            }
        };
        if state.max_inflight != 0 && state.inflight.load(Ordering::Relaxed) >= state.max_inflight {
            if state.telemetry {
                state.metrics.overload_rejects.inc();
            }
            reject_overload(stream);
            continue;
        }
        state.inflight.fetch_add(1, Ordering::Relaxed);
        let task_state = Arc::clone(&state);
        let task_shutdown = Arc::clone(&shutdown);
        let accepted = pool.try_execute(move || {
            serve_connection(stream, &task_state, &task_shutdown);
            task_state.inflight.fetch_sub(1, Ordering::Relaxed);
        });
        if !accepted {
            // Queue full (or shutdown raced): the dropped closure closed
            // the stream; all we can still do is undo the reservation
            // and count the reject.
            state.inflight.fetch_sub(1, Ordering::Relaxed);
            if state.telemetry {
                state.metrics.overload_rejects.inc();
            }
        }
    }
    pool.shutdown();
}

/// Runs reactor shard 0 on the calling thread and shards 1..N on their
/// own threads; returns when every shard has observed the shutdown
/// signal.
#[cfg(target_os = "linux")]
fn run_reactor(shards: Vec<net::reactor::Shard>) {
    let mut shards = shards.into_iter();
    let first = shards.next();
    let rest: Vec<_> = shards
        .enumerate()
        .map(|(at, shard)| {
            std::thread::Builder::new()
                .name(format!("uops-serve-shard-{}", at + 1))
                .spawn(move || shard.run())
                .expect("spawn reactor shard")
        })
        .collect();
    if let Some(shard) = first {
        shard.run();
    }
    for handle in rest {
        let _ = handle.join();
    }
}

/// Answers `GET /metrics` at the transport layer, **before** [`respond`]:
/// the exposition must reflect this instant, so it never enters the raw
/// fast lane or the fingerprint tier (and carries no ETag). With
/// telemetry disabled the endpoint answers 404.
fn metrics_response(state: &ConnState, method: &str, query: &str) -> ServiceResponse {
    if method != "GET" && method != "HEAD" {
        return ServiceResponse::error(405, "only GET and HEAD are supported");
    }
    if !state.telemetry {
        return ServiceResponse::error(404, "telemetry is disabled (--no-telemetry)");
    }
    if !query.is_empty() {
        return ServiceResponse::error(400, "metrics takes no parameters");
    }
    let text = metrics::render_metrics(&state.service, &state.metrics);
    ServiceResponse {
        status: 200,
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        etag: None,
        body: Arc::from(text.into_bytes().as_slice()),
        tier: ResponseTier::Untiered,
        generation: 0,
    }
}

/// Answers `POST /v1/ingest`: the live data plane's write path. The body
/// is either a raw [`Segment`] image (`UOPSSEG\x01` magic) or a TLV
/// snapshot (`UDB\x01` magic); it is validated **fully** before anything
/// is published — a malformed byte anywhere rejects the request with no
/// effect on the served store. On success the incoming records are
/// last-writer-wins merged with the live generation, durably published
/// through the store's manifest protocol (temp + fsync + rename +
/// dir-fsync), and atomically swapped live, flushing both cache tiers.
/// Without a configured [`GenerationStore`] (`serve` without
/// `--data-dir`) the route answers `403`.
fn ingest_response(state: &ConnState, query: &str, body: &[u8]) -> ServiceResponse {
    if !query.is_empty() {
        return ServiceResponse::error(400, "ingest takes no parameters");
    }
    let Some(store) = state.ingest_store.as_deref() else {
        return ServiceResponse::error(403, "ingestion is disabled (serve without --data-dir)");
    };
    let incoming = if body.starts_with(&uops_db::segment::layout::MAGIC) {
        match Segment::from_bytes(body.to_vec()) {
            Ok(segment) => segment,
            Err(err) => {
                return ServiceResponse::error(400, &format!("segment image rejected: {err}"));
            }
        }
    } else if body.starts_with(&uops_db::codec::MAGIC) {
        match uops_db::codec::decode(body) {
            Ok(snapshot) => match Segment::from_bytes(Segment::encode(&snapshot)) {
                Ok(segment) => segment,
                Err(err) => {
                    return ServiceResponse::error(400, &format!("snapshot rejected: {err}"));
                }
            },
            Err(err) => return ServiceResponse::error(400, &format!("snapshot rejected: {err}")),
        }
    } else {
        return ServiceResponse::error(
            400,
            "ingest body is neither a segment image nor a TLV snapshot",
        );
    };
    let records = incoming.len();
    match store.publish_merged(&incoming, fault::store_io()) {
        Ok(generation) => {
            let swapped =
                state.service.swap_segment(Arc::clone(&generation.segment), generation.id);
            let body = format!(
                "{{\"generation\": {}, \"ingested_records\": {}, \"live_records\": {}, \
                 \"swapped\": {}}}\n",
                generation.id,
                records,
                generation.segment.len(),
                swapped,
            );
            ServiceResponse {
                status: 200,
                content_type: "application/json",
                etag: None,
                body: Arc::from(body.into_bytes().as_slice()),
                tier: ResponseTier::Untiered,
                generation: generation.id,
            }
        }
        Err(err) => ServiceResponse::error(503, &format!("publish failed: {err}")),
    }
}

/// How one answered request's body leaves the process.
pub(crate) enum Payload {
    /// `response.body`, `Content-Length`-framed (the overwhelmingly
    /// common case).
    Single,
    /// The caller's [`http::BatchBody`] holds the assembled multi-response
    /// frames; emitted via [`http::write_batch`].
    Batch,
    /// A large result emitted as `Transfer-Encoding: chunked` in
    /// O(chunk) memory.
    Stream(service::StreamBody),
}

/// Everything captured from answering one request that must outlive the
/// request-buffer borrow: the service response plus the framing and
/// telemetry facts derived from the request.
pub(crate) struct RequestOutcome {
    pub(crate) response: ServiceResponse,
    /// The status actually sent on the wire (304 when a revalidation hit).
    pub(crate) status: u16,
    pub(crate) mode: http::BodyMode,
    pub(crate) not_modified: bool,
    pub(crate) route: Route,
    /// `Allow` header for 405 responses (which methods *would* work).
    pub(crate) allow: Option<&'static str>,
    pub(crate) payload: Payload,
}

/// Answers one parsed request: stage-scratch reset, route
/// classification, `/metrics` interception, method dispatch (`POST` for
/// `/v1/batch` and `/v1/plan`, `GET`/`HEAD` elsewhere — wrong methods
/// get `405` + `Allow`), the raw-fast-lane [`respond_streaming`],
/// conditional-request (`If-None-Match`) resolution, and `HEAD` body
/// suppression. Shared by both transports so their responses are
/// byte-identical by construction.
///
/// `body` is the request body (empty unless the request declared a
/// `Content-Length`); `batch`/`scratch` are the caller's reusable batch
/// assembly buffers, filled when the outcome's payload is
/// [`Payload::Batch`].
pub(crate) fn answer(
    state: &ConnState,
    request: &http::Request<'_>,
    body: &[u8],
    batch: &mut http::BatchBody,
    scratch: &mut service::BatchScratch,
) -> RequestOutcome {
    metrics::stage_scratch::reset();
    // Arm (or clear) the per-request deadline for this thread before any
    // service work runs; the service checks it between pipeline stages
    // and sheds only uncached work when it expires.
    service::deadline::set(state.request_deadline.map(|budget| Instant::now() + budget));
    let route = Route::of(request.path());
    if state.telemetry {
        state.metrics.request_bytes.add((request.head_len + body.len()) as u64);
    }
    let method = request.method;
    let read_method = method == "GET" || method == "HEAD";
    let mut allow = None;
    let mut payload = Payload::Single;
    let response = match route {
        Route::Metrics => {
            if read_method {
                // Served here, before respond(): /metrics must always be
                // freshly rendered, never from either cache tier.
                metrics_response(state, method, request.query())
            } else {
                allow = Some(ALLOW_READ);
                ServiceResponse::error(405, "only GET and HEAD are supported")
            }
        }
        Route::Batch => {
            if method == "POST" {
                match format_only(request.query(), "batch") {
                    Ok(encoding) => match state.service.batch(body, encoding, batch, scratch) {
                        Ok(()) => {
                            payload = Payload::Batch;
                            ServiceResponse {
                                status: 200,
                                content_type: service::BATCH_CONTENT_TYPE,
                                etag: None,
                                body: service::empty_body(),
                                tier: ResponseTier::Untiered,
                                generation: 0,
                            }
                        }
                        Err(response) => response,
                    },
                    Err(response) => response,
                }
            } else {
                allow = Some(ALLOW_POST);
                ServiceResponse::error(405, "batch requests are POST-only")
            }
        }
        Route::Plan => {
            let path = request.path();
            if let Some(fingerprint) = path.strip_prefix("/v1/plan/") {
                if read_method {
                    // Plan-handle lookups share the raw fast lane: a hot
                    // handle is one hash + one probe + one Arc bump.
                    match state.service.raw_response(request.target) {
                        Some(hit) => hit,
                        None => match format_only(request.query(), "plan") {
                            Ok(encoding) => {
                                let response = state.service.planned_query(fingerprint, encoding);
                                if response.status == 200 {
                                    state.service.raw_store(request.target, &response);
                                }
                                response
                            }
                            Err(response) => response,
                        },
                    }
                } else {
                    allow = Some(ALLOW_READ);
                    ServiceResponse::error(405, "plan lookups are GET/HEAD-only")
                }
            } else if method == "POST" {
                if !request.query().is_empty() {
                    ServiceResponse::error(400, "plan registration takes no parameters")
                } else {
                    match std::str::from_utf8(body) {
                        Ok(text) => state.service.register_plan(text),
                        Err(_) => ServiceResponse::error(400, "plan body is not UTF-8"),
                    }
                }
            } else {
                allow = Some(ALLOW_POST);
                ServiceResponse::error(405, "plan registration is POST-only")
            }
        }
        Route::Ingest => {
            if method == "POST" {
                ingest_response(state, request.query(), body)
            } else {
                allow = Some(ALLOW_POST);
                ServiceResponse::error(405, "ingest is POST-only")
            }
        }
        _ => {
            if read_method {
                match respond_streaming(&state.service, request.target) {
                    service::QueryReply::Full(response) => response,
                    service::QueryReply::Stream(stream) => {
                        let content_type = stream.content_type();
                        payload = Payload::Stream(stream);
                        ServiceResponse {
                            status: 200,
                            content_type,
                            etag: None,
                            body: service::empty_body(),
                            tier: ResponseTier::Uncached,
                            generation: 0,
                        }
                    }
                }
            } else {
                allow = Some(ALLOW_READ);
                ServiceResponse::error(405, "only GET and HEAD are supported")
            }
        }
    };
    let not_modified = response.status == 200
        && match (response.etag, request.if_none_match) {
            (Some(etag), Some(header)) => http::etag_matches(header, etag),
            _ => false,
        };
    let status = if not_modified { 304 } else { response.status };
    let mode = if method == "HEAD" { http::BodyMode::HeaderOnly } else { http::BodyMode::Full };
    RequestOutcome { response, status, mode, not_modified, route, allow, payload }
}

/// Telemetry for a request rejected by the parser (the transport answers
/// it with an error response and closes).
pub(crate) fn record_parse_error(state: &ConnState, status: u16) {
    if !state.telemetry {
        return;
    }
    let metrics = &*state.metrics;
    metrics.parse_errors.inc();
    if status == 400 {
        metrics.bad_requests.inc();
    } else if status == 431 {
        metrics.header_overflows.inc();
    }
    metrics.status_class(status).inc();
}

/// Telemetry + access logging for one completed response, shared by both
/// transports. `stages` is the `(parse, execute, encode)` nanosecond
/// triple captured from the stage scratch **on the thread that answered**
/// — the reactor interleaves many connections on one thread, so it
/// captures immediately after [`answer`] rather than reading the
/// thread-local here.
#[allow(clippy::too_many_arguments)]
pub(crate) fn record_request(
    state: &ConnState,
    route: Route,
    status: u16,
    tier: ResponseTier,
    not_modified: bool,
    wire_bytes: Option<usize>,
    started: Instant,
    stages: (u64, u64, u64),
) {
    if !state.telemetry && state.access_log.is_none() {
        return;
    }
    let elapsed = saturating_ns(started.elapsed());
    if state.telemetry {
        let metrics = &*state.metrics;
        metrics.requests.inc();
        if let Some(bytes) = wire_bytes {
            metrics.response_bytes.add(bytes as u64);
        }
        metrics.status_class(status).inc();
        if not_modified {
            metrics.not_modified.inc();
        }
        metrics.route_latency(route).record(elapsed);
        match tier {
            ResponseTier::Raw => metrics.tier_latency_raw.record(elapsed),
            ResponseTier::Fingerprint => metrics.tier_latency_fingerprint.record(elapsed),
            ResponseTier::Uncached => metrics.tier_latency_uncached.record(elapsed),
            ResponseTier::Untiered => {}
        }
    }
    if let Some(log) = &state.access_log {
        if log.sample() {
            let (parse_ns, execute_ns, encode_ns) = stages;
            log.log(&AccessEntry {
                route: route.label(),
                status,
                bytes: wire_bytes.unwrap_or(0),
                tier: tier.label(),
                total_ns: elapsed,
                parse_ns,
                execute_ns,
                encode_ns,
            });
        }
    }
}

/// Decrements the connection gauges on every exit path of
/// [`serve_connection`] (early returns included).
struct ConnGuard<'a> {
    metrics: &'a ServerMetrics,
    enabled: bool,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        if self.enabled {
            self.metrics.connections_closed.inc();
            self.metrics.connections_active.dec();
        }
    }
}

/// Writes one framed response with slow-reader detection. The socket
/// carries a send timeout of `write_stall_timeout`, so any
/// `Pending` from [`http::write_resumable`] means the kernel accepted
/// zero bytes for the whole window — the peer has stopped reading — and
/// the connection is evicted rather than left pinning its buffers.
fn write_or_evict(
    writer: &mut TcpStream,
    response_buf: &mut http::ResponseBuf,
    head: &http::ResponseHead<'_>,
    body: &[u8],
    state: &ConnState,
) -> std::io::Result<usize> {
    let emit = response_buf.assemble(head, body.len());
    let mut cursor = 0;
    match http::write_resumable(
        &mut fault::FaultStream(writer),
        response_buf.head_bytes(),
        &body[..emit],
        &mut cursor,
    )? {
        http::WriteProgress::Complete => Ok(response_buf.head_bytes().len() + emit),
        http::WriteProgress::Pending => Err(evict_slow_reader(state)),
    }
}

/// Counts a slow-reader eviction and returns the error that closes the
/// connection.
fn evict_slow_reader(state: &ConnState) -> std::io::Error {
    if state.telemetry {
        state.metrics.slow_reader_evictions.inc();
    }
    std::io::Error::from(std::io::ErrorKind::TimedOut)
}

/// [`write_or_evict`] for a batch multi-response: head + response frames
/// leave through [`http::write_batch`]'s vectored write chain (the
/// per-plan bodies are `Arc`s out of the cache tiers — nothing is
/// copied into a contiguous buffer first).
fn write_batch_or_evict(
    writer: &mut TcpStream,
    response_buf: &mut http::ResponseBuf,
    head: &http::ResponseHead<'_>,
    batch: &http::BatchBody,
    state: &ConnState,
) -> std::io::Result<usize> {
    response_buf.assemble(head, batch.wire_len());
    let mut cursor = 0;
    match http::write_batch(
        &mut fault::FaultStream(writer),
        response_buf.head_bytes(),
        batch,
        &mut cursor,
    )? {
        http::WriteProgress::Complete => Ok(response_buf.head_bytes().len() + batch.wire_len()),
        http::WriteProgress::Pending => Err(evict_slow_reader(state)),
    }
}

/// [`write_or_evict`] for a streamed large result: chunked head first,
/// then `chunk`-sized pieces pulled from the [`service::StreamBody`] one
/// at a time — peak memory is O([`service::STREAM_CHUNK_BYTES`])
/// regardless of export size. `chunk`/`chunk_head` are the connection's
/// reusable chunk buffers.
fn write_stream_or_evict(
    writer: &mut TcpStream,
    response_buf: &mut http::ResponseBuf,
    head: &http::ResponseHead<'_>,
    stream: &mut service::StreamBody,
    chunk: &mut Vec<u8>,
    chunk_head: &mut Vec<u8>,
    state: &ConnState,
) -> std::io::Result<usize> {
    let emit_body = response_buf.assemble_chunked(head);
    let mut wire = response_buf.head_bytes().len();
    let mut cursor = 0;
    let mut faulted = fault::FaultStream(writer);
    match http::write_resumable(&mut faulted, response_buf.head_bytes(), &[], &mut cursor)? {
        http::WriteProgress::Complete => {}
        http::WriteProgress::Pending => return Err(evict_slow_reader(state)),
    }
    if !emit_body {
        // HEAD: the chunked header alone announces the stream.
        return Ok(wire);
    }
    while stream.next_chunk(chunk) {
        let payload = chunk.len();
        chunk.extend_from_slice(b"\r\n");
        http::chunk_prefix(payload, chunk_head);
        let mut cursor = 0;
        match http::write_resumable(&mut faulted, chunk_head, chunk, &mut cursor)? {
            http::WriteProgress::Complete => wire += chunk_head.len() + chunk.len(),
            http::WriteProgress::Pending => return Err(evict_slow_reader(state)),
        }
    }
    http::chunk_prefix(0, chunk_head);
    let mut cursor = 0;
    match http::write_resumable(&mut faulted, chunk_head, &[], &mut cursor)? {
        http::WriteProgress::Complete => Ok(wire + chunk_head.len()),
        http::WriteProgress::Pending => Err(evict_slow_reader(state)),
    }
}

/// Serves one connection: read request (in place, into the connection's
/// reusable buffer), answer via the fast lane, emit one vectored write,
/// repeat while keep-alive holds. Steady state allocates nothing: the
/// request buffer, response scratch, and cached bodies are all reused —
/// and telemetry keeps it that way (atomic increments and histogram
/// buckets only; see `tests/alloc_free.rs`).
/// What one head-parse pass decided: the request is answered (no body,
/// or refused before the body), or its body must be read first. Split
/// this way because the parsed [`http::Request`] borrows the request
/// buffer that the body read needs mutably.
enum Step {
    Answered { outcome: RequestOutcome, head_len: usize, keep_alive: bool, started: Instant },
    NeedsBody { head_len: usize, len: usize, keep_alive: bool, has_inm: bool, started: Instant },
}

fn serve_connection(stream: TcpStream, state: &ConnState, shutdown: &ShutdownSignal) {
    let metrics = &*state.metrics;
    let telemetry = state.telemetry;
    if telemetry {
        metrics.connections_opened.inc();
        metrics.connections_active.inc();
    }
    let _guard = ConnGuard { metrics, enabled: telemetry };
    let _ = stream.set_read_timeout(Some(state.keep_alive_timeout));
    let _ = stream.set_write_timeout(Some(state.write_stall_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else { return };
    let mut reader = stream;
    let mut request_buf = http::RequestBuf::new();
    let mut response_buf = http::ResponseBuf::new();
    // Reusables for the body-carrying and non-Content-Length paths; all
    // keep their capacity across requests, so the steady state (batch
    // included) allocates nothing.
    let mut body_buf: Vec<u8> = Vec::new();
    let mut batch = http::BatchBody::default();
    let mut batch_scratch = service::BatchScratch::default();
    let mut chunk: Vec<u8> = Vec::new();
    let mut chunk_head: Vec<u8> = Vec::new();
    let mut method_scratch = String::new();
    let mut target_scratch = String::new();
    let mut inm_scratch = String::new();
    for served in 0..MAX_REQUESTS_PER_CONNECTION {
        // The parsed request borrows `request_buf`; everything needed
        // beyond this block is captured before the borrow is released.
        let step = {
            let request = match request_buf.read_request(&mut fault::FaultStream(&mut reader)) {
                Ok(request) => request,
                Err(http::RequestError::ConnectionClosed) => return,
                Err(http::RequestError::Bad(status, message)) => {
                    record_parse_error(state, status);
                    let body = ServiceResponse::error(status, &message);
                    let written = write_or_evict(
                        &mut writer,
                        &mut response_buf,
                        &http::ResponseHead {
                            status,
                            content_type: body.content_type,
                            keep_alive: false,
                            etag: None,
                            allow: None,
                            mode: http::BodyMode::Full,
                        },
                        &body.body,
                        state,
                    );
                    if telemetry {
                        if let Ok(bytes) = written {
                            metrics.response_bytes.add(bytes as u64);
                        }
                    }
                    return;
                }
                Err(http::RequestError::Io(_)) => return,
            };
            // The clock starts after the request head is in hand:
            // keep-alive idle time between requests is not request
            // latency. A graceful drain closes the connection after this
            // response.
            let started = Instant::now();
            let keep_alive = request.keep_alive
                && served + 1 < MAX_REQUESTS_PER_CONNECTION
                && !shutdown.is_triggered();
            if request.content_length == 0 {
                let outcome = answer(state, &request, &[], &mut batch, &mut batch_scratch);
                Step::Answered { outcome, head_len: request.head_len, keep_alive, started }
            } else if request.content_length > state.max_body {
                // Refused without reading the body; the unread bytes
                // would desynchronize keep-alive framing, so close.
                let outcome = RequestOutcome {
                    response: ServiceResponse::error(
                        413,
                        "request body exceeds the configured limit",
                    ),
                    status: 413,
                    mode: http::BodyMode::Full,
                    not_modified: false,
                    route: Route::of(request.path()),
                    allow: None,
                    payload: Payload::Single,
                };
                Step::Answered { outcome, head_len: request.head_len, keep_alive: false, started }
            } else {
                // The body overlaps the head buffer; stash the request
                // facts in the connection's scratch strings so the
                // buffer can be consumed and refilled.
                method_scratch.clear();
                method_scratch.push_str(request.method);
                target_scratch.clear();
                target_scratch.push_str(request.target);
                inm_scratch.clear();
                let has_inm = match request.if_none_match {
                    Some(header) => {
                        inm_scratch.push_str(header);
                        true
                    }
                    None => false,
                };
                Step::NeedsBody {
                    head_len: request.head_len,
                    len: request.content_length,
                    keep_alive,
                    has_inm,
                    started,
                }
            }
        };
        let (outcome, keep_alive, started) = match step {
            Step::Answered { outcome, head_len, keep_alive, started } => {
                request_buf.consume(head_len);
                (outcome, keep_alive, started)
            }
            Step::NeedsBody { head_len, len, keep_alive, has_inm, started } => {
                if request_buf
                    .read_body(&mut fault::FaultStream(&mut reader), head_len, len, &mut body_buf)
                    .is_err()
                {
                    return;
                }
                let request = http::Request {
                    method: &method_scratch,
                    target: &target_scratch,
                    keep_alive,
                    if_none_match: has_inm.then_some(inm_scratch.as_str()),
                    content_length: len,
                    head_len,
                };
                let outcome = answer(state, &request, &body_buf, &mut batch, &mut batch_scratch);
                (outcome, keep_alive, started)
            }
        };
        let RequestOutcome { response, status, mode, not_modified, route, allow, payload } =
            outcome;
        let written = match payload {
            Payload::Single => write_or_evict(
                &mut writer,
                &mut response_buf,
                &http::ResponseHead {
                    status,
                    content_type: response.content_type,
                    keep_alive,
                    etag: response.etag,
                    allow,
                    mode,
                },
                &response.body,
                state,
            ),
            Payload::Batch => write_batch_or_evict(
                &mut writer,
                &mut response_buf,
                &http::ResponseHead {
                    status,
                    content_type: response.content_type,
                    keep_alive,
                    etag: None,
                    allow: None,
                    mode,
                },
                &batch,
                state,
            ),
            Payload::Stream(mut stream) => write_stream_or_evict(
                &mut writer,
                &mut response_buf,
                &http::ResponseHead {
                    status,
                    content_type: response.content_type,
                    keep_alive,
                    etag: None,
                    allow: None,
                    mode,
                },
                &mut stream,
                &mut chunk,
                &mut chunk_head,
                state,
            ),
        };
        let wire_bytes = match &written {
            Ok(bytes) => Some(*bytes),
            Err(_) => None,
        };
        record_request(
            state,
            route,
            status,
            response.tier,
            not_modified,
            wire_bytes,
            started,
            metrics::stage_scratch::get(),
        );
        if written.is_err() || !keep_alive {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uops_db::{InstructionDb, Snapshot, VariantRecord};

    fn service() -> QueryService {
        let mut s = Snapshot::new("router test");
        // "X+Y" exercises path-segment decoding: '+' is literal in paths.
        for (m, uarch) in
            [("ADD", "Skylake"), ("ADD", "Haswell"), ("ADC", "Skylake"), ("X+Y", "Skylake")]
        {
            s.records.push(VariantRecord {
                mnemonic: m.into(),
                variant: "R64, R64".into(),
                extension: "BASE".into(),
                uarch: uarch.into(),
                uop_count: 1,
                ports: vec![(0b0100_0001, 1)],
                tp_measured: 0.25,
                ..Default::default()
            });
        }
        QueryService::from_db(Arc::new(InstructionDb::from_snapshot(&s)), 1 << 20)
    }

    #[test]
    fn routes_dispatch_and_validate() {
        let service = service();
        assert_eq!(route(&service, "GET", "/v1/query", "uarch=Skylake").status, 200);
        assert_eq!(route(&service, "GET", "/v1/query", "uarhc=Skylake").status, 400);
        assert_eq!(route(&service, "GET", "/v1/query", "format=yaml").status, 400);
        assert_eq!(
            route(&service, "GET", "/v1/query", "format=binary&format=json").status,
            400,
            "duplicate format must be rejected, not last-win"
        );
        assert_eq!(route(&service, "GET", "/v1/record/ADD", "").status, 200);
        assert_eq!(route(&service, "GET", "/v1/record/ADD", "uarch=Skylake").status, 200);
        assert_eq!(route(&service, "GET", "/v1/record/ADD", "variant=bogus").status, 400);
        assert_eq!(route(&service, "GET", "/v1/record/", "").status, 404);
        assert_eq!(route(&service, "GET", "/v1/diff", "base=Haswell&other=Skylake").status, 200);
        assert_eq!(route(&service, "GET", "/v1/diff", "base=Haswell").status, 400);
        assert_eq!(
            route(&service, "GET", "/v1/diff", "base=Haswell&base=Skylake&other=Skylake").status,
            400,
            "duplicate diff parameters must not last-win"
        );
        assert_eq!(
            route(&service, "GET", "/v1/record/ADD", "uarch=Skylake&uarch=Haswell").status,
            400
        );
        assert_eq!(route(&service, "GET", "/v1/stats", "").status, 200);
        assert_eq!(route(&service, "GET", "/v1/stats", "x=1").status, 400);
        assert_eq!(
            route(&service, "GET", "/v1/stats", "format=json").status,
            400,
            "stats ignores no parameters, including format"
        );
        assert_eq!(route(&service, "GET", "/nope", "").status, 404);
        assert_eq!(route(&service, "POST", "/v1/query", "").status, 405);
        assert_eq!(route(&service, "HEAD", "/v1/query", "uarch=Skylake").status, 200);
        assert_eq!(route(&service, "HEAD", "/v1/stats", "").status, 200);
    }

    #[test]
    fn respond_serves_repeats_from_the_raw_fast_lane() {
        let service = service();
        let cold = respond(&service, "GET", "/v1/query?port=6&uarch=Skylake");
        let stats = service.stats();
        assert_eq!((stats.raw.hits, stats.raw.misses), (0, 1));
        assert_eq!(stats.cache.misses, 1);

        // Identical verbatim target: raw hit — the fingerprint tier, the
        // parser, and the executor are all left untouched.
        let warm = respond(&service, "GET", "/v1/query?port=6&uarch=Skylake");
        let stats = service.stats();
        assert_eq!(stats.raw.hits, 1, "verbatim repeat must hit the fast lane");
        assert_eq!(stats.cache.hits, 0, "fast-lane hit never reaches the fingerprint tier");
        assert_eq!(stats.executions, 1);
        assert_eq!(warm.body, cold.body);
        assert!(Arc::ptr_eq(&warm.body, &cold.body), "fast lane shares the stored bytes");
        assert_eq!(warm.etag, cold.etag);
        assert!(warm.etag.is_some(), "cacheable responses carry an ETag");

        // A different spelling of the same plan misses the raw tier but
        // hits the fingerprint tier — and returns the same bytes + ETag.
        let respelled = respond(&service, "GET", "/v1/query?uarch=Skylake&port=6");
        let stats = service.stats();
        assert_eq!(stats.raw.misses, 2);
        assert_eq!(stats.cache.hits, 1, "canonicalized spelling hits the fingerprint tier");
        assert_eq!(stats.executions, 1, "no re-execution for a respelled plan");
        assert_eq!(respelled.body, cold.body);
        assert_eq!(respelled.etag, cold.etag, "ETag is spelling-independent");

        // HEAD shares GET's fast-lane entries.
        let head = respond(&service, "HEAD", "/v1/query?port=6&uarch=Skylake");
        assert_eq!(service.stats().raw.hits, 2);
        assert_eq!(head.body, cold.body, "the transport, not the cache, suppresses HEAD bodies");

        // Other methods are rejected before touching any tier.
        assert_eq!(respond(&service, "POST", "/v1/query").status, 405);
    }

    #[test]
    fn respond_never_caches_stats_or_errors() {
        let service = service();
        for _ in 0..2 {
            let stats_response = respond(&service, "GET", "/v1/stats");
            assert_eq!(stats_response.status, 200);
            assert!(stats_response.etag.is_none(), "stats must not be revalidatable");
        }
        assert_eq!(service.stats().raw.hits, 0, "stats must never be served from the fast lane");
        for _ in 0..2 {
            assert_eq!(respond(&service, "GET", "/v1/query?bogus=1").status, 400);
        }
        let stats = service.stats();
        assert_eq!(stats.raw.hits, 0, "errors must never be cached");
        assert_eq!(stats.raw.entries, 0);
    }

    #[test]
    fn format_parameter_selects_the_encoder() {
        let service = service();
        let json = route(&service, "GET", "/v1/query", "uarch=Skylake");
        let binary = route(&service, "GET", "/v1/query", "uarch=Skylake&format=binary");
        let xml = route(&service, "GET", "/v1/query", "uarch=Skylake&format=xml");
        assert_eq!(json.content_type, "application/json");
        assert_eq!(binary.content_type, "application/x-uops-result");
        assert_eq!(xml.content_type, "application/xml");
        assert_eq!(&binary.body[..4], b"UQR\x01");
    }

    #[test]
    fn record_path_segment_is_percent_decoded() {
        let service = service();
        // "ADD" spelled with an escape still routes to the same mnemonic —
        // and hits the same cache entry as the plain spelling.
        let plain = route(&service, "GET", "/v1/record/ADD", "");
        let escaped = route(&service, "GET", "/v1/record/%41DD", "");
        assert_eq!(plain.body, escaped.body);
        assert_eq!(service.stats().cache.hits, 1);
        // Path segments are not query components: a literal '+' stays a
        // plus — "/v1/record/X+Y" must find the "X+Y" mnemonic, not look
        // up "X Y".
        let plus = route(&service, "GET", "/v1/record/X+Y", "");
        assert_eq!(plus.status, 200);
        let text = String::from_utf8(plus.body.to_vec()).expect("utf-8");
        assert!(text.contains("\"total_matches\": 1"), "{text}");
        assert!(text.contains("\"mnemonic\": \"X+Y\""), "{text}");
        // ...while %2B reaches the same record and the same cache entry.
        let escaped_plus = route(&service, "GET", "/v1/record/X%2BY", "");
        assert_eq!(escaped_plus.body, plus.body);
    }

    #[test]
    fn end_to_end_over_a_real_socket() {
        use std::io::{Read, Write};
        let service = Arc::new(service());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service), 2).expect("bind");
        let addr = server.local_addr();
        let handle = server.spawn();

        let mut stream = TcpStream::connect(addr).expect("connect");
        // Two requests on one keep-alive connection: the second is a raw
        // fast-lane hit for the first.
        let mut response = Vec::new();
        for _ in 0..2 {
            stream
                .write_all(b"GET /v1/query?uarch=Skylake HTTP/1.1\r\nHost: t\r\n\r\n")
                .expect("send");
            read_one_response(&mut stream, &mut response);
        }
        stream.write_all(b"GET /v1/stats HTTP/1.1\r\nConnection: close\r\n\r\n").expect("send");
        let mut stats = Vec::new();
        stream.read_to_end(&mut stats).expect("read stats");
        let stats_text = String::from_utf8_lossy(&stats);
        assert!(stats_text.contains("\"executions\": 1"), "{stats_text}");
        let service_stats = service.stats();
        assert_eq!(service_stats.raw.hits, 1, "second identical URL hits the fast lane");
        assert_eq!(service_stats.executions, 1);

        // In-process service call must produce the same payload bytes the
        // HTTP transport framed.
        let expected =
            service.query(&QueryPlan::parse("uarch=Skylake").expect("plan"), Encoding::Json);
        let response_text = String::from_utf8_lossy(&response);
        let body_at = response_text.find("\r\n\r\n").expect("header terminator") + 4;
        assert_eq!(&response[body_at..], &*expected.body, "HTTP body == in-process bytes");

        handle.shutdown();
    }

    /// Reads exactly one Content-Length-framed response into `out`
    /// (replacing its contents).
    fn read_one_response(stream: &mut TcpStream, out: &mut Vec<u8>) {
        use std::io::Read;
        out.clear();
        let mut byte = [0u8; 1];
        // Read until the blank line, then Content-Length more bytes.
        while !out.ends_with(b"\r\n\r\n") {
            assert_eq!(stream.read(&mut byte).expect("read header"), 1, "unexpected EOF");
            out.push(byte[0]);
        }
        let text = String::from_utf8_lossy(out);
        let len: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("content length")
            .trim()
            .parse()
            .expect("length");
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).expect("read body");
        out.extend_from_slice(&body);
    }
}
