//! # uops-serve
//!
//! The serving stack of the uops.info reproduction: the paper's artifact
//! is consumed as a *queried web resource* (downstream tools like uiCA hit
//! per-instruction lookup endpoints at high volume), and this crate serves
//! a characterization database to that kind of traffic. It is the top of a
//! three-layer split:
//!
//! 1. **db** (`uops-db`): the canonical [`QueryPlan`] (cache key + wire
//!    request), the [`uops_db::QueryExec`] executor, and deterministic
//!    [`uops_db::ResultEncoder`]s;
//! 2. **service** ([`QueryService`]): transport-agnostic — owns an `Arc`
//!    of a segment-backed database and a sharded LRU [`ResponseCache`] of
//!    **encoded bytes**, so a cache hit skips planning, execution, and
//!    encoding entirely (hit/miss/eviction/execution counters exposed);
//! 3. **transport** ([`Server`]): a dependency-free HTTP/1.1 server whose
//!    accept/worker loop runs on [`uops_pool::TaskPool`], routing
//!    `/v1/query`, `/v1/record/{mnemonic}`, `/v1/diff`, and `/v1/stats`.
//!
//! Responses over HTTP are byte-identical to in-process
//! `QueryExec` + encoder output for the same database — the transport adds
//! framing, never content — which is asserted end-to-end in this crate's
//! integration tests and CI's `serve-smoke` job.
//!
//! ## Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use uops_db::Segment;
//! use uops_serve::{QueryService, Server};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let segment = Arc::new(Segment::open("uops.seg")?);
//! let service = Arc::new(QueryService::from_segment(segment, 64 << 20));
//! let server = Server::bind("127.0.0.1:8080", service, 4)?;
//! println!("listening on http://{}", server.local_addr());
//! server.run(); // accept loop; never returns
//! # Ok(())
//! # }
//! ```
//!
//! Then: `curl 'http://127.0.0.1:8080/v1/query?uarch=Skylake&port=5'`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod args;
pub mod cache;
pub mod http;
pub mod service;

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use uops_db::plan::decode_component;
use uops_db::QueryPlan;
use uops_pool::TaskPool;

pub use cache::{CacheStats, CachedResponse, ResponseCache};
pub use service::{Encoding, QueryService, ServiceResponse, ServiceStats};

/// How long an idle keep-alive connection may sit between requests.
const KEEP_ALIVE_TIMEOUT: Duration = Duration::from_secs(5);
/// Most requests served over one connection before it is closed.
const MAX_REQUESTS_PER_CONNECTION: usize = 1024;

/// Routes one parsed request to the service. Transport-independent (and
/// directly testable): the HTTP layer only frames what this returns.
#[must_use]
pub fn route(service: &QueryService, method: &str, path: &str, query: &str) -> ServiceResponse {
    if method != "GET" {
        return ServiceResponse::error(405, "only GET is supported");
    }
    // Split the format selector off the query string; the remaining pairs
    // belong to the endpoint (and QueryPlan parsing stays strict).
    let pairs = match uops_db::plan::parse_query_pairs(query) {
        Ok(pairs) => pairs,
        Err(e) => return ServiceResponse::error(400, &e.to_string()),
    };
    let mut encoding = None;
    let mut rest: Vec<(String, String)> = Vec::with_capacity(pairs.len());
    for (key, value) in pairs {
        if key == "format" {
            // As strict as QueryPlan's own duplicate-key rejection: two
            // `format` values must not silently last-win.
            if encoding.is_some() {
                return ServiceResponse::error(400, "duplicate query parameter \"format\"");
            }
            match Encoding::from_wire_name(&value) {
                Some(enc) => encoding = Some(enc),
                None => {
                    return ServiceResponse::error(
                        400,
                        &format!("unknown format {value:?} (expected json|binary|xml)"),
                    );
                }
            }
        } else {
            rest.push((key, value));
        }
    }
    let format_given = encoding.is_some();
    let encoding = encoding.unwrap_or(Encoding::Json);

    // A `(key, slot)` assignment that is as strict about duplicates as
    // QueryPlan's own parser: the second occurrence is a 400, never a
    // silent last-win.
    fn assign(slot: &mut Option<String>, key: &str, value: String) -> Result<(), ServiceResponse> {
        if slot.replace(value).is_some() {
            return Err(ServiceResponse::error(400, &format!("duplicate query parameter {key:?}")));
        }
        Ok(())
    }

    match path {
        "/v1/query" => match QueryPlan::from_pairs(rest) {
            Ok(plan) => service.query(&plan, encoding),
            Err(e) => ServiceResponse::error(400, &e.to_string()),
        },
        "/v1/diff" => {
            let mut base = None;
            let mut other = None;
            for (key, value) in rest {
                let result = match key.as_str() {
                    "base" => assign(&mut base, &key, value),
                    "other" => assign(&mut other, &key, value),
                    _ => {
                        return ServiceResponse::error(
                            400,
                            &format!("unknown diff parameter {key:?}"),
                        );
                    }
                };
                if let Err(response) = result {
                    return response;
                }
            }
            match (base, other) {
                (Some(base), Some(other)) => service.diff(&base, &other, encoding),
                _ => ServiceResponse::error(400, "diff requires base= and other="),
            }
        }
        "/v1/stats" => {
            if !rest.is_empty() || format_given {
                return ServiceResponse::error(400, "stats takes no parameters");
            }
            service.stats_response()
        }
        _ => match path.strip_prefix("/v1/record/") {
            Some(raw_name) if !raw_name.is_empty() && !raw_name.contains('/') => {
                // Path segments decode percent-escapes only — unlike query
                // components, a literal `+` is a literal plus (RFC 3986),
                // so shield it from decode_component's `+`-to-space rule.
                let name = match decode_component(&raw_name.replace('+', "%2B")) {
                    Ok(name) => name,
                    Err(e) => return ServiceResponse::error(400, &e.to_string()),
                };
                let mut uarch = None;
                for (key, value) in rest {
                    let result = match key.as_str() {
                        "uarch" => assign(&mut uarch, &key, value),
                        _ => {
                            return ServiceResponse::error(
                                400,
                                &format!("unknown record parameter {key:?}"),
                            );
                        }
                    };
                    if let Err(response) = result {
                        return response;
                    }
                }
                service.record(&name, uarch.as_deref(), encoding)
            }
            _ => ServiceResponse::error(404, &format!("no route for {path}")),
        },
    }
}

/// The HTTP/1.1 server: a listener plus a [`TaskPool`] of workers, one
/// task per accepted connection (keep-alive: a worker serves a connection
/// until it closes, times out idle, or exhausts its request budget).
pub struct Server {
    listener: TcpListener,
    service: Arc<QueryService>,
    pool: TaskPool,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

/// A handle to a server running on a background accept thread
/// ([`Server::spawn`]); dropping it without [`ServerHandle::shutdown`]
/// leaves the server running detached.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains in-flight connections, and joins the accept
    /// thread.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        let _ = self.accept_thread.join();
    }
}

impl Server {
    /// Binds `addr` and prepares `threads` workers (the accept loop itself
    /// runs on the caller via [`Server::run`], or on a background thread
    /// via [`Server::spawn`]).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, service: Arc<QueryService>, threads: usize) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            service,
            pool: TaskPool::new(threads, "uops-serve-worker"),
            local_addr,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs the accept loop on the calling thread until shutdown is
    /// signalled (never, unless [`Server::spawn`] wrapped it).
    pub fn run(self) {
        let Server { listener, service, pool, shutdown, .. } = self;
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => {
                    // Accept failures (EMFILE under fd exhaustion, transient
                    // ECONNABORTED) would otherwise return immediately and
                    // spin this loop at 100% CPU; back off briefly so the
                    // overload can drain instead of being amplified.
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            let service = Arc::clone(&service);
            pool.execute(move || serve_connection(stream, &service));
        }
        pool.shutdown();
    }

    /// Moves the accept loop to a background thread, returning a handle
    /// for address discovery and graceful shutdown (tests, benchmarks,
    /// embedding).
    #[must_use]
    pub fn spawn(self) -> ServerHandle {
        let local_addr = self.local_addr;
        let shutdown = Arc::clone(&self.shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("uops-serve-accept".into())
            .spawn(move || self.run())
            .expect("spawn accept thread");
        ServerHandle { local_addr, shutdown, accept_thread }
    }
}

/// Serves one connection: read request, route, write response, repeat
/// while keep-alive holds.
fn serve_connection(stream: TcpStream, service: &QueryService) {
    let _ = stream.set_read_timeout(Some(KEEP_ALIVE_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    for served in 0..MAX_REQUESTS_PER_CONNECTION {
        let request = match http::read_request(&mut reader) {
            Ok(request) => request,
            Err(http::RequestError::ConnectionClosed) => return,
            Err(http::RequestError::Bad(status, message)) => {
                let body = ServiceResponse::error(status, &message);
                let _ =
                    http::write_response(&mut writer, status, body.content_type, &body.body, false);
                return;
            }
            Err(http::RequestError::Io(_)) => return,
        };
        let keep_alive = request.keep_alive && served + 1 < MAX_REQUESTS_PER_CONNECTION;
        let response = route(service, &request.method, &request.path, &request.query);
        if http::write_response(
            &mut writer,
            response.status,
            response.content_type,
            &response.body,
            keep_alive,
        )
        .is_err()
            || !keep_alive
        {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uops_db::{InstructionDb, Snapshot, VariantRecord};

    fn service() -> QueryService {
        let mut s = Snapshot::new("router test");
        // "X+Y" exercises path-segment decoding: '+' is literal in paths.
        for (m, uarch) in
            [("ADD", "Skylake"), ("ADD", "Haswell"), ("ADC", "Skylake"), ("X+Y", "Skylake")]
        {
            s.records.push(VariantRecord {
                mnemonic: m.into(),
                variant: "R64, R64".into(),
                extension: "BASE".into(),
                uarch: uarch.into(),
                uop_count: 1,
                ports: vec![(0b0100_0001, 1)],
                tp_measured: 0.25,
                ..Default::default()
            });
        }
        QueryService::from_db(Arc::new(InstructionDb::from_snapshot(&s)), 1 << 20)
    }

    #[test]
    fn routes_dispatch_and_validate() {
        let service = service();
        assert_eq!(route(&service, "GET", "/v1/query", "uarch=Skylake").status, 200);
        assert_eq!(route(&service, "GET", "/v1/query", "uarhc=Skylake").status, 400);
        assert_eq!(route(&service, "GET", "/v1/query", "format=yaml").status, 400);
        assert_eq!(
            route(&service, "GET", "/v1/query", "format=binary&format=json").status,
            400,
            "duplicate format must be rejected, not last-win"
        );
        assert_eq!(route(&service, "GET", "/v1/record/ADD", "").status, 200);
        assert_eq!(route(&service, "GET", "/v1/record/ADD", "uarch=Skylake").status, 200);
        assert_eq!(route(&service, "GET", "/v1/record/ADD", "variant=bogus").status, 400);
        assert_eq!(route(&service, "GET", "/v1/record/", "").status, 404);
        assert_eq!(route(&service, "GET", "/v1/diff", "base=Haswell&other=Skylake").status, 200);
        assert_eq!(route(&service, "GET", "/v1/diff", "base=Haswell").status, 400);
        assert_eq!(
            route(&service, "GET", "/v1/diff", "base=Haswell&base=Skylake&other=Skylake").status,
            400,
            "duplicate diff parameters must not last-win"
        );
        assert_eq!(
            route(&service, "GET", "/v1/record/ADD", "uarch=Skylake&uarch=Haswell").status,
            400
        );
        assert_eq!(route(&service, "GET", "/v1/stats", "").status, 200);
        assert_eq!(route(&service, "GET", "/v1/stats", "x=1").status, 400);
        assert_eq!(
            route(&service, "GET", "/v1/stats", "format=json").status,
            400,
            "stats ignores no parameters, including format"
        );
        assert_eq!(route(&service, "GET", "/nope", "").status, 404);
        assert_eq!(route(&service, "POST", "/v1/query", "").status, 405);
    }

    #[test]
    fn format_parameter_selects_the_encoder() {
        let service = service();
        let json = route(&service, "GET", "/v1/query", "uarch=Skylake");
        let binary = route(&service, "GET", "/v1/query", "uarch=Skylake&format=binary");
        let xml = route(&service, "GET", "/v1/query", "uarch=Skylake&format=xml");
        assert_eq!(json.content_type, "application/json");
        assert_eq!(binary.content_type, "application/x-uops-result");
        assert_eq!(xml.content_type, "application/xml");
        assert_eq!(&binary.body[..4], b"UQR\x01");
    }

    #[test]
    fn record_path_segment_is_percent_decoded() {
        let service = service();
        // "ADD" spelled with an escape still routes to the same mnemonic —
        // and hits the same cache entry as the plain spelling.
        let plain = route(&service, "GET", "/v1/record/ADD", "");
        let escaped = route(&service, "GET", "/v1/record/%41DD", "");
        assert_eq!(plain.body, escaped.body);
        assert_eq!(service.stats().cache.hits, 1);
        // Path segments are not query components: a literal '+' stays a
        // plus — "/v1/record/X+Y" must find the "X+Y" mnemonic, not look
        // up "X Y".
        let plus = route(&service, "GET", "/v1/record/X+Y", "");
        assert_eq!(plus.status, 200);
        let text = String::from_utf8(plus.body.to_vec()).expect("utf-8");
        assert!(text.contains("\"total_matches\": 1"), "{text}");
        assert!(text.contains("\"mnemonic\": \"X+Y\""), "{text}");
        // ...while %2B reaches the same record and the same cache entry.
        let escaped_plus = route(&service, "GET", "/v1/record/X%2BY", "");
        assert_eq!(escaped_plus.body, plus.body);
    }

    #[test]
    fn end_to_end_over_a_real_socket() {
        use std::io::{Read, Write};
        let service = Arc::new(service());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service), 2).expect("bind");
        let addr = server.local_addr();
        let handle = server.spawn();

        let mut stream = TcpStream::connect(addr).expect("connect");
        // Two requests on one keep-alive connection: the second is a cache
        // hit for the first.
        let mut response = Vec::new();
        for _ in 0..2 {
            stream
                .write_all(b"GET /v1/query?uarch=Skylake HTTP/1.1\r\nHost: t\r\n\r\n")
                .expect("send");
            read_one_response(&mut stream, &mut response);
        }
        stream.write_all(b"GET /v1/stats HTTP/1.1\r\nConnection: close\r\n\r\n").expect("send");
        let mut stats = Vec::new();
        stream.read_to_end(&mut stats).expect("read stats");
        let stats_text = String::from_utf8_lossy(&stats);
        assert!(stats_text.contains("\"hits\": 1"), "{stats_text}");
        assert!(stats_text.contains("\"executions\": 1"), "{stats_text}");

        // In-process service call must produce the same payload bytes the
        // HTTP transport framed.
        let expected =
            service.query(&QueryPlan::parse("uarch=Skylake").expect("plan"), Encoding::Json);
        let response_text = String::from_utf8_lossy(&response);
        let body_at = response_text.find("\r\n\r\n").expect("header terminator") + 4;
        assert_eq!(&response[body_at..], &*expected.body, "HTTP body == in-process bytes");

        handle.shutdown();
    }

    /// Reads exactly one Content-Length-framed response into `out`
    /// (replacing its contents).
    fn read_one_response(stream: &mut TcpStream, out: &mut Vec<u8>) {
        use std::io::Read;
        out.clear();
        let mut byte = [0u8; 1];
        // Read until the blank line, then Content-Length more bytes.
        while !out.ends_with(b"\r\n\r\n") {
            assert_eq!(stream.read(&mut byte).expect("read header"), 1, "unexpected EOF");
            out.push(byte[0]);
        }
        let text = String::from_utf8_lossy(out);
        let len: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("content length")
            .trim()
            .parse()
            .expect("length");
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).expect("read body");
        out.extend_from_slice(&body);
    }
}
