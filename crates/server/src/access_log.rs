//! Sampled structured access log.
//!
//! One JSON line per sampled request, written by a background thread so
//! the serving loop never blocks on (or allocates for) log I/O beyond the
//! sampled requests themselves. Sampling is a single relaxed atomic
//! increment per request; non-sampled requests pay nothing else. Sampled
//! requests format the line on the serving thread (an allocation — which
//! is why the zero-allocation test runs without an access log) and hand
//! it to the writer thread over a bounded channel; if the writer falls
//! behind, lines are dropped rather than back-pressuring the hot path
//! (the drop count is reported on shutdown via [`AccessLog::dropped`]).
//!
//! Line format (stable key order):
//!
//! ```json
//! {"route":"/v1/query","status":200,"bytes":512,"tier":"raw","total_us":17,"parse_us":0,"execute_us":0,"encode_us":0}
//! ```
//!
//! `tier` is the serving tier of [`crate::ResponseTier`]; the stage
//! micros are zero for requests that never reached that stage (raw hits
//! skip all three).

use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::thread::JoinHandle;

/// Bounded depth of the line channel; beyond this the log drops lines
/// instead of blocking the serving threads.
const CHANNEL_DEPTH: usize = 1024;

/// Everything the transport knows about one served request, for logging.
#[derive(Debug, Clone, Copy)]
pub struct AccessEntry {
    /// Route label (see [`crate::metrics::Route::label`]).
    pub route: &'static str,
    /// Response status code.
    pub status: u16,
    /// Bytes written to the wire (head + body).
    pub bytes: usize,
    /// Serving-tier label (see [`crate::ResponseTier::label`]).
    pub tier: &'static str,
    /// Read-to-written latency in nanoseconds.
    pub total_ns: u64,
    /// Plan-parse stage nanoseconds (0 if the stage never ran).
    pub parse_ns: u64,
    /// Execute stage nanoseconds (0 if the stage never ran).
    pub execute_ns: u64,
    /// Encode stage nanoseconds (0 if the stage never ran).
    pub encode_ns: u64,
}

/// A sampled JSON-lines access log with a background writer thread.
///
/// Dropping the log closes the channel, joins the writer, and flushes
/// everything buffered — tests and `serve` shutdown rely on that.
#[derive(Debug)]
pub struct AccessLog {
    every: u64,
    seq: AtomicU64,
    dropped: AtomicU64,
    tx: Option<SyncSender<String>>,
    worker: Option<JoinHandle<()>>,
}

impl AccessLog {
    /// Creates a log writing every `every`-th request (1 = every request)
    /// to `writer` through a background `BufWriter`.
    #[must_use]
    pub fn new(every: u64, writer: Box<dyn Write + Send>) -> AccessLog {
        let (tx, rx) = sync_channel::<String>(CHANNEL_DEPTH);
        let worker = std::thread::Builder::new()
            .name("uops-access-log".into())
            .spawn(move || {
                let mut out = BufWriter::new(writer);
                loop {
                    // Drain eagerly, flush only when momentarily idle so a
                    // burst of lines costs one syscall, not one per line.
                    match rx.try_recv() {
                        Ok(line) => {
                            let _ = out.write_all(line.as_bytes());
                            let _ = out.write_all(b"\n");
                        }
                        Err(std::sync::mpsc::TryRecvError::Empty) => {
                            let _ = out.flush();
                            match rx.recv() {
                                Ok(line) => {
                                    let _ = out.write_all(line.as_bytes());
                                    let _ = out.write_all(b"\n");
                                }
                                Err(_) => break,
                            }
                        }
                        Err(std::sync::mpsc::TryRecvError::Disconnected) => break,
                    }
                }
                let _ = out.flush();
            })
            .expect("spawn access-log writer");
        AccessLog {
            every: every.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// Creates a log writing to standard error.
    #[must_use]
    pub fn to_stderr(every: u64) -> AccessLog {
        AccessLog::new(every, Box::new(io::stderr()))
    }

    /// The configured sampling period.
    #[must_use]
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Lines dropped because the writer fell behind.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Counts the request and reports whether it is sampled. This is the
    /// only per-request cost for non-sampled requests: one relaxed
    /// fetch-add, no allocation.
    pub fn sample(&self) -> bool {
        self.seq.fetch_add(1, Ordering::Relaxed) % self.every == 0
    }

    /// Formats and enqueues one sampled entry. Call only when
    /// [`AccessLog::sample`] returned `true`.
    pub fn log(&self, entry: &AccessEntry) {
        let line = format!(
            concat!(
                "{{\"route\":\"{}\",\"status\":{},\"bytes\":{},\"tier\":\"{}\",",
                "\"total_us\":{},\"parse_us\":{},\"execute_us\":{},\"encode_us\":{}}}"
            ),
            entry.route,
            entry.status,
            entry.bytes,
            entry.tier,
            entry.total_ns / 1_000,
            entry.parse_ns / 1_000,
            entry.execute_ns / 1_000,
            entry.encode_ns / 1_000,
        );
        if let Some(tx) = &self.tx {
            match tx.try_send(line) {
                Ok(()) => {}
                Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

impl Drop for AccessLog {
    fn drop(&mut self) {
        // Close the channel first so the writer drains and exits, then
        // join to guarantee the final flush happened.
        self.tx = None;
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn entry(status: u16) -> AccessEntry {
        AccessEntry {
            route: "/v1/query",
            status,
            bytes: 512,
            tier: "raw",
            total_ns: 17_500,
            parse_ns: 1_000,
            execute_ns: 2_000,
            encode_ns: 3_999,
        }
    }

    #[test]
    fn every_nth_request_is_sampled() {
        let log = AccessLog::new(4, Box::new(io::sink()));
        let sampled: Vec<bool> = (0..8).map(|_| log.sample()).collect();
        assert_eq!(sampled, vec![true, false, false, false, true, false, false, false]);
    }

    #[test]
    fn lines_are_json_and_flushed_on_drop() {
        let buf = SharedBuf::default();
        let sink = buf.clone();
        let log = AccessLog::new(1, Box::new(sink));
        assert!(log.sample());
        log.log(&entry(200));
        assert!(log.sample());
        log.log(&entry(304));
        drop(log); // joins the writer, flushing everything
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"route\":\"/v1/query\",\"status\":200,\"bytes\":512,\"tier\":\"raw\",\
             \"total_us\":17,\"parse_us\":1,\"execute_us\":2,\"encode_us\":3}"
        );
        assert!(lines[1].contains("\"status\":304"));
    }

    #[test]
    fn zero_period_is_clamped_to_one() {
        let log = AccessLog::new(0, Box::new(io::sink()));
        assert_eq!(log.every(), 1);
        assert!(log.sample());
        assert!(log.sample());
    }
}
