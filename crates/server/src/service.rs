//! The transport-agnostic query service.
//!
//! [`QueryService`] is the middle layer of the serving stack: it owns an
//! `Arc` of a read-only database (a zero-copy [`Segment`] in production,
//! an in-memory [`InstructionDb`] for tests and embedding) plus the
//! sharded LRU [`ResponseCache`], and answers *requests* — a canonical
//! [`QueryPlan`], a record lookup, a µarch diff — with fully encoded
//! [`ServiceResponse`] bytes. It knows nothing about HTTP; the server in
//! [`crate::http`]/[`crate::Server`] is one possible transport, the
//! in-process calls in tests and benchmarks are another, and both produce
//! byte-identical responses by construction.
//!
//! The cache stores encoded bytes keyed by the fingerprint of the
//! canonical request string, so a hit skips **plan resolution, execution,
//! and encoding entirely** — observable through [`ServiceStats`]: a hit
//! increments `cache.hits` and leaves `executions`/`encodes` untouched.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use uops_db::{
    diff_uarches, fnv1a_64, BinaryEncoder, DbBackend, DbError, ExecStageMetrics, InstructionDb,
    JsonEncoder, QueryExec, QueryPlan, ResultEncoder, Segment, XmlEncoder,
};
use uops_telemetry::{Counter, Histogram, Span};

use crate::cache::{CacheStats, CachedResponse, ResponseCache};
use crate::metrics::stage_scratch;

/// Which [`ResultEncoder`] a request selects (the `format=` parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Encoding {
    /// JSON (the default): snapshot-shaped record objects.
    #[default]
    Json,
    /// Compact TLV binary sharing the snapshot codec's record messages.
    Binary,
    /// uops.info-style grouped XML.
    Xml,
}

impl Encoding {
    /// Parses the wire spelling (`json`, `binary`, `xml`).
    #[must_use]
    pub fn from_wire_name(s: &str) -> Option<Encoding> {
        match s {
            "json" => Some(Encoding::Json),
            "binary" => Some(Encoding::Binary),
            "xml" => Some(Encoding::Xml),
            _ => None,
        }
    }

    /// The canonical wire spelling.
    #[must_use]
    pub fn wire_name(self) -> &'static str {
        match self {
            Encoding::Json => "json",
            Encoding::Binary => "binary",
            Encoding::Xml => "xml",
        }
    }

    fn content_type(self) -> &'static str {
        match self {
            Encoding::Json => JsonEncoder.content_type(),
            Encoding::Binary => BinaryEncoder.content_type(),
            Encoding::Xml => XmlEncoder.content_type(),
        }
    }
}

/// Which serving tier produced a [`ServiceResponse`] — the raw fast lane,
/// the fingerprint cache, or the full execute-and-encode pipeline.
///
/// Set at response construction (no racy counter-delta inference) so the
/// transport can attribute its latency measurement to the tier that did
/// the work, and the access log can report it per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResponseTier {
    /// Served from the raw fast lane (verbatim-target cache hit).
    Raw,
    /// Served from the fingerprint tier (canonical-plan cache hit).
    Fingerprint,
    /// Executed and encoded on this request (cache miss or uncacheable).
    Uncached,
    /// Not a query-pipeline response (errors, stats, exposition).
    #[default]
    Untiered,
}

impl ResponseTier {
    /// Stable wire/label spelling (`raw`, `fingerprint`, `uncached`, `none`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ResponseTier::Raw => "raw",
            ResponseTier::Fingerprint => "fingerprint",
            ResponseTier::Uncached => "uncached",
            ResponseTier::Untiered => "none",
        }
    }
}

/// A fully encoded response: what a transport writes to the client and
/// what the cache stores (sans status, which is always 200 for cacheable
/// responses).
#[derive(Debug, Clone)]
pub struct ServiceResponse {
    /// HTTP-style status code (200, 400, 404).
    pub status: u16,
    /// MIME type of `body`.
    pub content_type: &'static str,
    /// The strong entity tag — plan fingerprint ⊕ store content hash — for
    /// cacheable results; `None` for errors and the (self-invalidating)
    /// stats payload. A transport renders it as `ETag: "%016x"` and
    /// answers a matching `If-None-Match` with `304 Not Modified`.
    pub etag: Option<u64>,
    /// Encoded payload; shared with the cache on hits.
    pub body: Arc<[u8]>,
    /// Which serving tier produced this response.
    pub tier: ResponseTier,
}

impl ServiceResponse {
    fn ok(cached: CachedResponse, tier: ResponseTier) -> ServiceResponse {
        ServiceResponse {
            status: 200,
            content_type: cached.content_type,
            etag: Some(cached.etag),
            body: cached.body,
            tier,
        }
    }

    /// A JSON error response with the given status.
    #[must_use]
    pub fn error(status: u16, message: &str) -> ServiceResponse {
        let mut body = String::with_capacity(message.len() + 16);
        body.push_str("{\"error\": ");
        uops_db::json::escape_into(&mut body, message);
        body.push_str("}\n");
        ServiceResponse {
            status,
            content_type: "application/json",
            etag: None,
            body: Arc::from(body.into_bytes().as_slice()),
            tier: ResponseTier::Untiered,
        }
    }
}

/// The read-only store behind a service: a zero-copy segment (production —
/// replicas ship the image and open it in place) or an in-memory database
/// (tests, embedding).
enum Store {
    Segment(Arc<Segment>),
    Memory(Arc<InstructionDb>),
}

/// Why the service refused to run the uncached pipeline for a request.
///
/// Shedding is the *graceful* half of overload control: cache hits (both
/// tiers) keep serving untouched, and only new compute-bound work is
/// turned away with a preformatted 503 — see
/// [`QueryService::shed_response`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// The request's deadline budget was already spent before (or between)
    /// the execute/encode stages.
    Deadline,
    /// Admitting another uncached execution would exceed
    /// [`QueryService::set_max_uncached_inflight`].
    Capacity,
}

/// The per-request deadline budget, threaded transport → service through a
/// thread-local (both transports answer a request start-to-finish on one
/// thread, and this keeps the `produce` closures signature-stable — the
/// same pattern as [`stage_scratch`]).
pub(crate) mod deadline {
    use std::cell::Cell;
    use std::time::Instant;

    thread_local! {
        static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
    }

    /// Arms (or clears, with `None`) the calling thread's deadline. The
    /// transport calls this as each request starts being answered.
    pub(crate) fn set(deadline: Option<Instant>) {
        DEADLINE.with(|d| d.set(deadline));
    }

    /// Whether the armed deadline has passed. Unarmed (`None`) never
    /// expires.
    pub(crate) fn exceeded() -> bool {
        DEADLINE.with(|d| d.get().is_some_and(|at| Instant::now() >= at))
    }
}

/// Dropping the guard releases one admitted uncached execution.
struct UncachedGuard<'a>(&'a QueryService);

impl Drop for UncachedGuard<'_> {
    fn drop(&mut self) {
        self.0.uncached_inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Counter snapshot of a [`QueryService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Fingerprint-tier cache counters (hits / misses / evictions /
    /// occupancy), keyed by the canonical plan fingerprint.
    pub cache: CacheStats,
    /// Raw fast-lane counters, keyed by the verbatim request target. A
    /// raw hit skips percent-decoding, plan parsing, canonicalization,
    /// and fingerprinting on top of what a fingerprint hit skips.
    pub raw: CacheStats,
    /// Times the query executor actually ran a plan.
    pub executions: u64,
    /// Times a result encoder actually produced bytes.
    pub encodes: u64,
}

/// The transport-agnostic query service. See the module docs.
pub struct QueryService {
    store: Store,
    cache: ResponseCache,
    /// The raw fast lane: verbatim request targets → encoded responses.
    /// Entries share their body `Arc` with the fingerprint tier, so the
    /// double-counted byte budget buys index entries, not body copies.
    raw_cache: ResponseCache,
    /// FNV-1a over the store's canonical image; ⊕ the plan fingerprint it
    /// forms the strong ETag of every cacheable response.
    content_hash: u64,
    executions: Counter,
    encodes: Counter,
    /// Per-stage latency histograms (parse / execute / encode), recorded
    /// by `Span` guards on the uncached path. Wait-free and
    /// allocation-free; exposed via [`QueryService::exec_stage_metrics`]
    /// for `/metrics` registration and summarized as percentile estimates
    /// in the stats JSON.
    exec_stages: ExecStageMetrics,
    /// Uncached executions currently in flight (admission gauge).
    uncached_inflight: AtomicUsize,
    /// Admission ceiling for concurrent uncached executions; `0` means
    /// unlimited (the default).
    max_uncached_inflight: AtomicUsize,
    /// Requests shed because their deadline budget ran out.
    shed_deadline: Counter,
    /// Requests shed because the uncached-execution ceiling was reached.
    shed_capacity: Counter,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("records", &self.record_count())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Default number of cache shards. More shards than serving threads keeps
/// the probability of two in-flight requests contending on one mutex low.
const CACHE_SHARDS: usize = 16;

impl QueryService {
    /// Serves a zero-copy segment with a response cache of
    /// `cache_capacity_bytes` (0 disables caching) and a raw fast lane a
    /// quarter that size (raw entries share their bodies with the
    /// fingerprint tier, so the extra budget buys index entries only).
    #[must_use]
    pub fn from_segment(segment: Arc<Segment>, cache_capacity_bytes: usize) -> QueryService {
        QueryService::with_store(
            Store::Segment(segment),
            cache_capacity_bytes,
            cache_capacity_bytes / 4,
        )
    }

    /// [`QueryService::from_segment`] with an explicit raw fast-lane
    /// budget (0 disables the fast lane; every request then pays plan
    /// parsing and fingerprinting — the pre-fast-lane behavior,
    /// benchmarked as the baseline).
    #[must_use]
    pub fn from_segment_with_raw_cache(
        segment: Arc<Segment>,
        cache_capacity_bytes: usize,
        raw_cache_capacity_bytes: usize,
    ) -> QueryService {
        QueryService::with_store(
            Store::Segment(segment),
            cache_capacity_bytes,
            raw_cache_capacity_bytes,
        )
    }

    /// Serves an in-memory database (tests, embedding).
    #[must_use]
    pub fn from_db(db: Arc<InstructionDb>, cache_capacity_bytes: usize) -> QueryService {
        QueryService::with_store(Store::Memory(db), cache_capacity_bytes, cache_capacity_bytes / 4)
    }

    /// [`QueryService::from_db`] with an explicit raw fast-lane budget.
    #[must_use]
    pub fn from_db_with_raw_cache(
        db: Arc<InstructionDb>,
        cache_capacity_bytes: usize,
        raw_cache_capacity_bytes: usize,
    ) -> QueryService {
        QueryService::with_store(Store::Memory(db), cache_capacity_bytes, raw_cache_capacity_bytes)
    }

    fn with_store(
        store: Store,
        cache_capacity_bytes: usize,
        raw_cache_capacity_bytes: usize,
    ) -> QueryService {
        // The content hash pins ETags to the exact data being served:
        // segments hash their canonical image, in-memory stores hash
        // their canonical snapshot encoding. Computed once at
        // construction (segments are immutable per process).
        let content_hash = match &store {
            Store::Segment(segment) => fnv1a_64(segment.as_bytes()),
            Store::Memory(db) => fnv1a_64(&uops_db::codec::encode(&db.export_snapshot())),
        };
        QueryService {
            store,
            cache: ResponseCache::new(cache_capacity_bytes, CACHE_SHARDS),
            raw_cache: ResponseCache::new(raw_cache_capacity_bytes, CACHE_SHARDS),
            content_hash,
            executions: Counter::new(),
            encodes: Counter::new(),
            exec_stages: ExecStageMetrics::new(),
            uncached_inflight: AtomicUsize::new(0),
            max_uncached_inflight: AtomicUsize::new(0),
            shed_deadline: Counter::new(),
            shed_capacity: Counter::new(),
        }
    }

    /// Caps concurrent *uncached* (execute + encode) requests at `limit`;
    /// `0` removes the cap. Excess requests are shed with a preformatted
    /// 503 while both cache tiers keep serving — the degradation order
    /// under overload is "new compute first, cached answers last".
    pub fn set_max_uncached_inflight(&self, limit: usize) {
        self.max_uncached_inflight.store(limit, Ordering::Relaxed);
    }

    /// The configured uncached-execution ceiling (`0` = unlimited).
    #[must_use]
    pub fn max_uncached_inflight(&self) -> usize {
        self.max_uncached_inflight.load(Ordering::Relaxed)
    }

    /// Uncached executions in flight right now (the admission gauge).
    #[must_use]
    pub fn uncached_inflight(&self) -> usize {
        self.uncached_inflight.load(Ordering::Relaxed)
    }

    /// Requests shed on a spent deadline budget (for telemetry
    /// registration).
    #[must_use]
    pub fn shed_deadline_counter(&self) -> &Counter {
        &self.shed_deadline
    }

    /// Requests shed at the uncached-execution ceiling (for telemetry
    /// registration).
    #[must_use]
    pub fn shed_capacity_counter(&self) -> &Counter {
        &self.shed_capacity
    }

    /// The per-stage (parse / execute / encode) latency histograms of the
    /// uncached pipeline, for telemetry registration.
    #[must_use]
    pub fn exec_stage_metrics(&self) -> &ExecStageMetrics {
        &self.exec_stages
    }

    /// The fingerprint-tier cache (for telemetry registration).
    #[must_use]
    pub fn fingerprint_cache(&self) -> &ResponseCache {
        &self.cache
    }

    /// The raw fast-lane cache (for telemetry registration).
    #[must_use]
    pub fn raw_lane_cache(&self) -> &ResponseCache {
        &self.raw_cache
    }

    /// The live plan-execution counter (for telemetry registration).
    #[must_use]
    pub fn executions_counter(&self) -> &Counter {
        &self.executions
    }

    /// The live result-encode counter (for telemetry registration).
    #[must_use]
    pub fn encodes_counter(&self) -> &Counter {
        &self.encodes
    }

    /// The FNV-1a hash of the store's canonical content — the second half
    /// of every response ETag. Changes iff the served data changes.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// Looks up the raw fast lane: the response cached under the verbatim
    /// request target, skipping percent-decoding, plan parsing,
    /// canonicalization, and fingerprinting entirely. Collision-safe like
    /// the fingerprint tier (the stored target must match byte-for-byte).
    /// Allocation-free: a hit is a hash, a map probe, and an `Arc` bump.
    #[must_use]
    pub fn raw_response(&self, target: &str) -> Option<ServiceResponse> {
        self.raw_cache
            .get(fnv1a_64(target.as_bytes()), target)
            .map(|hit| ServiceResponse::ok(hit, ResponseTier::Raw))
    }

    /// Stores a 200 response in the raw fast lane under the verbatim
    /// request target. The transport calls this after a fast-lane miss
    /// was answered by the full routing pipeline; errors and uncacheable
    /// endpoints must not be stored (the router decides).
    pub fn raw_store(&self, target: &str, response: &ServiceResponse) {
        let Some(etag) = response.etag else { return };
        if response.status != 200 {
            return;
        }
        self.raw_cache.insert(
            fnv1a_64(target.as_bytes()),
            target,
            CachedResponse {
                content_type: response.content_type,
                etag,
                body: Arc::clone(&response.body),
            },
        );
    }

    /// Number of records in the underlying store.
    #[must_use]
    pub fn record_count(&self) -> usize {
        match &self.store {
            Store::Segment(segment) => segment.db().len(),
            Store::Memory(db) => db.len(),
        }
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            cache: self.cache.stats(),
            raw: self.raw_cache.stats(),
            executions: self.executions.get(),
            encodes: self.encodes.get(),
        }
    }

    /// Answers a query request: cache lookup on the canonical plan string,
    /// then (on a miss) plan execution + encoding, with the encoded bytes
    /// inserted for the next identical request.
    pub fn query(&self, plan: &QueryPlan, encoding: Encoding) -> ServiceResponse {
        let request = format!("q/{}?{}", encoding.wire_name(), plan.to_query_string());
        self.cached(&request, encoding, |service| service.execute_encoded(plan, encoding))
    }

    /// Answers a record request (`/v1/record/{mnemonic}`): all records for
    /// a mnemonic, optionally narrowed by `uarch`. Runs through the same
    /// plan/exec/encode pipeline (and cache) as [`QueryService::query`].
    pub fn record(
        &self,
        mnemonic: &str,
        uarch: Option<&str>,
        encoding: Encoding,
    ) -> ServiceResponse {
        let mut plan = uops_db::Query::new().mnemonic(mnemonic);
        if let Some(uarch) = uarch {
            plan = plan.uarch(uarch);
        }
        let plan = plan.into_plan();
        let request = format!("r/{}?{}", encoding.wire_name(), plan.to_query_string());
        self.cached(&request, encoding, |service| service.execute_encoded(&plan, encoding))
    }

    /// Answers a cross-µarch diff request.
    pub fn diff(&self, base: &str, other: &str, encoding: Encoding) -> ServiceResponse {
        let request = format!(
            "d/{}?base={}&other={}",
            encoding.wire_name(),
            uops_db::plan::encode_component(base),
            uops_db::plan::encode_component(other),
        );
        self.cached(&request, encoding, |service| {
            let _admitted = service.admit_uncached()?;
            if deadline::exceeded() {
                return Err(Shed::Deadline);
            }
            service.encodes.inc();
            Ok(match &service.store {
                Store::Segment(segment) => {
                    encode_diff(&diff_uarches(&segment.db(), base, other), encoding)
                }
                Store::Memory(db) => encode_diff(&diff_uarches(db.as_ref(), base, other), encoding),
            })
        })
    }

    /// The `/v1/stats` payload: service + cache counters and store
    /// metadata as JSON. Never cached (it would invalidate itself) and
    /// never tagged (no ETag — a 304 for stats would be wrong).
    #[must_use]
    pub fn stats_response(&self) -> ServiceResponse {
        let stats = self.stats();
        let tier = |s: &CacheStats| {
            format!(
                "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"uncacheable\": {}, \
                 \"entries\": {}, \"bytes\": {}, \"capacity_bytes\": {}}}",
                s.hits, s.misses, s.evictions, s.uncacheable, s.entries, s.bytes, s.capacity_bytes,
            )
        };
        // Percentile estimates derived from the stage histograms' log₂
        // buckets. Additive: every pre-telemetry key above is unchanged.
        let stage = |h: &Histogram| {
            format!(
                "{{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                h.count(),
                h.quantile(0.50),
                h.quantile(0.99),
                h.max(),
            )
        };
        let body = format!(
            "{{\n  \"records\": {},\n  \"cache\": {},\n  \"raw\": {},\n  \
             \"executions\": {},\n  \"encodes\": {},\n  \
             \"stages\": {{\"parse\": {}, \"execute\": {}, \"encode\": {}}},\n  \
             \"overload\": {{\"shed_deadline\": {}, \"shed_capacity\": {}, \
             \"uncached_inflight\": {}, \"max_uncached_inflight\": {}}}\n}}\n",
            self.record_count(),
            tier(&stats.cache),
            tier(&stats.raw),
            stats.executions,
            stats.encodes,
            stage(&self.exec_stages.parse_ns),
            stage(&self.exec_stages.execute_ns),
            stage(&self.exec_stages.encode_ns),
            self.shed_deadline.get(),
            self.shed_capacity.get(),
            self.uncached_inflight(),
            self.max_uncached_inflight(),
        );
        ServiceResponse {
            status: 200,
            content_type: "application/json",
            etag: None,
            body: Arc::from(body.into_bytes().as_slice()),
            tier: ResponseTier::Untiered,
        }
    }

    /// Parses a wire query string into a plan and answers it; parse errors
    /// become 400 responses.
    pub fn query_wire(&self, query_string: &str, encoding: Encoding) -> ServiceResponse {
        let span = Span::start(&self.exec_stages.parse_ns);
        let parsed = QueryPlan::parse(query_string);
        stage_scratch::set_parse(span.finish());
        match parsed {
            Ok(plan) => self.query(&plan, encoding),
            Err(DbError::Plan { message }) => ServiceResponse::error(400, &message),
            Err(other) => ServiceResponse::error(400, &other.to_string()),
        }
    }

    /// Admits one uncached execution against the configured ceiling, or
    /// sheds. The returned guard releases the slot on drop (including on
    /// panic and on a mid-pipeline deadline shed).
    fn admit_uncached(&self) -> Result<UncachedGuard<'_>, Shed> {
        let limit = self.max_uncached_inflight.load(Ordering::Relaxed);
        let mut current = self.uncached_inflight.load(Ordering::Relaxed);
        loop {
            if limit != 0 && current >= limit {
                return Err(Shed::Capacity);
            }
            match self.uncached_inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(UncachedGuard(self)),
                Err(live) => current = live,
            }
        }
    }

    /// The preformatted 503 for a shed request: a static body shared by
    /// `Arc` clone (no allocation on the shed path), never tagged, never
    /// cached (no `etag`, and [`QueryService::cached`] skips insertion).
    /// Also the single place shed counters are bumped.
    fn shed_response(&self, shed: Shed) -> ServiceResponse {
        match shed {
            Shed::Deadline => self.shed_deadline.inc(),
            Shed::Capacity => self.shed_capacity.inc(),
        }
        static SHED_BODY: OnceLock<Arc<[u8]>> = OnceLock::new();
        let body = SHED_BODY
            .get_or_init(|| Arc::from(&b"{\"error\": \"server overloaded, retry shortly\"}\n"[..]));
        ServiceResponse {
            status: 503,
            content_type: "application/json",
            etag: None,
            body: Arc::clone(body),
            tier: ResponseTier::Untiered,
        }
    }

    fn cached(
        &self,
        request: &str,
        encoding: Encoding,
        produce: impl FnOnce(&QueryService) -> Result<Vec<u8>, Shed>,
    ) -> ServiceResponse {
        let key = fnv1a_64(request.as_bytes());
        if let Some(hit) = self.cache.get(key, request) {
            return ServiceResponse::ok(hit, ResponseTier::Fingerprint);
        }
        let body: Arc<[u8]> = match produce(self) {
            Ok(bytes) => Arc::from(bytes.as_slice()),
            // A shed response never enters either cache tier: the next
            // request for this key retries the full pipeline.
            Err(shed) => return self.shed_response(shed),
        };
        // ETag = canonical-request fingerprint ⊕ store content hash: two
        // spellings of the same plan share one tag, and every tag changes
        // when the served data changes.
        let cached = CachedResponse {
            content_type: encoding.content_type(),
            etag: key ^ self.content_hash,
            body,
        };
        self.cache.insert(key, request, cached.clone());
        ServiceResponse::ok(cached, ResponseTier::Uncached)
    }

    /// Executes a plan and encodes the result (counted — a cache hit never
    /// reaches this). Both stages run under `Span` guards: the elapsed
    /// nanoseconds land in the stage histograms and, via the thread-local
    /// stage scratch, in the sampled access log of the request being served.
    ///
    /// This is where graceful degradation bites: admission against the
    /// uncached ceiling first, then the deadline budget checked on entry
    /// and again between the execute and encode stages — a request that
    /// ran out of budget mid-pipeline stops before paying for encoding.
    fn execute_encoded(&self, plan: &QueryPlan, encoding: Encoding) -> Result<Vec<u8>, Shed> {
        let _admitted = self.admit_uncached()?;
        if deadline::exceeded() {
            return Err(Shed::Deadline);
        }
        self.executions.inc();
        match &self.store {
            Store::Segment(segment) => {
                let db = segment.db();
                let span = Span::start(&self.exec_stages.execute_ns);
                let result = QueryExec::new().run(plan, &db);
                stage_scratch::set_execute(span.finish());
                if deadline::exceeded() {
                    return Err(Shed::Deadline);
                }
                self.encodes.inc();
                let span = Span::start(&self.exec_stages.encode_ns);
                let bytes = encode_result(&result, encoding);
                stage_scratch::set_encode(span.finish());
                Ok(bytes)
            }
            Store::Memory(db) => {
                let span = Span::start(&self.exec_stages.execute_ns);
                let result = QueryExec::new().run(plan, db.as_ref());
                stage_scratch::set_execute(span.finish());
                if deadline::exceeded() {
                    return Err(Shed::Deadline);
                }
                self.encodes.inc();
                let span = Span::start(&self.exec_stages.encode_ns);
                let bytes = encode_result(&result, encoding);
                stage_scratch::set_encode(span.finish());
                Ok(bytes)
            }
        }
    }
}

fn encode_result<B: DbBackend>(
    result: &uops_db::QueryResult<'_, B>,
    encoding: Encoding,
) -> Vec<u8> {
    match encoding {
        Encoding::Json => JsonEncoder.encode_result(result),
        Encoding::Binary => BinaryEncoder.encode_result(result),
        Encoding::Xml => XmlEncoder.encode_result(result),
    }
}

fn encode_diff(report: &uops_db::DiffReport, encoding: Encoding) -> Vec<u8> {
    match encoding {
        Encoding::Json => JsonEncoder.encode_diff(report),
        Encoding::Binary => BinaryEncoder.encode_diff(report),
        Encoding::Xml => XmlEncoder.encode_diff(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uops_db::{Query, Snapshot, VariantRecord};

    fn snapshot() -> Snapshot {
        let mut s = Snapshot::new("service test");
        for (m, uarch, mask) in [
            ("ADD", "Skylake", 0b0110_0011u16),
            ("ADC", "Skylake", 0b0100_0001),
            ("ADD", "Haswell", 0b0110_0011),
        ] {
            s.records.push(VariantRecord {
                mnemonic: m.into(),
                variant: "R64, R64".into(),
                extension: "BASE".into(),
                uarch: uarch.into(),
                uop_count: 1,
                ports: vec![(mask, 1)],
                tp_measured: 0.25,
                ..Default::default()
            });
        }
        s
    }

    fn service() -> QueryService {
        let segment = Segment::from_bytes(Segment::encode(&snapshot())).expect("segment");
        QueryService::from_segment(Arc::new(segment), 1 << 20)
    }

    #[test]
    fn cache_hit_skips_planner_and_encoder() {
        let service = service();
        let plan = Query::new().uarch("Skylake").into_plan();
        let cold = service.query(&plan, Encoding::Json);
        let stats = service.stats();
        assert_eq!((stats.executions, stats.encodes, stats.cache.hits), (1, 1, 0));

        let warm = service.query(&plan, Encoding::Json);
        let stats = service.stats();
        assert_eq!(stats.executions, 1, "hit must not re-run the executor");
        assert_eq!(stats.encodes, 1, "hit must not re-encode");
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(cold.body, warm.body, "cached and uncached bytes identical");
        assert!(Arc::ptr_eq(&cold.body, &warm.body), "hit shares the stored allocation");
    }

    #[test]
    fn encodings_are_cached_independently() {
        let service = service();
        let plan = Query::new().uarch("Skylake").into_plan();
        let json = service.query(&plan, Encoding::Json);
        let binary = service.query(&plan, Encoding::Binary);
        assert_ne!(json.body, binary.body);
        assert_eq!(json.content_type, "application/json");
        assert_eq!(binary.content_type, "application/x-uops-result");
        assert_eq!(service.stats().executions, 2);
        // Each encoding now hits its own entry.
        service.query(&plan, Encoding::Json);
        service.query(&plan, Encoding::Binary);
        assert_eq!(service.stats().executions, 2);
        assert_eq!(service.stats().cache.hits, 2);
    }

    #[test]
    fn segment_and_memory_stores_answer_identically() {
        let snapshot = snapshot();
        let seg_service = service();
        let mem_service =
            QueryService::from_db(Arc::new(InstructionDb::from_snapshot(&snapshot)), 1 << 20);
        for (qs, enc) in [
            ("uarch=Skylake", Encoding::Json),
            ("mnemonic=ADD&sort=latency", Encoding::Json),
            ("port=6", Encoding::Binary),
            ("", Encoding::Xml),
        ] {
            let plan = QueryPlan::parse(qs).expect("parse");
            let a = seg_service.query(&plan, enc);
            let b = mem_service.query(&plan, enc);
            assert_eq!(a.body, b.body, "{qs}");
        }
        let a = seg_service.diff("Haswell", "Skylake", Encoding::Json);
        let b = mem_service.diff("Haswell", "Skylake", Encoding::Json);
        assert_eq!(a.body, b.body);
    }

    #[test]
    fn record_and_diff_requests_are_cached() {
        let service = service();
        let cold = service.record("ADD", Some("Skylake"), Encoding::Json);
        let warm = service.record("ADD", Some("Skylake"), Encoding::Json);
        assert_eq!(cold.body, warm.body);
        assert_eq!(service.stats().cache.hits, 1);
        let d1 = service.diff("Haswell", "Skylake", Encoding::Json);
        let d2 = service.diff("Haswell", "Skylake", Encoding::Json);
        assert_eq!(d1.body, d2.body);
        assert_eq!(service.stats().cache.hits, 2);
        let text = String::from_utf8(d1.body.to_vec()).expect("utf-8");
        assert!(text.contains("\"base\": \"Haswell\""));
    }

    #[test]
    fn etag_is_plan_fingerprint_xor_content_hash() {
        let service = service();
        let plan = Query::new().uarch("Skylake").into_plan();
        let response = service.query(&plan, Encoding::Json);
        let request = format!("q/json?{}", plan.to_query_string());
        assert_eq!(
            response.etag,
            Some(fnv1a_64(request.as_bytes()) ^ service.content_hash()),
            "ETag composition is part of the wire contract"
        );

        // A store with different content produces a different hash — and
        // therefore different ETags for the same plan.
        let mut other_snapshot = snapshot();
        other_snapshot.records.pop();
        let other =
            QueryService::from_db(Arc::new(InstructionDb::from_snapshot(&other_snapshot)), 1 << 20);
        assert_ne!(service.content_hash(), other.content_hash());
        assert_ne!(response.etag, other.query(&plan, Encoding::Json).etag);

        // Same content served from segment vs memory also differs (the
        // hashed canonical form differs), but within one store the tag is
        // deterministic across identical services.
        let again = QueryService::from_segment(
            Arc::new(Segment::from_bytes(Segment::encode(&snapshot())).expect("segment")),
            1 << 20,
        );
        assert_eq!(again.content_hash(), service.content_hash());
        assert_eq!(again.query(&plan, Encoding::Json).etag, response.etag);
    }

    #[test]
    fn wire_parse_errors_become_400() {
        let service = service();
        let response = service.query_wire("uarhc=Skylake", Encoding::Json);
        assert_eq!(response.status, 400);
        let text = String::from_utf8(response.body.to_vec()).expect("utf-8");
        assert!(text.contains("unknown query parameter"), "{text}");
        // Errors are not cached.
        assert_eq!(service.stats().cache.entries, 0);
    }

    #[test]
    fn stats_response_reports_counters() {
        let service = service();
        let plan = Query::new().into_plan();
        service.query(&plan, Encoding::Json);
        service.query(&plan, Encoding::Json);
        let text = String::from_utf8(service.stats_response().body.to_vec()).expect("utf-8");
        assert!(text.contains("\"records\": 3"), "{text}");
        assert!(text.contains("\"hits\": 1"), "{text}");
        assert!(text.contains("\"executions\": 1"), "{text}");
        assert!(text.contains("\"overload\": {\"shed_deadline\": 0"), "{text}");
    }

    #[test]
    fn capacity_shedding_spares_cache_hits_and_is_never_cached() {
        let service = service();
        let warm_plan = Query::new().uarch("Skylake").into_plan();
        let warm = service.query(&warm_plan, Encoding::Json);

        // Saturate the admission gauge as a stand-in for a stuck in-flight
        // execution, with a ceiling of 1.
        service.set_max_uncached_inflight(1);
        service.uncached_inflight.store(1, Ordering::Relaxed);
        let cold_plan = Query::new().uarch("Haswell").into_plan();
        let shed = service.query(&cold_plan, Encoding::Json);
        assert_eq!(shed.status, 503);
        assert_eq!(shed.tier, ResponseTier::Untiered);
        assert!(shed.etag.is_none(), "shed responses are not revalidatable");
        assert_eq!(service.shed_capacity_counter().get(), 1);
        assert_eq!(service.stats().executions, 1, "the shed request never executed");

        // Cache hits are untouched by the ceiling: graceful degradation.
        let hit = service.query(&warm_plan, Encoding::Json);
        assert_eq!(hit.status, 200);
        assert_eq!(hit.tier, ResponseTier::Fingerprint);
        assert_eq!(hit.body, warm.body);

        // The shed was not cached: with capacity back, the query runs.
        service.uncached_inflight.store(0, Ordering::Relaxed);
        let ok = service.query(&cold_plan, Encoding::Json);
        assert_eq!(ok.status, 200);
        assert_eq!(ok.tier, ResponseTier::Uncached);
        assert_eq!(service.uncached_inflight(), 0, "the admission guard released its slot");
    }

    #[test]
    fn deadline_shedding_spares_cache_hits() {
        let service = service();
        let warm_plan = Query::new().uarch("Skylake").into_plan();
        service.query(&warm_plan, Encoding::Json);

        // An already-expired deadline sheds every uncached request …
        deadline::set(Some(std::time::Instant::now()));
        let cold_plan = Query::new().uarch("Haswell").into_plan();
        let shed = service.query(&cold_plan, Encoding::Json);
        assert_eq!(shed.status, 503);
        assert_eq!(service.shed_deadline_counter().get(), 1);
        assert_eq!(service.stats().executions, 1);

        // … while cache hits never consult the deadline.
        let hit = service.query(&warm_plan, Encoding::Json);
        assert_eq!((hit.status, hit.tier), (200, ResponseTier::Fingerprint));

        // Disarming the deadline restores the uncached pipeline, and the
        // shed slot was released on the way out.
        deadline::set(None);
        let ok = service.query(&cold_plan, Encoding::Json);
        assert_eq!(ok.status, 200);
        assert_eq!(service.uncached_inflight(), 0);
    }
}
