//! The transport-agnostic query service.
//!
//! [`QueryService`] is the middle layer of the serving stack: it owns an
//! `Arc` of a read-only database (a zero-copy [`Segment`] in production,
//! an in-memory [`InstructionDb`] for tests and embedding) plus the
//! sharded LRU [`ResponseCache`], and answers *requests* — a canonical
//! [`QueryPlan`], a record lookup, a µarch diff — with fully encoded
//! [`ServiceResponse`] bytes. It knows nothing about HTTP; the server in
//! [`crate::http`]/[`crate::Server`] is one possible transport, the
//! in-process calls in tests and benchmarks are another, and both produce
//! byte-identical responses by construction.
//!
//! The cache stores encoded bytes keyed by the fingerprint of the
//! canonical request string, so a hit skips **plan resolution, execution,
//! and encoding entirely** — observable through [`ServiceStats`]: a hit
//! increments `cache.hits` and leaves `executions`/`encodes` untouched.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use uops_db::store::SwapCell;
use uops_db::{
    diff_uarches, fnv1a_64, fnv1a_64_parts, BatchExec, BinaryEncoder, DbBackend, DbError,
    ExecStageMetrics, InstructionDb, JsonEncoder, QueryExec, QueryPlan, QueryResult, ResultEncoder,
    Segment, XmlEncoder,
};
use uops_telemetry::{Counter, Histogram, Span};

use crate::cache::{CacheStats, CachedResponse, PrehashedMap, ResponseCache};
use crate::http::{BatchBody, BatchPart};
use crate::metrics::stage_scratch;

/// Leading magic of a TLV-shaped batch *request* body (`POST /v1/batch`);
/// bodies without it are parsed as newline-delimited plan strings.
pub const BATCH_REQUEST_MAGIC: [u8; 4] = *b"UQB\x01";

/// Leading magic of a framed batch *response* body, followed by a `u32`
/// LE plan count and one `u16` LE status + `u32` LE length + body frame
/// per plan, in request order.
pub const BATCH_RESPONSE_MAGIC: [u8; 4] = *b"UQM\x01";

/// `Content-Type` of a framed batch response.
pub const BATCH_CONTENT_TYPE: &str = "application/x-uops-batch";

/// Which [`ResultEncoder`] a request selects (the `format=` parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Encoding {
    /// JSON (the default): snapshot-shaped record objects.
    #[default]
    Json,
    /// Compact TLV binary sharing the snapshot codec's record messages.
    Binary,
    /// uops.info-style grouped XML.
    Xml,
}

impl Encoding {
    /// Parses the wire spelling (`json`, `binary`, `xml`).
    #[must_use]
    pub fn from_wire_name(s: &str) -> Option<Encoding> {
        match s {
            "json" => Some(Encoding::Json),
            "binary" => Some(Encoding::Binary),
            "xml" => Some(Encoding::Xml),
            _ => None,
        }
    }

    /// The canonical wire spelling.
    #[must_use]
    pub fn wire_name(self) -> &'static str {
        match self {
            Encoding::Json => "json",
            Encoding::Binary => "binary",
            Encoding::Xml => "xml",
        }
    }

    fn content_type(self) -> &'static str {
        match self {
            Encoding::Json => JsonEncoder.content_type(),
            Encoding::Binary => BinaryEncoder.content_type(),
            Encoding::Xml => XmlEncoder.content_type(),
        }
    }
}

/// Which serving tier produced a [`ServiceResponse`] — the raw fast lane,
/// the fingerprint cache, or the full execute-and-encode pipeline.
///
/// Set at response construction (no racy counter-delta inference) so the
/// transport can attribute its latency measurement to the tier that did
/// the work, and the access log can report it per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResponseTier {
    /// Served from the raw fast lane (verbatim-target cache hit).
    Raw,
    /// Served from the fingerprint tier (canonical-plan cache hit).
    Fingerprint,
    /// Executed and encoded on this request (cache miss or uncacheable).
    Uncached,
    /// Not a query-pipeline response (errors, stats, exposition).
    #[default]
    Untiered,
}

impl ResponseTier {
    /// Stable wire/label spelling (`raw`, `fingerprint`, `uncached`, `none`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ResponseTier::Raw => "raw",
            ResponseTier::Fingerprint => "fingerprint",
            ResponseTier::Uncached => "uncached",
            ResponseTier::Untiered => "none",
        }
    }
}

/// A fully encoded response: what a transport writes to the client and
/// what the cache stores (sans status, which is always 200 for cacheable
/// responses).
#[derive(Debug, Clone)]
pub struct ServiceResponse {
    /// HTTP-style status code (200, 400, 404).
    pub status: u16,
    /// MIME type of `body`.
    pub content_type: &'static str,
    /// The strong entity tag — plan fingerprint ⊕ store content hash — for
    /// cacheable results; `None` for errors and the (self-invalidating)
    /// stats payload. A transport renders it as `ETag: "%016x"` and
    /// answers a matching `If-None-Match` with `304 Not Modified`.
    pub etag: Option<u64>,
    /// Encoded payload; shared with the cache on hits.
    pub body: Arc<[u8]>,
    /// Which serving tier produced this response.
    pub tier: ResponseTier,
    /// The store generation the body was produced against (`0` for
    /// errors and other untiered payloads). The raw fast lane stamps its
    /// entries with this, so a response from a pre-swap generation can
    /// never enter the lane after the swap's flush.
    pub generation: u64,
}

impl ServiceResponse {
    fn ok(cached: CachedResponse, tier: ResponseTier) -> ServiceResponse {
        ServiceResponse {
            status: 200,
            content_type: cached.content_type,
            etag: Some(cached.etag),
            generation: cached.generation,
            body: cached.body,
            tier,
        }
    }

    /// A JSON error response with the given status.
    #[must_use]
    pub fn error(status: u16, message: &str) -> ServiceResponse {
        let mut body = String::with_capacity(message.len() + 16);
        body.push_str("{\"error\": ");
        uops_db::json::escape_into(&mut body, message);
        body.push_str("}\n");
        ServiceResponse {
            status,
            content_type: "application/json",
            etag: None,
            body: Arc::from(body.into_bytes().as_slice()),
            tier: ResponseTier::Untiered,
            generation: 0,
        }
    }
}

/// The read-only store behind a service: a zero-copy segment (production —
/// replicas ship the image and open it in place) or an in-memory database
/// (tests, embedding). Cloning clones the `Arc`, not the data — a
/// [`StreamBody`] carries one so chunk emission can re-view records after
/// the response has left the service.
#[derive(Clone)]
enum Store {
    Segment(Arc<Segment>),
    Memory(Arc<InstructionDb>),
}

/// One live generation of the served data: the store, the content hash
/// that seeds every ETag, and the generation id (0 until the first swap).
/// Held behind a [`SwapCell`] so each request pins exactly one coherent
/// generation at entry — body, ETag, and cache stamp all come from it —
/// while a [`QueryService::swap_segment`] replaces the cell for new
/// requests without blocking anyone.
struct LiveStore {
    store: Store,
    /// FNV-1a over the store's canonical image; ⊕ the plan fingerprint it
    /// forms the strong ETag of every cacheable response.
    content_hash: u64,
    id: u64,
}

/// Why the service refused to run the uncached pipeline for a request.
///
/// Shedding is the *graceful* half of overload control: cache hits (both
/// tiers) keep serving untouched, and only new compute-bound work is
/// turned away with a preformatted 503 — see
/// [`QueryService::shed_response`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// The request's deadline budget was already spent before (or between)
    /// the execute/encode stages.
    Deadline,
    /// Admitting another uncached execution would exceed
    /// [`QueryService::set_max_uncached_inflight`].
    Capacity,
}

/// The per-request deadline budget, threaded transport → service through a
/// thread-local (both transports answer a request start-to-finish on one
/// thread, and this keeps the `produce` closures signature-stable — the
/// same pattern as [`stage_scratch`]).
pub(crate) mod deadline {
    use std::cell::Cell;
    use std::time::Instant;

    thread_local! {
        static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
    }

    /// Arms (or clears, with `None`) the calling thread's deadline. The
    /// transport calls this as each request starts being answered.
    pub(crate) fn set(deadline: Option<Instant>) {
        DEADLINE.with(|d| d.set(deadline));
    }

    /// Whether the armed deadline has passed. Unarmed (`None`) never
    /// expires.
    pub(crate) fn exceeded() -> bool {
        DEADLINE.with(|d| d.get().is_some_and(|at| Instant::now() >= at))
    }
}

/// Dropping the guard releases one admitted uncached execution.
struct UncachedGuard<'a>(&'a QueryService);

impl Drop for UncachedGuard<'_> {
    fn drop(&mut self) {
        self.0.uncached_inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Counter snapshot of a [`QueryService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Fingerprint-tier cache counters (hits / misses / evictions /
    /// occupancy), keyed by the canonical plan fingerprint.
    pub cache: CacheStats,
    /// Raw fast-lane counters, keyed by the verbatim request target. A
    /// raw hit skips percent-decoding, plan parsing, canonicalization,
    /// and fingerprinting on top of what a fingerprint hit skips.
    pub raw: CacheStats,
    /// Times the query executor actually ran a plan.
    pub executions: u64,
    /// Times a result encoder actually produced bytes.
    pub encodes: u64,
}

/// The transport-agnostic query service. See the module docs.
pub struct QueryService {
    /// The generation-swapped live store. Reading it is allocation-free
    /// (epoch load + slot guard + `Arc` bump); swapping it is
    /// [`QueryService::swap_segment`].
    live: SwapCell<LiveStore>,
    /// Serializes swappers so the monotonic-generation check and the cell
    /// swap are one atomic step.
    swap_lock: Mutex<()>,
    cache: ResponseCache,
    /// The raw fast lane: verbatim request targets → encoded responses.
    /// Entries share their body `Arc` with the fingerprint tier, so the
    /// double-counted byte budget buys index entries, not body copies.
    raw_cache: ResponseCache,
    /// Generation swaps performed over this service's lifetime.
    swaps: Counter,
    /// Cache-tier flushes performed by swaps (two per swap: fingerprint
    /// tier + raw lane).
    cache_flushes: Counter,
    /// Segment images quarantined by store recovery, surfaced here so the
    /// serving process exposes them (`uops_store_quarantined_total`).
    quarantined: Counter,
    executions: Counter,
    encodes: Counter,
    /// Per-stage latency histograms (parse / execute / encode), recorded
    /// by `Span` guards on the uncached path. Wait-free and
    /// allocation-free; exposed via [`QueryService::exec_stage_metrics`]
    /// for `/metrics` registration and summarized as percentile estimates
    /// in the stats JSON.
    exec_stages: ExecStageMetrics,
    /// Uncached executions currently in flight (admission gauge).
    uncached_inflight: AtomicUsize,
    /// Admission ceiling for concurrent uncached executions; `0` means
    /// unlimited (the default).
    max_uncached_inflight: AtomicUsize,
    /// Requests shed because their deadline budget ran out.
    shed_deadline: Counter,
    /// Requests shed because the uncached-execution ceiling was reached.
    shed_capacity: Counter,
    /// Compiled-plan handles: fingerprint → canonical plan string
    /// (`POST /v1/plan` registers, `GET /v1/plan/{fingerprint}` resolves).
    plans: RwLock<PrehashedMap<Box<str>>>,
    /// Result-page row count above which a query switches to chunked
    /// streaming instead of a cached whole-body response; `0` disables
    /// streaming entirely.
    stream_threshold: AtomicUsize,
    /// Transport-installed hook appending extra top-level fields to the
    /// `/v1/stats` JSON (e.g. the reactor's per-shard connection skew).
    /// The service itself stays transport-agnostic; cold path only.
    stats_ext: RwLock<Option<Box<dyn Fn(&mut String) + Send + Sync>>>,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("records", &self.record_count())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Default number of cache shards. More shards than serving threads keeps
/// the probability of two in-flight requests contending on one mutex low.
const CACHE_SHARDS: usize = 16;

/// Default [`QueryService::set_stream_threshold`]: result pages up to
/// this many rows materialize and cache as today; larger pages stream.
const DEFAULT_STREAM_THRESHOLD: usize = 4096;

/// Target payload bytes per streamed chunk — the fixed working-set size
/// of a chunked export, independent of result size.
pub const STREAM_CHUNK_BYTES: usize = 64 * 1024;

impl QueryService {
    /// Serves a zero-copy segment with a response cache of
    /// `cache_capacity_bytes` (0 disables caching) and a raw fast lane a
    /// quarter that size (raw entries share their bodies with the
    /// fingerprint tier, so the extra budget buys index entries only).
    #[must_use]
    pub fn from_segment(segment: Arc<Segment>, cache_capacity_bytes: usize) -> QueryService {
        QueryService::with_store(
            Store::Segment(segment),
            cache_capacity_bytes,
            cache_capacity_bytes / 4,
        )
    }

    /// [`QueryService::from_segment`] with an explicit raw fast-lane
    /// budget (0 disables the fast lane; every request then pays plan
    /// parsing and fingerprinting — the pre-fast-lane behavior,
    /// benchmarked as the baseline).
    #[must_use]
    pub fn from_segment_with_raw_cache(
        segment: Arc<Segment>,
        cache_capacity_bytes: usize,
        raw_cache_capacity_bytes: usize,
    ) -> QueryService {
        QueryService::with_store(
            Store::Segment(segment),
            cache_capacity_bytes,
            raw_cache_capacity_bytes,
        )
    }

    /// Serves an in-memory database (tests, embedding).
    #[must_use]
    pub fn from_db(db: Arc<InstructionDb>, cache_capacity_bytes: usize) -> QueryService {
        QueryService::with_store(Store::Memory(db), cache_capacity_bytes, cache_capacity_bytes / 4)
    }

    /// [`QueryService::from_db`] with an explicit raw fast-lane budget.
    #[must_use]
    pub fn from_db_with_raw_cache(
        db: Arc<InstructionDb>,
        cache_capacity_bytes: usize,
        raw_cache_capacity_bytes: usize,
    ) -> QueryService {
        QueryService::with_store(Store::Memory(db), cache_capacity_bytes, raw_cache_capacity_bytes)
    }

    fn with_store(
        store: Store,
        cache_capacity_bytes: usize,
        raw_cache_capacity_bytes: usize,
    ) -> QueryService {
        // The content hash pins ETags to the exact data being served:
        // segments hash their canonical image, in-memory stores hash
        // their canonical snapshot encoding. Computed once per generation
        // (at construction here, and in `swap_segment` on every swap).
        let content_hash = match &store {
            Store::Segment(segment) => fnv1a_64(segment.as_bytes()),
            Store::Memory(db) => fnv1a_64(&uops_db::codec::encode(&db.export_snapshot())),
        };
        QueryService {
            live: SwapCell::new(Arc::new(LiveStore { store, content_hash, id: 0 })),
            swap_lock: Mutex::new(()),
            cache: ResponseCache::new(cache_capacity_bytes, CACHE_SHARDS),
            raw_cache: ResponseCache::new(raw_cache_capacity_bytes, CACHE_SHARDS),
            swaps: Counter::new(),
            cache_flushes: Counter::new(),
            quarantined: Counter::new(),
            executions: Counter::new(),
            encodes: Counter::new(),
            exec_stages: ExecStageMetrics::new(),
            uncached_inflight: AtomicUsize::new(0),
            max_uncached_inflight: AtomicUsize::new(0),
            shed_deadline: Counter::new(),
            shed_capacity: Counter::new(),
            plans: RwLock::new(PrehashedMap::default()),
            stream_threshold: AtomicUsize::new(DEFAULT_STREAM_THRESHOLD),
            stats_ext: RwLock::new(None),
        }
    }

    /// Atomically replaces the served store with `segment` as generation
    /// `generation`, flushing both cache tiers so no pre-swap bytes are
    /// served afterwards. In-flight requests finish on the generation they
    /// pinned at entry; their late cache inserts are rejected by the
    /// generation stamp. Returns `false` (and does nothing) unless
    /// `generation` is strictly newer than the live one — a stale swap
    /// completing out of order must not roll the service back.
    pub fn swap_segment(&self, segment: Arc<Segment>, generation: u64) -> bool {
        let _swapper = self.swap_lock.lock().expect("swap lock");
        if generation <= self.live.load().id {
            return false;
        }
        let content_hash = fnv1a_64(segment.as_bytes());
        self.live.swap(Arc::new(LiveStore {
            store: Store::Segment(segment),
            content_hash,
            id: generation,
        }));
        self.cache.advance_epoch(generation);
        self.raw_cache.advance_epoch(generation);
        self.swaps.inc();
        self.cache_flushes.add(2);
        true
    }

    /// The live generation id (`0` until the first swap).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.live.load().id
    }

    /// The live swap counter (for telemetry registration).
    #[must_use]
    pub fn swaps_counter(&self) -> &Counter {
        &self.swaps
    }

    /// The live cache-flush counter — two per swap (for telemetry
    /// registration).
    #[must_use]
    pub fn cache_flushes_counter(&self) -> &Counter {
        &self.cache_flushes
    }

    /// The live quarantine counter (for telemetry registration).
    #[must_use]
    pub fn quarantined_counter(&self) -> &Counter {
        &self.quarantined
    }

    /// Records `n` quarantined segment images (the serve binary feeds the
    /// store-recovery count in at boot).
    pub fn note_quarantined(&self, n: u64) {
        self.quarantined.add(n);
    }

    /// Installs a hook that appends extra top-level fields to the
    /// `/v1/stats` JSON. The hook receives the body with the final
    /// closing brace stripped and must append `,\n  "key": value` pairs
    /// only; the service re-closes the object. Used by the reactor
    /// transport to surface per-shard connection skew without teaching
    /// the service about transports.
    pub fn set_stats_extension(&self, ext: impl Fn(&mut String) + Send + Sync + 'static) {
        *self.stats_ext.write().expect("stats ext lock") = Some(Box::new(ext));
    }

    /// Sets the streaming threshold: result pages with more rows than
    /// `rows` answer as a chunked stream in O(chunk) memory instead of a
    /// cached whole body. `0` disables streaming (every result
    /// materializes, the pre-streaming behavior).
    pub fn set_stream_threshold(&self, rows: usize) {
        self.stream_threshold.store(rows, Ordering::Relaxed);
    }

    /// The configured streaming threshold (`0` = streaming disabled).
    #[must_use]
    pub fn stream_threshold(&self) -> usize {
        self.stream_threshold.load(Ordering::Relaxed)
    }

    /// Caps concurrent *uncached* (execute + encode) requests at `limit`;
    /// `0` removes the cap. Excess requests are shed with a preformatted
    /// 503 while both cache tiers keep serving — the degradation order
    /// under overload is "new compute first, cached answers last".
    pub fn set_max_uncached_inflight(&self, limit: usize) {
        self.max_uncached_inflight.store(limit, Ordering::Relaxed);
    }

    /// The configured uncached-execution ceiling (`0` = unlimited).
    #[must_use]
    pub fn max_uncached_inflight(&self) -> usize {
        self.max_uncached_inflight.load(Ordering::Relaxed)
    }

    /// Uncached executions in flight right now (the admission gauge).
    #[must_use]
    pub fn uncached_inflight(&self) -> usize {
        self.uncached_inflight.load(Ordering::Relaxed)
    }

    /// Requests shed on a spent deadline budget (for telemetry
    /// registration).
    #[must_use]
    pub fn shed_deadline_counter(&self) -> &Counter {
        &self.shed_deadline
    }

    /// Requests shed at the uncached-execution ceiling (for telemetry
    /// registration).
    #[must_use]
    pub fn shed_capacity_counter(&self) -> &Counter {
        &self.shed_capacity
    }

    /// The per-stage (parse / execute / encode) latency histograms of the
    /// uncached pipeline, for telemetry registration.
    #[must_use]
    pub fn exec_stage_metrics(&self) -> &ExecStageMetrics {
        &self.exec_stages
    }

    /// The fingerprint-tier cache (for telemetry registration).
    #[must_use]
    pub fn fingerprint_cache(&self) -> &ResponseCache {
        &self.cache
    }

    /// The raw fast-lane cache (for telemetry registration).
    #[must_use]
    pub fn raw_lane_cache(&self) -> &ResponseCache {
        &self.raw_cache
    }

    /// The live plan-execution counter (for telemetry registration).
    #[must_use]
    pub fn executions_counter(&self) -> &Counter {
        &self.executions
    }

    /// The live result-encode counter (for telemetry registration).
    #[must_use]
    pub fn encodes_counter(&self) -> &Counter {
        &self.encodes
    }

    /// The FNV-1a hash of the live store's canonical content — the second
    /// half of every response ETag. Changes iff the served data changes
    /// (including on every generation swap).
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        self.live.load().content_hash
    }

    /// Looks up the raw fast lane: the response cached under the verbatim
    /// request target, skipping percent-decoding, plan parsing,
    /// canonicalization, and fingerprinting entirely. Collision-safe like
    /// the fingerprint tier (the stored target must match byte-for-byte).
    /// Allocation-free: a hit is a hash, a map probe, and an `Arc` bump.
    #[must_use]
    pub fn raw_response(&self, target: &str) -> Option<ServiceResponse> {
        self.raw_cache
            .get(fnv1a_64(target.as_bytes()), target)
            .map(|hit| ServiceResponse::ok(hit, ResponseTier::Raw))
    }

    /// Stores a 200 response in the raw fast lane under the verbatim
    /// request target. The transport calls this after a fast-lane miss
    /// was answered by the full routing pipeline; errors and uncacheable
    /// endpoints must not be stored (the router decides).
    pub fn raw_store(&self, target: &str, response: &ServiceResponse) {
        let Some(etag) = response.etag else { return };
        if response.status != 200 {
            return;
        }
        self.raw_cache.insert(
            fnv1a_64(target.as_bytes()),
            target,
            CachedResponse {
                content_type: response.content_type,
                etag,
                body: Arc::clone(&response.body),
                generation: response.generation,
            },
        );
    }

    /// Number of records in the live store.
    #[must_use]
    pub fn record_count(&self) -> usize {
        match &self.live.load().store {
            Store::Segment(segment) => segment.db().len(),
            Store::Memory(db) => db.len(),
        }
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            cache: self.cache.stats(),
            raw: self.raw_cache.stats(),
            executions: self.executions.get(),
            encodes: self.encodes.get(),
        }
    }

    /// Answers a query request: cache lookup on the canonical plan string,
    /// then (on a miss) plan execution + encoding, with the encoded bytes
    /// inserted for the next identical request.
    pub fn query(&self, plan: &QueryPlan, encoding: Encoding) -> ServiceResponse {
        let live = self.live.load();
        let request = format!("q/{}?{}", encoding.wire_name(), plan.to_query_string());
        self.cached(&live, &request, encoding, |service| {
            service.execute_encoded(&live, plan, encoding)
        })
    }

    /// Answers a record request (`/v1/record/{mnemonic}`): all records for
    /// a mnemonic, optionally narrowed by `uarch`. Runs through the same
    /// plan/exec/encode pipeline (and cache) as [`QueryService::query`].
    pub fn record(
        &self,
        mnemonic: &str,
        uarch: Option<&str>,
        encoding: Encoding,
    ) -> ServiceResponse {
        let mut plan = uops_db::Query::new().mnemonic(mnemonic);
        if let Some(uarch) = uarch {
            plan = plan.uarch(uarch);
        }
        let plan = plan.into_plan();
        let live = self.live.load();
        let request = format!("r/{}?{}", encoding.wire_name(), plan.to_query_string());
        self.cached(&live, &request, encoding, |service| {
            service.execute_encoded(&live, &plan, encoding)
        })
    }

    /// Answers a cross-µarch diff request.
    pub fn diff(&self, base: &str, other: &str, encoding: Encoding) -> ServiceResponse {
        let live = self.live.load();
        let request = format!(
            "d/{}?base={}&other={}",
            encoding.wire_name(),
            uops_db::plan::encode_component(base),
            uops_db::plan::encode_component(other),
        );
        self.cached(&live, &request, encoding, |service| {
            let _admitted = service.admit_uncached()?;
            if deadline::exceeded() {
                return Err(Shed::Deadline);
            }
            service.encodes.inc();
            Ok(match &live.store {
                Store::Segment(segment) => {
                    encode_diff(&diff_uarches(&segment.db(), base, other), encoding)
                }
                Store::Memory(db) => encode_diff(&diff_uarches(db.as_ref(), base, other), encoding),
            })
        })
    }

    /// The `/v1/stats` payload: service + cache counters and store
    /// metadata as JSON. Never cached (it would invalidate itself) and
    /// never tagged (no ETag — a 304 for stats would be wrong).
    #[must_use]
    pub fn stats_response(&self) -> ServiceResponse {
        let stats = self.stats();
        let tier = |s: &CacheStats| {
            format!(
                "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"uncacheable\": {}, \
                 \"entries\": {}, \"bytes\": {}, \"capacity_bytes\": {}}}",
                s.hits, s.misses, s.evictions, s.uncacheable, s.entries, s.bytes, s.capacity_bytes,
            )
        };
        // Percentile estimates derived from the stage histograms' log₂
        // buckets. Additive: every pre-telemetry key above is unchanged.
        let stage = |h: &Histogram| {
            format!(
                "{{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                h.count(),
                h.quantile(0.50),
                h.quantile(0.99),
                h.max(),
            )
        };
        let mut body = format!(
            "{{\n  \"records\": {},\n  \"generation\": {},\n  \"plans\": {},\n  \"cache\": {},\n  \
             \"raw\": {},\n  \
             \"executions\": {},\n  \"encodes\": {},\n  \
             \"stages\": {{\"parse\": {}, \"execute\": {}, \"encode\": {}}},\n  \
             \"overload\": {{\"shed_deadline\": {}, \"shed_capacity\": {}, \
             \"uncached_inflight\": {}, \"max_uncached_inflight\": {}}},\n  \
             \"store\": {{\"generation\": {}, \"swaps\": {}, \"cache_flushes\": {}, \
             \"quarantined\": {}}}",
            self.record_count(),
            self.generation(),
            self.plans.read().expect("plan registry lock").len(),
            tier(&stats.cache),
            tier(&stats.raw),
            stats.executions,
            stats.encodes,
            stage(&self.exec_stages.parse_ns),
            stage(&self.exec_stages.execute_ns),
            stage(&self.exec_stages.encode_ns),
            self.shed_deadline.get(),
            self.shed_capacity.get(),
            self.uncached_inflight(),
            self.max_uncached_inflight(),
            self.generation(),
            self.swaps.get(),
            self.cache_flushes.get(),
            self.quarantined.get(),
        );
        if let Some(ext) = self.stats_ext.read().expect("stats ext lock").as_ref() {
            ext(&mut body);
        }
        body.push_str("\n}\n");
        ServiceResponse {
            status: 200,
            content_type: "application/json",
            etag: None,
            body: Arc::from(body.into_bytes().as_slice()),
            tier: ResponseTier::Untiered,
            generation: 0,
        }
    }

    /// Parses a wire query string into a plan and answers it; parse errors
    /// become 400 responses.
    pub fn query_wire(&self, query_string: &str, encoding: Encoding) -> ServiceResponse {
        let span = Span::start(&self.exec_stages.parse_ns);
        let parsed = QueryPlan::parse(query_string);
        stage_scratch::set_parse(span.finish());
        match parsed {
            Ok(plan) => self.query(&plan, encoding),
            Err(DbError::Plan { message }) => ServiceResponse::error(400, &message),
            Err(other) => ServiceResponse::error(400, &other.to_string()),
        }
    }

    /// Admits one uncached execution against the configured ceiling, or
    /// sheds. The returned guard releases the slot on drop (including on
    /// panic and on a mid-pipeline deadline shed).
    fn admit_uncached(&self) -> Result<UncachedGuard<'_>, Shed> {
        let limit = self.max_uncached_inflight.load(Ordering::Relaxed);
        let mut current = self.uncached_inflight.load(Ordering::Relaxed);
        loop {
            if limit != 0 && current >= limit {
                return Err(Shed::Capacity);
            }
            match self.uncached_inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(UncachedGuard(self)),
                Err(live) => current = live,
            }
        }
    }

    /// The preformatted 503 for a shed request: a static body shared by
    /// `Arc` clone (no allocation on the shed path), never tagged, never
    /// cached (no `etag`, and [`QueryService::cached`] skips insertion).
    /// Also the single place shed counters are bumped.
    fn shed_response(&self, shed: Shed) -> ServiceResponse {
        match shed {
            Shed::Deadline => self.shed_deadline.inc(),
            Shed::Capacity => self.shed_capacity.inc(),
        }
        static SHED_BODY: OnceLock<Arc<[u8]>> = OnceLock::new();
        let body = SHED_BODY
            .get_or_init(|| Arc::from(&b"{\"error\": \"server overloaded, retry shortly\"}\n"[..]));
        ServiceResponse {
            status: 503,
            content_type: "application/json",
            etag: None,
            body: Arc::clone(body),
            tier: ResponseTier::Untiered,
            generation: 0,
        }
    }

    fn cached(
        &self,
        live: &LiveStore,
        request: &str,
        encoding: Encoding,
        produce: impl FnOnce(&QueryService) -> Result<Vec<u8>, Shed>,
    ) -> ServiceResponse {
        let key = fnv1a_64(request.as_bytes());
        if let Some(hit) = self.cache.get(key, request) {
            return ServiceResponse::ok(hit, ResponseTier::Fingerprint);
        }
        let body: Arc<[u8]> = match produce(self) {
            Ok(bytes) => Arc::from(bytes.as_slice()),
            // A shed response never enters either cache tier: the next
            // request for this key retries the full pipeline.
            Err(shed) => return self.shed_response(shed),
        };
        // ETag = canonical-request fingerprint ⊕ store content hash: two
        // spellings of the same plan share one tag, and every tag changes
        // when the served data changes. Hash and generation stamp come
        // from the pinned generation the bytes were produced against, so
        // body and tag are always one coherent generation even when a
        // swap lands mid-request.
        let cached = CachedResponse {
            content_type: encoding.content_type(),
            etag: key ^ live.content_hash,
            body,
            generation: live.id,
        };
        self.cache.insert(key, request, cached.clone());
        ServiceResponse::ok(cached, ResponseTier::Uncached)
    }

    /// Executes a plan and encodes the result (counted — a cache hit never
    /// reaches this). Both stages run under `Span` guards: the elapsed
    /// nanoseconds land in the stage histograms and, via the thread-local
    /// stage scratch, in the sampled access log of the request being served.
    ///
    /// This is where graceful degradation bites: admission against the
    /// uncached ceiling first, then the deadline budget checked on entry
    /// and again between the execute and encode stages — a request that
    /// ran out of budget mid-pipeline stops before paying for encoding.
    fn execute_encoded(
        &self,
        live: &LiveStore,
        plan: &QueryPlan,
        encoding: Encoding,
    ) -> Result<Vec<u8>, Shed> {
        let _admitted = self.admit_uncached()?;
        if deadline::exceeded() {
            return Err(Shed::Deadline);
        }
        self.executions.inc();
        match &live.store {
            Store::Segment(segment) => {
                let db = segment.db();
                let span = Span::start(&self.exec_stages.execute_ns);
                let result = QueryExec::new().run(plan, &db);
                stage_scratch::set_execute(span.finish());
                if deadline::exceeded() {
                    return Err(Shed::Deadline);
                }
                self.encodes.inc();
                let span = Span::start(&self.exec_stages.encode_ns);
                let bytes = encode_result(&result, encoding);
                stage_scratch::set_encode(span.finish());
                Ok(bytes)
            }
            Store::Memory(db) => {
                let span = Span::start(&self.exec_stages.execute_ns);
                let result = QueryExec::new().run(plan, db.as_ref());
                stage_scratch::set_execute(span.finish());
                if deadline::exceeded() {
                    return Err(Shed::Deadline);
                }
                self.encodes.inc();
                let span = Span::start(&self.exec_stages.encode_ns);
                let bytes = encode_result(&result, encoding);
                stage_scratch::set_encode(span.finish());
                Ok(bytes)
            }
        }
    }

    /// Registers a compiled-plan handle (`POST /v1/plan`): parses `text`
    /// as one wire plan string, stores fingerprint → canonical plan, and
    /// answers with both. Idempotent — re-registering the same plan (or
    /// any spelling canonicalizing to it) is a no-op returning the same
    /// fingerprint.
    pub fn register_plan(&self, text: &str) -> ServiceResponse {
        let text = text.trim_end_matches(['\r', '\n']);
        let plan = match QueryPlan::parse(text) {
            Ok(plan) => plan,
            Err(DbError::Plan { message }) => return ServiceResponse::error(400, &message),
            Err(other) => return ServiceResponse::error(400, &other.to_string()),
        };
        let canonical = plan.to_query_string();
        let fingerprint = plan.fingerprint();
        self.plans
            .write()
            .expect("plan registry lock")
            .entry(fingerprint)
            .or_insert_with(|| canonical.clone().into_boxed_str());
        let mut body = String::with_capacity(canonical.len() + 64);
        body.push_str("{\"fingerprint\": \"");
        body.push_str(std::str::from_utf8(&crate::http::etag_hex(fingerprint)).expect("hex"));
        body.push_str("\", \"plan\": ");
        uops_db::json::escape_into(&mut body, &canonical);
        body.push_str("}\n");
        ServiceResponse {
            status: 200,
            content_type: "application/json",
            etag: None,
            body: Arc::from(body.into_bytes().as_slice()),
            tier: ResponseTier::Untiered,
            generation: 0,
        }
    }

    /// Answers `GET /v1/plan/{fingerprint}`: resolves a registered handle
    /// and serves its query without touching the wire plan codec. The
    /// common case — fingerprint tier already warm — is a registry read,
    /// a piecewise cache probe, and an `Arc` bump: the third and cheapest
    /// entry point into the fingerprint tier (no percent-decoding, no
    /// plan parse, no canonicalization).
    pub fn planned_query(&self, fingerprint: &str, encoding: Encoding) -> ServiceResponse {
        let Ok(fingerprint) = u64::from_str_radix(fingerprint, 16) else {
            return ServiceResponse::error(400, "plan fingerprint is not hex");
        };
        let canonical = {
            let plans = self.plans.read().expect("plan registry lock");
            let Some(canonical) = plans.get(&fingerprint) else {
                return ServiceResponse::error(404, "unknown plan fingerprint");
            };
            let parts: [&[u8]; 4] =
                [b"q/", encoding.wire_name().as_bytes(), b"?", canonical.as_bytes()];
            if let Some(hit) = self.cache.get_parts(fnv1a_64_parts(&parts), &parts) {
                return ServiceResponse::ok(hit, ResponseTier::Fingerprint);
            }
            canonical.to_string()
        };
        let plan = QueryPlan::parse(&canonical).expect("registered plans are canonical");
        self.query(&plan, encoding)
    }

    /// Answers a `POST /v1/batch` body: N plans in, one framed
    /// multi-response out (see [`BATCH_RESPONSE_MAGIC`] for the frame
    /// layout). Per-plan flow: a piecewise fingerprint-tier probe on the
    /// verbatim line (allocation-free when the line is canonical — the
    /// warm steady state), a reprobe under the canonical spelling, then
    /// the misses share one [`BatchExec`] pass so repeated symbols and
    /// posting lists resolve once per batch instead of once per plan.
    /// Each miss's encoded body enters the fingerprint tier under the
    /// same key a single request would use, so batches and singles warm
    /// each other. Plan-level failures (parse errors, sheds) become
    /// per-plan status frames; only an unparseable *body* fails the batch.
    ///
    /// `out` and `scratch` are per-connection reusables — on the all-hits
    /// steady state this method allocates nothing.
    ///
    /// # Errors
    ///
    /// A whole-batch error response (400): non-UTF-8 text body, malformed
    /// TLV framing, or an empty batch.
    pub fn batch(
        &self,
        body: &[u8],
        encoding: Encoding,
        out: &mut BatchBody,
        scratch: &mut BatchScratch,
    ) -> Result<(), ServiceResponse> {
        scratch.responses.clear();
        scratch.misses.clear();
        scratch.requests.clear();
        if body.starts_with(&BATCH_REQUEST_MAGIC) {
            let mut at = BATCH_REQUEST_MAGIC.len();
            while at < body.len() {
                let Some(len) = read_varint(body, &mut at) else {
                    return Err(ServiceResponse::error(400, "malformed batch varint"));
                };
                let Some(end) = at.checked_add(len as usize).filter(|&end| end <= body.len())
                else {
                    return Err(ServiceResponse::error(400, "batch plan length out of bounds"));
                };
                match std::str::from_utf8(&body[at..end]) {
                    Ok(line) => self.batch_plan(line, encoding, scratch),
                    Err(_) => push_error(scratch, 400, "plan string is not UTF-8"),
                }
                at = end;
            }
        } else {
            let Ok(text) = std::str::from_utf8(body) else {
                return Err(ServiceResponse::error(400, "batch body is not UTF-8"));
            };
            for line in text.lines() {
                self.batch_plan(line, encoding, scratch);
            }
        }
        if scratch.responses.is_empty() {
            return Err(ServiceResponse::error(400, "empty batch"));
        }
        if !scratch.misses.is_empty() {
            let live = self.live.load();
            match self.admit_uncached() {
                Ok(_admitted) => match &live.store {
                    Store::Segment(segment) => {
                        self.run_batch_misses(&segment.db(), &live, encoding, scratch);
                    }
                    Store::Memory(db) => {
                        self.run_batch_misses(db.as_ref(), &live, encoding, scratch);
                    }
                },
                Err(shed) => {
                    for i in 0..scratch.misses.len() {
                        let response = self.shed_response(shed);
                        let index = scratch.misses[i].index;
                        scratch.responses[index] = (503, response.body);
                    }
                }
            }
        }
        out.clear();
        out.frames.extend_from_slice(&BATCH_RESPONSE_MAGIC);
        out.frames.extend_from_slice(
            &u32::try_from(scratch.responses.len()).unwrap_or(u32::MAX).to_le_bytes(),
        );
        out.header = 0..out.frames.len();
        for (status, body) in scratch.responses.drain(..) {
            let start = out.frames.len();
            out.frames.extend_from_slice(&status.to_le_bytes());
            out.frames
                .extend_from_slice(&u32::try_from(body.len()).unwrap_or(u32::MAX).to_le_bytes());
            out.parts.push(BatchPart { frame: start..out.frames.len(), body });
        }
        Ok(())
    }

    /// One batch plan's cache-probe phase: piecewise probe on the
    /// verbatim line, then parse + canonical reprobe, else queue a miss.
    fn batch_plan(&self, line: &str, encoding: Encoding, scratch: &mut BatchScratch) {
        let parts: [&[u8]; 4] = [b"q/", encoding.wire_name().as_bytes(), b"?", line.as_bytes()];
        if let Some(hit) = self.cache.get_parts(fnv1a_64_parts(&parts), &parts) {
            scratch.responses.push((200, hit.body));
            return;
        }
        let plan = match QueryPlan::parse(line) {
            Ok(plan) => plan,
            Err(DbError::Plan { message }) => return push_error(scratch, 400, &message),
            Err(other) => return push_error(scratch, 400, &other.to_string()),
        };
        // Build the cache-key string (`q/<encoding>?<canonical>`) straight
        // into the scratch arena — no per-plan String allocations.
        let start = scratch.requests.len();
        scratch.requests.push_str("q/");
        scratch.requests.push_str(encoding.wire_name());
        scratch.requests.push('?');
        let query_at = scratch.requests.len();
        plan.push_query_string(&mut scratch.requests);
        let request = start..scratch.requests.len();
        if scratch.requests[query_at..] != *line {
            let key = &scratch.requests.as_bytes()[request.clone()];
            let parts: [&[u8]; 1] = [key];
            if let Some(hit) = self.cache.get_parts(fnv1a_64_parts(&parts), &parts) {
                scratch.requests.truncate(start);
                scratch.responses.push((200, hit.body));
                return;
            }
        }
        let index = scratch.responses.len();
        scratch.responses.push((0, empty_body()));
        scratch.misses.push(BatchMiss { index, plan, request });
    }

    /// Executes every queued batch miss through one shared [`BatchExec`]
    /// (memoized symbol resolution and posting lists), encoding each into
    /// its own fingerprint-tier entry. Runs under the caller's admission
    /// guard; the deadline budget is rechecked per plan so a batch that
    /// runs out mid-way sheds its tail instead of blowing the budget.
    fn run_batch_misses<B: DbBackend>(
        &self,
        db: &B,
        live: &LiveStore,
        encoding: Encoding,
        scratch: &mut BatchScratch,
    ) {
        let mut exec = BatchExec::new(db);
        let (mut execute_ns, mut encode_ns) = (0u64, 0u64);
        let mut ran = 0u64;
        for miss in &scratch.misses {
            if deadline::exceeded() {
                let response = self.shed_response(Shed::Deadline);
                scratch.responses[miss.index] = (503, response.body);
                continue;
            }
            ran += 1;
            let run_at = std::time::Instant::now();
            let result = exec.run(&miss.plan);
            let encode_at = std::time::Instant::now();
            let bytes = encode_result(&result, encoding);
            execute_ns += encode_at.duration_since(run_at).as_nanos() as u64;
            encode_ns += encode_at.elapsed().as_nanos() as u64;
            let request = &scratch.requests[miss.request.clone()];
            let key = fnv1a_64(request.as_bytes());
            let cached = CachedResponse {
                content_type: encoding.content_type(),
                etag: key ^ live.content_hash,
                body: Arc::from(bytes.as_slice()),
                generation: live.id,
            };
            self.cache.insert(key, request, cached.clone());
            scratch.responses[miss.index] = (200, cached.body);
        }
        // Request-level stage timings cover the whole miss loop (this is
        // one HTTP request); the histograms get the same totals — one
        // sample per batch, not one per plan.
        self.executions.add(ran);
        self.encodes.add(ran);
        self.exec_stages.execute_ns.record(execute_ns);
        self.exec_stages.encode_ns.record(encode_ns);
        stage_scratch::set_execute(execute_ns);
        stage_scratch::set_encode(encode_ns);
    }

    /// [`QueryService::query_wire`] with large-result streaming: when the
    /// executed page exceeds the streaming threshold (and the encoding
    /// can stream — XML groups rows and cannot), the reply is a
    /// [`StreamBody`] whose chunks the transport emits in O(chunk)
    /// memory. Small results, cache hits, errors, and sheds answer as
    /// whole-body responses exactly as before; streamed replies bypass
    /// both cache tiers and carry no ETag (their bytes are never
    /// materialized in one place to tag).
    pub fn query_wire_streaming(&self, query_string: &str, encoding: Encoding) -> QueryReply {
        let span = Span::start(&self.exec_stages.parse_ns);
        let parsed = QueryPlan::parse(query_string);
        stage_scratch::set_parse(span.finish());
        let plan = match parsed {
            Ok(plan) => plan,
            Err(DbError::Plan { message }) => {
                return QueryReply::Full(ServiceResponse::error(400, &message));
            }
            Err(other) => {
                return QueryReply::Full(ServiceResponse::error(400, &other.to_string()));
            }
        };
        self.query_streaming(&plan, encoding)
    }

    /// [`QueryService::query`] with large-result streaming (the
    /// parsed-plan twin of [`QueryService::query_wire_streaming`] — the
    /// transport's router calls this after its own format extraction).
    pub fn query_streaming(&self, plan: &QueryPlan, encoding: Encoding) -> QueryReply {
        let threshold = self.stream_threshold();
        if threshold == 0 || matches!(encoding, Encoding::Xml) {
            return QueryReply::Full(self.query(plan, encoding));
        }
        let live = self.live.load();
        let request = format!("q/{}?{}", encoding.wire_name(), plan.to_query_string());
        let key = fnv1a_64(request.as_bytes());
        if let Some(hit) = self.cache.get(key, &request) {
            return QueryReply::Full(ServiceResponse::ok(hit, ResponseTier::Fingerprint));
        }
        let sized = match &live.store {
            Store::Segment(segment) => self.execute_sized(&segment.db(), plan, encoding, threshold),
            Store::Memory(db) => self.execute_sized(db.as_ref(), plan, encoding, threshold),
        };
        match sized {
            Err(shed) => QueryReply::Full(self.shed_response(shed)),
            Ok(SizedResult::Encoded(bytes)) => {
                let cached = CachedResponse {
                    content_type: encoding.content_type(),
                    etag: key ^ live.content_hash,
                    body: Arc::from(bytes.as_slice()),
                    generation: live.id,
                };
                self.cache.insert(key, &request, cached.clone());
                QueryReply::Full(ServiceResponse::ok(cached, ResponseTier::Uncached))
            }
            Ok(SizedResult::Ids { total, ids }) => {
                self.encodes.inc();
                QueryReply::Stream(StreamBody {
                    store: live.store.clone(),
                    encoding,
                    total,
                    ids,
                    at: 0,
                    begun: false,
                    done: false,
                    json: String::new(),
                })
            }
        }
    }

    /// The execute stage of the streaming path: runs the plan to matching
    /// ids first (cheap — no views, no encoded bytes), and only
    /// materializes + encodes when the page is small enough to cache.
    fn execute_sized<B: DbBackend>(
        &self,
        db: &B,
        plan: &QueryPlan,
        encoding: Encoding,
        threshold: usize,
    ) -> Result<SizedResult, Shed> {
        let _admitted = self.admit_uncached()?;
        if deadline::exceeded() {
            return Err(Shed::Deadline);
        }
        self.executions.inc();
        let span = Span::start(&self.exec_stages.execute_ns);
        let (total, ids) = QueryExec::new().run_ids(plan, db);
        stage_scratch::set_execute(span.finish());
        if ids.len() > threshold {
            return Ok(SizedResult::Ids { total, ids });
        }
        if deadline::exceeded() {
            return Err(Shed::Deadline);
        }
        self.encodes.inc();
        let span = Span::start(&self.exec_stages.encode_ns);
        let result = QueryResult {
            total_matches: total,
            rows: ids.into_iter().map(|id| db.view(id)).collect(),
        };
        let bytes = encode_result(&result, encoding);
        stage_scratch::set_encode(span.finish());
        Ok(SizedResult::Encoded(bytes))
    }
}

/// What [`QueryService::execute_sized`] produced: encoded bytes (small
/// page) or bare matching ids (page large enough to stream).
enum SizedResult {
    Encoded(Vec<u8>),
    Ids { total: usize, ids: Vec<u32> },
}

/// A query answer that is either a whole-body [`ServiceResponse`] or a
/// [`StreamBody`] the transport drains chunk by chunk.
pub enum QueryReply {
    /// Materialized response — write it like any other.
    Full(ServiceResponse),
    /// Large result: emit as `Transfer-Encoding: chunked` in O(chunk)
    /// memory.
    Stream(StreamBody),
}

/// A lazily encoded large result: the matching record ids plus an `Arc`
/// of the store. Each [`StreamBody::next_chunk`] call re-views a window
/// of ids into a caller-provided chunk buffer, so memory stays
/// O([`STREAM_CHUNK_BYTES`]) no matter how large the export is. The
/// chunk sequence concatenates to exactly the bytes the whole-body
/// encoder would have produced (the encoders' `begin_stream` /
/// `stream_row` / `end_stream` pieces are what `encode_rows` itself is
/// built from).
pub struct StreamBody {
    store: Store,
    encoding: Encoding,
    total: usize,
    ids: Vec<u32>,
    at: usize,
    begun: bool,
    done: bool,
    /// JSON streaming scratch (the JSON encoder writes `String`).
    json: String,
}

impl std::fmt::Debug for StreamBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamBody")
            .field("encoding", &self.encoding.wire_name())
            .field("rows", &self.ids.len())
            .field("at", &self.at)
            .finish()
    }
}

impl StreamBody {
    /// MIME type of the streamed payload.
    #[must_use]
    pub fn content_type(&self) -> &'static str {
        self.encoding.content_type()
    }

    /// Rows this stream will emit (the page size, after limit/offset).
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.ids.len()
    }

    /// Fills `chunk` (cleared first) with the next ~[`STREAM_CHUNK_BYTES`]
    /// of payload. Returns `false` — leaving `chunk` empty — once the
    /// stream is exhausted; the transport then writes the terminal chunk.
    pub fn next_chunk(&mut self, chunk: &mut Vec<u8>) -> bool {
        chunk.clear();
        if self.done {
            return false;
        }
        let StreamBody { store, encoding, total, ids, at, begun, done, json } = self;
        match store {
            Store::Segment(segment) => {
                fill_chunk(&segment.db(), *encoding, *total, ids, at, begun, done, json, chunk);
            }
            Store::Memory(db) => {
                fill_chunk(db.as_ref(), *encoding, *total, ids, at, begun, done, json, chunk);
            }
        }
        !chunk.is_empty()
    }
}

#[allow(clippy::too_many_arguments)]
fn fill_chunk<B: DbBackend>(
    db: &B,
    encoding: Encoding,
    total: usize,
    ids: &[u32],
    at: &mut usize,
    begun: &mut bool,
    done: &mut bool,
    json: &mut String,
    chunk: &mut Vec<u8>,
) {
    match encoding {
        Encoding::Json => {
            json.clear();
            if !*begun {
                JsonEncoder::begin_stream(total, json);
                *begun = true;
            }
            while *at < ids.len() && json.len() < STREAM_CHUNK_BYTES {
                let row = db.view(ids[*at]);
                JsonEncoder::stream_row(*at, &row, json);
                *at += 1;
            }
            if *at == ids.len() {
                JsonEncoder::end_stream(ids.len(), json);
                *done = true;
            }
            chunk.extend_from_slice(json.as_bytes());
        }
        Encoding::Binary => {
            if !*begun {
                BinaryEncoder::begin_stream(total, chunk);
                *begun = true;
            }
            while *at < ids.len() && chunk.len() < STREAM_CHUNK_BYTES {
                let row = db.view(ids[*at]);
                BinaryEncoder::stream_row(&row, chunk);
                *at += 1;
            }
            if *at == ids.len() {
                *done = true;
            }
        }
        Encoding::Xml => unreachable!("XML results never stream"),
    }
}

/// One queued batch miss: where its frame goes, the parsed plan, and the
/// canonical request string it will be cached under.
struct BatchMiss {
    index: usize,
    plan: QueryPlan,
    /// This miss's cache-key string (`q/<encoding>?<canonical>`) as a
    /// range into [`BatchScratch::requests`].
    request: std::ops::Range<usize>,
}

/// Per-connection reusable state for [`QueryService::batch`]: response
/// slots, the miss queue, and the request-key arena keep their capacity
/// across batches, so a warm batch allocates nothing.
#[derive(Default)]
pub struct BatchScratch {
    responses: Vec<(u16, Arc<[u8]>)>,
    misses: Vec<BatchMiss>,
    /// Arena of concatenated cache-key strings, one range per miss —
    /// one reusable buffer instead of two `String`s per missed plan.
    requests: String,
}

impl std::fmt::Debug for BatchScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchScratch").field("responses", &self.responses.len()).finish()
    }
}

/// The shared empty placeholder body for queued miss slots (never written
/// to the wire — every miss slot is overwritten before assembly). Also
/// the transport's placeholder body for batch and streamed responses,
/// whose payloads live outside [`ServiceResponse`].
pub(crate) fn empty_body() -> Arc<[u8]> {
    static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::from(&[][..])))
}

fn push_error(scratch: &mut BatchScratch, status: u16, message: &str) {
    let response = ServiceResponse::error(status, message);
    scratch.responses.push((response.status, response.body));
}

/// Reads one LEB128 varint from `bytes` at `*at`, advancing past it.
fn read_varint(bytes: &[u8], at: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*at)?;
        *at += 1;
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Encodes plan strings into the TLV batch-request shape
/// ([`BATCH_REQUEST_MAGIC`] + varint-length-prefixed plan strings) — the
/// client half of the binary batch protocol, used by tests and the
/// bench harness.
#[must_use]
pub fn encode_batch_request(plans: &[&str]) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        BATCH_REQUEST_MAGIC.len() + plans.iter().map(|p| p.len() + 2).sum::<usize>(),
    );
    out.extend_from_slice(&BATCH_REQUEST_MAGIC);
    for plan in plans {
        let mut n = plan.len() as u64;
        loop {
            let byte = (n & 0x7f) as u8;
            n >>= 7;
            if n == 0 {
                out.push(byte);
                break;
            }
            out.push(byte | 0x80);
        }
        out.extend_from_slice(plan.as_bytes());
    }
    out
}

/// Decodes a framed batch response into `(status, body)` pairs — the
/// client half of the response framing.
///
/// # Errors
///
/// A description of the framing violation (bad magic, truncated frame,
/// count mismatch).
pub fn decode_batch_response(bytes: &[u8]) -> Result<Vec<(u16, Vec<u8>)>, String> {
    if bytes.len() < 8 || bytes[..4] != BATCH_RESPONSE_MAGIC {
        return Err("missing batch response magic".into());
    }
    let count = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    let mut out = Vec::with_capacity(count);
    let mut at = 8;
    for _ in 0..count {
        let Some(frame) = bytes.get(at..at + 6) else {
            return Err("truncated batch frame".into());
        };
        let status = u16::from_le_bytes(frame[..2].try_into().expect("2 bytes"));
        let len = u32::from_le_bytes(frame[2..6].try_into().expect("4 bytes")) as usize;
        at += 6;
        let Some(body) = bytes.get(at..at + len) else {
            return Err("truncated batch body".into());
        };
        out.push((status, body.to_vec()));
        at += len;
    }
    if at != bytes.len() {
        return Err("trailing bytes after final batch frame".into());
    }
    Ok(out)
}

fn encode_result<B: DbBackend>(
    result: &uops_db::QueryResult<'_, B>,
    encoding: Encoding,
) -> Vec<u8> {
    match encoding {
        Encoding::Json => JsonEncoder.encode_result(result),
        Encoding::Binary => BinaryEncoder.encode_result(result),
        Encoding::Xml => XmlEncoder.encode_result(result),
    }
}

fn encode_diff(report: &uops_db::DiffReport, encoding: Encoding) -> Vec<u8> {
    match encoding {
        Encoding::Json => JsonEncoder.encode_diff(report),
        Encoding::Binary => BinaryEncoder.encode_diff(report),
        Encoding::Xml => XmlEncoder.encode_diff(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uops_db::{Query, Snapshot, VariantRecord};

    fn snapshot() -> Snapshot {
        let mut s = Snapshot::new("service test");
        for (m, uarch, mask) in [
            ("ADD", "Skylake", 0b0110_0011u16),
            ("ADC", "Skylake", 0b0100_0001),
            ("ADD", "Haswell", 0b0110_0011),
        ] {
            s.records.push(VariantRecord {
                mnemonic: m.into(),
                variant: "R64, R64".into(),
                extension: "BASE".into(),
                uarch: uarch.into(),
                uop_count: 1,
                ports: vec![(mask, 1)],
                tp_measured: 0.25,
                ..Default::default()
            });
        }
        s
    }

    fn service() -> QueryService {
        let segment = Segment::from_bytes(Segment::encode(&snapshot())).expect("segment");
        QueryService::from_segment(Arc::new(segment), 1 << 20)
    }

    #[test]
    fn cache_hit_skips_planner_and_encoder() {
        let service = service();
        let plan = Query::new().uarch("Skylake").into_plan();
        let cold = service.query(&plan, Encoding::Json);
        let stats = service.stats();
        assert_eq!((stats.executions, stats.encodes, stats.cache.hits), (1, 1, 0));

        let warm = service.query(&plan, Encoding::Json);
        let stats = service.stats();
        assert_eq!(stats.executions, 1, "hit must not re-run the executor");
        assert_eq!(stats.encodes, 1, "hit must not re-encode");
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(cold.body, warm.body, "cached and uncached bytes identical");
        assert!(Arc::ptr_eq(&cold.body, &warm.body), "hit shares the stored allocation");
    }

    #[test]
    fn encodings_are_cached_independently() {
        let service = service();
        let plan = Query::new().uarch("Skylake").into_plan();
        let json = service.query(&plan, Encoding::Json);
        let binary = service.query(&plan, Encoding::Binary);
        assert_ne!(json.body, binary.body);
        assert_eq!(json.content_type, "application/json");
        assert_eq!(binary.content_type, "application/x-uops-result");
        assert_eq!(service.stats().executions, 2);
        // Each encoding now hits its own entry.
        service.query(&plan, Encoding::Json);
        service.query(&plan, Encoding::Binary);
        assert_eq!(service.stats().executions, 2);
        assert_eq!(service.stats().cache.hits, 2);
    }

    #[test]
    fn segment_and_memory_stores_answer_identically() {
        let snapshot = snapshot();
        let seg_service = service();
        let mem_service =
            QueryService::from_db(Arc::new(InstructionDb::from_snapshot(&snapshot)), 1 << 20);
        for (qs, enc) in [
            ("uarch=Skylake", Encoding::Json),
            ("mnemonic=ADD&sort=latency", Encoding::Json),
            ("port=6", Encoding::Binary),
            ("", Encoding::Xml),
        ] {
            let plan = QueryPlan::parse(qs).expect("parse");
            let a = seg_service.query(&plan, enc);
            let b = mem_service.query(&plan, enc);
            assert_eq!(a.body, b.body, "{qs}");
        }
        let a = seg_service.diff("Haswell", "Skylake", Encoding::Json);
        let b = mem_service.diff("Haswell", "Skylake", Encoding::Json);
        assert_eq!(a.body, b.body);
    }

    #[test]
    fn record_and_diff_requests_are_cached() {
        let service = service();
        let cold = service.record("ADD", Some("Skylake"), Encoding::Json);
        let warm = service.record("ADD", Some("Skylake"), Encoding::Json);
        assert_eq!(cold.body, warm.body);
        assert_eq!(service.stats().cache.hits, 1);
        let d1 = service.diff("Haswell", "Skylake", Encoding::Json);
        let d2 = service.diff("Haswell", "Skylake", Encoding::Json);
        assert_eq!(d1.body, d2.body);
        assert_eq!(service.stats().cache.hits, 2);
        let text = String::from_utf8(d1.body.to_vec()).expect("utf-8");
        assert!(text.contains("\"base\": \"Haswell\""));
    }

    #[test]
    fn etag_is_plan_fingerprint_xor_content_hash() {
        let service = service();
        let plan = Query::new().uarch("Skylake").into_plan();
        let response = service.query(&plan, Encoding::Json);
        let request = format!("q/json?{}", plan.to_query_string());
        assert_eq!(
            response.etag,
            Some(fnv1a_64(request.as_bytes()) ^ service.content_hash()),
            "ETag composition is part of the wire contract"
        );

        // A store with different content produces a different hash — and
        // therefore different ETags for the same plan.
        let mut other_snapshot = snapshot();
        other_snapshot.records.pop();
        let other =
            QueryService::from_db(Arc::new(InstructionDb::from_snapshot(&other_snapshot)), 1 << 20);
        assert_ne!(service.content_hash(), other.content_hash());
        assert_ne!(response.etag, other.query(&plan, Encoding::Json).etag);

        // Same content served from segment vs memory also differs (the
        // hashed canonical form differs), but within one store the tag is
        // deterministic across identical services.
        let again = QueryService::from_segment(
            Arc::new(Segment::from_bytes(Segment::encode(&snapshot())).expect("segment")),
            1 << 20,
        );
        assert_eq!(again.content_hash(), service.content_hash());
        assert_eq!(again.query(&plan, Encoding::Json).etag, response.etag);
    }

    #[test]
    fn wire_parse_errors_become_400() {
        let service = service();
        let response = service.query_wire("uarhc=Skylake", Encoding::Json);
        assert_eq!(response.status, 400);
        let text = String::from_utf8(response.body.to_vec()).expect("utf-8");
        assert!(text.contains("unknown query parameter"), "{text}");
        // Errors are not cached.
        assert_eq!(service.stats().cache.entries, 0);
    }

    #[test]
    fn stats_response_reports_counters() {
        let service = service();
        let plan = Query::new().into_plan();
        service.query(&plan, Encoding::Json);
        service.query(&plan, Encoding::Json);
        let text = String::from_utf8(service.stats_response().body.to_vec()).expect("utf-8");
        assert!(text.contains("\"records\": 3"), "{text}");
        assert!(text.contains("\"hits\": 1"), "{text}");
        assert!(text.contains("\"executions\": 1"), "{text}");
        assert!(text.contains("\"overload\": {\"shed_deadline\": 0"), "{text}");
    }

    #[test]
    fn capacity_shedding_spares_cache_hits_and_is_never_cached() {
        let service = service();
        let warm_plan = Query::new().uarch("Skylake").into_plan();
        let warm = service.query(&warm_plan, Encoding::Json);

        // Saturate the admission gauge as a stand-in for a stuck in-flight
        // execution, with a ceiling of 1.
        service.set_max_uncached_inflight(1);
        service.uncached_inflight.store(1, Ordering::Relaxed);
        let cold_plan = Query::new().uarch("Haswell").into_plan();
        let shed = service.query(&cold_plan, Encoding::Json);
        assert_eq!(shed.status, 503);
        assert_eq!(shed.tier, ResponseTier::Untiered);
        assert!(shed.etag.is_none(), "shed responses are not revalidatable");
        assert_eq!(service.shed_capacity_counter().get(), 1);
        assert_eq!(service.stats().executions, 1, "the shed request never executed");

        // Cache hits are untouched by the ceiling: graceful degradation.
        let hit = service.query(&warm_plan, Encoding::Json);
        assert_eq!(hit.status, 200);
        assert_eq!(hit.tier, ResponseTier::Fingerprint);
        assert_eq!(hit.body, warm.body);

        // The shed was not cached: with capacity back, the query runs.
        service.uncached_inflight.store(0, Ordering::Relaxed);
        let ok = service.query(&cold_plan, Encoding::Json);
        assert_eq!(ok.status, 200);
        assert_eq!(ok.tier, ResponseTier::Uncached);
        assert_eq!(service.uncached_inflight(), 0, "the admission guard released its slot");
    }

    #[test]
    fn deadline_shedding_spares_cache_hits() {
        let service = service();
        let warm_plan = Query::new().uarch("Skylake").into_plan();
        service.query(&warm_plan, Encoding::Json);

        // An already-expired deadline sheds every uncached request …
        deadline::set(Some(std::time::Instant::now()));
        let cold_plan = Query::new().uarch("Haswell").into_plan();
        let shed = service.query(&cold_plan, Encoding::Json);
        assert_eq!(shed.status, 503);
        assert_eq!(service.shed_deadline_counter().get(), 1);
        assert_eq!(service.stats().executions, 1);

        // … while cache hits never consult the deadline.
        let hit = service.query(&warm_plan, Encoding::Json);
        assert_eq!((hit.status, hit.tier), (200, ResponseTier::Fingerprint));

        // Disarming the deadline restores the uncached pipeline, and the
        // shed slot was released on the way out.
        deadline::set(None);
        let ok = service.query(&cold_plan, Encoding::Json);
        assert_eq!(ok.status, 200);
        assert_eq!(service.uncached_inflight(), 0);
    }

    /// Runs a batch body through the service and the wire writer, then
    /// decodes the framed response back into `(status, body)` pairs —
    /// the full protocol round trip.
    fn batch_wire(
        service: &QueryService,
        body: &[u8],
        encoding: Encoding,
    ) -> Result<Vec<(u16, Vec<u8>)>, ServiceResponse> {
        let mut out = BatchBody::default();
        let mut scratch = BatchScratch::default();
        service.batch(body, encoding, &mut out, &mut scratch)?;
        let mut wire = Vec::new();
        let mut cursor = 0;
        let progress = crate::http::write_batch(&mut wire, b"", &out, &mut cursor).expect("write");
        assert!(matches!(progress, crate::http::WriteProgress::Complete));
        assert_eq!(wire.len(), out.wire_len(), "wire_len must match emitted bytes");
        Ok(decode_batch_response(&wire).expect("decode"))
    }

    #[test]
    fn batch_answers_match_singles_for_every_plan_and_encoding() {
        for encoding in [Encoding::Json, Encoding::Binary, Encoding::Xml] {
            let service = service();
            let plans = ["uarch=Skylake", "mnemonic=ADD&sort=latency", "port=6", "uarch=Haswell"];
            let body = plans.join("\n");
            let parts = batch_wire(&service, body.as_bytes(), encoding).expect("batch");
            assert_eq!(parts.len(), plans.len());
            for (plan, (status, bytes)) in plans.iter().zip(&parts) {
                let single = service.query_wire(plan, encoding);
                assert_eq!(*status, single.status, "{plan}");
                assert_eq!(bytes.as_slice(), &single.body[..], "{plan}");
            }
        }
    }

    #[test]
    fn tlv_and_text_batches_produce_identical_frames() {
        let service = service();
        let plans = ["uarch=Skylake", "port=6", ""];
        let tlv = batch_wire(&service, &encode_batch_request(&plans), Encoding::Json).expect("tlv");
        // The match-all plan ("") only survives TLV framing (a text body
        // drops trailing empty lines), so the text side spells it out
        // canonically-equivalent via its own request.
        assert_eq!(tlv.len(), 3);
        let text =
            batch_wire(&service, b"uarch=Skylake\nport=6", Encoding::Json).expect("text batch");
        assert_eq!(&tlv[..2], &text[..], "shared plans frame identically across encodings");
        assert_eq!(tlv[2].0, 200);
        assert_eq!(tlv[2].1, &service.query_wire("", Encoding::Json).body[..]);
    }

    #[test]
    fn a_bad_plan_mid_batch_gets_its_own_400_and_spares_the_rest() {
        let service = service();
        let parts = batch_wire(&service, b"uarch=Skylake\nuarhc=Oops\nport=6", Encoding::Json)
            .expect("batch");
        assert_eq!(parts.len(), 3);
        assert_eq!((parts[0].0, parts[1].0, parts[2].0), (200, 400, 200));
        let message = String::from_utf8(parts[1].1.clone()).expect("utf-8");
        assert!(message.contains("unknown query parameter"), "{message}");
        assert_eq!(parts[0].1, &service.query_wire("uarch=Skylake", Encoding::Json).body[..]);
    }

    #[test]
    fn whole_batch_failures_are_400_and_batches_share_the_cache_with_singles() {
        let service = service();
        let empty = batch_wire(&service, b"", Encoding::Json).expect_err("empty batch");
        assert_eq!(empty.status, 400);
        let bad_tlv = batch_wire(&service, b"UQB\x01\xff", Encoding::Json).expect_err("bad tlv");
        assert_eq!(bad_tlv.status, 400);

        // A warmed single is a batch hit; batch misses warm later singles.
        service.query_wire("uarch=Skylake", Encoding::Json);
        let executions = service.stats().executions;
        batch_wire(&service, b"uarch=Skylake\nuarch=Haswell", Encoding::Json).expect("batch");
        assert_eq!(
            service.stats().executions,
            executions + 1,
            "only the unwarmed plan executed in the batch"
        );
        service.query_wire("uarch=Haswell", Encoding::Json);
        assert_eq!(
            service.stats().executions,
            executions + 1,
            "the single after the batch was a cache hit"
        );
    }

    #[test]
    fn batch_sheds_misses_but_serves_hits_under_pressure() {
        let service = service();
        service.query_wire("uarch=Skylake", Encoding::Json);
        service.set_max_uncached_inflight(1);
        service.uncached_inflight.store(1, Ordering::Relaxed);
        let parts = batch_wire(&service, b"uarch=Skylake\nuarch=Haswell", Encoding::Json)
            .expect("batch frames survive a shed");
        assert_eq!(parts[0].0, 200, "the cache hit kept serving");
        assert_eq!(parts[1].0, 503, "the miss was shed per-plan");
    }

    #[test]
    fn plan_handles_answer_identically_to_wire_queries() {
        let service = service();
        let registered = service.register_plan("sort=latency&uarch=Skylake\n");
        assert_eq!(registered.status, 200);
        let text = String::from_utf8(registered.body.to_vec()).expect("utf-8");
        let fingerprint = text
            .split("\"fingerprint\": \"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("fingerprint in response")
            .to_string();

        let by_handle = service.planned_query(&fingerprint, Encoding::Json);
        let by_wire = service.query_wire("sort=latency&uarch=Skylake", Encoding::Json);
        assert_eq!(by_handle.status, 200);
        assert_eq!(by_handle.body, by_wire.body, "handle and wire answers are byte-identical");

        // The second handle lookup is a fingerprint-tier hit.
        let warm = service.planned_query(&fingerprint, Encoding::Json);
        assert_eq!(warm.tier, ResponseTier::Fingerprint);

        assert_eq!(service.planned_query("abcd", Encoding::Json).status, 404);
        assert_eq!(service.planned_query("zz!!", Encoding::Json).status, 400);
        assert_eq!(service.register_plan("uarhc=Oops").status, 400);

        // Registration is idempotent and counted in /v1/stats.
        service.register_plan("uarch=Skylake&sort=latency");
        let stats = String::from_utf8(service.stats_response().body.to_vec()).expect("utf-8");
        assert!(stats.contains("\"plans\": 1"), "{stats}");
    }

    #[test]
    fn streamed_chunks_concatenate_to_the_whole_body_encoding() {
        for encoding in [Encoding::Json, Encoding::Binary] {
            let warm_service = service();
            let whole = warm_service.query_wire("uarch=Skylake", encoding);
            assert_eq!(whole.status, 200);

            // A second, cold service: the whole-body query above left a
            // cache entry that would short-circuit the streaming path.
            let fresh = service();
            fresh.set_stream_threshold(1);
            let QueryReply::Stream(mut stream) =
                fresh.query_wire_streaming("uarch=Skylake", encoding)
            else {
                panic!("two rows past a threshold of one must stream");
            };
            assert_eq!(stream.content_type(), encoding.content_type());
            assert_eq!(stream.row_count(), 2);
            let mut chunk = Vec::new();
            let mut streamed = Vec::new();
            while stream.next_chunk(&mut chunk) {
                assert!(!chunk.is_empty(), "chunks are never empty before exhaustion");
                streamed.extend_from_slice(&chunk);
            }
            assert_eq!(
                streamed,
                &whole.body[..],
                "chunk concatenation is byte-identical to the whole-body encoder ({encoding:?})"
            );
        }
    }

    #[test]
    fn streaming_stays_whole_body_for_xml_hits_and_small_results() {
        let service = service();
        service.set_stream_threshold(1);
        // XML groups rows and cannot stream.
        assert!(matches!(
            service.query_wire_streaming("uarch=Skylake", Encoding::Xml),
            QueryReply::Full(_)
        ));
        // Below the threshold: whole body (and cached).
        assert!(matches!(
            service.query_wire_streaming("mnemonic=ADC", Encoding::Json),
            QueryReply::Full(_)
        ));
        // A fingerprint-tier hit short-circuits the streaming decision.
        let QueryReply::Full(warm) = service.query_wire_streaming("mnemonic=ADC", Encoding::Json)
        else {
            panic!("hit must answer whole-body");
        };
        assert_eq!(warm.tier, ResponseTier::Fingerprint);
        // Streams bypass the cache: the large page never left an entry.
        assert!(matches!(
            service.query_wire_streaming("uarch=Skylake", Encoding::Json),
            QueryReply::Stream(_)
        ));
        assert!(matches!(
            service.query_wire_streaming("uarch=Skylake", Encoding::Json),
            QueryReply::Stream(_)
        ));
    }
}
