//! Deterministic fault injection for the transport's syscall edges.
//!
//! The error paths that matter in production — `EMFILE` on accept,
//! `ECONNRESET` mid-response, short and would-block writes to a stalled
//! peer — are exactly the ones the kernel only produces under real
//! resource pressure, so they are untestable by normal means. This module
//! routes the transport's accept/read/write edges through an injectable
//! shim:
//!
//! - **Feature off (the default):** every function is a `#[inline]`
//!   passthrough to the underlying socket operation. No queues, no locks,
//!   no branches beyond what the optimizer removes — the hot path is
//!   byte-for-byte the direct call.
//! - **Feature `fault-injection` on:** each operation first consults a
//!   global FIFO script of faults (one consumed per call); an empty
//!   script is a passthrough. Tests script exact sequences —
//!   "next accept fails `EMFILE`", "next write delivers only 3 bytes",
//!   "next write resets the connection" — and get the same fault on the
//!   same operation every run, with no sleeps or kernel cooperation.
//!
//! The script is process-global, so chaos tests serialize themselves
//! (single connection, one worker/shard) to keep consumption
//! deterministic.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// Accepts a connection from `listener`, consuming one scripted accept
/// fault first when the `fault-injection` feature is enabled.
#[cfg(not(feature = "fault-injection"))]
#[inline]
pub(crate) fn accept(listener: &TcpListener) -> io::Result<(TcpStream, SocketAddr)> {
    listener.accept()
}

/// A transparent [`Read`] + [`Write`] adapter over a socket (or half of
/// one). With `fault-injection` off it forwards every call — including
/// `write_vectored`, preserving the transport's single-`writev` responses
/// — at zero cost; with the feature on it consults the fault script
/// before touching the socket.
#[derive(Debug)]
pub(crate) struct FaultStream<'a, S>(pub(crate) &'a mut S);

#[cfg(not(feature = "fault-injection"))]
impl<S: Read> Read for FaultStream<'_, S> {
    #[inline]
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
}

#[cfg(not(feature = "fault-injection"))]
impl<S: Write> Write for FaultStream<'_, S> {
    #[inline]
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    #[inline]
    fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        self.0.write_vectored(bufs)
    }

    #[inline]
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

/// The [`StoreIo`](uops_db::store::StoreIo) implementation the server
/// routes [`GenerationStore`](uops_db::GenerationStore) publishes through.
/// With `fault-injection` off this is the real-syscall implementation —
/// zero interposition; with the feature on, each filesystem mutation
/// first consults the scripted FIFO of [`FsFault`]s for its operation.
#[cfg(not(feature = "fault-injection"))]
#[inline]
pub fn store_io() -> &'static dyn uops_db::store::StoreIo {
    &uops_db::store::RealStoreIo
}

#[cfg(feature = "fault-injection")]
pub(crate) use enabled::accept;
#[cfg(feature = "fault-injection")]
pub use enabled::{
    inject_accept_error, inject_fs, inject_fs_from_env, inject_read, inject_write, reset, store_io,
    FsFault, FsOp, ReadFault, WriteFault, ECONNRESET, EIO, EMFILE, ENOSPC,
};

#[cfg(feature = "fault-injection")]
mod enabled {
    use super::*;
    use std::sync::Mutex;

    /// `errno` for "too many open files" — the accept-storm fault.
    pub const EMFILE: i32 = 24;
    /// `errno` for "connection reset by peer" — the mid-response fault.
    pub const ECONNRESET: i32 = 104;
    /// `errno` for an I/O error — the failing-disk fault.
    pub const EIO: i32 = 5;
    /// `errno` for "no space left on device" — the full-disk fault.
    pub const ENOSPC: i32 = 28;

    /// A filesystem mutation the store-publish path performs; each has
    /// its own scripted fault FIFO.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FsOp {
        /// Creating + writing a temp file.
        Write,
        /// `fsync` on a file.
        Fsync,
        /// `rename` into place.
        Rename,
        /// `fsync` on the directory.
        DirSync,
    }

    const FS_OPS: usize = 4;

    impl FsOp {
        fn index(self) -> usize {
            match self {
                FsOp::Write => 0,
                FsOp::Fsync => 1,
                FsOp::Rename => 2,
                FsOp::DirSync => 3,
            }
        }
    }

    /// One scripted fault for a filesystem operation.
    #[derive(Debug, Clone, Copy)]
    pub enum FsFault {
        /// Consume this script slot but perform the operation normally —
        /// the counter that lets a script target the Nth call.
        Pass,
        /// Fail with this raw `errno` (e.g. [`ENOSPC`], [`EIO`]) without
        /// touching the filesystem.
        Errno(i32),
        /// Sleep this many milliseconds *before* performing the operation
        /// — the window a kill-9 test aims SIGKILL into.
        Stall(u64),
    }

    /// One scripted fault for a read call.
    #[derive(Debug, Clone, Copy)]
    pub enum ReadFault {
        /// Return `WouldBlock` without touching the socket.
        WouldBlock,
        /// Return `ECONNRESET` without touching the socket.
        Reset,
        /// Return `Ok(0)` (peer closed) without touching the socket.
        Eof,
    }

    /// One scripted fault for a write call.
    #[derive(Debug, Clone, Copy)]
    pub enum WriteFault {
        /// Deliver at most this many bytes of the requested buffer to the
        /// real socket (a genuine short write: the bytes do go out).
        Short(usize),
        /// Return `WouldBlock` without writing anything.
        WouldBlock,
        /// Return `ECONNRESET` without writing anything.
        Reset,
    }

    /// The global fault script: FIFO per operation, consumed one entry
    /// per call, passthrough when empty.
    struct Script {
        accept_errors: Vec<i32>,
        reads: Vec<ReadFault>,
        writes: Vec<WriteFault>,
        fs: [Vec<FsFault>; FS_OPS],
    }

    static SCRIPT: Mutex<Script> = Mutex::new(Script {
        accept_errors: Vec::new(),
        reads: Vec::new(),
        writes: Vec::new(),
        fs: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
    });

    /// Scripts the next `accept` to fail with this raw `errno`
    /// (e.g. [`EMFILE`]).
    pub fn inject_accept_error(raw_os: i32) {
        SCRIPT.lock().expect("fault script").accept_errors.push(raw_os);
    }

    /// Scripts a fault for the next read call on any [`FaultStream`].
    pub fn inject_read(fault: ReadFault) {
        SCRIPT.lock().expect("fault script").reads.push(fault);
    }

    /// Scripts a fault for the next write call on any [`FaultStream`].
    pub fn inject_write(fault: WriteFault) {
        SCRIPT.lock().expect("fault script").writes.push(fault);
    }

    /// Scripts a fault for the next filesystem call of `op` performed by
    /// the [`store_io`] shim (FIFO per operation).
    pub fn inject_fs(op: FsOp, fault: FsFault) {
        SCRIPT.lock().expect("fault script").fs[op.index()].push(fault);
    }

    /// Parses a comma-separated fault spec into the filesystem script —
    /// the `UOPS_FAULT_FS` environment-variable format the `serve` binary
    /// consumes at boot so an external harness (the kill-9 recovery test)
    /// can script publish-path faults inside a child process.
    ///
    /// Each token is `op:action` where `op` is `write`, `fsync`,
    /// `rename`, or `dirsync`, and `action` is `pass`, `eio`, `enospc`,
    /// a raw errno number, `stall` (60 s), or `stall=MILLIS`. Unparseable
    /// tokens are ignored.
    ///
    /// Example: `rename:pass,rename:stall=60000` stalls the *second*
    /// rename of a publish (the manifest rename) after letting the
    /// segment rename through.
    pub fn inject_fs_from_env(spec: &str) {
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let Some((op, action)) = token.split_once(':') else { continue };
            let op = match op {
                "write" => FsOp::Write,
                "fsync" => FsOp::Fsync,
                "rename" => FsOp::Rename,
                "dirsync" => FsOp::DirSync,
                _ => continue,
            };
            let fault = match action {
                "pass" => FsFault::Pass,
                "eio" => FsFault::Errno(EIO),
                "enospc" => FsFault::Errno(ENOSPC),
                "stall" => FsFault::Stall(60_000),
                _ => {
                    if let Some(ms) = action.strip_prefix("stall=") {
                        match ms.parse() {
                            Ok(ms) => FsFault::Stall(ms),
                            Err(_) => continue,
                        }
                    } else {
                        match action.parse() {
                            Ok(errno) => FsFault::Errno(errno),
                            Err(_) => continue,
                        }
                    }
                }
            };
            inject_fs(op, fault);
        }
    }

    /// Clears every pending scripted fault (test teardown).
    pub fn reset() {
        let mut script = SCRIPT.lock().expect("fault script");
        script.accept_errors.clear();
        script.reads.clear();
        script.writes.clear();
        for queue in &mut script.fs {
            queue.clear();
        }
    }

    pub(crate) fn accept(listener: &TcpListener) -> io::Result<(TcpStream, SocketAddr)> {
        let fault = {
            let mut script = SCRIPT.lock().expect("fault script");
            if script.accept_errors.is_empty() {
                None
            } else {
                Some(script.accept_errors.remove(0))
            }
        };
        match fault {
            Some(errno) => Err(io::Error::from_raw_os_error(errno)),
            None => listener.accept(),
        }
    }

    fn next_read() -> Option<ReadFault> {
        let mut script = SCRIPT.lock().expect("fault script");
        if script.reads.is_empty() {
            None
        } else {
            Some(script.reads.remove(0))
        }
    }

    fn next_write() -> Option<WriteFault> {
        let mut script = SCRIPT.lock().expect("fault script");
        if script.writes.is_empty() {
            None
        } else {
            Some(script.writes.remove(0))
        }
    }

    impl<S: Read> Read for FaultStream<'_, S> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match next_read() {
                None => self.0.read(buf),
                Some(ReadFault::WouldBlock) => Err(io::Error::from(io::ErrorKind::WouldBlock)),
                Some(ReadFault::Reset) => Err(io::Error::from_raw_os_error(ECONNRESET)),
                Some(ReadFault::Eof) => Ok(0),
            }
        }
    }

    impl<S: Write> Write for FaultStream<'_, S> {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            match next_write() {
                None => self.0.write(buf),
                Some(WriteFault::Short(limit)) => {
                    let take = limit.min(buf.len());
                    if take == 0 {
                        return Ok(0);
                    }
                    self.0.write(&buf[..take])
                }
                Some(WriteFault::WouldBlock) => Err(io::Error::from(io::ErrorKind::WouldBlock)),
                Some(WriteFault::Reset) => Err(io::Error::from_raw_os_error(ECONNRESET)),
            }
        }

        fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
            match next_write() {
                None => self.0.write_vectored(bufs),
                Some(fault) => {
                    // A faulted vectored write degrades to the first
                    // non-empty slice, mirroring a kernel short-writev.
                    let first = bufs.iter().find(|b| !b.is_empty()).map(|b| &**b).unwrap_or(&[]);
                    match fault {
                        WriteFault::Short(limit) => {
                            let take = limit.min(first.len());
                            if take == 0 {
                                return Ok(0);
                            }
                            self.0.write(&first[..take])
                        }
                        WriteFault::WouldBlock => Err(io::Error::from(io::ErrorKind::WouldBlock)),
                        WriteFault::Reset => Err(io::Error::from_raw_os_error(ECONNRESET)),
                    }
                }
            }
        }

        fn flush(&mut self) -> io::Result<()> {
            self.0.flush()
        }
    }

    fn next_fs(op: FsOp) -> Option<FsFault> {
        let mut script = SCRIPT.lock().expect("fault script");
        let queue = &mut script.fs[op.index()];
        if queue.is_empty() {
            None
        } else {
            Some(queue.remove(0))
        }
    }

    /// Runs one scripted fault (if any) ahead of a real filesystem call.
    /// `Pass` and an empty queue fall through; `Stall` sleeps first (the
    /// kill-9 window) then falls through; `Errno` short-circuits.
    fn fs_gate(op: FsOp) -> io::Result<()> {
        match next_fs(op) {
            None | Some(FsFault::Pass) => Ok(()),
            Some(FsFault::Errno(errno)) => Err(io::Error::from_raw_os_error(errno)),
            Some(FsFault::Stall(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
        }
    }

    /// [`StoreIo`](uops_db::store::StoreIo) that consults the fault
    /// script before each real filesystem mutation.
    struct FaultFs;

    static FAULT_FS: FaultFs = FaultFs;

    impl uops_db::store::StoreIo for FaultFs {
        fn write_file(&self, path: &std::path::Path, bytes: &[u8]) -> io::Result<()> {
            fs_gate(FsOp::Write)?;
            uops_db::store::RealStoreIo.write_file(path, bytes)
        }

        fn fsync_file(&self, path: &std::path::Path) -> io::Result<()> {
            fs_gate(FsOp::Fsync)?;
            uops_db::store::RealStoreIo.fsync_file(path)
        }

        fn rename(&self, from: &std::path::Path, to: &std::path::Path) -> io::Result<()> {
            fs_gate(FsOp::Rename)?;
            uops_db::store::RealStoreIo.rename(from, to)
        }

        fn fsync_dir(&self, dir: &std::path::Path) -> io::Result<()> {
            fs_gate(FsOp::DirSync)?;
            uops_db::store::RealStoreIo.fsync_dir(dir)
        }
    }

    /// The script-consulting [`StoreIo`](uops_db::store::StoreIo) —
    /// fault-injection builds route every store publish through here.
    pub fn store_io() -> &'static dyn uops_db::store::StoreIo {
        &FAULT_FS
    }
}
