//! Deterministic fault injection for the transport's syscall edges.
//!
//! The error paths that matter in production — `EMFILE` on accept,
//! `ECONNRESET` mid-response, short and would-block writes to a stalled
//! peer — are exactly the ones the kernel only produces under real
//! resource pressure, so they are untestable by normal means. This module
//! routes the transport's accept/read/write edges through an injectable
//! shim:
//!
//! - **Feature off (the default):** every function is a `#[inline]`
//!   passthrough to the underlying socket operation. No queues, no locks,
//!   no branches beyond what the optimizer removes — the hot path is
//!   byte-for-byte the direct call.
//! - **Feature `fault-injection` on:** each operation first consults a
//!   global FIFO script of faults (one consumed per call); an empty
//!   script is a passthrough. Tests script exact sequences —
//!   "next accept fails `EMFILE`", "next write delivers only 3 bytes",
//!   "next write resets the connection" — and get the same fault on the
//!   same operation every run, with no sleeps or kernel cooperation.
//!
//! The script is process-global, so chaos tests serialize themselves
//! (single connection, one worker/shard) to keep consumption
//! deterministic.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// Accepts a connection from `listener`, consuming one scripted accept
/// fault first when the `fault-injection` feature is enabled.
#[cfg(not(feature = "fault-injection"))]
#[inline]
pub(crate) fn accept(listener: &TcpListener) -> io::Result<(TcpStream, SocketAddr)> {
    listener.accept()
}

/// A transparent [`Read`] + [`Write`] adapter over a socket (or half of
/// one). With `fault-injection` off it forwards every call — including
/// `write_vectored`, preserving the transport's single-`writev` responses
/// — at zero cost; with the feature on it consults the fault script
/// before touching the socket.
#[derive(Debug)]
pub(crate) struct FaultStream<'a, S>(pub(crate) &'a mut S);

#[cfg(not(feature = "fault-injection"))]
impl<S: Read> Read for FaultStream<'_, S> {
    #[inline]
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
}

#[cfg(not(feature = "fault-injection"))]
impl<S: Write> Write for FaultStream<'_, S> {
    #[inline]
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    #[inline]
    fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        self.0.write_vectored(bufs)
    }

    #[inline]
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

#[cfg(feature = "fault-injection")]
pub(crate) use enabled::accept;
#[cfg(feature = "fault-injection")]
pub use enabled::{
    inject_accept_error, inject_read, inject_write, reset, ReadFault, WriteFault, ECONNRESET,
    EMFILE,
};

#[cfg(feature = "fault-injection")]
mod enabled {
    use super::*;
    use std::sync::Mutex;

    /// `errno` for "too many open files" — the accept-storm fault.
    pub const EMFILE: i32 = 24;
    /// `errno` for "connection reset by peer" — the mid-response fault.
    pub const ECONNRESET: i32 = 104;

    /// One scripted fault for a read call.
    #[derive(Debug, Clone, Copy)]
    pub enum ReadFault {
        /// Return `WouldBlock` without touching the socket.
        WouldBlock,
        /// Return `ECONNRESET` without touching the socket.
        Reset,
        /// Return `Ok(0)` (peer closed) without touching the socket.
        Eof,
    }

    /// One scripted fault for a write call.
    #[derive(Debug, Clone, Copy)]
    pub enum WriteFault {
        /// Deliver at most this many bytes of the requested buffer to the
        /// real socket (a genuine short write: the bytes do go out).
        Short(usize),
        /// Return `WouldBlock` without writing anything.
        WouldBlock,
        /// Return `ECONNRESET` without writing anything.
        Reset,
    }

    /// The global fault script: FIFO per operation, consumed one entry
    /// per call, passthrough when empty.
    struct Script {
        accept_errors: Vec<i32>,
        reads: Vec<ReadFault>,
        writes: Vec<WriteFault>,
    }

    static SCRIPT: Mutex<Script> =
        Mutex::new(Script { accept_errors: Vec::new(), reads: Vec::new(), writes: Vec::new() });

    /// Scripts the next `accept` to fail with this raw `errno`
    /// (e.g. [`EMFILE`]).
    pub fn inject_accept_error(raw_os: i32) {
        SCRIPT.lock().expect("fault script").accept_errors.push(raw_os);
    }

    /// Scripts a fault for the next read call on any [`FaultStream`].
    pub fn inject_read(fault: ReadFault) {
        SCRIPT.lock().expect("fault script").reads.push(fault);
    }

    /// Scripts a fault for the next write call on any [`FaultStream`].
    pub fn inject_write(fault: WriteFault) {
        SCRIPT.lock().expect("fault script").writes.push(fault);
    }

    /// Clears every pending scripted fault (test teardown).
    pub fn reset() {
        let mut script = SCRIPT.lock().expect("fault script");
        script.accept_errors.clear();
        script.reads.clear();
        script.writes.clear();
    }

    pub(crate) fn accept(listener: &TcpListener) -> io::Result<(TcpStream, SocketAddr)> {
        let fault = {
            let mut script = SCRIPT.lock().expect("fault script");
            if script.accept_errors.is_empty() {
                None
            } else {
                Some(script.accept_errors.remove(0))
            }
        };
        match fault {
            Some(errno) => Err(io::Error::from_raw_os_error(errno)),
            None => listener.accept(),
        }
    }

    fn next_read() -> Option<ReadFault> {
        let mut script = SCRIPT.lock().expect("fault script");
        if script.reads.is_empty() {
            None
        } else {
            Some(script.reads.remove(0))
        }
    }

    fn next_write() -> Option<WriteFault> {
        let mut script = SCRIPT.lock().expect("fault script");
        if script.writes.is_empty() {
            None
        } else {
            Some(script.writes.remove(0))
        }
    }

    impl<S: Read> Read for FaultStream<'_, S> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match next_read() {
                None => self.0.read(buf),
                Some(ReadFault::WouldBlock) => Err(io::Error::from(io::ErrorKind::WouldBlock)),
                Some(ReadFault::Reset) => Err(io::Error::from_raw_os_error(ECONNRESET)),
                Some(ReadFault::Eof) => Ok(0),
            }
        }
    }

    impl<S: Write> Write for FaultStream<'_, S> {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            match next_write() {
                None => self.0.write(buf),
                Some(WriteFault::Short(limit)) => {
                    let take = limit.min(buf.len());
                    if take == 0 {
                        return Ok(0);
                    }
                    self.0.write(&buf[..take])
                }
                Some(WriteFault::WouldBlock) => Err(io::Error::from(io::ErrorKind::WouldBlock)),
                Some(WriteFault::Reset) => Err(io::Error::from_raw_os_error(ECONNRESET)),
            }
        }

        fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
            match next_write() {
                None => self.0.write_vectored(bufs),
                Some(fault) => {
                    // A faulted vectored write degrades to the first
                    // non-empty slice, mirroring a kernel short-writev.
                    let first = bufs.iter().find(|b| !b.is_empty()).map(|b| &**b).unwrap_or(&[]);
                    match fault {
                        WriteFault::Short(limit) => {
                            let take = limit.min(first.len());
                            if take == 0 {
                                return Ok(0);
                            }
                            self.0.write(&first[..take])
                        }
                        WriteFault::WouldBlock => Err(io::Error::from(io::ErrorKind::WouldBlock)),
                        WriteFault::Reset => Err(io::Error::from_raw_os_error(ECONNRESET)),
                    }
                }
            }
        }

        fn flush(&mut self) -> io::Result<()> {
            self.0.flush()
        }
    }
}
