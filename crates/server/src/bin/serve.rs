//! `serve` — boots the uops-serve HTTP server over a segment file.
//!
//! ```text
//! serve --segment uops.seg [--addr 127.0.0.1:8080] [--threads N] [--cache-mb 64]
//!       [--mmap] [--no-telemetry] [--access-log[=EVERY_N]] [--reactor[=SHARDS]]
//!       [--max-inflight N] [--queue-depth N] [--deadline-ms MS] [--max-uncached N]
//!       [--drain-timeout SECS] [--max-body BYTES] [--stream-threshold ROWS]
//!       [--data-dir DIR]
//! ```
//!
//! `--data-dir DIR` turns on the live data plane: `DIR` holds a durable
//! generation store (`MANIFEST` + `gen-N.seg` images). If `DIR` already
//! holds a manifest, boot recovers the newest valid generation from it
//! (quarantining corrupt images) and serves *that* instead of
//! `--segment`; a fresh `DIR` is bootstrapped with the `--segment`
//! contents as generation 1. With a data dir configured,
//! `POST /v1/ingest` accepts segment images or TLV snapshots, merges
//! them with the live generation, durably publishes, and swaps with zero
//! downtime. Without the flag, ingest answers `403` and the store is
//! immutable.
//!
//! `--max-body BYTES` caps `POST` request bodies (`/v1/batch`, `/v1/plan`
//! registration); oversize declarations are refused with `413` before a
//! body byte is read. The default is 1 MiB.
//!
//! `--stream-threshold ROWS` sets the result size above which query
//! responses switch from a single `Content-Length` body to
//! `Transfer-Encoding: chunked`, bounding server memory per export. The
//! default is 4096 rows; `0` disables streaming entirely.
//!
//! The first stdout line is always `listening on http://ADDR (...)`, so
//! scripts (and the integration tests) can bind port 0 and discover the
//! real address; with telemetry enabled (the default) the second line is
//! `metrics at http://ADDR/metrics`. Unknown flags exit with status 2 and
//! usage on stderr.
//!
//! `--access-log` writes one JSON line per request to stderr;
//! `--access-log=100` samples every 100th request.
//!
//! `--reactor` (Linux only) swaps the thread-per-connection transport for
//! the event-driven epoll reactor: `--reactor=4` runs 4 acceptor shards
//! (each an epoll event loop with its own `SO_REUSEPORT` listener); bare
//! `--reactor` sizes the shard count to the CPU count. Use it when the
//! workload is many concurrent, mostly idle keep-alive connections; the
//! default transport remains the better fit for a few busy ones.
//!
//! Overload controls (all off by default): `--max-inflight N` caps live
//! connections (rejects with a static `503` + `Retry-After` past it),
//! `--queue-depth N` caps connections queued for a pool worker,
//! `--deadline-ms MS` arms a per-request budget that sheds *uncached*
//! work when exceeded (cache hits keep serving), and `--max-uncached N`
//! caps concurrent uncached executions the same way.
//!
//! On Linux, `SIGTERM`/`SIGINT` trigger a graceful drain: stop
//! accepting, finish in-flight requests, exit 0. `--drain-timeout SECS`
//! (default 5) bounds the drain before a hard stop.

use std::io::Write as _;
use std::sync::Arc;

use uops_db::{DbBackend as _, GenerationStore, Segment};
use uops_pool::Parallelism;
use uops_serve::args::CliSpec;
use uops_serve::{AccessLog, QueryService, Server, ServerOptions};

const SPEC: CliSpec<'static> = CliSpec {
    name: "serve",
    usage: "serve --segment PATH [--addr HOST:PORT] [--threads N] [--cache-mb MB] [--mmap] \
            [--no-telemetry] [--access-log[=EVERY_N]] [--reactor[=SHARDS]] [--max-inflight N] \
            [--queue-depth N] [--deadline-ms MS] [--max-uncached N] [--drain-timeout SECS] \
            [--max-body BYTES] [--stream-threshold ROWS] [--data-dir DIR]",
    value_flags: &[
        "--segment",
        "--addr",
        "--threads",
        "--cache-mb",
        "--max-inflight",
        "--queue-depth",
        "--deadline-ms",
        "--max-uncached",
        "--drain-timeout",
        "--max-body",
        "--stream-threshold",
        "--data-dir",
    ],
    bool_flags: &["--mmap", "--no-telemetry"],
    optional_value_flags: &["--access-log", "--reactor"],
    max_positional: 0,
};

/// Opens the segment, honoring `--mmap` when this build carries the
/// feature (`--features mmap`): the image is mapped instead of read, so
/// open cost is O(header) and replicas share page-cache pages.
fn open_segment(path: &str, use_mmap: bool) -> Result<Segment, uops_db::DbError> {
    #[cfg(all(feature = "mmap", unix, target_pointer_width = "64"))]
    if use_mmap {
        return Segment::open_mmap(path);
    }
    #[cfg(not(all(feature = "mmap", unix, target_pointer_width = "64")))]
    if use_mmap {
        eprintln!("serve: --mmap requires a build with --features mmap (64-bit Unix only)");
        std::process::exit(2);
    }
    Segment::open(path)
}

/// Binds the selected transport: the thread-per-connection pool by
/// default, the epoll reactor when `--reactor` asked for it (Linux only —
/// elsewhere the flag exits with usage status, like other unsupported
/// build-dependent flags).
fn bind_transport(
    addr: &str,
    service: Arc<QueryService>,
    threads: usize,
    reactor_shards: Option<usize>,
    options: ServerOptions,
) -> std::io::Result<Server> {
    match reactor_shards {
        None => Server::bind_with(addr, service, threads, options),
        #[cfg(target_os = "linux")]
        Some(shards) => Server::bind_reactor(addr, service, shards, options),
        #[cfg(not(target_os = "linux"))]
        Some(_) => {
            eprintln!("serve: --reactor requires Linux (epoll)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = SPEC.parse_or_exit();
    let Some(segment_path) = args.value("--segment") else {
        SPEC.exit_usage("--segment is required");
    };
    let addr = args.value("--addr").unwrap_or("127.0.0.1:8080");
    let threads = match args.parsed_value::<usize>("--threads") {
        Ok(n) => n.unwrap_or_else(|| Parallelism::Auto.thread_count()).max(1),
        Err(message) => SPEC.exit_usage(&message),
    };
    let cache_mb = match args.parsed_value::<usize>("--cache-mb") {
        Ok(mb) => mb.unwrap_or(64),
        Err(message) => SPEC.exit_usage(&message),
    };

    let segment = match open_segment(segment_path, args.flag("--mmap")) {
        Ok(segment) => Arc::new(segment),
        Err(e) => {
            eprintln!("serve: cannot open segment {segment_path}: {e}");
            std::process::exit(1);
        }
    };
    let no_telemetry = args.flag("--no-telemetry");
    let access_log = if args.flag("--access-log") {
        let every = match args.parsed_value::<u64>("--access-log") {
            Ok(every) => every.unwrap_or(1),
            Err(message) => SPEC.exit_usage(&message),
        };
        if every == 0 {
            SPEC.exit_usage("--access-log sampling period must be at least 1");
        }
        Some(AccessLog::to_stderr(every))
    } else {
        None
    };

    let reactor_shards = if args.flag("--reactor") {
        match args.parsed_value::<usize>("--reactor") {
            Ok(shards) => Some(shards.unwrap_or_else(|| Parallelism::Auto.thread_count()).max(1)),
            Err(message) => SPEC.exit_usage(&message),
        }
    } else {
        None
    };

    let max_inflight = match args.parsed_value::<usize>("--max-inflight") {
        Ok(n) => n.unwrap_or(0),
        Err(message) => SPEC.exit_usage(&message),
    };
    let queue_depth = match args.parsed_value::<usize>("--queue-depth") {
        Ok(n) => n.unwrap_or(0),
        Err(message) => SPEC.exit_usage(&message),
    };
    let request_deadline = match args.parsed_value::<u64>("--deadline-ms") {
        Ok(ms) => ms.map(std::time::Duration::from_millis),
        Err(message) => SPEC.exit_usage(&message),
    };
    let max_uncached = match args.parsed_value::<usize>("--max-uncached") {
        Ok(n) => n.unwrap_or(0),
        Err(message) => SPEC.exit_usage(&message),
    };
    let drain_timeout = match args.parsed_value::<u64>("--drain-timeout") {
        Ok(secs) => std::time::Duration::from_secs(secs.unwrap_or(5)),
        Err(message) => SPEC.exit_usage(&message),
    };
    let max_body = match args.parsed_value::<usize>("--max-body") {
        Ok(n) => n.unwrap_or(0), // 0 = the 1 MiB default
        Err(message) => SPEC.exit_usage(&message),
    };
    let stream_threshold = match args.parsed_value::<usize>("--stream-threshold") {
        Ok(rows) => rows,
        Err(message) => SPEC.exit_usage(&message),
    };

    let mut records = segment.db().len();
    let service = Arc::new(QueryService::from_segment(Arc::clone(&segment), cache_mb << 20));
    service.set_max_uncached_inflight(max_uncached);
    if let Some(rows) = stream_threshold {
        service.set_stream_threshold(rows);
    }

    // Scripted filesystem faults for chaos testing (fault-injection
    // builds only): UOPS_FAULT_FS=op:action,... arms the publish path
    // before the store touches disk.
    #[cfg(feature = "fault-injection")]
    if let Ok(spec) = std::env::var("UOPS_FAULT_FS") {
        uops_serve::fault::inject_fs_from_env(&spec);
    }

    let ingest_store = match args.value("--data-dir") {
        None => None,
        Some(dir) => {
            let store = match GenerationStore::open(dir) {
                Ok(Some(recovered)) => {
                    service.note_quarantined(recovered.quarantined);
                    if recovered.quarantined > 0 {
                        eprintln!(
                            "serve: quarantined {} invalid segment image(s) in {dir}",
                            recovered.quarantined
                        );
                    }
                    recovered.store
                }
                Ok(None) => {
                    match GenerationStore::bootstrap(
                        dir,
                        Arc::clone(&segment),
                        uops_serve::fault::store_io(),
                    ) {
                        Ok(store) => store,
                        Err(e) => {
                            eprintln!("serve: cannot bootstrap data dir {dir}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                Err(e) => {
                    eprintln!("serve: cannot open data dir {dir}: {e}");
                    std::process::exit(1);
                }
            };
            let generation = store.current();
            // Serve the recovered (or freshly bootstrapped) generation,
            // not the raw --segment bytes: after a crash the data dir is
            // the durable truth.
            service.swap_segment(Arc::clone(&generation.segment), generation.id);
            records = generation.segment.len();
            Some(Arc::new(store))
        }
    };
    let boot_generation = service.generation();

    let options = ServerOptions {
        no_telemetry,
        access_log,
        max_inflight,
        queue_depth,
        request_deadline,
        max_body,
        ingest_store,
        ..ServerOptions::default()
    };
    let server = match bind_transport(addr, service, threads, reactor_shards, options) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    // Announce via explicit writes, ignoring errors: scripts commonly read
    // the first line and close the pipe, and an EPIPE here must not take
    // the server down before it serves a single request.
    let mut stdout = std::io::stdout();
    let concurrency = match reactor_shards {
        Some(shards) => format!("reactor x{shards} shards"),
        None => format!("{threads} threads"),
    };
    let _ = writeln!(
        stdout,
        "listening on http://{} ({records} records, {concurrency}, {cache_mb} MiB cache)",
        server.local_addr()
    );
    if server.telemetry_enabled() {
        let _ = writeln!(stdout, "metrics at http://{}/metrics", server.local_addr());
    }
    if let Some(dir) = args.value("--data-dir") {
        let _ = writeln!(stdout, "data plane at {dir} (generation {boot_generation})");
    }
    let _ = stdout.flush();
    run_until_signalled(server, drain_timeout);
}

/// Runs the server, draining gracefully on `SIGTERM`/`SIGINT`: the
/// accept loop moves to a background thread while main blocks on the
/// self-pipe; on signal, stop accepting, finish in-flight requests up to
/// `drain_timeout`, exit 0.
#[cfg(target_os = "linux")]
fn run_until_signalled(server: Server, drain_timeout: std::time::Duration) {
    use uops_serve::net::{SignalPipe, SIGINT, SIGTERM};
    let mut pipe = match SignalPipe::install() {
        Ok(pipe) => pipe,
        Err(e) => {
            eprintln!("serve: no signal handling ({e}); running without graceful drain");
            server.run();
            return;
        }
    };
    let handle = server.spawn();
    let name = match pipe.wait() {
        SIGTERM => "SIGTERM",
        SIGINT => "SIGINT",
        _ => "signal",
    };
    eprintln!("serve: {name} received, draining (up to {} s)", drain_timeout.as_secs());
    handle.shutdown_graceful(drain_timeout);
}

#[cfg(not(target_os = "linux"))]
fn run_until_signalled(server: Server, _drain_timeout: std::time::Duration) {
    server.run();
}
