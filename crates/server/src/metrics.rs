//! Server-wide telemetry: the metric set recorded by the transport, the
//! route classification, the per-request stage scratch, and the
//! `/metrics` Prometheus exposition renderer.
//!
//! Everything the hot path touches here is a live atomic from
//! `uops-telemetry` — recording is wait-free and allocation-free, so the
//! zero-allocation guarantee of the serving loop holds with telemetry
//! enabled (asserted by `tests/alloc_free.rs`). Exposition is the cold
//! path: each `GET /metrics` scrape builds a borrowed
//! [`uops_telemetry::Registry`] over the same atomics and renders text.
//!
//! Metric naming follows the `uops_*` scheme:
//!
//! | prefix | source |
//! |---|---|
//! | `uops_http_*` | transport ([`crate::http`] / the connection loop) |
//! | `uops_service_*` | [`crate::QueryService`] tiers and pipeline |
//! | `uops_cache_*` | both cache tiers (`tier="fingerprint"` / `"raw"`) |
//! | `uops_exec_*` | executor stage timings (`stage="parse"/"execute"/"encode"`) |
//! | `uops_pool_*` | the [`uops_pool::TaskPool`] worker pool |
//!
//! Latency histograms use the log₂ bucket layout of
//! [`uops_telemetry::Histogram`]: `le` bounds at `2^k - 1` nanoseconds.

use std::sync::Arc;

use uops_telemetry::{Counter, Gauge, Histogram, Labels, Registry};

use crate::service::QueryService;

/// The routes the transport distinguishes for per-route telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `/v1/query`
    Query,
    /// `/v1/record/{mnemonic}`
    Record,
    /// `/v1/diff`
    Diff,
    /// `/v1/stats`
    Stats,
    /// `/metrics` (the exposition endpoint itself)
    Metrics,
    /// `POST /v1/batch` (multi-plan batch protocol)
    Batch,
    /// `POST /v1/plan` and `GET /v1/plan/{fingerprint}` (compiled-plan
    /// handles)
    Plan,
    /// `POST /v1/ingest` (live data-plane snapshot/shard ingestion)
    Ingest,
    /// Anything else (404s, probes).
    Other,
}

/// Number of [`Route`] variants (the length of per-route metric arrays).
pub const ROUTES: usize = 9;

impl Route {
    /// Classifies a request path. Allocation-free (prefix compares only).
    #[must_use]
    pub fn of(path: &str) -> Route {
        match path {
            "/v1/query" => Route::Query,
            "/v1/diff" => Route::Diff,
            "/v1/stats" => Route::Stats,
            "/metrics" => Route::Metrics,
            "/v1/batch" => Route::Batch,
            "/v1/plan" => Route::Plan,
            "/v1/ingest" => Route::Ingest,
            _ if path.starts_with("/v1/record/") => Route::Record,
            _ if path.starts_with("/v1/plan/") => Route::Plan,
            _ => Route::Other,
        }
    }

    /// The stable label value used in exposition.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Route::Query => "/v1/query",
            Route::Record => "/v1/record",
            Route::Diff => "/v1/diff",
            Route::Stats => "/v1/stats",
            Route::Metrics => "/metrics",
            Route::Batch => "/v1/batch",
            Route::Plan => "/v1/plan",
            Route::Ingest => "/v1/ingest",
            Route::Other => "other",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

const ROUTE_LABELS: [&Labels; ROUTES] = [
    &[("route", "/v1/query")],
    &[("route", "/v1/record")],
    &[("route", "/v1/diff")],
    &[("route", "/v1/stats")],
    &[("route", "/metrics")],
    &[("route", "/v1/batch")],
    &[("route", "/v1/plan")],
    &[("route", "/v1/ingest")],
    &[("route", "other")],
];

/// Most reactor shards the per-shard metric arrays can distinguish;
/// shards beyond this share the last slot (never in practice — shard
/// counts track cores).
pub const MAX_SHARDS: usize = 32;

/// Per-shard label sets for `uops_http_shard_*` exposition.
const SHARD_LABELS: [&Labels; MAX_SHARDS] = [
    &[("shard", "0")],
    &[("shard", "1")],
    &[("shard", "2")],
    &[("shard", "3")],
    &[("shard", "4")],
    &[("shard", "5")],
    &[("shard", "6")],
    &[("shard", "7")],
    &[("shard", "8")],
    &[("shard", "9")],
    &[("shard", "10")],
    &[("shard", "11")],
    &[("shard", "12")],
    &[("shard", "13")],
    &[("shard", "14")],
    &[("shard", "15")],
    &[("shard", "16")],
    &[("shard", "17")],
    &[("shard", "18")],
    &[("shard", "19")],
    &[("shard", "20")],
    &[("shard", "21")],
    &[("shard", "22")],
    &[("shard", "23")],
    &[("shard", "24")],
    &[("shard", "25")],
    &[("shard", "26")],
    &[("shard", "27")],
    &[("shard", "28")],
    &[("shard", "29")],
    &[("shard", "30")],
    &[("shard", "31")],
];

const CLASS_LABELS: [&Labels; 4] =
    [&[("class", "2xx")], &[("class", "3xx")], &[("class", "4xx")], &[("class", "5xx")]];

const TIER_RAW: &Labels = &[("tier", "raw")];
const TIER_FINGERPRINT: &Labels = &[("tier", "fingerprint")];
const TIER_UNCACHED: &Labels = &[("tier", "uncached")];
const STAGE_PARSE: &Labels = &[("stage", "parse")];
const STAGE_EXECUTE: &Labels = &[("stage", "execute")];
const STAGE_ENCODE: &Labels = &[("stage", "encode")];
const NO_LABELS: &Labels = &[];

/// The transport-level metric set, owned by a [`crate::Server`] instance
/// (not process-global: tests and benchmarks run several servers in one
/// process, each with independent counters).
///
/// All fields are live atomics; recording any of them is wait-free and
/// allocation-free.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Requests answered (parsed requests; malformed ones count in
    /// `parse_errors` and the status classes instead).
    pub requests: Counter,
    /// Request head bytes read off the wire.
    pub request_bytes: Counter,
    /// Response bytes (head + body) put on the wire.
    pub response_bytes: Counter,
    /// Requests rejected by the HTTP parser (any malformed request).
    pub parse_errors: Counter,
    /// Parser rejections answered `400 Bad Request`.
    pub bad_requests: Counter,
    /// Parser rejections answered `431 Request Header Fields Too Large`.
    pub header_overflows: Counter,
    /// Revalidations answered `304 Not Modified`.
    pub not_modified: Counter,
    /// Failed `accept` calls (transient `EINTR`/`EAGAIN` retried
    /// immediately, plus `EMFILE`-class exhaustion that backed off) on
    /// either transport's accept path.
    pub accept_errors: Counter,
    /// `EMFILE`-class accept failures answered by the emergency-fd
    /// rescue: the reserve fd was closed, the pending connection accepted
    /// and actively reset instead of left to time out in the backlog.
    pub accept_rescues: Counter,
    /// Connections rejected at admission (transport saturated): answered
    /// with the preformatted static 503 and closed.
    pub overload_rejects: Counter,
    /// Connections evicted mid-response because the peer stopped reading
    /// (write-side stall past the configured timeout).
    pub slow_reader_evictions: Counter,
    /// Connections accepted.
    pub connections_opened: Counter,
    /// Connections fully served and closed.
    pub connections_closed: Counter,
    /// Connections currently being served.
    pub connections_active: Gauge,
    /// Live connections per reactor shard (`uops_http_shard_connections`;
    /// reactor transport only — the pool transport tracks the aggregate
    /// gauge above).
    pub shard_connections: [Gauge; MAX_SHARDS],
    /// Connections accepted per reactor shard: reads on how evenly
    /// `SO_REUSEPORT` spreads the accept load.
    pub shard_accepted: [Counter; MAX_SHARDS],
    /// Reactor shards live on this server (0 on the pool transport);
    /// bounds the per-shard series rendered by [`render_metrics`].
    pub shard_count: std::sync::atomic::AtomicUsize,
    /// Responses by status class (2xx/3xx/4xx/5xx).
    pub status_classes: [Counter; 4],
    /// Request latency per route (read-to-written, nanoseconds).
    pub route_latency: [Histogram; ROUTES],
    /// Request latency split by serving tier: raw fast lane vs
    /// fingerprint hit vs full execute-and-encode.
    pub tier_latency_raw: Histogram,
    /// Fingerprint-tier-hit request latency.
    pub tier_latency_fingerprint: Histogram,
    /// Uncached (execute + encode) request latency.
    pub tier_latency_uncached: Histogram,
    /// Worker-pool scheduling metrics, shared with the [`uops_pool::TaskPool`]
    /// when the server is built with telemetry enabled.
    pub pool: Arc<uops_pool::TaskPoolMetrics>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    /// Creates a zeroed metric set.
    #[must_use]
    pub fn new() -> ServerMetrics {
        const COUNTER: Counter = Counter::new();
        const GAUGE: Gauge = Gauge::new();
        const HISTOGRAM: Histogram = Histogram::new();
        ServerMetrics {
            requests: Counter::new(),
            request_bytes: Counter::new(),
            response_bytes: Counter::new(),
            parse_errors: Counter::new(),
            bad_requests: Counter::new(),
            header_overflows: Counter::new(),
            not_modified: Counter::new(),
            accept_errors: Counter::new(),
            accept_rescues: Counter::new(),
            overload_rejects: Counter::new(),
            slow_reader_evictions: Counter::new(),
            connections_opened: Counter::new(),
            connections_closed: Counter::new(),
            connections_active: Gauge::new(),
            shard_connections: [GAUGE; MAX_SHARDS],
            shard_accepted: [COUNTER; MAX_SHARDS],
            shard_count: std::sync::atomic::AtomicUsize::new(0),
            status_classes: [COUNTER; 4],
            route_latency: [HISTOGRAM; ROUTES],
            tier_latency_raw: Histogram::new(),
            tier_latency_fingerprint: Histogram::new(),
            tier_latency_uncached: Histogram::new(),
            pool: Arc::new(uops_pool::TaskPoolMetrics::new()),
        }
    }

    /// The status-class counter for `status` (2xx/3xx/4xx/5xx; 1xx is
    /// never emitted and maps to the 2xx slot defensively).
    #[must_use]
    pub fn status_class(&self, status: u16) -> &Counter {
        let index = (status / 100).saturating_sub(2).min(3) as usize;
        &self.status_classes[index]
    }

    /// The per-route latency histogram for `route`.
    #[must_use]
    pub fn route_latency(&self, route: Route) -> &Histogram {
        &self.route_latency[route.index()]
    }

    /// The per-shard metric slot for `shard` (clamped so out-of-range
    /// shard indices share the last slot instead of panicking).
    #[must_use]
    pub fn shard_slot(shard: usize) -> usize {
        shard.min(MAX_SHARDS - 1)
    }
}

/// Renders the full Prometheus text exposition for one server: transport
/// metrics, per-tier cache counters, executor stage histograms, and pool
/// gauges. Cold path — called once per `/metrics` scrape; allocation here
/// is fine.
#[must_use]
pub fn render_metrics(service: &QueryService, metrics: &ServerMetrics) -> String {
    let stats = service.stats();
    let stages = service.exec_stage_metrics();
    let mut registry = Registry::new();

    registry.counter(
        "uops_http_requests_total",
        "HTTP requests answered (parsed requests).",
        NO_LABELS,
        &metrics.requests,
    );
    registry.counter(
        "uops_http_request_bytes_total",
        "Request head bytes read off the wire.",
        NO_LABELS,
        &metrics.request_bytes,
    );
    registry.counter(
        "uops_http_response_bytes_total",
        "Response bytes (head + body) written to the wire.",
        NO_LABELS,
        &metrics.response_bytes,
    );
    for (labels, counter) in CLASS_LABELS.iter().zip(metrics.status_classes.iter()) {
        registry.counter(
            "uops_http_responses_total",
            "Responses by status class.",
            labels,
            counter,
        );
    }
    registry.counter(
        "uops_http_not_modified_total",
        "Conditional requests answered 304 Not Modified.",
        NO_LABELS,
        &metrics.not_modified,
    );
    registry.counter(
        "uops_http_parse_errors_total",
        "Requests rejected by the HTTP parser.",
        NO_LABELS,
        &metrics.parse_errors,
    );
    registry.counter(
        "uops_http_bad_requests_total",
        "Parser rejections answered 400 Bad Request.",
        NO_LABELS,
        &metrics.bad_requests,
    );
    registry.counter(
        "uops_http_header_overflows_total",
        "Parser rejections answered 431 (caps exceeded).",
        NO_LABELS,
        &metrics.header_overflows,
    );
    registry.counter(
        "uops_http_accept_errors_total",
        "Failed accept calls (transient retries and backed-off exhaustion).",
        NO_LABELS,
        &metrics.accept_errors,
    );
    registry.counter(
        "uops_http_accept_rescues_total",
        "EMFILE-class accept failures answered by the emergency-fd rescue.",
        NO_LABELS,
        &metrics.accept_rescues,
    );
    registry.counter(
        "uops_http_overload_rejects_total",
        "Connections rejected at admission with a static 503.",
        NO_LABELS,
        &metrics.overload_rejects,
    );
    registry.counter(
        "uops_http_slow_reader_evictions_total",
        "Connections evicted mid-response on a write-side stall.",
        NO_LABELS,
        &metrics.slow_reader_evictions,
    );
    registry.counter(
        "uops_http_connections_opened_total",
        "Connections accepted.",
        NO_LABELS,
        &metrics.connections_opened,
    );
    registry.counter(
        "uops_http_connections_closed_total",
        "Connections fully served and closed.",
        NO_LABELS,
        &metrics.connections_closed,
    );
    registry.gauge(
        "uops_http_connections_active",
        "Connections currently being served.",
        NO_LABELS,
        &metrics.connections_active,
    );
    let shards = metrics.shard_count.load(std::sync::atomic::Ordering::Relaxed).min(MAX_SHARDS);
    for shard in 0..shards {
        registry.gauge(
            "uops_http_shard_connections",
            "Live connections per reactor shard.",
            SHARD_LABELS[shard],
            &metrics.shard_connections[shard],
        );
    }
    for shard in 0..shards {
        registry.counter(
            "uops_http_shard_accepted_total",
            "Connections accepted per reactor shard (SO_REUSEPORT spread).",
            SHARD_LABELS[shard],
            &metrics.shard_accepted[shard],
        );
    }
    for (labels, histogram) in ROUTE_LABELS.iter().zip(metrics.route_latency.iter()) {
        registry.histogram(
            "uops_http_request_latency_nanoseconds",
            "Request latency (read to written) per route.",
            labels,
            histogram,
        );
    }

    registry.histogram(
        "uops_service_latency_nanoseconds",
        "Request latency split by serving tier.",
        TIER_RAW,
        &metrics.tier_latency_raw,
    );
    registry.histogram(
        "uops_service_latency_nanoseconds",
        "Request latency split by serving tier.",
        TIER_FINGERPRINT,
        &metrics.tier_latency_fingerprint,
    );
    registry.histogram(
        "uops_service_latency_nanoseconds",
        "Request latency split by serving tier.",
        TIER_UNCACHED,
        &metrics.tier_latency_uncached,
    );
    registry.counter(
        "uops_service_executions_total",
        "Plans actually executed (cache misses).",
        NO_LABELS,
        service.executions_counter(),
    );
    registry.counter(
        "uops_service_encodes_total",
        "Results actually encoded (cache misses).",
        NO_LABELS,
        service.encodes_counter(),
    );
    registry.counter(
        "uops_service_shed_total",
        "Uncached requests shed by overload control, by reason.",
        &[("reason", "deadline")],
        service.shed_deadline_counter(),
    );
    registry.counter(
        "uops_service_shed_total",
        "Uncached requests shed by overload control, by reason.",
        &[("reason", "capacity")],
        service.shed_capacity_counter(),
    );
    registry.gauge_sample(
        "uops_service_uncached_inflight",
        "Uncached executions in flight (admission gauge).",
        NO_LABELS,
        service.uncached_inflight() as i64,
    );
    registry.gauge_sample(
        "uops_service_records",
        "Records in the served store.",
        NO_LABELS,
        service.record_count() as i64,
    );
    registry.gauge_sample(
        "uops_store_generation",
        "Live data-plane generation currently served.",
        NO_LABELS,
        service.generation() as i64,
    );
    registry.counter(
        "uops_store_swaps_total",
        "Generation swaps published to the live store.",
        NO_LABELS,
        service.swaps_counter(),
    );
    registry.counter(
        "uops_store_cache_flushes_total",
        "Cache tiers flushed at generation-swap boundaries.",
        NO_LABELS,
        service.cache_flushes_counter(),
    );
    registry.counter(
        "uops_store_quarantined_total",
        "Segment images quarantined by boot recovery.",
        NO_LABELS,
        service.quarantined_counter(),
    );

    let fingerprint = service.fingerprint_cache();
    let raw = service.raw_lane_cache();
    registry.counter(
        "uops_cache_hits_total",
        "Cache hits per tier.",
        TIER_FINGERPRINT,
        fingerprint.hits_counter(),
    );
    registry.counter("uops_cache_hits_total", "Cache hits per tier.", TIER_RAW, raw.hits_counter());
    registry.counter(
        "uops_cache_misses_total",
        "Cache misses per tier (collisions included).",
        TIER_FINGERPRINT,
        fingerprint.misses_counter(),
    );
    registry.counter(
        "uops_cache_misses_total",
        "Cache misses per tier (collisions included).",
        TIER_RAW,
        raw.misses_counter(),
    );
    registry.counter(
        "uops_cache_evictions_total",
        "Entries evicted to stay within the byte budget, per tier.",
        TIER_FINGERPRINT,
        fingerprint.evictions_counter(),
    );
    registry.counter(
        "uops_cache_evictions_total",
        "Entries evicted to stay within the byte budget, per tier.",
        TIER_RAW,
        raw.evictions_counter(),
    );
    registry.counter(
        "uops_cache_uncacheable_total",
        "Responses too large to cache, per tier.",
        TIER_FINGERPRINT,
        fingerprint.uncacheable_counter(),
    );
    registry.counter(
        "uops_cache_uncacheable_total",
        "Responses too large to cache, per tier.",
        TIER_RAW,
        raw.uncacheable_counter(),
    );
    registry.gauge_sample(
        "uops_cache_entries",
        "Live cache entries per tier.",
        TIER_FINGERPRINT,
        stats.cache.entries as i64,
    );
    registry.gauge_sample(
        "uops_cache_entries",
        "Live cache entries per tier.",
        TIER_RAW,
        stats.raw.entries as i64,
    );
    registry.gauge_sample(
        "uops_cache_bytes",
        "Payload + overhead bytes held per tier.",
        TIER_FINGERPRINT,
        stats.cache.bytes as i64,
    );
    registry.gauge_sample(
        "uops_cache_bytes",
        "Payload + overhead bytes held per tier.",
        TIER_RAW,
        stats.raw.bytes as i64,
    );
    registry.gauge_sample(
        "uops_cache_capacity_bytes",
        "Configured byte budget per tier.",
        TIER_FINGERPRINT,
        stats.cache.capacity_bytes as i64,
    );
    registry.gauge_sample(
        "uops_cache_capacity_bytes",
        "Configured byte budget per tier.",
        TIER_RAW,
        stats.raw.capacity_bytes as i64,
    );

    registry.histogram(
        "uops_exec_stage_nanoseconds",
        "Uncached-pipeline stage timings.",
        STAGE_PARSE,
        &stages.parse_ns,
    );
    registry.histogram(
        "uops_exec_stage_nanoseconds",
        "Uncached-pipeline stage timings.",
        STAGE_EXECUTE,
        &stages.execute_ns,
    );
    registry.histogram(
        "uops_exec_stage_nanoseconds",
        "Uncached-pipeline stage timings.",
        STAGE_ENCODE,
        &stages.encode_ns,
    );

    registry.gauge(
        "uops_pool_queue_depth",
        "Tasks submitted to the worker pool but not yet picked up.",
        NO_LABELS,
        &metrics.pool.queue_depth,
    );
    registry.histogram(
        "uops_pool_task_wait_nanoseconds",
        "Time tasks spent queued before a worker picked them up.",
        NO_LABELS,
        &metrics.pool.wait_ns,
    );
    registry.histogram(
        "uops_pool_task_run_nanoseconds",
        "Time tasks spent executing on a worker.",
        NO_LABELS,
        &metrics.pool.run_ns,
    );
    registry.counter(
        "uops_pool_tasks_executed_total",
        "Tasks executed to completion by the worker pool.",
        NO_LABELS,
        &metrics.pool.executed,
    );
    registry.counter(
        "uops_pool_steals_total",
        "Work-stealing chunk steals across all parallel sweeps (process-wide).",
        NO_LABELS,
        uops_pool::steals_counter(),
    );

    registry.render()
}

/// Per-thread scratch carrying the current request's stage timings from
/// the service layer (where the `Span`s run) to the transport (which
/// reads them for the sampled access log). Plain `Cell` accesses — no
/// allocation, no locking.
pub(crate) mod stage_scratch {
    use std::cell::Cell;

    thread_local! {
        static SCRATCH: Cell<(u64, u64, u64)> = const { Cell::new((0, 0, 0)) };
    }

    /// Clears the scratch at the start of a request.
    pub fn reset() {
        SCRATCH.with(|s| s.set((0, 0, 0)));
    }

    /// Records the parse-stage nanoseconds of the current request.
    pub fn set_parse(ns: u64) {
        SCRATCH.with(|s| {
            let (_, execute, encode) = s.get();
            s.set((ns, execute, encode));
        });
    }

    /// Records the execute-stage nanoseconds of the current request.
    pub fn set_execute(ns: u64) {
        SCRATCH.with(|s| {
            let (parse, _, encode) = s.get();
            s.set((parse, ns, encode));
        });
    }

    /// Records the encode-stage nanoseconds of the current request.
    pub fn set_encode(ns: u64) {
        SCRATCH.with(|s| {
            let (parse, execute, _) = s.get();
            s.set((parse, execute, ns));
        });
    }

    /// Reads `(parse_ns, execute_ns, encode_ns)` for the current request.
    pub fn get() -> (u64, u64, u64) {
        SCRATCH.with(Cell::get)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uops_db::{InstructionDb, Snapshot, VariantRecord};

    fn service() -> QueryService {
        let mut s = Snapshot::new("metrics test");
        s.records.push(VariantRecord {
            mnemonic: "ADD".into(),
            variant: "R64, R64".into(),
            extension: "BASE".into(),
            uarch: "Skylake".into(),
            uop_count: 1,
            ports: vec![(0b0100_0001, 1)],
            tp_measured: 0.25,
            ..Default::default()
        });
        QueryService::from_db(Arc::new(InstructionDb::from_snapshot(&s)), 1 << 20)
    }

    #[test]
    fn route_classification() {
        assert_eq!(Route::of("/v1/query"), Route::Query);
        assert_eq!(Route::of("/v1/record/ADD"), Route::Record);
        assert_eq!(Route::of("/v1/diff"), Route::Diff);
        assert_eq!(Route::of("/v1/stats"), Route::Stats);
        assert_eq!(Route::of("/metrics"), Route::Metrics);
        assert_eq!(Route::of("/nope"), Route::Other);
        assert_eq!(Route::of("/v1/record/"), Route::Record);
        assert_eq!(Route::of("/v1/batch"), Route::Batch);
        assert_eq!(Route::of("/v1/plan"), Route::Plan);
        assert_eq!(Route::of("/v1/plan/00ff00ff00ff00ff"), Route::Plan);
        assert_eq!(Route::of("/v1/ingest"), Route::Ingest);
        assert_eq!(Route::of("/v1/batches"), Route::Other);
    }

    #[test]
    fn shard_metrics_render_only_live_shards() {
        let service = service();
        let metrics = ServerMetrics::new();
        let text = render_metrics(&service, &metrics);
        assert!(!text.contains("uops_http_shard_connections"), "no shards, no series");
        metrics.shard_count.store(2, std::sync::atomic::Ordering::Relaxed);
        metrics.shard_connections[0].inc();
        metrics.shard_accepted[1].inc();
        let text = render_metrics(&service, &metrics);
        assert!(text.contains("uops_http_shard_connections{shard=\"0\"} 1"), "{text}");
        assert!(text.contains("uops_http_shard_connections{shard=\"1\"} 0"), "{text}");
        assert!(text.contains("uops_http_shard_accepted_total{shard=\"1\"} 1"), "{text}");
        assert!(!text.contains("shard=\"2\""), "only live shards render");
    }

    #[test]
    fn status_classes_map_to_the_right_counter() {
        let metrics = ServerMetrics::new();
        metrics.status_class(200).inc();
        metrics.status_class(304).inc();
        metrics.status_class(404).inc();
        metrics.status_class(500).inc();
        metrics.status_class(599).inc();
        let counts: Vec<u64> = metrics.status_classes.iter().map(|c| c.get()).collect();
        assert_eq!(counts, vec![1, 1, 1, 2]);
    }

    #[test]
    fn exposition_covers_every_subsystem() {
        let service = service();
        let metrics = ServerMetrics::new();
        metrics.requests.inc();
        metrics.route_latency(Route::Query).record(1_000);
        metrics.tier_latency_raw.record(200);
        let _ = crate::respond(&service, "GET", "/v1/query?uarch=Skylake");
        let text = render_metrics(&service, &metrics);
        for needle in [
            "uops_http_requests_total 1",
            "uops_http_accept_errors_total 0",
            "uops_http_accept_rescues_total 0",
            "uops_http_overload_rejects_total 0",
            "uops_http_slow_reader_evictions_total 0",
            "uops_service_shed_total{reason=\"deadline\"} 0",
            "uops_service_shed_total{reason=\"capacity\"} 0",
            "uops_service_uncached_inflight 0",
            "uops_http_request_latency_nanoseconds_bucket{route=\"/v1/query\",le=\"+Inf\"} 1",
            "uops_service_latency_nanoseconds_count{tier=\"raw\"} 1",
            "uops_cache_hits_total{tier=\"fingerprint\"} 0",
            "uops_cache_misses_total{tier=\"raw\"} 1",
            "uops_service_executions_total 1",
            "uops_exec_stage_nanoseconds_count{stage=\"execute\"} 1",
            "uops_pool_queue_depth 0",
            "uops_pool_steals_total",
            "uops_service_records 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // One header pair per metric name, even with several label sets.
        assert_eq!(text.matches("# TYPE uops_cache_hits_total counter").count(), 1);
        assert_eq!(
            text.matches("# TYPE uops_http_request_latency_nanoseconds histogram").count(),
            1
        );
    }

    #[test]
    fn stage_scratch_roundtrip() {
        stage_scratch::reset();
        assert_eq!(stage_scratch::get(), (0, 0, 0));
        stage_scratch::set_parse(1);
        stage_scratch::set_execute(2);
        stage_scratch::set_encode(3);
        assert_eq!(stage_scratch::get(), (1, 2, 3));
        stage_scratch::reset();
        assert_eq!(stage_scratch::get(), (0, 0, 0));
    }
}
