//! Event-driven reactor transport (Linux only).
//!
//! The default transport in this crate is thread-per-connection: simple,
//! robust, and — with the pipelined fast lane — very fast for a modest
//! number of busy connections. What it cannot do is hold *many mostly
//! idle* connections cheaply: 10k parked keep-alive clients would mean
//! 10k kernel threads' worth of stacks.
//!
//! This module is the alternative for that regime: `N` reactor shards
//! ([`reactor`]), each a single thread running an edge-triggered `epoll`
//! loop over its own `SO_REUSEPORT` listener ([`listener`]) and a slab of
//! non-blocking connection state machines. A parked connection costs a
//! slab entry and an fd — buffers are allocated lazily on first byte —
//! so tens of thousands of idle connections fit in a few megabytes.
//! Idle-timeout eviction rides a coarse lazy timer wheel ([`timer`])
//! ticked from the `epoll_wait` timeout.
//!
//! Everything sits on hand-declared syscall bindings in [`sys`] — the
//! same "std already links libc, so declare the prototypes and call them"
//! playbook as the mmap segment reader in `uops-db` — because `std`
//! exposes neither epoll nor `SO_REUSEPORT`. No external crates.

pub(crate) mod listener;
pub(crate) mod reactor;
pub(crate) mod sys;
pub(crate) mod timer;

pub use sys::{SignalPipe, SIGINT, SIGTERM};

/// Raises the process `RLIMIT_NOFILE` soft limit toward `want` and
/// returns the soft limit actually in effect afterwards.
///
/// Each reactor connection holds an fd, so a 10k-connection target needs
/// headroom beyond the common 1024-soft default. Raising the soft limit
/// up to the hard limit needs no privilege; going past the hard limit is
/// attempted too (it works when running as root) but failure is not an
/// error — the caller sizes its ambitions to the returned value. Public
/// for the bench harness.
pub fn raise_nofile_limit(want: u64) -> u64 {
    sys::raise_nofile_limit(want)
}

/// This process's resident set size in bytes (from `/proc/self/statm`),
/// or `None` if it cannot be read. Public for the bench harness, which
/// gates per-connection memory of the reactor under 10k idle
/// connections.
pub fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    let page_size = sys::page_size();
    Some(resident_pages * page_size)
}

#[cfg(test)]
mod tests {
    use crate::http::{write_resumable, WriteProgress};
    use std::io::Read;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn rss_is_readable_and_plausible() {
        let rss = super::rss_bytes().expect("statm");
        assert!(rss > 64 * 1024, "a Rust test binary resident set is >64KiB, got {rss}");
    }

    /// Satellite for the resumable-write path: drive a response into a
    /// socket whose send buffer is genuinely full, observe the
    /// `WouldBlock` park, drain the peer, and resume from the cursor —
    /// the bytes on the wire must come out exactly once and in order.
    #[test]
    fn full_send_buffer_parks_write_and_resumes_from_cursor() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut tx = TcpStream::connect(addr).expect("connect");
        let (rx, _) = listener.accept().expect("accept");

        // Shrink the send buffer so it fills fast (the kernel doubles and
        // clamps the value; whatever it lands on, the payload below is
        // far larger), then go non-blocking so a full buffer surfaces as
        // EAGAIN instead of parking the thread.
        super::sys::set_socket_option(tx.as_raw_fd(), super::sys::SO_SNDBUF, 4 * 1024)
            .expect("SO_SNDBUF");
        tx.set_nonblocking(true).expect("nonblocking");

        let head = b"HTTP/1.1 200 OK\r\ncontent-length: 1048576\r\n\r\n".to_vec();
        let body = vec![0xA5u8; 1 << 20];
        let total = head.len() + body.len();

        let mut cursor = 0;
        let mut parks = 0;
        let mut received = Vec::with_capacity(total);
        let mut scratch = vec![0u8; 64 * 1024];
        let mut rx_nonblocking = rx;
        rx_nonblocking.set_nonblocking(true).expect("nonblocking rx");
        loop {
            match write_resumable(&mut tx, &head, &body, &mut cursor).expect("write") {
                WriteProgress::Complete => break,
                WriteProgress::Pending => {
                    parks += 1;
                    assert!(cursor < total, "pending implies bytes remain");
                    // Drain whatever the peer has, freeing send-buffer
                    // space so the resumed write can progress.
                    loop {
                        match rx_nonblocking.read(&mut scratch) {
                            Ok(0) => panic!("peer closed early"),
                            Ok(n) => received.extend_from_slice(&scratch[..n]),
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(e) => panic!("read: {e}"),
                        }
                    }
                }
            }
        }
        assert!(parks > 0, "a 1MiB response through a ~8KiB send buffer must park");
        drop(tx);
        rx_nonblocking.set_nonblocking(false).expect("blocking rx");
        rx_nonblocking.read_to_end(&mut received).expect("drain tail");

        assert_eq!(received.len(), total);
        assert_eq!(&received[..head.len()], &head[..]);
        assert_eq!(&received[head.len()..], &body[..]);
    }
}
