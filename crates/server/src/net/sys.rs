//! Hand-declared Linux kernel-interface bindings for the event-driven
//! transport: `epoll`, `eventfd`, raw socket setup (`SO_REUSEPORT` must
//! be set *before* `bind`, which `std` cannot do), `fcntl(O_NONBLOCK)`,
//! and `RLIMIT_NOFILE`.
//!
//! Same std-only playbook as `uops_db`'s `mmap` feature: the build
//! environment has no crates.io access, so instead of the `libc` crate
//! this module declares the C-library symbols it needs directly — `std`
//! already links libc on Linux, so no extra linkage is required. The
//! whole `net` module is compiled only on `target_os = "linux"`
//! (`epoll`, `eventfd`, and these constant values are Linux-specific).
//!
//! The one ABI subtlety worth calling out: `struct epoll_event` is
//! `__attribute__((packed))` on x86/x86-64 (a 12-byte struct) but
//! naturally aligned (16 bytes) everywhere else, so [`EpollEvent`]
//! mirrors that with `cfg_attr` — getting it wrong corrupts the `data`
//! tokens the reactor uses to find connections.

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::{AtomicI32, Ordering};

use core::ffi::c_void;

// epoll_create1 / eventfd flags (octal 0o2000000 == O_CLOEXEC).
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

// epoll_ctl ops.
const EPOLL_CTL_ADD: i32 = 1;

/// Readable readiness.
pub(crate) const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub(crate) const EPOLLOUT: u32 = 0x004;
/// Peer shut down its write half (half-close detection without a read).
pub(crate) const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery.
pub(crate) const EPOLLET: u32 = 1 << 31;

// fcntl.
const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0o4000;

// socket(2) / setsockopt(2).
const AF_INET: i32 = 2;
const AF_INET6: i32 = 10;
const SOCK_STREAM: i32 = 1;
const SOCK_CLOEXEC: i32 = 0o2000000;
const SOL_SOCKET: i32 = 1;
const SO_REUSEADDR: i32 = 2;
/// `SO_SNDBUF` (exposed for tests that shrink a socket's send buffer to
/// force mid-response `EAGAIN`).
#[cfg(test)]
pub(crate) const SO_SNDBUF: i32 = 7;
const SO_REUSEPORT: i32 = 15;

// getrlimit/setrlimit resource.
const RLIMIT_NOFILE: i32 = 7;

// signal(2) numbers for the serve binary's graceful-shutdown path.
/// `SIGINT` (interactive interrupt, Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` (polite termination, e.g. from an orchestrator).
pub const SIGTERM: i32 = 15;
// pipe2 flag (same octal value as the CLOEXEC flags above).
const O_CLOEXEC: i32 = 0o2000000;

// sysconf name.
const SC_PAGESIZE: i32 = 30;

/// One `struct epoll_event`: interest/readiness flags plus the caller's
/// 64-bit token. Packed on x86/x86-64, naturally aligned elsewhere — see
/// the module docs.
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
#[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
#[derive(Debug, Clone, Copy)]
pub(crate) struct EpollEvent {
    /// `EPOLLIN | EPOLLOUT | ...` interest (in) or readiness (out) bits.
    pub events: u32,
    /// Caller-owned token, returned verbatim with each event.
    pub data: u64,
}

/// `struct rlimit` on 64-bit Linux (`rlim_t` is `u64`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

/// `struct sockaddr_in`; `sin_port`/`sin_addr` are big-endian.
#[repr(C)]
struct SockAddrIn {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

/// `struct sockaddr_in6`; `sin6_port`/`sin6_addr` are big-endian.
#[repr(C)]
struct SockAddrIn6 {
    sin6_family: u16,
    sin6_port: u16,
    sin6_flowinfo: u32,
    sin6_addr: [u8; 16],
    sin6_scope_id: u32,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, ...) -> i32;
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
    fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const c_void, optlen: u32) -> i32;
    fn bind(fd: i32, addr: *const c_void, addrlen: u32) -> i32;
    fn listen(fd: i32, backlog: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    fn sysconf(name: i32) -> i64;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn signal(signum: i32, handler: usize) -> usize;
    fn write(fd: i32, buf: *const c_void, count: usize) -> isize;
}

/// The system page size (`sysconf(_SC_PAGESIZE)`), for converting
/// `/proc/self/statm` page counts to bytes; falls back to 4096.
pub(crate) fn page_size() -> u64 {
    // SAFETY: plain sysconf; -1 (error) falls back to the x86-64 default.
    let size = unsafe { sysconf(SC_PAGESIZE) };
    if size > 0 {
        size as u64
    } else {
        4096
    }
}

fn check(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Puts `fd` into non-blocking mode via `fcntl(F_SETFL, ... | O_NONBLOCK)`.
pub(crate) fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: plain fcntl on a caller-owned fd; errors surface as -1.
    let flags = check(unsafe { fcntl(fd, F_GETFL) })?;
    // SAFETY: as above; the third variadic argument is an int, as the
    // F_SETFL contract requires.
    check(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
    Ok(())
}

/// Sets an integer socket option (`setsockopt(fd, SOL_SOCKET, opt, &value)`).
pub(crate) fn set_socket_option(fd: RawFd, option: i32, value: i32) -> io::Result<()> {
    // SAFETY: optval points at a live i32 for the duration of the call,
    // with optlen matching its size.
    check(unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            option,
            std::ptr::addr_of!(value).cast::<c_void>(),
            std::mem::size_of::<i32>() as u32,
        )
    })?;
    Ok(())
}

/// Creates a non-blocking TCP socket with `SO_REUSEADDR` + `SO_REUSEPORT`
/// set, bound to `addr` and listening — everything `std`'s
/// `TcpListener::bind` does, except the reuse-port option lands *before*
/// `bind` (the only order the kernel accepts), which is what lets N
/// acceptor shards own N distinct listening sockets on one port.
pub(crate) fn bind_reuseport_listener(
    addr: std::net::SocketAddr,
    backlog: i32,
) -> io::Result<OwnedFd> {
    let domain = if addr.is_ipv4() { AF_INET } else { AF_INET6 };
    // SAFETY: plain socket(2); a negative return is an error, a
    // non-negative one is a fresh fd we immediately take ownership of.
    let raw = check(unsafe { socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0) })?;
    // SAFETY: `raw` is a live fd owned by nobody else yet.
    let fd = unsafe { OwnedFd::from_raw_fd(raw) };
    set_socket_option(fd.as_raw_fd(), SO_REUSEADDR, 1)?;
    set_socket_option(fd.as_raw_fd(), SO_REUSEPORT, 1)?;
    match addr {
        std::net::SocketAddr::V4(v4) => {
            let sa = SockAddrIn {
                sin_family: AF_INET as u16,
                sin_port: v4.port().to_be(),
                sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                sin_zero: [0; 8],
            };
            // SAFETY: `sa` is a properly populated sockaddr_in living
            // across the call, with addrlen matching its size.
            check(unsafe {
                bind(
                    fd.as_raw_fd(),
                    std::ptr::addr_of!(sa).cast::<c_void>(),
                    std::mem::size_of::<SockAddrIn>() as u32,
                )
            })?;
        }
        std::net::SocketAddr::V6(v6) => {
            let sa = SockAddrIn6 {
                sin6_family: AF_INET6 as u16,
                sin6_port: v6.port().to_be(),
                sin6_flowinfo: v6.flowinfo().to_be(),
                sin6_addr: v6.ip().octets(),
                sin6_scope_id: v6.scope_id(),
            };
            // SAFETY: as for the v4 arm.
            check(unsafe {
                bind(
                    fd.as_raw_fd(),
                    std::ptr::addr_of!(sa).cast::<c_void>(),
                    std::mem::size_of::<SockAddrIn6>() as u32,
                )
            })?;
        }
    }
    // SAFETY: listen on our own bound fd.
    check(unsafe { listen(fd.as_raw_fd(), backlog) })?;
    set_nonblocking(fd.as_raw_fd())?;
    Ok(fd)
}

/// Raises the soft `RLIMIT_NOFILE` toward `want` (capped by the hard
/// limit, which a privileged process may also raise), returning the soft
/// limit actually in force afterwards. Never errors: on any failure the
/// current (unchanged) limit is returned — callers scale their fd use to
/// the returned value.
pub(crate) fn raise_nofile_limit(want: u64) -> u64 {
    let mut lim = Rlimit { rlim_cur: 0, rlim_max: 0 };
    // SAFETY: getrlimit writes into a live struct of the right layout.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 1024; // the conventional default soft limit
    }
    if lim.rlim_cur >= want {
        return lim.rlim_cur;
    }
    let target = Rlimit { rlim_cur: want.min(lim.rlim_max), rlim_max: lim.rlim_max };
    if target.rlim_max < want {
        // Only root may raise the hard limit; try, and fall back to the
        // existing hard limit if the kernel says no.
        let raised = Rlimit { rlim_cur: want, rlim_max: want };
        // SAFETY: setrlimit reads a live struct of the right layout.
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
            return want;
        }
    }
    // SAFETY: as above.
    if unsafe { setrlimit(RLIMIT_NOFILE, &target) } == 0 {
        target.rlim_cur
    } else {
        lim.rlim_cur
    }
}

/// An owned epoll instance.
#[derive(Debug)]
pub(crate) struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub(crate) fn new() -> io::Result<Epoll> {
        // SAFETY: plain epoll_create1; non-negative return is a fresh fd.
        let raw = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        // SAFETY: `raw` is a live fd owned by nobody else.
        Ok(Epoll { fd: unsafe { OwnedFd::from_raw_fd(raw) } })
    }

    /// Registers `fd` for `events`, tagging its readiness reports with
    /// `token`. Registration happens exactly once per connection — with
    /// `EPOLLIN | EPOLLOUT | EPOLLET` the reactor never issues per-state
    /// `epoll_ctl` calls afterwards.
    pub(crate) fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent { events, data: token };
        // SAFETY: `event` is a live, properly laid out epoll_event; the
        // kernel copies it before returning.
        check(unsafe { epoll_ctl(self.fd.as_raw_fd(), EPOLL_CTL_ADD, fd, &mut event) })?;
        Ok(())
    }

    /// Waits up to `timeout_ms` for readiness, filling `events` from the
    /// front; returns how many entries are valid. `EINTR` reports as zero
    /// events rather than an error (the reactor's timer tick handles the
    /// early return).
    pub(crate) fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `events` is a live, writable, properly laid out array of
        // epoll_events; maxevents matches its length.
        let n = unsafe {
            epoll_wait(
                self.fd.as_raw_fd(),
                events.as_mut_ptr(),
                events.len().min(i32::MAX as usize) as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

/// An `eventfd(2)`-backed wakeup channel: any thread may
/// [`EventFd::notify`] to make the owning reactor's `epoll_wait` return
/// (the shutdown path). Non-blocking on both ends.
#[derive(Debug)]
pub(crate) struct EventFd {
    file: File,
}

impl EventFd {
    /// `eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
    pub(crate) fn new() -> io::Result<EventFd> {
        // SAFETY: plain eventfd; non-negative return is a fresh fd.
        let raw = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        // SAFETY: `raw` is a live fd owned by nobody else; File's Drop
        // closes it.
        Ok(EventFd { file: unsafe { File::from_raw_fd(raw) } })
    }

    /// The fd to register with epoll.
    pub(crate) fn raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Adds 1 to the counter, waking any epoll waiting on it. Failures
    /// (counter saturation) are ignored: the waiter is awake either way.
    pub(crate) fn notify(&self) {
        let _ = (&self.file).write(&1u64.to_ne_bytes());
    }

    /// Drains the counter so the readable edge can fire again.
    pub(crate) fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&self.file).read(&mut buf);
    }
}

/// Write end of the self-pipe, stashed for the signal handler (`-1`
/// until [`SignalPipe::install`] runs). Intentionally never closed: the
/// handler may fire at any point for the rest of the process.
static SIGNAL_WRITE_FD: AtomicI32 = AtomicI32::new(-1);
/// The most recently delivered signal number.
static LAST_SIGNAL: AtomicI32 = AtomicI32::new(0);

/// The signal handler: async-signal-safe by construction — two atomic
/// operations and one `write(2)` of a single byte into the self-pipe.
extern "C" fn on_signal(signum: i32) {
    LAST_SIGNAL.store(signum, Ordering::SeqCst);
    let fd = SIGNAL_WRITE_FD.load(Ordering::SeqCst);
    if fd >= 0 {
        let byte = 1u8;
        // SAFETY: write(2) is on the async-signal-safe list; the fd is
        // kept open for the life of the process.
        unsafe { write(fd, std::ptr::addr_of!(byte).cast::<c_void>(), 1) };
    }
}

/// `SIGTERM`/`SIGINT` notification via the classic self-pipe trick: the
/// handler writes one byte into a pipe, and [`SignalPipe::wait`] blocks
/// reading the other end — keeping all real work out of signal context.
///
/// Used by the `serve` binary for graceful drain; install once per
/// process (a second install replaces the first pipe's write end).
pub struct SignalPipe {
    read: File,
}

impl SignalPipe {
    /// Creates the pipe and installs the handler for `SIGTERM` and
    /// `SIGINT`.
    ///
    /// # Errors
    ///
    /// Propagates `pipe2(2)` failure.
    pub fn install() -> io::Result<SignalPipe> {
        let mut fds = [-1i32; 2];
        // SAFETY: pipe2 writes two fds into a live array of two i32s.
        check(unsafe { pipe2(fds.as_mut_ptr(), O_CLOEXEC) })?;
        SIGNAL_WRITE_FD.store(fds[1], Ordering::SeqCst);
        // SAFETY: installing a handler that performs only
        // async-signal-safe operations (see `on_signal`).
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
        // SAFETY: fds[0] is a fresh fd owned by nobody else; File's Drop
        // closes it.
        Ok(SignalPipe { read: unsafe { File::from_raw_fd(fds[0]) } })
    }

    /// Blocks until a signal arrives, then returns its number
    /// (`SIGTERM`/`SIGINT`).
    pub fn wait(&mut self) -> i32 {
        let mut byte = [0u8; 1];
        loop {
            match self.read.read(&mut byte) {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // A read byte, EOF, or a hard error all mean "stop
                // waiting"; the atomic carries the signal number.
                _ => return LAST_SIGNAL.load(Ordering::SeqCst),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_event_layout_matches_the_kernel_abi() {
        // 12 packed bytes on x86/x86-64, 16 aligned bytes elsewhere.
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        assert_eq!(std::mem::size_of::<EpollEvent>(), 16);
    }

    #[test]
    fn eventfd_wakes_an_epoll_wait() {
        let epoll = Epoll::new().expect("epoll");
        let wake = EventFd::new().expect("eventfd");
        epoll.add(wake.raw_fd(), EPOLLIN, 7).expect("add");

        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(epoll.wait(&mut events, 0).expect("wait"), 0, "nothing pending yet");

        wake.notify();
        let n = epoll.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        let token = events[0].data;
        assert_eq!(token, 7);

        wake.drain();
        assert_eq!(epoll.wait(&mut events, 0).expect("wait"), 0, "drained");
    }

    #[test]
    fn reuseport_listeners_share_a_port() {
        let first = bind_reuseport_listener("127.0.0.1:0".parse().expect("addr"), 64)
            .map(|fd| {
                // SAFETY: transferring sole ownership of the bound fd.
                unsafe {
                    std::net::TcpListener::from_raw_fd(std::os::fd::IntoRawFd::into_raw_fd(fd))
                }
            })
            .expect("bind first");
        let addr = first.local_addr().expect("addr");
        // A second listener on the *same* concrete port must succeed —
        // that is the whole point of SO_REUSEPORT.
        let second = bind_reuseport_listener(addr, 64).expect("bind second");
        drop(second);
        drop(first);
    }

    #[test]
    fn nofile_limit_reports_a_sane_value() {
        let limit = raise_nofile_limit(1024);
        assert!(limit >= 256, "soft fd limit suspiciously low: {limit}");
    }
}
