//! `SO_REUSEPORT` acceptor-shard listeners.
//!
//! Each reactor shard owns its **own** listening socket on the shared
//! port: the kernel hashes incoming connections across all sockets bound
//! with `SO_REUSEPORT`, so accept load spreads across shards with no
//! user-space coordination, no shared accept lock, and no thundering
//! herd. `std` cannot express this (the option must be set between
//! `socket` and `bind`), hence the raw setup in [`super::sys`]; the bound
//! fd is handed back to `std` as a regular non-blocking [`TcpListener`]
//! so `accept` and fd lifetime stay safe code.

use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::fd::{FromRawFd, IntoRawFd};

use super::sys;

/// Pending-connection backlog per shard listener (the kernel clamps this
/// to `net.core.somaxconn`).
const BACKLOG: i32 = 4096;

/// Binds one non-blocking `SO_REUSEPORT` listener on `addr`.
///
/// # Errors
///
/// Propagates socket/bind/listen failures.
pub(crate) fn bind_reuseport(addr: SocketAddr) -> io::Result<TcpListener> {
    let fd = sys::bind_reuseport_listener(addr, BACKLOG)?;
    // SAFETY: transferring sole ownership of a live, bound, listening fd.
    Ok(unsafe { TcpListener::from_raw_fd(fd.into_raw_fd()) })
}

/// Binds `shards` reuse-port listeners for `addr` (resolving it like
/// `TcpListener::bind` does): the first bind may use port 0, and the
/// remaining shards join whatever concrete port the kernel assigned it.
///
/// # Errors
///
/// Propagates resolution and bind failures (the error of the last
/// candidate address when all fail, as `std` does).
pub(crate) fn bind_shard_listeners(
    addr: &str,
    shards: usize,
) -> io::Result<(SocketAddr, Vec<TcpListener>)> {
    let mut last_err = None;
    let mut first = None;
    for candidate in addr.to_socket_addrs()? {
        match bind_reuseport(candidate) {
            Ok(listener) => {
                first = Some(listener);
                break;
            }
            Err(e) => last_err = Some(e),
        }
    }
    let Some(first) = first else {
        return Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "could not resolve to any address")
        }));
    };
    let local_addr = first.local_addr()?;
    let mut listeners = vec![first];
    for _ in 1..shards.max(1) {
        listeners.push(bind_reuseport(local_addr)?);
    }
    Ok((local_addr, listeners))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn shard_listeners_all_accept_on_one_port() {
        let (addr, listeners) = bind_shard_listeners("127.0.0.1:0", 3).expect("bind");
        assert_eq!(listeners.len(), 3);
        assert_ne!(addr.port(), 0, "a concrete port was assigned");

        // Drive enough connections that the kernel's reuseport hash almost
        // surely exercises more than one socket; every connection must be
        // acceptable by exactly one of the shard listeners.
        let mut clients = Vec::new();
        for _ in 0..16 {
            clients.push(std::net::TcpStream::connect(addr).expect("connect"));
        }
        // connect() returns on SYN-ACK; give the final ACK of each
        // handshake a moment to land the connection in an accept queue.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let mut accepted = 0;
        for listener in &listeners {
            loop {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        accepted += 1;
                        stream.write_all(b"x").expect("write");
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) => panic!("accept: {e}"),
                }
            }
        }
        assert_eq!(accepted, clients.len());
        for client in &mut clients {
            let mut byte = [0u8; 1];
            client.read_exact(&mut byte).expect("read");
            assert_eq!(&byte, b"x");
        }
    }
}
