//! The per-shard epoll event loop: one thread, one `SO_REUSEPORT`
//! listener, one slab of connection state machines.
//!
//! Each accepted connection is registered with epoll **once**, for
//! `EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP` — edge-triggered, so the
//! kernel reports each readiness transition exactly once and the reactor
//! never issues per-state `epoll_ctl` calls. The state machine honors the
//! edge-triggered contract by always driving I/O to `EAGAIN`:
//!
//! * **Reading** — [`crate::http::RequestBuf::read_request`] pulls bytes
//!   until a full head parses (in place, zero copies) or the socket runs
//!   dry; a parsed request is answered through exactly the same
//!   fast-lane/route/telemetry path as the thread-per-connection
//!   transport ([`crate::answer`]). A raw fast-lane hit short-circuits:
//!   the write is attempted inline, and in the common case the request
//!   completes as one read plus one write with zero timer-wheel churn.
//! * **ReadingBody** — a head with a `Content-Length` (batch and plan
//!   registration `POST`s) parks here until the declared body is in the
//!   connection's body scratch; the head's facts live in per-connection
//!   scratch strings because the parsed request borrowed the buffer the
//!   body bytes recycle. Oversize declarations are refused with `413`
//!   before a single body byte is read.
//! * **Responding** — the response head is assembled once
//!   ([`crate::http::ResponseBuf::assemble`]) and the payload drains in
//!   its shape's write path ([`Sending`]): whole bodies through
//!   [`crate::http::write_resumable`], framed batch responses through
//!   [`crate::http::write_batch`], and chunked exports through
//!   [`drive_stream`] — one chunk materialized at a time, resumable
//!   mid-chunk on `EAGAIN`, so a full-database export holds O(chunk)
//!   memory no matter how many rows it emits. The partial-write cursor
//!   rides in the connection across however many writable events the
//!   response needs. While a write is pending no new request is parsed —
//!   natural per-connection back-pressure. On completion, buffered
//!   pipelined requests are served immediately (the loop falls back to
//!   Reading without returning to `epoll_wait`).
//! * **Draining** — a malformed request's error response is being
//!   written; the connection closes when it completes.
//!
//! The listener itself is registered **level**-triggered: under fd
//! exhaustion an accept backs off without consuming the edge, and epoll
//! simply re-reports the pending backlog on the next wait.
//!
//! Idle keep-alive eviction rides the lazy [`TimerWheel`]: the
//! `epoll_wait` timeout lands on coarse tick boundaries, progress on a
//! connection just rewrites its expiry tick, and only due slots are
//! walked. Slab slots carry generation counters so stale epoll events and
//! stale wheel entries (from a closed connection whose slot was reused)
//! are recognized and dropped.
//!
//! Steady state allocates nothing: connection buffers are reused across
//! requests (and allocated lazily, so an idle connection that never sends
//! a byte costs ~200 bytes of slab entry, not a 32 KiB request buffer —
//! the "10k idle connections in bounded memory" property), wheel slots
//! are preallocated, and the shared answer/record helpers are the same
//! allocation-free code the blocking transport runs.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::http::{self, WriteProgress};
use crate::metrics::{self, Route, ServerMetrics};
use crate::service::{self, ResponseTier, ServiceResponse};
use crate::{
    answer, fault, record_parse_error, record_request, AcceptRescue, ConnState, Payload,
    RequestOutcome, ShutdownSignal, MAX_REQUESTS_PER_CONNECTION, OVERLOAD_RESPONSE,
};

use super::sys::{Epoll, EpollEvent, EventFd, EPOLLET, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use super::timer::TimerWheel;

/// Best-effort static 503 to a connection rejected at the shard's
/// connection cap: one non-blocking write of preformatted bytes, then
/// drop (close). No slab slot, no epoll registration, no allocation.
fn reject_overload_nonblocking(mut stream: TcpStream) {
    let _ = stream.set_nonblocking(true);
    let _ = stream.set_nodelay(true);
    let _ = io::Write::write(&mut stream, OVERLOAD_RESPONSE);
}

/// Token marking the shard's listener in epoll reports.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token marking the shard's shutdown eventfd.
const TOKEN_WAKE: u64 = u64::MAX - 1;
/// Readiness reports drained per `epoll_wait` call.
const EVENTS_PER_WAIT: usize = 256;

/// Where a connection is in its serve cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for (or mid-way through) a request head.
    Reading,
    /// The head parsed with a `Content-Length`; the body is being read
    /// into the connection's body scratch before the request is answered.
    ReadingBody,
    /// A response is assembled; head + body are draining to the socket.
    Responding,
    /// A parse error's response is draining; close when it completes.
    Draining,
}

/// What shape of response is draining to the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sending {
    /// One head + one contiguous body ([`http::write_resumable`]).
    Whole,
    /// A framed multi-response ([`http::write_batch`]).
    Batch,
    /// A chunked export pulled on demand from the connection's stream
    /// cursor; `head_done`/`terminal` carry the framing position across
    /// writable events.
    Stream { head_done: bool, terminal: bool },
}

/// One connection's state between events.
struct Conn {
    stream: TcpStream,
    /// Request bytes + in-place parser ([`http::RequestBuf::lazy`]: the
    /// 32 KiB buffer materializes on the first readable byte, so idle
    /// connections stay small).
    request: http::RequestBuf,
    /// Reusable response-head scratch.
    response: http::ResponseBuf,
    /// The in-flight response body (an `Arc` bump out of a cache tier in
    /// the common case); dropped as soon as the response completes.
    body: Option<Arc<[u8]>>,
    /// How many body bytes belong on the wire (0 for `HEAD`/304).
    body_emit: usize,
    /// Partial-write cursor into head-then-body, carried across events.
    cursor: usize,
    /// Request-body scratch ([`Phase::ReadingBody`]); holds exactly the
    /// declared `Content-Length` once the read completes, and keeps its
    /// capacity across requests.
    body_buf: Vec<u8>,
    /// Body bytes received so far (≤ `body_len`).
    body_read: usize,
    /// The declared `Content-Length` being read.
    body_len: usize,
    /// `head_len` of the request whose body is being read (the head was
    /// already consumed; kept for request-bytes telemetry).
    pending_head_len: usize,
    /// Request facts copied out of the head before the buffer is recycled
    /// for the body read (the parsed [`http::Request`] borrows the
    /// buffer the body bytes land in).
    method: String,
    target: String,
    inm: String,
    has_inm: bool,
    /// Reusable framed-batch response scratch.
    batch: http::BatchBody,
    /// Reusable batch service-path scratch (response slots, miss queue).
    batch_scratch: service::BatchScratch,
    /// The in-flight chunked export, if any (`None` for `HEAD`: the
    /// chunked header goes out with no chunks).
    export: Option<service::StreamBody>,
    /// Chunk payload scratch (payload + trailing CRLF).
    chunk: Vec<u8>,
    /// Chunk frame-prefix scratch (`{len:x}\r\n`, or the terminal
    /// `0\r\n\r\n`); empty means "needs refill".
    chunk_head: Vec<u8>,
    /// Which write path drains the in-flight response.
    sending: Sending,
    /// Wire bytes completed so far for a streamed response (whole-body
    /// and batch responses compute theirs from lengths at completion).
    wire: usize,
    phase: Phase,
    /// Whether the connection survives the in-flight response.
    keep_alive: bool,
    /// Requests served (bounded by [`MAX_REQUESTS_PER_CONNECTION`]).
    served: usize,
    /// Wheel tick at which this connection counts as idle-expired;
    /// rewritten on every byte of progress (the lazy-wheel "touch").
    expiry_tick: u64,
    /// Earliest tick at which the wheel will next visit this connection.
    /// A deadline that moves *later* needs no new wheel entry (the visit
    /// reschedules lazily); only a deadline moving *earlier* — entering a
    /// write with a shorter stall allowance — schedules one, keeping the
    /// steady state free of wheel-entry growth (and of its allocations).
    scheduled_tick: u64,
    // -- telemetry capture for the in-flight response --
    started: Instant,
    route: Route,
    tier: ResponseTier,
    status: u16,
    not_modified: bool,
    stages: (u64, u64, u64),
}

/// A slab slot: the connection (if live) plus the generation that must
/// match for epoll tokens and wheel entries to act on it.
struct Entry {
    conn: Option<Conn>,
    generation: u32,
}

/// Verdict of driving a connection's state machine.
enum Drive {
    /// Parked on `EAGAIN`; epoll will report the next edge.
    Keep,
    /// Done or broken; release the slot.
    Close,
}

/// What one head parse produced: a finished answer (no body, or refused
/// before reading one), or a `Content-Length` body still to be read.
enum Parsed {
    Answered { outcome: RequestOutcome, head_len: usize, keep_alive: bool, started: Instant },
    Body { head_len: usize, len: usize, keep_alive: bool, started: Instant },
}

/// Stages an answered request on the connection: assembles the response
/// head for the outcome's payload shape, captures telemetry, and moves
/// the connection to [`Phase::Responding`]. Timer-wheel bookkeeping
/// stays with the caller.
fn stage_outcome(conn: &mut Conn, outcome: RequestOutcome, keep_alive: bool, started: Instant) {
    let RequestOutcome { response, status, mode, not_modified, route, allow, payload } = outcome;
    match payload {
        Payload::Single => {
            conn.body_emit = conn.response.assemble(
                &http::ResponseHead {
                    status,
                    content_type: response.content_type,
                    keep_alive,
                    etag: response.etag,
                    allow,
                    mode,
                },
                response.body.len(),
            );
            conn.body = Some(response.body);
            conn.sending = Sending::Whole;
        }
        Payload::Batch => {
            // The framed parts are already in `conn.batch` (the answer
            // wrote them); only the head needs assembling.
            conn.response.assemble(
                &http::ResponseHead {
                    status,
                    content_type: response.content_type,
                    keep_alive,
                    etag: None,
                    allow: None,
                    mode,
                },
                conn.batch.wire_len(),
            );
            conn.body = None;
            conn.body_emit = 0;
            conn.sending = Sending::Batch;
        }
        Payload::Stream(stream) => {
            let emit = conn.response.assemble_chunked(&http::ResponseHead {
                status,
                content_type: response.content_type,
                keep_alive,
                etag: None,
                allow: None,
                mode,
            });
            conn.body = None;
            conn.body_emit = 0;
            conn.export = emit.then_some(stream);
            conn.chunk.clear();
            conn.chunk_head.clear();
            conn.sending = Sending::Stream { head_done: false, terminal: false };
        }
    }
    conn.wire = 0;
    conn.tier = response.tier;
    conn.cursor = 0;
    conn.keep_alive = keep_alive;
    conn.served += 1;
    conn.started = started;
    conn.route = route;
    conn.status = status;
    conn.not_modified = not_modified;
    // The stage scratch is thread-local and this thread interleaves
    // requests from many connections, so the timings are captured now,
    // not at write completion.
    conn.stages = metrics::stage_scratch::get();
    conn.phase = Phase::Responding;
}

/// One resumable write attempt of a whole-body response ([`Sending::Whole`]).
fn write_whole(conn: &mut Conn) -> io::Result<WriteProgress> {
    let Conn { stream, response, body, body_emit, cursor, .. } = conn;
    let body = body.as_deref().unwrap_or(&[]);
    http::write_resumable(
        &mut fault::FaultStream(stream),
        response.head_bytes(),
        &body[..*body_emit],
        cursor,
    )
}

/// Drives a chunked export to the socket: the head first, then chunk
/// frames pulled on demand from the export cursor. At most one chunk
/// (frame prefix + payload-with-CRLF) is materialized at a time — the
/// bounded-memory property. `EAGAIN` parks the framing position in
/// [`Sending::Stream`]'s flags and the byte position in `conn.cursor`;
/// the next writable event resumes mid-chunk.
fn drive_stream(conn: &mut Conn) -> io::Result<WriteProgress> {
    let Conn { stream, response, cursor, chunk, chunk_head, export, wire, sending, .. } = conn;
    let Sending::Stream { head_done, terminal } = sending else {
        unreachable!("drive_stream on a non-stream response");
    };
    let mut stream = fault::FaultStream(stream);
    if !*head_done {
        let head = response.head_bytes();
        match http::write_resumable(&mut stream, head, &[], cursor)? {
            WriteProgress::Pending => return Ok(WriteProgress::Pending),
            WriteProgress::Complete => {
                *head_done = true;
                *wire += head.len();
                *cursor = 0;
            }
        }
        if export.is_none() {
            // HEAD: the chunked header goes out with no chunks.
            return Ok(WriteProgress::Complete);
        }
    }
    loop {
        if chunk_head.is_empty() {
            // Refill: the next chunk frame, or the terminal frame once
            // the export runs dry.
            if *terminal {
                return Ok(WriteProgress::Complete);
            }
            let Some(body) = export.as_mut() else { return Ok(WriteProgress::Complete) };
            if body.next_chunk(chunk) && !chunk.is_empty() {
                let payload = chunk.len();
                chunk.extend_from_slice(b"\r\n");
                http::chunk_prefix(payload, chunk_head);
            } else {
                chunk.clear();
                http::chunk_prefix(0, chunk_head);
                *terminal = true;
            }
            *cursor = 0;
        }
        match http::write_resumable(&mut stream, chunk_head, chunk, cursor)? {
            WriteProgress::Pending => return Ok(WriteProgress::Pending),
            WriteProgress::Complete => {
                *wire += chunk_head.len() + chunk.len();
                chunk_head.clear();
                chunk.clear();
                *cursor = 0;
                if *terminal {
                    return Ok(WriteProgress::Complete);
                }
            }
        }
    }
}

/// One reactor shard. [`Shard::run`] consumes the shard on its own
/// thread; all shards of a server share the [`ConnState`] (service,
/// metrics, access log) and the shutdown signal, and own disjoint
/// connection populations.
pub(crate) struct Shard {
    epoll: Epoll,
    listener: TcpListener,
    wake: Arc<EventFd>,
    state: Arc<ConnState>,
    shutdown: Arc<ShutdownSignal>,
    entries: Vec<Entry>,
    free: Vec<u32>,
    wheel: TimerWheel,
    /// Wheel tick length in milliseconds (`min(keep-alive, write-stall)
    /// / 8`, 10–500 ms).
    tick_ms: u64,
    /// Idle allowance in ticks (≥ the keep-alive timeout); governs
    /// connections waiting for a request.
    timeout_ticks: u64,
    /// Write-stall allowance in ticks (≥ the write-stall timeout);
    /// governs connections with a response in flight — a peer that
    /// accepts no bytes for this long is evicted as a slow reader.
    stall_ticks: u64,
    /// This shard's share of `max_inflight` (0 = unlimited); beyond it,
    /// accepted connections get the static 503 and are closed.
    conn_cap: usize,
    /// This shard's slot in the per-shard metric arrays
    /// ([`ServerMetrics::shard_slot`]: shards past the array clamp to the
    /// last slot).
    slot: usize,
    /// Reserve fd for actively resetting connections under `EMFILE`.
    rescue: AcceptRescue,
    epoch: Instant,
}

impl Shard {
    /// Wraps an already bound+listening non-blocking `listener` into a
    /// shard: creates the epoll instance and registers listener (level-
    /// triggered) and wake eventfd.
    pub(crate) fn new(
        listener: TcpListener,
        wake: Arc<EventFd>,
        state: Arc<ConnState>,
        shutdown: Arc<ShutdownSignal>,
        conn_cap: usize,
        index: usize,
    ) -> io::Result<Shard> {
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(wake.raw_fd(), EPOLLIN, TOKEN_WAKE)?;
        let keep_ms = u64::try_from(state.keep_alive_timeout.as_millis()).unwrap_or(5_000).max(1);
        let stall_ms = u64::try_from(state.write_stall_timeout.as_millis()).unwrap_or(5_000).max(1);
        let tick_ms = (keep_ms.min(stall_ms) / 8).clamp(10, 500);
        let timeout_ticks = keep_ms.div_ceil(tick_ms) + 1;
        let stall_ticks = stall_ms.div_ceil(tick_ms) + 1;
        Ok(Shard {
            epoll,
            listener,
            wake,
            state,
            shutdown,
            entries: Vec::new(),
            free: Vec::new(),
            wheel: TimerWheel::new(),
            tick_ms,
            timeout_ticks,
            stall_ticks,
            conn_cap,
            slot: ServerMetrics::shard_slot(index),
            rescue: AcceptRescue::new(),
            epoch: Instant::now(),
        })
    }

    /// The event loop: wait, dispatch readiness, accept, expire idle
    /// connections; returns once the shutdown signal is raised (closing
    /// every connection this shard owns).
    pub(crate) fn run(mut self) {
        let mut events = vec![EpollEvent { events: 0, data: 0 }; EVENTS_PER_WAIT];
        let mut draining = false;
        loop {
            let timeout_ms = self.ms_to_next_tick();
            let n = self.epoll.wait(&mut events, timeout_ms).unwrap_or(0);
            if self.shutdown.is_triggered() {
                if !self.shutdown.is_graceful() {
                    self.close_all();
                    return;
                }
                if !draining {
                    // Graceful drain: stop accepting, drop idle
                    // keep-alive connections, and finish the rest —
                    // in-flight requests and partial reads complete (or
                    // are evicted by the timer wheel if stalled).
                    draining = true;
                    self.begin_drain();
                }
                if self.live() == 0 {
                    return;
                }
            }
            let mut accept_ready = false;
            for event in &events[..n] {
                let token = event.data;
                if token == TOKEN_LISTENER {
                    accept_ready = true;
                } else if token == TOKEN_WAKE {
                    self.wake.drain();
                } else {
                    self.drive_token(token);
                }
            }
            if accept_ready && !draining {
                self.accept_ready();
            }
            let now_tick = self.now_tick();
            self.expire_idle(now_tick);
            if draining && self.live() == 0 {
                return;
            }
        }
    }

    /// Live connections on this shard (slab occupancy).
    fn live(&self) -> usize {
        self.entries.len() - self.free.len()
    }

    /// Entering a graceful drain: idle keep-alive connections (Reading
    /// phase, nothing buffered) are closed outright; everything else is
    /// left to finish its in-flight work.
    fn begin_drain(&mut self) {
        for idx in 0..self.entries.len() {
            let idle = match &self.entries[idx].conn {
                Some(conn) => conn.phase == Phase::Reading && conn.request.filled() == 0,
                None => false,
            };
            if idle {
                self.release(idx);
            }
        }
    }

    fn now_tick(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX) / self.tick_ms
    }

    /// `epoll_wait` timeout: sleep exactly to the next tick boundary, so
    /// the wheel advances on schedule even with no socket activity.
    fn ms_to_next_tick(&self) -> i32 {
        let elapsed = u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX);
        let remaining = self.tick_ms - (elapsed % self.tick_ms);
        remaining.clamp(1, i32::MAX as u64) as i32
    }

    /// Accepts until the backlog runs dry. Transient `EINTR` retries
    /// immediately. `EMFILE`-class exhaustion spends the [`AcceptRescue`]
    /// reserve fd to actively reset the pending connection (falling back
    /// to a brief sleep only if that fails) — the level-triggered
    /// listener registration means epoll re-reports any remaining
    /// backlog on the next wait, nothing is lost. Past this shard's
    /// connection cap, accepted connections get the static 503 and are
    /// closed without ever entering the slab.
    fn accept_ready(&mut self) {
        loop {
            match fault::accept(&self.listener) {
                Ok((stream, _)) => {
                    if self.state.telemetry {
                        self.state.metrics.shard_accepted[self.slot].inc();
                    }
                    if self.conn_cap != 0 && self.live() >= self.conn_cap {
                        if self.state.telemetry {
                            self.state.metrics.overload_rejects.inc();
                        }
                        reject_overload_nonblocking(stream);
                        continue;
                    }
                    self.register(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    if self.state.telemetry {
                        self.state.metrics.accept_errors.inc();
                    }
                }
                Err(e) => {
                    if self.state.telemetry {
                        self.state.metrics.accept_errors.inc();
                    }
                    let fd_exhausted = matches!(e.raw_os_error(), Some(23 | 24));
                    if fd_exhausted && self.rescue.rescue(&self.listener) {
                        if self.state.telemetry {
                            self.state.metrics.accept_rescues.inc();
                        }
                    } else {
                        std::thread::sleep(Duration::from_millis(10));
                        return;
                    }
                }
            }
        }
    }

    /// Enters an accepted connection into the slab, registers it with
    /// epoll (once, edge-triggered) and the timer wheel, then drives it
    /// immediately — data may already be queued from before registration.
    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let now_tick = self.now_tick();
        let idx = match self.free.pop() {
            Some(idx) => idx as usize,
            None => {
                self.entries.push(Entry { conn: None, generation: 0 });
                self.entries.len() - 1
            }
        };
        let gen = self.entries[idx].generation;
        let token = (u64::from(gen) << 32) | idx as u64;
        if self
            .epoll
            .add(stream.as_raw_fd(), EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP, token)
            .is_err()
        {
            self.free.push(idx as u32);
            return;
        }
        if self.state.telemetry {
            self.state.metrics.connections_opened.inc();
            self.state.metrics.connections_active.inc();
            self.state.metrics.shard_connections[self.slot].inc();
        }
        let expiry_tick = now_tick + self.timeout_ticks;
        self.entries[idx].conn = Some(Conn {
            stream,
            request: http::RequestBuf::lazy(),
            response: http::ResponseBuf::default(),
            body: None,
            body_emit: 0,
            cursor: 0,
            body_buf: Vec::new(),
            body_read: 0,
            body_len: 0,
            pending_head_len: 0,
            method: String::new(),
            target: String::new(),
            inm: String::new(),
            has_inm: false,
            batch: http::BatchBody::default(),
            batch_scratch: service::BatchScratch::default(),
            export: None,
            chunk: Vec::new(),
            chunk_head: Vec::new(),
            sending: Sending::Whole,
            wire: 0,
            phase: Phase::Reading,
            keep_alive: true,
            served: 0,
            expiry_tick,
            scheduled_tick: expiry_tick,
            started: Instant::now(),
            route: Route::Other,
            tier: ResponseTier::Untiered,
            status: 0,
            not_modified: false,
            stages: (0, 0, 0),
        });
        self.wheel.schedule(expiry_tick, idx as u32, gen);
        if let Drive::Close = self.drive(idx, now_tick) {
            self.release(idx);
        }
    }

    /// Resolves an epoll token to a live slab entry (generation must
    /// match — a stale event for a recycled slot is dropped) and drives
    /// it.
    fn drive_token(&mut self, token: u64) {
        let idx = (token & u64::from(u32::MAX)) as usize;
        let gen = (token >> 32) as u32;
        match self.entries.get(idx) {
            Some(entry) if entry.generation == gen && entry.conn.is_some() => {}
            _ => return,
        }
        let now_tick = self.now_tick();
        if let Drive::Close = self.drive(idx, now_tick) {
            self.release(idx);
        }
    }

    /// Runs one connection's state machine until it parks on `EAGAIN` or
    /// closes. The readiness bits are deliberately ignored: the state
    /// decides which I/O to attempt, and a spurious wrong-direction event
    /// costs one `EAGAIN` syscall.
    fn drive(&mut self, idx: usize, now_tick: u64) -> Drive {
        let timeout_ticks = self.timeout_ticks;
        let stall_ticks = self.stall_ticks;
        let Shard { entries, state, shutdown, wheel, .. } = self;
        let state: &ConnState = state;
        let gen = entries[idx].generation;
        let Some(conn) = entries[idx].conn.as_mut() else { return Drive::Keep };
        loop {
            match conn.phase {
                Phase::Reading => {
                    let filled_before = conn.request.filled();
                    let parsed = match conn
                        .request
                        .read_request(&mut fault::FaultStream(&mut conn.stream))
                    {
                        Ok(request) => {
                            let started = Instant::now();
                            // A graceful drain closes the connection
                            // after this response goes out.
                            let keep_alive = request.keep_alive
                                && conn.served + 1 < MAX_REQUESTS_PER_CONNECTION
                                && !shutdown.is_triggered();
                            if request.content_length == 0 {
                                let outcome = answer(
                                    state,
                                    &request,
                                    &[],
                                    &mut conn.batch,
                                    &mut conn.batch_scratch,
                                );
                                Parsed::Answered {
                                    outcome,
                                    head_len: request.head_len,
                                    keep_alive,
                                    started,
                                }
                            } else if request.content_length > state.max_body {
                                // Refused without reading the body; the
                                // unread bytes would desynchronize
                                // keep-alive framing, so close after.
                                let outcome = RequestOutcome {
                                    response: ServiceResponse::error(
                                        413,
                                        "request body exceeds the configured limit",
                                    ),
                                    status: 413,
                                    mode: http::BodyMode::Full,
                                    not_modified: false,
                                    route: Route::of(request.path()),
                                    allow: None,
                                    payload: Payload::Single,
                                };
                                Parsed::Answered {
                                    outcome,
                                    head_len: request.head_len,
                                    keep_alive: false,
                                    started,
                                }
                            } else {
                                // A body follows. The parsed request
                                // borrows the buffer the body bytes land
                                // in, so its facts are copied into the
                                // connection scratch first.
                                conn.method.clear();
                                conn.method.push_str(request.method);
                                conn.target.clear();
                                conn.target.push_str(request.target);
                                conn.inm.clear();
                                conn.has_inm = match request.if_none_match {
                                    Some(header) => {
                                        conn.inm.push_str(header);
                                        true
                                    }
                                    None => false,
                                };
                                Parsed::Body {
                                    head_len: request.head_len,
                                    len: request.content_length,
                                    keep_alive,
                                    started,
                                }
                            }
                        }
                        Err(http::RequestError::ConnectionClosed) => return Drive::Close,
                        Err(http::RequestError::Io(e)) if e.kind() == io::ErrorKind::WouldBlock => {
                            // Out of bytes before a full head. Only actual
                            // progress touches the idle timer: a slow-loris
                            // trickle keeps the connection alive only as
                            // long as it keeps sending.
                            if conn.request.filled() > filled_before {
                                conn.expiry_tick = now_tick + timeout_ticks;
                            }
                            return Drive::Keep;
                        }
                        Err(http::RequestError::Io(_)) => return Drive::Close,
                        Err(http::RequestError::Bad(status, message)) => {
                            record_parse_error(state, status);
                            let error = ServiceResponse::error(status, &message);
                            conn.body_emit = conn.response.assemble(
                                &http::ResponseHead {
                                    status,
                                    content_type: error.content_type,
                                    keep_alive: false,
                                    etag: None,
                                    allow: None,
                                    mode: http::BodyMode::Full,
                                },
                                error.body.len(),
                            );
                            conn.body = Some(error.body);
                            conn.cursor = 0;
                            conn.sending = Sending::Whole;
                            conn.phase = Phase::Draining;
                            // Writes get the (possibly shorter) stall
                            // allowance; schedule only if it lands
                            // before the wheel's next visit.
                            conn.expiry_tick = now_tick + stall_ticks;
                            if conn.expiry_tick < conn.scheduled_tick {
                                wheel.schedule(conn.expiry_tick, idx as u32, gen);
                                conn.scheduled_tick = conn.expiry_tick;
                            }
                            continue;
                        }
                    };
                    match parsed {
                        Parsed::Answered { outcome, head_len, keep_alive, started } => {
                            conn.request.consume(head_len);
                            stage_outcome(conn, outcome, keep_alive, started);
                            // Raw fast-lane short circuit: a verbatim
                            // cache hit is one preassembled head + one
                            // `Arc` body — try the write now, before any
                            // timer-wheel bookkeeping. In the common case
                            // it completes in one syscall and the
                            // connection goes straight back to Reading:
                            // one read, one write, zero wheel churn.
                            if conn.tier == ResponseTier::Raw && conn.sending == Sending::Whole {
                                match write_whole(conn) {
                                    Ok(WriteProgress::Complete) => {
                                        let wire =
                                            conn.response.head_bytes().len() + conn.body_emit;
                                        record_request(
                                            state,
                                            conn.route,
                                            conn.status,
                                            conn.tier,
                                            conn.not_modified,
                                            Some(wire),
                                            conn.started,
                                            conn.stages,
                                        );
                                        conn.body = None;
                                        if !conn.keep_alive {
                                            return Drive::Close;
                                        }
                                        // The idle deadline moves later;
                                        // the wheel reschedules lazily.
                                        conn.expiry_tick = now_tick + timeout_ticks;
                                        conn.phase = Phase::Reading;
                                        continue;
                                    }
                                    Ok(WriteProgress::Pending) => {}
                                    Err(_) => return Drive::Close,
                                }
                            }
                            conn.expiry_tick = now_tick + stall_ticks;
                            if conn.expiry_tick < conn.scheduled_tick {
                                wheel.schedule(conn.expiry_tick, idx as u32, gen);
                                conn.scheduled_tick = conn.expiry_tick;
                            }
                        }
                        Parsed::Body { head_len, len, keep_alive, started } => {
                            conn.body_buf.clear();
                            conn.body_buf.reserve(len);
                            let moved = conn.request.take_body(head_len, len, &mut conn.body_buf);
                            conn.body_buf.resize(len, 0);
                            conn.body_read = moved;
                            conn.body_len = len;
                            conn.pending_head_len = head_len;
                            conn.keep_alive = keep_alive;
                            conn.started = started;
                            conn.phase = Phase::ReadingBody;
                            // The parsed head counts as read progress.
                            conn.expiry_tick = now_tick + timeout_ticks;
                        }
                    }
                }
                Phase::ReadingBody => {
                    while conn.body_read < conn.body_len {
                        match io::Read::read(
                            &mut fault::FaultStream(&mut conn.stream),
                            &mut conn.body_buf[conn.body_read..conn.body_len],
                        ) {
                            Ok(0) => return Drive::Close,
                            Ok(n) => {
                                conn.body_read += n;
                                // Body bytes are read progress.
                                conn.expiry_tick = now_tick + timeout_ticks;
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Drive::Keep,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(_) => return Drive::Close,
                        }
                    }
                    let keep_alive = conn.keep_alive;
                    let started = conn.started;
                    let request = http::Request {
                        method: conn.method.as_str(),
                        target: conn.target.as_str(),
                        keep_alive,
                        if_none_match: conn.has_inm.then_some(conn.inm.as_str()),
                        content_length: conn.body_len,
                        head_len: conn.pending_head_len,
                    };
                    let outcome = answer(
                        state,
                        &request,
                        &conn.body_buf,
                        &mut conn.batch,
                        &mut conn.batch_scratch,
                    );
                    stage_outcome(conn, outcome, keep_alive, started);
                    conn.expiry_tick = now_tick + stall_ticks;
                    if conn.expiry_tick < conn.scheduled_tick {
                        wheel.schedule(conn.expiry_tick, idx as u32, gen);
                        conn.scheduled_tick = conn.expiry_tick;
                    }
                }
                Phase::Responding | Phase::Draining => {
                    let progress_before = (conn.cursor, conn.wire);
                    let result = match conn.sending {
                        Sending::Whole => write_whole(conn),
                        Sending::Batch => {
                            let Conn { stream, response, batch, cursor, .. } = conn;
                            http::write_batch(
                                &mut fault::FaultStream(stream),
                                response.head_bytes(),
                                batch,
                                cursor,
                            )
                        }
                        Sending::Stream { .. } => drive_stream(conn),
                    };
                    match result {
                        Ok(WriteProgress::Pending) => {
                            // Only actual progress extends the stall
                            // allowance: a peer accepting zero bytes
                            // runs out the clock and is evicted.
                            if (conn.cursor, conn.wire) != progress_before {
                                conn.expiry_tick = now_tick + stall_ticks;
                            }
                            return Drive::Keep;
                        }
                        Ok(WriteProgress::Complete) => {
                            let wire = match conn.sending {
                                Sending::Whole => conn.response.head_bytes().len() + conn.body_emit,
                                Sending::Batch => {
                                    conn.response.head_bytes().len() + conn.batch.wire_len()
                                }
                                Sending::Stream { .. } => conn.wire,
                            };
                            conn.body = None;
                            conn.export = None;
                            conn.sending = Sending::Whole;
                            conn.wire = 0;
                            if conn.phase == Phase::Draining {
                                // Parse errors were already counted when
                                // detected; only the wire bytes remain.
                                if state.telemetry {
                                    state.metrics.response_bytes.add(wire as u64);
                                }
                                return Drive::Close;
                            }
                            record_request(
                                state,
                                conn.route,
                                conn.status,
                                conn.tier,
                                conn.not_modified,
                                Some(wire),
                                conn.started,
                                conn.stages,
                            );
                            if !conn.keep_alive {
                                return Drive::Close;
                            }
                            conn.expiry_tick = now_tick + timeout_ticks;
                            if conn.expiry_tick < conn.scheduled_tick {
                                wheel.schedule(conn.expiry_tick, idx as u32, gen);
                                conn.scheduled_tick = conn.expiry_tick;
                            }
                            conn.phase = Phase::Reading;
                            // Loop: pipelined bytes may already be buffered.
                        }
                        Err(_) => return Drive::Close,
                    }
                }
            }
        }
    }

    /// Frees a slot: drops the connection (closing the socket and
    /// deregistering it from epoll implicitly), bumps the generation so
    /// stale tokens and wheel entries miss, and recycles the index.
    fn release(&mut self, idx: usize) {
        let entry = &mut self.entries[idx];
        if entry.conn.take().is_some() {
            entry.generation = entry.generation.wrapping_add(1);
            self.free.push(idx as u32);
            if self.state.telemetry {
                self.state.metrics.connections_closed.inc();
                self.state.metrics.connections_active.dec();
                self.state.metrics.shard_connections[self.slot].dec();
            }
        }
    }

    /// Advances the timer wheel, evicting connections idle past their
    /// expiry tick and lazily rescheduling the rest.
    fn expire_idle(&mut self, now_tick: u64) {
        let Shard { entries, wheel, state, free, slot, .. } = self;
        let slot = *slot;
        wheel.advance(now_tick, |idx, gen| {
            let entry = entries.get_mut(idx as usize)?;
            if entry.generation != gen {
                return None;
            }
            let conn = entry.conn.as_mut()?;
            if conn.expiry_tick > now_tick {
                conn.scheduled_tick = conn.expiry_tick;
                return Some(conn.expiry_tick);
            }
            // Idle past the deadline (between requests, stalled mid-head,
            // or stalled mid-response): evict. The blocking transport's
            // equivalents are its read and send timeouts.
            let stalled_write = matches!(conn.phase, Phase::Responding | Phase::Draining);
            entry.conn = None;
            entry.generation = entry.generation.wrapping_add(1);
            free.push(idx);
            if state.telemetry {
                state.metrics.connections_closed.inc();
                state.metrics.connections_active.dec();
                state.metrics.shard_connections[slot].dec();
                if stalled_write {
                    state.metrics.slow_reader_evictions.inc();
                }
            }
            None
        });
    }

    /// Drops every live connection (shutdown path).
    fn close_all(&mut self) {
        let Shard { entries, state, slot, .. } = self;
        for entry in entries.iter_mut() {
            if entry.conn.take().is_some() && state.telemetry {
                state.metrics.connections_closed.inc();
                state.metrics.connections_active.dec();
                state.metrics.shard_connections[*slot].dec();
            }
        }
    }
}
