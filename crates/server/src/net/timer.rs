//! A coarse, lazy timer wheel for idle keep-alive timeouts.
//!
//! The reactor needs one question answered cheaply for thousands of
//! connections: "which of you has been idle past the keep-alive
//! timeout?" — with *touching* a timer (every byte of progress on a
//! connection) being the hot operation and expiry the rare one. So the
//! wheel is lazy: touching a connection is a plain field write of its new
//! expiry tick ([no call into this module at all]); the wheel holds at
//! most one `(slot, generation)` entry per live connection, and when a
//! slot comes due the reactor's callback compares the *actual* expiry
//! tick against now — still in the future means the entry is simply
//! rescheduled into the wheel at its real expiry. Ticks are coarse
//! (`keep-alive / 8`, clamped to 10–500 ms) and driven from the
//! `epoll_wait` timeout, so an idle reactor wakes at most a handful of
//! times per second.
//!
//! Slot vectors (and the drain scratch) are preallocated so steady-state
//! rescheduling of a settled connection set allocates nothing — part of
//! the transport's allocation-free proof (`tests/alloc_free.rs`).

/// Slots in the wheel. Expiries land in `expiry % SLOTS`; entries whose
/// expiry lies further than a full turn ahead are simply revisited (and
/// relaid) once per turn, which keeps correctness independent of the
/// timeout/tick ratio.
const WHEEL_SLOTS: usize = 16;

/// Per-slot capacity preallocated at construction (slots grow past this
/// only under connection counts far beyond steady state).
const SLOT_PREALLOC: usize = 32;

/// The wheel: per-slot vectors of `(connection index, generation)`
/// entries. Generations guard against slot reuse — a stale entry for a
/// closed connection is dropped by the reactor's callback, never acted
/// on.
#[derive(Debug)]
pub(crate) struct TimerWheel {
    slots: Box<[Vec<(u32, u32)>]>,
    scratch: Vec<(u32, u32)>,
    /// The next tick to process (all earlier ticks are fully drained).
    next_tick: u64,
}

impl TimerWheel {
    /// An empty wheel with every slot preallocated.
    pub(crate) fn new() -> TimerWheel {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::with_capacity(SLOT_PREALLOC)).collect(),
            scratch: Vec::with_capacity(SLOT_PREALLOC),
            next_tick: 0,
        }
    }

    /// Enters `(idx, gen)` into the slot for `expiry_tick`. Each live
    /// connection must have exactly one wheel entry: call this once at
    /// registration, and afterwards only from the [`TimerWheel::advance`]
    /// callback's reschedule return.
    pub(crate) fn schedule(&mut self, expiry_tick: u64, idx: u32, gen: u32) {
        // Never insert into an already-drained tick: it would sit a full
        // turn before being looked at again.
        let expiry_tick = expiry_tick.max(self.next_tick);
        self.slots[(expiry_tick % WHEEL_SLOTS as u64) as usize].push((idx, gen));
    }

    /// Drains every slot due at or before `now_tick`, handing each entry
    /// to `visit`. The callback returns the connection's *actual* expiry
    /// tick to keep it scheduled (it is re-entered at that tick), or
    /// `None` to drop the entry (the connection was evicted or is stale).
    pub(crate) fn advance(
        &mut self,
        now_tick: u64,
        mut visit: impl FnMut(u32, u32) -> Option<u64>,
    ) {
        while self.next_tick <= now_tick {
            let slot = (self.next_tick % WHEEL_SLOTS as u64) as usize;
            std::mem::swap(&mut self.slots[slot], &mut self.scratch);
            self.next_tick += 1;
            for at in 0..self.scratch.len() {
                let (idx, gen) = self.scratch[at];
                if let Some(expiry) = visit(idx, gen) {
                    // Still alive: relay at its real expiry (clamped past
                    // the drained region by schedule()).
                    self.schedule(expiry.max(self.next_tick), idx, gen);
                }
            }
            self.scratch.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_fire_at_their_tick() {
        let mut wheel = TimerWheel::new();
        wheel.schedule(3, 1, 10);
        wheel.schedule(5, 2, 20);
        let mut fired = Vec::new();
        wheel.advance(2, |idx, gen| {
            fired.push((idx, gen));
            None
        });
        assert!(fired.is_empty(), "nothing due before its tick");
        wheel.advance(3, |idx, gen| {
            fired.push((idx, gen));
            None
        });
        assert_eq!(fired, [(1, 10)]);
        wheel.advance(9, |idx, gen| {
            fired.push((idx, gen));
            None
        });
        assert_eq!(fired, [(1, 10), (2, 20)]);
    }

    #[test]
    fn lazy_reschedule_revisits_at_the_returned_tick() {
        let mut wheel = TimerWheel::new();
        wheel.schedule(2, 7, 1);
        // The connection was touched in the meantime: its real expiry is
        // tick 6, so the visit at tick 2 must reschedule, and the entry
        // must come due again exactly at 6.
        let mut visits = Vec::new();
        for now in 0..=10 {
            wheel.advance(now, |idx, _gen| {
                visits.push((now, idx));
                if now < 6 {
                    Some(6)
                } else {
                    None
                }
            });
        }
        assert_eq!(visits, [(2, 7), (6, 7)]);
    }

    #[test]
    fn far_future_expiries_survive_full_turns() {
        let mut wheel = TimerWheel::new();
        // Expiry 40 is more than two full turns (16 slots) out; the entry
        // is revisited lazily but must not fire early, and must fire once
        // tick 40 arrives.
        wheel.schedule(40, 3, 9);
        let mut fired = Vec::new();
        for now in 0..=45 {
            wheel.advance(now, |idx, gen| {
                if now >= 40 {
                    fired.push((now, idx, gen));
                    None
                } else {
                    Some(40)
                }
            });
        }
        assert_eq!(fired, [(40, 3, 9)]);
    }

    #[test]
    fn advancing_past_many_ticks_at_once_is_safe() {
        let mut wheel = TimerWheel::new();
        wheel.schedule(100, 1, 1);
        let mut fired = 0;
        wheel.advance(1000, |_, _| {
            fired += 1;
            None
        });
        assert_eq!(fired, 1, "a big jump visits each entry exactly once");
    }
}
