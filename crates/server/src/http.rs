//! A minimal, std-only HTTP/1.1 request/response codec.
//!
//! Only what serving a read-only database needs: `GET` requests, a bounded
//! request line and header block, persistent connections
//! (`Connection: keep-alive` semantics with HTTP/1.1 defaults), and
//! `Content-Length`-delimited responses. Anything outside that — bodies on
//! requests, transfer encodings, upgrades — is rejected with a 4xx rather
//! than implemented. The parser never allocates proportionally to
//! attacker-controlled sizes beyond the configured caps.

use std::io::{self, BufRead, Write};

/// Longest accepted request line (method + target + version).
const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most accepted header lines per request.
const MAX_HEADERS: usize = 64;
/// Longest accepted single header line.
const MAX_HEADER_LINE: usize = 8 * 1024;

/// A parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verb, uppercased as received (`GET`).
    pub method: String,
    /// The decoded-at-the-transport-level path, e.g. `/v1/query` (still
    /// percent-encoded; route segments decode it as needed).
    pub path: String,
    /// The raw query string after `?` (empty if absent).
    pub query: String,
    /// `true` when the connection should stay open after the response.
    pub keep_alive: bool,
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum RequestError {
    /// The client closed the connection before sending a request line.
    ConnectionClosed,
    /// The request was malformed or exceeded a parser cap; the payload is
    /// the status code and message to answer with.
    Bad(u16, String),
    /// An I/O error on the socket.
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> RequestError {
        RequestError::Io(e)
    }
}

fn read_line_bounded(
    reader: &mut impl BufRead,
    cap: usize,
    what: &str,
) -> Result<Option<String>, RequestError> {
    let mut line = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            // Clean EOF before any byte of this line.
            if line.is_empty() {
                return Ok(None);
            }
            return Err(RequestError::Bad(400, format!("connection closed mid-{what}")));
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                line.extend_from_slice(&buf[..nl]);
                reader.consume(nl + 1);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                if line.len() > cap {
                    return Err(RequestError::Bad(431, format!("{what} too long")));
                }
                return String::from_utf8(line)
                    .map(Some)
                    .map_err(|_| RequestError::Bad(400, format!("{what} is not UTF-8")));
            }
            None => {
                let taken = buf.len();
                line.extend_from_slice(buf);
                reader.consume(taken);
                if line.len() > cap {
                    return Err(RequestError::Bad(431, format!("{what} too long")));
                }
            }
        }
    }
}

/// Reads and parses one request head from `reader`.
///
/// # Errors
///
/// [`RequestError::ConnectionClosed`] on clean EOF before a request,
/// [`RequestError::Bad`] for malformed or over-limit requests (answer it
/// and close), [`RequestError::Io`] for socket failures.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, RequestError> {
    let Some(request_line) = read_line_bounded(reader, MAX_REQUEST_LINE, "request line")? else {
        return Err(RequestError::ConnectionClosed);
    };
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(RequestError::Bad(400, format!("malformed request line {request_line:?}")))
        }
    };
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(RequestError::Bad(505, format!("unsupported version {other:?}"))),
    };

    let mut keep_alive = keep_alive_default;
    let mut headers = 0usize;
    loop {
        let Some(line) = read_line_bounded(reader, MAX_HEADER_LINE, "header")? else {
            return Err(RequestError::Bad(400, "connection closed mid-headers".into()));
        };
        if line.is_empty() {
            break;
        }
        headers += 1;
        if headers > MAX_HEADERS {
            return Err(RequestError::Bad(431, "too many headers".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Bad(400, format!("malformed header {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "connection" => {
                // Token list; "close" or "keep-alive" decide, case-insensitively.
                for token in value.split(',') {
                    match token.trim().to_ascii_lowercase().as_str() {
                        "close" => keep_alive = false,
                        "keep-alive" => keep_alive = true,
                        _ => {}
                    }
                }
            }
            // A read-only API takes no bodies; reject instead of
            // desynchronizing the connection by ignoring them.
            "content-length" if value.parse::<u64>().map_or(true, |n| n > 0) => {
                return Err(RequestError::Bad(413, "request bodies are not accepted".into()));
            }
            "content-length" => {}
            "transfer-encoding" => {
                return Err(RequestError::Bad(501, "transfer-encoding is not supported".into()));
            }
            _ => {}
        }
    }

    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_string(), query.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok(Request { method: method.to_string(), path, query, keep_alive })
}

/// The standard reason phrase for the status codes this server emits.
#[must_use]
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        505 => "HTTP Version Not Supported",
        _ => "Internal Server Error",
    }
}

/// Writes one `Content-Length`-delimited response.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: {}\r\n\r\n",
        reason_phrase(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query_and_keep_alive_defaults() {
        let req =
            parse("GET /v1/query?uarch=Skylake&port=5 HTTP/1.1\r\nHost: x\r\n\r\n").expect("parse");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/query");
        assert_eq!(req.query, "uarch=Skylake&port=5");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        let req = parse("GET / HTTP/1.0\r\n\r\n").expect("parse");
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").expect("parse");
        assert!(req.keep_alive);
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").expect("parse");
        assert!(!req.keep_alive);
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        assert!(matches!(parse(""), Err(RequestError::ConnectionClosed)));
        assert!(matches!(parse("GARBAGE\r\n\r\n"), Err(RequestError::Bad(400, _))));
        assert!(matches!(parse("GET / HTTP/2\r\n\r\n"), Err(RequestError::Bad(505, _))));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbad header\r\n\r\n"),
            Err(RequestError::Bad(400, _))
        ));
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        assert!(matches!(parse(&long), Err(RequestError::Bad(431, _))));
        let many = format!("GET / HTTP/1.1\r\n{}\r\n", "X-H: 1\r\n".repeat(MAX_HEADERS + 1));
        assert!(matches!(parse(&many), Err(RequestError::Bad(431, _))));
        assert!(matches!(
            parse("POST /v1/query HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"),
            Err(RequestError::Bad(413, _))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(RequestError::Bad(501, _))
        ));
    }

    #[test]
    fn zero_content_length_is_accepted() {
        let req = parse("GET / HTTP/1.1\r\nContent-Length: 0\r\n\r\n").expect("parse");
        assert_eq!(req.path, "/");
    }

    #[test]
    fn response_is_content_length_delimited() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}\n", true).expect("write");
        let text = String::from_utf8(out).expect("utf-8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}\n"));
    }
}
