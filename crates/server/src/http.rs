//! A minimal, std-only, allocation-free HTTP/1.1 request/response codec.
//!
//! Only what serving a read-only database needs: `GET`/`HEAD` requests
//! plus `POST` with a bounded `Content-Length` body (the batch and
//! plan-registration endpoints), a bounded request head, persistent
//! connections (`Connection: keep-alive` semantics with HTTP/1.1
//! defaults), `Content-Length`-delimited and chunked responses, and
//! conditional requests (`If-None-Match` → `304`). Anything outside
//! that — transfer-encoded request bodies, upgrades — is rejected with
//! a 4xx/5xx rather than implemented.
//!
//! The codec is built for a steady state that never touches the heap:
//!
//! * [`RequestBuf`] owns one fixed-capacity connection buffer; requests
//!   are read into it and parsed **in place** — [`Request`] borrows the
//!   method, target, and header values as `&str` subslices, and
//!   pipelined bytes simply stay in the buffer for the next turn.
//! * [`ResponseBuf`] owns a reusable header scratch; response heads are
//!   assembled from precomputed static fragments (status lines, header
//!   names) plus stack-formatted integers, and head + body are handed to
//!   the socket in a **single vectored write** ([`write_all_vectored`])
//!   instead of multiple small writes.
//!
//! The parser never allocates proportionally to attacker-controlled
//! sizes: the head must fit [`MAX_HEAD`] or the request is answered 431.

use std::io::{self, IoSlice, Read, Write};
use std::ops::Range;
use std::sync::Arc;

/// Longest accepted request line (method + target + version).
const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most accepted header lines per request.
const MAX_HEADERS: usize = 64;
/// Longest accepted single header line.
const MAX_HEADER_LINE: usize = 8 * 1024;
/// Total request-head cap (request line + all headers + terminator); also
/// the fixed connection-buffer size. Tighter than
/// `MAX_REQUEST_LINE + MAX_HEADERS * MAX_HEADER_LINE` on purpose: a
/// legitimate GET head is a few hundred bytes.
pub const MAX_HEAD: usize = 32 * 1024;

/// A parsed request head, borrowing the connection buffer in place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request<'a> {
    /// The method verb as received (`GET`, `HEAD`).
    pub method: &'a str,
    /// The verbatim request target, still percent-encoded — the raw
    /// fast-lane cache key (e.g. `/v1/query?uarch=Skylake&port=5`).
    pub target: &'a str,
    /// `true` when the connection should stay open after the response.
    pub keep_alive: bool,
    /// The raw `If-None-Match` header value, if present.
    pub if_none_match: Option<&'a str>,
    /// Declared request-body length (`Content-Length`), 0 when absent.
    /// The transport enforces its body cap *before* reading a byte of it
    /// and answers oversize declarations with a 413.
    pub content_length: usize,
    /// Bytes this head occupied in the buffer (consumed after the
    /// response is written — see [`RequestBuf::consume`]).
    pub head_len: usize,
}

impl Request<'_> {
    /// The path component of the target (before `?`).
    #[must_use]
    pub fn path(&self) -> &str {
        self.target.split_once('?').map_or(self.target, |(path, _)| path)
    }

    /// The raw query string after `?` (empty if absent).
    #[must_use]
    pub fn query(&self) -> &str {
        self.target.split_once('?').map_or("", |(_, query)| query)
    }
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum RequestError {
    /// The client closed the connection before sending a request line.
    ConnectionClosed,
    /// The request was malformed or exceeded a parser cap; the payload is
    /// the status code and message to answer with.
    Bad(u16, String),
    /// An I/O error on the socket (including the idle keep-alive timeout).
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> RequestError {
        RequestError::Io(e)
    }
}

fn bad(status: u16, message: impl Into<String>) -> RequestError {
    RequestError::Bad(status, message.into())
}

/// The per-connection request buffer: one fixed [`MAX_HEAD`]-byte
/// allocation made at connection setup, reused for every request the
/// connection carries (including pipelined ones). See the module docs.
pub struct RequestBuf {
    buf: Box<[u8]>,
    /// Bytes of `buf` currently holding unconsumed socket data.
    filled: usize,
    /// Scan cursor for the head terminator, so refills never rescan.
    scanned: usize,
}

impl Default for RequestBuf {
    fn default() -> RequestBuf {
        RequestBuf::new()
    }
}

impl RequestBuf {
    /// A fresh buffer (the only allocation this type ever makes).
    #[must_use]
    pub fn new() -> RequestBuf {
        RequestBuf { buf: vec![0u8; MAX_HEAD].into_boxed_slice(), filled: 0, scanned: 0 }
    }

    /// A buffer that defers its [`MAX_HEAD`] allocation until the first
    /// [`RequestBuf::read_request`] call. For transports holding many
    /// mostly-idle connections (the epoll reactor), a connection that
    /// never sends a byte then never pays for a buffer.
    #[must_use]
    pub fn lazy() -> RequestBuf {
        RequestBuf { buf: Box::default(), filled: 0, scanned: 0 }
    }

    /// Bytes currently buffered but not yet consumed. Lets a non-blocking
    /// caller distinguish "no progress" from "partial head arrived" after
    /// a [`io::ErrorKind::WouldBlock`] return (slow-loris accounting).
    #[must_use]
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// Reads one request head from `stream` (using bytes already buffered
    /// first) and parses it in place.
    ///
    /// After writing the response, call [`RequestBuf::consume`] with the
    /// request's [`Request::head_len`] to release the bytes.
    ///
    /// # Errors
    ///
    /// [`RequestError::ConnectionClosed`] on clean EOF before a request,
    /// [`RequestError::Bad`] for malformed or over-limit requests (answer
    /// it and close), [`RequestError::Io`] for socket failures.
    pub fn read_request(&mut self, stream: &mut impl Read) -> Result<Request<'_>, RequestError> {
        if self.buf.is_empty() {
            // Deferred from RequestBuf::lazy(). Probe from the stack
            // first: a non-blocking caller polls a just-accepted socket
            // that usually has nothing yet, and materializing (and
            // zeroing) MAX_HEAD per parked connection would make 10k
            // idle connections pay ~300 MB of touched pages for
            // buffers that never see a byte. Only a connection that
            // actually delivers data pays for its buffer (exactly once).
            let mut probe = [0u8; 1024];
            let read = stream.read(&mut probe)?;
            if read == 0 {
                return Err(RequestError::ConnectionClosed);
            }
            self.buf = vec![0u8; MAX_HEAD].into_boxed_slice();
            self.buf[..read].copy_from_slice(&probe[..read]);
            self.filled = read;
        }
        let head_len = loop {
            // Resume the terminator scan two bytes back: a terminator may
            // straddle the previous fill boundary.
            let from = self.scanned.saturating_sub(2);
            if let Some(end) = find_head_end(&self.buf[..self.filled], from) {
                break end;
            }
            self.scanned = self.filled;
            if self.filled == self.buf.len() {
                return Err(bad(431, "request head too large"));
            }
            let read = stream.read(&mut self.buf[self.filled..])?;
            if read == 0 {
                if self.filled == 0 {
                    return Err(RequestError::ConnectionClosed);
                }
                return Err(bad(400, "connection closed mid-request"));
            }
            self.filled += read;
        };
        parse_head(&self.buf[..head_len])
    }

    /// Releases the bytes of an answered request, shifting any pipelined
    /// remainder to the front of the buffer.
    pub fn consume(&mut self, head_len: usize) {
        debug_assert!(head_len <= self.filled);
        self.buf.copy_within(head_len..self.filled, 0);
        self.filled -= head_len;
        self.scanned = 0;
    }

    /// Moves up to `len` request-body bytes that arrived with the head
    /// (read-ahead past `head_len`) into `out`, consuming the head *and*
    /// the moved bytes from the buffer. Returns how many body bytes were
    /// moved; the caller reads the remaining `len - moved` bytes straight
    /// off the socket into `out`.
    ///
    /// This invalidates the borrowed [`Request`] — the caller copies the
    /// fields it needs (method, target) into per-connection scratch first.
    pub fn take_body(&mut self, head_len: usize, len: usize, out: &mut Vec<u8>) -> usize {
        debug_assert!(head_len <= self.filled);
        let moved = (self.filled - head_len).min(len);
        out.extend_from_slice(&self.buf[head_len..head_len + moved]);
        self.consume(head_len + moved);
        moved
    }

    /// Blocking-transport body read: [`RequestBuf::take_body`] then
    /// `read_exact` for the remainder, so `out` ends up holding exactly
    /// `len` body bytes and the buffer holds only pipelined follow-ups.
    ///
    /// # Errors
    ///
    /// Propagates socket read failures (including EOF mid-body).
    pub fn read_body(
        &mut self,
        stream: &mut impl Read,
        head_len: usize,
        len: usize,
        out: &mut Vec<u8>,
    ) -> io::Result<()> {
        out.clear();
        out.reserve(len);
        let moved = self.take_body(head_len, len, out);
        let start = out.len();
        out.resize(start + (len - moved), 0);
        stream.read_exact(&mut out[start..])
    }
}

/// Finds the end of a request head within `buf[..]`, scanning from
/// `from`: the byte index just past the first empty line (`LF LF` or
/// `LF CR LF`), or `None` when the head is still incomplete.
fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    for i in from..buf.len() {
        if buf[i] == b'\n' {
            if buf.get(i + 1) == Some(&b'\n') {
                return Some(i + 2);
            }
            if buf.get(i + 1..i + 3) == Some(b"\r\n".as_slice()) {
                return Some(i + 3);
            }
        }
    }
    None
}

/// Parses one complete head (`head` ends with its empty line).
fn parse_head(head: &[u8]) -> Result<Request<'_>, RequestError> {
    let text = std::str::from_utf8(head).map_err(|_| bad(400, "request head is not UTF-8"))?;
    let mut lines = text.split('\n').map(|line| line.strip_suffix('\r').unwrap_or(line));

    let request_line = lines.next().unwrap_or("");
    if request_line.len() > MAX_REQUEST_LINE {
        return Err(bad(431, "request line too long"));
    }
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(bad(400, format!("malformed request line {request_line:?}"))),
    };
    let mut keep_alive = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(bad(505, format!("unsupported version {other:?}"))),
    };

    let mut if_none_match = None;
    let mut content_length: Option<usize> = None;
    let mut headers = 0usize;
    for line in lines {
        if line.is_empty() {
            continue; // the terminator's empty line(s)
        }
        if line.len() > MAX_HEADER_LINE {
            return Err(bad(431, "header too long"));
        }
        headers += 1;
        if headers > MAX_HEADERS {
            return Err(bad(431, "too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(400, format!("malformed header {line:?}")));
        };
        let (name, value) = (name.trim(), value.trim());
        if name.eq_ignore_ascii_case("connection") {
            // Token list; "close" or "keep-alive" decide, case-insensitively.
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        } else if name.eq_ignore_ascii_case("if-none-match") {
            if_none_match = Some(value);
        } else if name.eq_ignore_ascii_case("content-length") {
            // Conflicting lengths desynchronize the connection (request
            // smuggling); reject rather than pick one.
            if content_length.is_some() {
                return Err(bad(400, "duplicate Content-Length"));
            }
            let Ok(n) = value.parse::<usize>() else {
                return Err(bad(400, format!("invalid Content-Length {value:?}")));
            };
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(bad(501, "transfer-encoding is not supported"));
        }
    }

    Ok(Request {
        method,
        target,
        keep_alive,
        if_none_match,
        content_length: content_length.unwrap_or(0),
        head_len: head.len(),
    })
}

/// The standard status line for the status codes this server emits.
#[must_use]
pub fn status_line(status: u16) -> &'static str {
    match status {
        200 => "HTTP/1.1 200 OK\r\n",
        304 => "HTTP/1.1 304 Not Modified\r\n",
        400 => "HTTP/1.1 400 Bad Request\r\n",
        403 => "HTTP/1.1 403 Forbidden\r\n",
        404 => "HTTP/1.1 404 Not Found\r\n",
        405 => "HTTP/1.1 405 Method Not Allowed\r\n",
        413 => "HTTP/1.1 413 Payload Too Large\r\n",
        431 => "HTTP/1.1 431 Request Header Fields Too Large\r\n",
        501 => "HTTP/1.1 501 Not Implemented\r\n",
        503 => "HTTP/1.1 503 Service Unavailable\r\n",
        505 => "HTTP/1.1 505 HTTP Version Not Supported\r\n",
        _ => "HTTP/1.1 500 Internal Server Error\r\n",
    }
}

/// How much of the response to put on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyMode {
    /// Headers + body (`GET`).
    Full,
    /// Identical headers (including `Content-Length`), no body (`HEAD`).
    HeaderOnly,
}

/// Appends the decimal form of `v` without allocating.
fn push_u64(out: &mut Vec<u8>, v: u64) {
    let mut tmp = [0u8; 20];
    let mut at = tmp.len();
    let mut v = v;
    loop {
        at -= 1;
        tmp[at] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&tmp[at..]);
}

/// Formats an entity tag as the 16 lowercase hex digits of `etag` into a
/// stack buffer (the quoted form on the wire is `"%016x"`).
#[must_use]
pub fn etag_hex(etag: u64) -> [u8; 16] {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = [0u8; 16];
    for (i, digit) in out.iter_mut().enumerate() {
        *digit = HEX[((etag >> ((15 - i) * 4)) & 0xF) as usize];
    }
    out
}

/// Whether an `If-None-Match` header value matches `etag` (our strong
/// `"%016x"` form). List-aware; `*` matches any representation; a weak
/// `W/` prefix is ignored for the comparison, as RFC 7232 prescribes for
/// `If-None-Match`. Allocation-free.
#[must_use]
pub fn etag_matches(header: &str, etag: u64) -> bool {
    let hex = etag_hex(etag);
    header.split(',').any(|token| {
        let token = token.trim();
        if token == "*" {
            return true;
        }
        let token = token.strip_prefix("W/").unwrap_or(token);
        token.len() == 18
            && token.starts_with('"')
            && token.ends_with('"')
            && token.as_bytes()[1..17] == hex
    })
}

/// Outcome of one [`write_resumable`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteProgress {
    /// Every byte of head + body is on the wire.
    Complete,
    /// The socket returned [`io::ErrorKind::WouldBlock`]; `cursor` records
    /// how far the response got. Call again (with the same head, body, and
    /// cursor) once the socket reports writable.
    Pending,
}

/// Writes `head` then `body` from `*cursor` (a byte offset into the
/// logical head-then-body stream) with as few syscalls as the socket
/// allows — one `writev(2)` in the common case — advancing `cursor` past
/// every byte accepted.
///
/// `EINTR` is retried in place; `EAGAIN`/`EWOULDBLOCK` returns
/// [`WriteProgress::Pending`] with the cursor parked mid-response, which
/// is what lets a non-blocking transport resume a partially written
/// response on the next writable event instead of erroring the
/// connection.
///
/// # Errors
///
/// Propagates socket write failures; a zero-length write is reported as
/// [`io::ErrorKind::WriteZero`].
pub fn write_resumable(
    writer: &mut impl Write,
    head: &[u8],
    body: &[u8],
    cursor: &mut usize,
) -> io::Result<WriteProgress> {
    let total = head.len() + body.len();
    while *cursor < total {
        let head_rest = &head[(*cursor).min(head.len())..];
        let body_rest = &body[(*cursor).saturating_sub(head.len())..];
        let written = if head_rest.is_empty() {
            writer.write(body_rest)
        } else if body_rest.is_empty() {
            writer.write(head_rest)
        } else {
            writer.write_vectored(&[IoSlice::new(head_rest), IoSlice::new(body_rest)])
        };
        match written {
            Ok(0) => {
                return Err(io::Error::new(io::ErrorKind::WriteZero, "socket accepted 0 bytes"));
            }
            Ok(n) => *cursor += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(WriteProgress::Pending),
            Err(e) => return Err(e),
        }
    }
    Ok(WriteProgress::Complete)
}

/// Writes all of `head` then `body` ([`write_resumable`] driven to
/// completion): the blocking-transport entry point. A `WouldBlock` —
/// possible on a blocking socket under a send timeout — is retried from
/// the partial-write cursor rather than erroring the connection mid-
/// response, and `EINTR` never surfaces.
///
/// # Errors
///
/// Propagates socket write failures; a zero-length write is reported as
/// [`io::ErrorKind::WriteZero`].
pub fn write_all_vectored(writer: &mut impl Write, head: &[u8], body: &[u8]) -> io::Result<()> {
    let mut cursor = 0;
    while write_resumable(writer, head, body, &mut cursor)? == WriteProgress::Pending {}
    Ok(())
}

/// Everything that frames one response besides the body bytes.
#[derive(Debug, Clone, Copy)]
pub struct ResponseHead<'a> {
    /// Status code ([`status_line`] supplies the reason phrase).
    pub status: u16,
    /// `Content-Type` value (omitted for 304s, which carry no body).
    pub content_type: &'a str,
    /// Whether to announce `Connection: keep-alive` or `close`.
    pub keep_alive: bool,
    /// Strong entity tag to emit as `ETag: "%016x"`, if any.
    pub etag: Option<u64>,
    /// Methods to announce in an `Allow` header (405 responses name what
    /// the route does accept).
    pub allow: Option<&'static str>,
    /// Whether the body bytes follow the head ([`BodyMode::HeaderOnly`]
    /// for `HEAD`).
    pub mode: BodyMode,
}

/// The per-connection response assembler: one reusable header scratch,
/// response heads built from static fragments, emitted together with the
/// body in a single vectored write. See the module docs.
#[derive(Debug, Default)]
pub struct ResponseBuf {
    head: Vec<u8>,
}

impl ResponseBuf {
    /// A fresh scratch (grows to steady-state size on first use, then
    /// never reallocates).
    #[must_use]
    pub fn new() -> ResponseBuf {
        ResponseBuf { head: Vec::with_capacity(256) }
    }

    /// Writes one `Content-Length`-delimited response (or, for status
    /// 304, a headers-only response without `Content-Length`, per RFC
    /// 7232 — pass the 200 response's `etag` so the client can revalidate).
    ///
    /// `body` supplies `Content-Length` in all modes; [`BodyMode`] decides
    /// whether the bytes themselves go on the wire (`HEAD` gets the
    /// headers of the corresponding `GET` with no body).
    ///
    /// Returns the number of bytes put on the wire (head plus whatever
    /// body the mode emitted) — the transport's response-byte telemetry.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_response(
        &mut self,
        writer: &mut impl Write,
        head: &ResponseHead<'_>,
        body: &[u8],
    ) -> io::Result<usize> {
        let emit = self.assemble(head, body.len());
        write_all_vectored(writer, &self.head, &body[..emit])?;
        Ok(self.head.len() + emit)
    }

    /// Builds the response head in the scratch **without writing**,
    /// returning how many of the `body_len` body bytes belong on the wire
    /// (0 for `HEAD` and 304; `body_len` supplies `Content-Length` either
    /// way). A non-blocking transport assembles once, then drains
    /// [`ResponseBuf::head_bytes`] + body via [`write_resumable`] across
    /// however many writable events it takes.
    pub fn assemble(&mut self, head: &ResponseHead<'_>, body_len: usize) -> usize {
        self.head.clear();
        self.head.extend_from_slice(status_line(head.status).as_bytes());
        if head.status != 304 {
            self.head.extend_from_slice(b"Content-Type: ");
            self.head.extend_from_slice(head.content_type.as_bytes());
            self.head.extend_from_slice(b"\r\nContent-Length: ");
            push_u64(&mut self.head, body_len as u64);
            self.head.extend_from_slice(b"\r\n");
        }
        if head.status == 503 {
            // Overload shedding: tell well-behaved clients when to retry
            // instead of letting them hammer a saturated server.
            self.head.extend_from_slice(b"Retry-After: 1\r\n");
        }
        if let Some(allow) = head.allow {
            self.head.extend_from_slice(b"Allow: ");
            self.head.extend_from_slice(allow.as_bytes());
            self.head.extend_from_slice(b"\r\n");
        }
        if let Some(etag) = head.etag {
            self.head.extend_from_slice(b"ETag: \"");
            self.head.extend_from_slice(&etag_hex(etag));
            self.head.extend_from_slice(b"\"\r\n");
        }
        self.head.extend_from_slice(if head.keep_alive {
            b"Connection: keep-alive\r\n\r\n".as_slice()
        } else {
            b"Connection: close\r\n\r\n".as_slice()
        });
        if head.status == 304 || head.mode == BodyMode::HeaderOnly {
            0
        } else {
            body_len
        }
    }

    /// Builds a `Transfer-Encoding: chunked` response head in the scratch
    /// (no `Content-Length` — the body's size is unknown when streaming
    /// begins). Returns whether chunk frames should follow
    /// (`false` for [`BodyMode::HeaderOnly`]: `HEAD` gets the streaming
    /// headers with no body, per RFC 7231).
    pub fn assemble_chunked(&mut self, head: &ResponseHead<'_>) -> bool {
        self.head.clear();
        self.head.extend_from_slice(status_line(head.status).as_bytes());
        self.head.extend_from_slice(b"Content-Type: ");
        self.head.extend_from_slice(head.content_type.as_bytes());
        self.head.extend_from_slice(b"\r\nTransfer-Encoding: chunked\r\n");
        self.head.extend_from_slice(if head.keep_alive {
            b"Connection: keep-alive\r\n\r\n".as_slice()
        } else {
            b"Connection: close\r\n\r\n".as_slice()
        });
        head.mode == BodyMode::Full
    }

    /// The head bytes built by the last [`ResponseBuf::assemble`].
    #[must_use]
    pub fn head_bytes(&self) -> &[u8] {
        &self.head
    }
}

/// Writes the chunked-transfer frame prefix for a `len`-byte chunk into
/// `out` (`{len:x}\r\n`); `len == 0` writes the terminal chunk *and*
/// trailer (`0\r\n\r\n`) — the end-of-stream marker. The caller appends
/// the chunk's closing `\r\n` to its payload buffer, so one chunk goes
/// out as a single two-slice vectored write: prefix + payload-with-CRLF.
pub fn chunk_prefix(len: usize, out: &mut Vec<u8>) {
    out.clear();
    if len == 0 {
        out.extend_from_slice(b"0\r\n\r\n");
        return;
    }
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut tmp = [0u8; 16];
    let mut at = tmp.len();
    let mut v = len;
    while v > 0 {
        at -= 1;
        tmp[at] = HEX[v & 0xF];
        v >>= 4;
    }
    out.extend_from_slice(&tmp[at..]);
    out.extend_from_slice(b"\r\n");
}

/// One plan's slot in a framed batch response: its frame header (a range
/// into [`BatchBody::frames`]) followed by its body — an `Arc` clone of
/// the cache entry, so assembling a batch never copies body bytes.
#[derive(Debug, Clone)]
pub struct BatchPart {
    /// This part's frame-header bytes within [`BatchBody::frames`].
    pub frame: Range<usize>,
    /// The encoded response body (shared with the response cache).
    pub body: Arc<[u8]>,
}

/// A framed multi-response body: every frame header lives in one reusable
/// scratch (`frames`, in wire order — batch header first, then one frame
/// per part) and bodies stay behind their `Arc`s. The wire stream is
/// `frames[header] · (frames[part.frame] · part.body)*`, emitted by
/// [`write_batch`] as a vectored write chain.
#[derive(Debug, Default)]
pub struct BatchBody {
    /// Batch header + per-part frame headers, contiguous, in wire order.
    pub frames: Vec<u8>,
    /// The leading batch-header bytes of `frames` (magic + plan count).
    pub header: Range<usize>,
    /// Per-plan frames and bodies, in request order.
    pub parts: Vec<BatchPart>,
}

impl BatchBody {
    /// Total bytes this body puts on the wire (the `Content-Length`).
    #[must_use]
    pub fn wire_len(&self) -> usize {
        self.header.len()
            + self.parts.iter().map(|part| part.frame.len() + part.body.len()).sum::<usize>()
    }

    /// Clears for reuse, keeping allocated capacity (the per-connection
    /// batch scratch's steady state).
    pub fn clear(&mut self) {
        self.frames.clear();
        self.header = 0..0;
        self.parts.clear();
    }
}

/// Writes `head` then a [`BatchBody`]'s pieces from `*cursor` (a byte
/// offset into the logical response stream), gathering up to 512 pieces
/// per `writev(2)` from a fixed stack array — a batch of 1000 plans
/// (2001 pieces) goes out in ~4 syscalls with zero heap traffic and zero
/// body copies.
///
/// Resumption contract matches [`write_resumable`]: `EINTR` retries in
/// place, `EAGAIN` parks the cursor mid-stream and returns
/// [`WriteProgress::Pending`] for the reactor to resume on the next
/// writable event.
///
/// # Errors
///
/// Propagates socket write failures; a zero-length write is reported as
/// [`io::ErrorKind::WriteZero`].
pub fn write_batch(
    writer: &mut impl Write,
    head: &[u8],
    batch: &BatchBody,
    cursor: &mut usize,
) -> io::Result<WriteProgress> {
    // Linux caps one writev at IOV_MAX = 1024 iovecs; 512 keeps the
    // stack array at 8 KiB while still draining a 1000-plan batch in a
    // handful of syscalls.
    const MAX_SLICES: usize = 512;

    /// Appends the unwritten suffix of `piece` (pieces wholly before the
    /// cursor are skipped; empty pieces never occupy a slot).
    fn gather<'a>(
        slices: &mut [IoSlice<'a>],
        count: &mut usize,
        at: &mut usize,
        cursor: usize,
        piece: &'a [u8],
    ) {
        if *count < slices.len() && *at + piece.len() > cursor {
            let skip = cursor.saturating_sub(*at);
            slices[*count] = IoSlice::new(&piece[skip..]);
            *count += 1;
        }
        *at += piece.len();
    }

    let total = head.len() + batch.wire_len();
    while *cursor < total {
        let mut slices = [IoSlice::new(&[][..]); MAX_SLICES];
        let mut count = 0;
        let mut at = 0;
        gather(&mut slices, &mut count, &mut at, *cursor, head);
        gather(&mut slices, &mut count, &mut at, *cursor, &batch.frames[batch.header.clone()]);
        for part in &batch.parts {
            if count == MAX_SLICES {
                break;
            }
            gather(&mut slices, &mut count, &mut at, *cursor, &batch.frames[part.frame.clone()]);
            gather(&mut slices, &mut count, &mut at, *cursor, &part.body);
        }
        match writer.write_vectored(&slices[..count]) {
            Ok(0) => {
                return Err(io::Error::new(io::ErrorKind::WriteZero, "socket accepted 0 bytes"));
            }
            Ok(n) => *cursor += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(WriteProgress::Pending),
            Err(e) => return Err(e),
        }
    }
    Ok(WriteProgress::Complete)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parses every request out of `raw`, asserting the buffer drains.
    fn parse_all(raw: &str) -> Result<Vec<(String, String, bool, Option<String>)>, RequestError> {
        let mut reader = raw.as_bytes();
        let mut buf = RequestBuf::new();
        let mut out = Vec::new();
        loop {
            match buf.read_request(&mut reader) {
                Ok(request) => {
                    let parsed = (
                        request.method.to_string(),
                        request.target.to_string(),
                        request.keep_alive,
                        request.if_none_match.map(str::to_string),
                    );
                    let head_len = request.head_len;
                    out.push(parsed);
                    buf.consume(head_len);
                }
                Err(RequestError::ConnectionClosed) => return Ok(out),
                Err(e) => return Err(e),
            }
        }
    }

    fn parse(raw: &str) -> Result<(String, String, bool, Option<String>), RequestError> {
        parse_all(raw).map(|mut v| v.remove(0))
    }

    #[test]
    fn parses_get_with_query_and_keep_alive_defaults() {
        let (method, target, keep_alive, _) =
            parse("GET /v1/query?uarch=Skylake&port=5 HTTP/1.1\r\nHost: x\r\n\r\n").expect("parse");
        assert_eq!(method, "GET");
        assert_eq!(target, "/v1/query?uarch=Skylake&port=5");
        assert!(keep_alive, "HTTP/1.1 defaults to keep-alive");
        let (_, _, keep_alive, _) = parse("GET / HTTP/1.0\r\n\r\n").expect("parse");
        assert!(!keep_alive, "HTTP/1.0 defaults to close");
        let (_, _, keep_alive, _) =
            parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").expect("parse");
        assert!(keep_alive);
        let (_, _, keep_alive, _) =
            parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").expect("parse");
        assert!(!keep_alive);
    }

    #[test]
    fn path_and_query_split() {
        let raw = b"GET /v1/query?uarch=Skylake HTTP/1.1\r\n\r\n";
        let mut buf = RequestBuf::new();
        let request = buf.read_request(&mut raw.as_slice()).expect("parse");
        assert_eq!(request.path(), "/v1/query");
        assert_eq!(request.query(), "uarch=Skylake");
        let raw = b"GET /v1/stats HTTP/1.1\r\n\r\n";
        let mut buf = RequestBuf::new();
        let request = buf.read_request(&mut raw.as_slice()).expect("parse");
        assert_eq!(request.path(), "/v1/stats");
        assert_eq!(request.query(), "");
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let requests = parse_all(
            "GET /a HTTP/1.1\r\n\r\nHEAD /b HTTP/1.1\r\nIf-None-Match: \"00000000000000aa\"\r\n\r\n\
             GET /c HTTP/1.1\r\nConnection: close\r\n\r\n",
        )
        .expect("parse");
        assert_eq!(requests.len(), 3);
        assert_eq!(requests[0].1, "/a");
        assert_eq!(requests[1].0, "HEAD");
        assert_eq!(requests[1].3.as_deref(), Some("\"00000000000000aa\""));
        assert!(!requests[2].2, "explicit close on the last request");
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let (method, target, ..) = parse("GET /lf HTTP/1.1\nHost: x\n\n").expect("parse");
        assert_eq!((method.as_str(), target.as_str()), ("GET", "/lf"));
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        assert!(matches!(parse_all(""), Ok(v) if v.is_empty()));
        assert!(matches!(parse("GARBAGE\r\n\r\n"), Err(RequestError::Bad(400, _))));
        assert!(matches!(parse("GET / HTTP/2\r\n\r\n"), Err(RequestError::Bad(505, _))));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbad header\r\n\r\n"),
            Err(RequestError::Bad(400, _))
        ));
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        assert!(matches!(parse(&long), Err(RequestError::Bad(431, _))));
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD));
        assert!(matches!(parse(&huge), Err(RequestError::Bad(431, _))));
        let many = format!("GET / HTTP/1.1\r\n{}\r\n", "X-H: 1\r\n".repeat(MAX_HEADERS + 1));
        assert!(matches!(parse(&many), Err(RequestError::Bad(431, _))));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello"),
            Err(RequestError::Bad(400, _))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(RequestError::Bad(400, _))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(RequestError::Bad(501, _))
        ));
        // Mid-head EOF.
        assert!(matches!(parse("GET / HTTP/1.1\r\nHost: x\r\n"), Err(RequestError::Bad(400, _))));
    }

    #[test]
    fn zero_content_length_is_accepted() {
        let (_, target, ..) = parse("GET / HTTP/1.1\r\nContent-Length: 0\r\n\r\n").expect("parse");
        assert_eq!(target, "/");
    }

    #[test]
    fn content_length_bodies_parse_and_read_with_pipelined_followups() {
        // Body arrives partly with the head (read-ahead) and partly on the
        // socket; a pipelined GET rides behind it.
        let raw = b"POST /v1/batch HTTP/1.1\r\nContent-Length: 11\r\n\r\nplan1\nplan2GET /after HTTP/1.1\r\n\r\n";
        let mut reader = raw.as_slice();
        let mut buf = RequestBuf::new();
        let request = buf.read_request(&mut reader).expect("parse");
        assert_eq!(request.method, "POST");
        assert_eq!(request.content_length, 11);
        let head_len = request.head_len;
        let mut body = Vec::new();
        buf.read_body(&mut reader, head_len, 11, &mut body).expect("body");
        assert_eq!(body, b"plan1\nplan2");
        let next = buf.read_request(&mut reader).expect("pipelined request survives the body");
        assert_eq!(next.target, "/after");
        assert_eq!(next.content_length, 0);
    }

    #[test]
    fn take_body_moves_only_buffered_bytes() {
        let raw = b"POST /p HTTP/1.1\r\nContent-Length: 8\r\n\r\nab";
        let mut buf = RequestBuf::new();
        let request = buf.read_request(&mut raw.as_slice()).expect("parse");
        let head_len = request.head_len;
        let mut body = Vec::new();
        let moved = buf.take_body(head_len, 8, &mut body);
        assert_eq!(moved, 2, "only the read-ahead moved; the rest comes off the socket");
        assert_eq!(body, b"ab");
        assert_eq!(buf.filled(), 0);
    }

    #[test]
    fn etag_matching_is_exact_list_aware_and_wildcard() {
        let etag = 0x00ab_cdef_0123_4567;
        let quoted = "\"00abcdef01234567\"";
        assert!(etag_matches(quoted, etag));
        assert!(etag_matches(&format!("\"other\", {quoted}"), etag));
        assert!(etag_matches(&format!("W/{quoted}"), etag), "weak compare for If-None-Match");
        assert!(etag_matches("*", etag));
        assert!(!etag_matches("\"00abcdef01234568\"", etag));
        assert!(!etag_matches("00abcdef01234567", etag), "unquoted tags never match");
        assert!(!etag_matches("", etag));
        assert_eq!(&etag_hex(etag), b"00abcdef01234567");
    }

    #[test]
    fn response_is_content_length_delimited_and_single_write() {
        /// Counts write calls to prove head+body coalesce into one
        /// vectored write.
        struct CountingWriter {
            out: Vec<u8>,
            calls: usize,
        }
        impl Write for CountingWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.calls += 1;
                self.out.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
                self.calls += 1;
                Ok(bufs
                    .iter()
                    .map(|b| {
                        self.out.extend_from_slice(b);
                        b.len()
                    })
                    .sum())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut writer = CountingWriter { out: Vec::new(), calls: 0 };
        let mut response = ResponseBuf::new();
        response
            .write_response(
                &mut writer,
                &ResponseHead {
                    status: 200,
                    content_type: "application/json",
                    keep_alive: true,
                    etag: Some(0xff),
                    allow: None,
                    mode: BodyMode::Full,
                },
                b"{}\n",
            )
            .expect("write");
        assert_eq!(writer.calls, 1, "head and body must go out in one vectored write");
        let text = String::from_utf8(writer.out).expect("utf-8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("ETag: \"00000000000000ff\"\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}\n"));
    }

    #[test]
    fn head_mode_and_304_suppress_the_body() {
        let mut out = Vec::new();
        let mut response = ResponseBuf::new();
        response
            .write_response(
                &mut out,
                &ResponseHead {
                    status: 200,
                    content_type: "application/json",
                    keep_alive: true,
                    etag: None,
                    allow: None,
                    mode: BodyMode::HeaderOnly,
                },
                b"{}\n",
            )
            .expect("write");
        let text = String::from_utf8(out).expect("utf-8");
        assert!(text.contains("Content-Length: 3\r\n"), "HEAD keeps the GET Content-Length");
        assert!(text.ends_with("\r\n\r\n"), "no body bytes follow");

        let mut out = Vec::new();
        response
            .write_response(
                &mut out,
                &ResponseHead {
                    status: 304,
                    content_type: "application/json",
                    keep_alive: true,
                    etag: Some(1),
                    allow: None,
                    mode: BodyMode::Full,
                },
                b"{}\n",
            )
            .expect("write");
        let text = String::from_utf8(out).expect("utf-8");
        assert!(text.starts_with("HTTP/1.1 304 Not Modified\r\n"));
        assert!(!text.contains("Content-Length"), "304 has no body to delimit");
        assert!(text.contains("ETag: \"0000000000000001\"\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn vectored_write_handles_short_writes() {
        /// A writer that accepts one byte per call.
        struct TrickleWriter(Vec<u8>);
        impl Write for TrickleWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.push(buf[0]);
                Ok(1)
            }
            fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
                let first = bufs.iter().find(|b| !b.is_empty()).expect("non-empty");
                self.0.push(first[0]);
                Ok(1)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut writer = TrickleWriter(Vec::new());
        write_all_vectored(&mut writer, b"head|", b"body").expect("write");
        assert_eq!(writer.0, b"head|body");
    }

    /// A writer that accepts `burst` bytes, then answers `WouldBlock`
    /// until the "socket buffer" is drained — the userspace model of a
    /// full `SO_SNDBUF`.
    struct SaturatingWriter {
        out: Vec<u8>,
        burst: usize,
        accepted: usize,
    }

    impl SaturatingWriter {
        fn drain(&mut self) {
            self.accepted = 0;
        }
    }

    impl Write for SaturatingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let room = self.burst - self.accepted;
            if room == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "send buffer full"));
            }
            let n = room.min(buf.len());
            self.out.extend_from_slice(&buf[..n]);
            self.accepted += n;
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            let first = bufs.iter().find(|b| !b.is_empty()).expect("non-empty");
            self.write(first)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn resumable_write_parks_on_wouldblock_and_resumes_mid_response() {
        let head = b"HTTP/1.1 200 OK\r\nContent-Length: 9\r\n\r\n";
        let body = b"body-data";
        // A 7-byte burst blocks mid-head; draining and retrying with the
        // same cursor must finish the exact byte stream, never duplicating
        // or dropping across the head/body seam.
        let mut writer = SaturatingWriter { out: Vec::new(), burst: 7, accepted: 0 };
        let mut cursor = 0;
        let mut rounds = 0;
        loop {
            match write_resumable(&mut writer, head, body, &mut cursor).expect("write") {
                WriteProgress::Complete => break,
                WriteProgress::Pending => {
                    assert!(cursor < head.len() + body.len());
                    writer.drain();
                    rounds += 1;
                }
            }
        }
        assert_eq!(cursor, head.len() + body.len());
        assert!(rounds >= 2, "the response must actually have been split up");
        let mut expected = head.to_vec();
        expected.extend_from_slice(body);
        assert_eq!(writer.out, expected);
    }

    #[test]
    fn write_all_vectored_survives_wouldblock() {
        /// Blocks on every other call, one byte otherwise — the old
        /// implementation errored the connection here.
        struct FlakyWriter {
            out: Vec<u8>,
            calls: usize,
        }
        impl Write for FlakyWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.calls += 1;
                if self.calls % 2 == 0 {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "busy"));
                }
                if self.calls == 1 {
                    return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
                }
                self.out.push(buf[0]);
                Ok(1)
            }
            fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
                let first = bufs.iter().find(|b| !b.is_empty()).expect("non-empty");
                let first = [first[0]];
                self.write(&first)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut writer = FlakyWriter { out: Vec::new(), calls: 0 };
        write_all_vectored(&mut writer, b"he", b"llo").expect("write");
        assert_eq!(writer.out, b"hello");
    }

    #[test]
    fn lazy_request_buf_defers_its_allocation() {
        let buf = RequestBuf::lazy();
        assert_eq!(buf.filled(), 0);
        let mut buf = buf;
        let raw = b"GET /lazy HTTP/1.1\r\n\r\n";
        let request = buf.read_request(&mut raw.as_slice()).expect("parse");
        assert_eq!(request.target, "/lazy");
        let head_len = request.head_len;
        assert_eq!(buf.filled(), raw.len());
        buf.consume(head_len);
        assert_eq!(buf.filled(), 0);
    }

    /// A lazy buffer polled by a non-blocking transport must stay
    /// unallocated until the socket actually delivers a byte — the
    /// reactor drives every just-accepted connection through
    /// `read_request` once, and 10k parked connections must not each
    /// pay for (and fault in) a zeroed [`MAX_HEAD`] buffer.
    #[test]
    fn lazy_request_buf_survives_would_block_without_allocating() {
        struct NothingYet;
        impl Read for NothingYet {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::ErrorKind::WouldBlock.into())
            }
        }
        let mut buf = RequestBuf::lazy();
        for _ in 0..3 {
            match buf.read_request(&mut NothingYet) {
                Err(RequestError::Io(e)) if e.kind() == io::ErrorKind::WouldBlock => {}
                other => panic!("expected WouldBlock, got {other:?}"),
            }
            assert!(buf.buf.is_empty(), "an idle connection must not hold a head buffer");
            assert_eq!(buf.filled(), 0);
        }
        let raw = b"GET /later HTTP/1.1\r\n\r\n";
        let request = buf.read_request(&mut raw.as_slice()).expect("parse");
        assert_eq!(request.target, "/later");
    }

    #[test]
    fn assemble_then_head_bytes_matches_write_response() {
        let head = ResponseHead {
            status: 200,
            content_type: "application/json",
            keep_alive: true,
            etag: Some(0xab),
            allow: None,
            mode: BodyMode::Full,
        };
        let mut direct = Vec::new();
        let mut response = ResponseBuf::new();
        let written = response.write_response(&mut direct, &head, b"{}\n").expect("write");

        let mut staged = ResponseBuf::new();
        let emit = staged.assemble(&head, 3);
        assert_eq!(emit, 3);
        let mut assembled = staged.head_bytes().to_vec();
        assembled.extend_from_slice(b"{}\n");
        assert_eq!(assembled, direct);
        assert_eq!(written, assembled.len());

        // HEAD and 304 emit no body bytes but keep their heads.
        let emit = staged.assemble(&ResponseHead { mode: BodyMode::HeaderOnly, ..head }, 3);
        assert_eq!(emit, 0);
        assert!(String::from_utf8_lossy(staged.head_bytes()).contains("Content-Length: 3\r\n"));
        let emit = staged.assemble(&ResponseHead { status: 304, ..head }, 3);
        assert_eq!(emit, 0);
    }

    #[test]
    fn shed_responses_carry_retry_after() {
        let mut buf = ResponseBuf::new();
        let emit = buf.assemble(
            &ResponseHead {
                status: 503,
                content_type: "application/json",
                keep_alive: true,
                etag: None,
                allow: None,
                mode: BodyMode::Full,
            },
            2,
        );
        assert_eq!(emit, 2);
        let head = String::from_utf8_lossy(buf.head_bytes()).to_string();
        assert!(head.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{head}");
        assert!(head.contains("Retry-After: 1\r\n"), "{head}");
        assert!(head.contains("Content-Length: 2\r\n"), "{head}");
        // Non-shed statuses must not grow the header.
        let _ = buf.assemble(
            &ResponseHead {
                status: 200,
                content_type: "application/json",
                keep_alive: true,
                etag: None,
                allow: None,
                mode: BodyMode::Full,
            },
            2,
        );
        assert!(!String::from_utf8_lossy(buf.head_bytes()).contains("Retry-After"));
    }

    #[test]
    fn method_not_allowed_responses_carry_allow() {
        let mut buf = ResponseBuf::new();
        let emit = buf.assemble(
            &ResponseHead {
                status: 405,
                content_type: "application/json",
                keep_alive: true,
                etag: None,
                allow: Some("GET, HEAD"),
                mode: BodyMode::Full,
            },
            2,
        );
        assert_eq!(emit, 2);
        let head = String::from_utf8_lossy(buf.head_bytes()).to_string();
        assert!(head.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"), "{head}");
        assert!(head.contains("Allow: GET, HEAD\r\n"), "{head}");
    }

    #[test]
    fn chunked_head_announces_transfer_encoding_without_a_length() {
        let mut buf = ResponseBuf::new();
        let head = ResponseHead {
            status: 200,
            content_type: "application/json",
            keep_alive: true,
            etag: None,
            allow: None,
            mode: BodyMode::Full,
        };
        assert!(buf.assemble_chunked(&head));
        let text = String::from_utf8_lossy(buf.head_bytes()).to_string();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");
        assert!(!text.contains("Content-Length"), "{text}");
        assert!(text.ends_with("Connection: keep-alive\r\n\r\n"), "{text}");
        assert!(
            !buf.assemble_chunked(&ResponseHead { mode: BodyMode::HeaderOnly, ..head }),
            "HEAD gets the streaming headers but no chunks"
        );
    }

    #[test]
    fn chunk_prefixes_are_hex_framed_and_zero_terminates() {
        let mut out = Vec::new();
        chunk_prefix(3, &mut out);
        assert_eq!(out, b"3\r\n");
        chunk_prefix(0x2f0, &mut out);
        assert_eq!(out, b"2f0\r\n");
        chunk_prefix(0, &mut out);
        assert_eq!(out, b"0\r\n\r\n", "terminal chunk includes the trailer");
    }

    /// A three-part batch whose middle body is empty (an error frame with
    /// no payload exercises the empty-piece path).
    fn sample_batch() -> BatchBody {
        let mut batch = BatchBody::default();
        batch.frames.extend_from_slice(b"UQM\x01\x03\x00\x00\x00");
        batch.header = 0..batch.frames.len();
        for (frame, body) in
            [(b"[f1]".as_slice(), b"body-one".as_slice()), (b"[f2]", b""), (b"[f3]", b"three")]
        {
            let start = batch.frames.len();
            batch.frames.extend_from_slice(frame);
            batch.parts.push(BatchPart { frame: start..batch.frames.len(), body: Arc::from(body) });
        }
        batch
    }

    fn batch_wire(head: &[u8], batch: &BatchBody) -> Vec<u8> {
        let mut expected = head.to_vec();
        expected.extend_from_slice(&batch.frames[batch.header.clone()]);
        for part in &batch.parts {
            expected.extend_from_slice(&batch.frames[part.frame.clone()]);
            expected.extend_from_slice(&part.body);
        }
        expected
    }

    #[test]
    fn batch_write_chains_every_piece_in_order() {
        let batch = sample_batch();
        let head = b"HTTP/1.1 200 OK\r\n\r\n";
        assert_eq!(batch.wire_len(), 8 + 4 + 8 + 4 + 4 + 5);
        let mut out = Vec::new();
        let mut cursor = 0;
        let progress = write_batch(&mut out, head, &batch, &mut cursor).expect("write");
        assert_eq!(progress, WriteProgress::Complete);
        assert_eq!(out, batch_wire(head, &batch));
    }

    #[test]
    fn batch_write_resumes_mid_piece_on_wouldblock() {
        let batch = sample_batch();
        let head = b"H|";
        let expected = batch_wire(head, &batch);
        // Drive the write 3 bytes per burst so WouldBlock lands inside
        // frames, bodies, and across piece seams.
        let mut writer = SaturatingWriter { out: Vec::new(), burst: 3, accepted: 0 };
        let mut cursor = 0;
        let mut rounds = 0;
        loop {
            match write_batch(&mut writer, head, &batch, &mut cursor).expect("write") {
                WriteProgress::Complete => break,
                WriteProgress::Pending => {
                    writer.drain();
                    rounds += 1;
                }
            }
        }
        assert_eq!(writer.out, expected);
        assert!(rounds >= 5, "the batch must actually have been split up");
    }

    #[test]
    fn batch_write_gathers_large_batches_across_several_writevs() {
        /// Records how many slices each vectored write received.
        struct GatherWriter {
            out: Vec<u8>,
            slice_counts: Vec<usize>,
        }
        impl Write for GatherWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.out.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
                self.slice_counts.push(bufs.len());
                Ok(bufs
                    .iter()
                    .map(|b| {
                        self.out.extend_from_slice(b);
                        b.len()
                    })
                    .sum())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut batch = BatchBody::default();
        batch.frames.extend_from_slice(b"UQM\x01");
        batch.header = 0..4;
        for i in 0..600u32 {
            let start = batch.frames.len();
            batch.frames.extend_from_slice(&i.to_le_bytes());
            batch.parts.push(BatchPart {
                frame: start..batch.frames.len(),
                body: Arc::from(format!("body-{i}").into_bytes().into_boxed_slice()),
            });
        }
        let expected = batch_wire(b"", &batch);
        let mut writer = GatherWriter { out: Vec::new(), slice_counts: Vec::new() };
        let mut cursor = 0;
        let progress = write_batch(&mut writer, b"", &batch, &mut cursor).expect("write");
        assert_eq!(progress, WriteProgress::Complete);
        assert_eq!(writer.out, expected);
        assert!(writer.slice_counts.len() >= 3, "1201 pieces can't fit one 512-slice writev");
        assert!(writer.slice_counts.iter().all(|&n| n <= 512));
    }
}
