//! Property tests for the work-stealing pool: for arbitrary input sizes and
//! thread counts, `parallel_map_indexed` preserves input order, evaluates
//! every index exactly once, and propagates worker panics without
//! deadlocking.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use uops_pool::{parallel_map_indexed, parallel_map_indexed_with, Parallelism};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Results come back in index order for any (size, thread count).
    #[test]
    fn order_is_preserved((len, threads) in (0usize..600, 1usize..9)) {
        let out = parallel_map_indexed(Parallelism::Fixed(threads), len, |i| i.wrapping_mul(31) ^ 7);
        let expected: Vec<usize> = (0..len).map(|i| i.wrapping_mul(31) ^ 7).collect();
        prop_assert_eq!(out, expected);
    }

    /// Every index is evaluated exactly once, never zero or twice.
    #[test]
    fn each_index_runs_exactly_once((len, threads) in (1usize..400, 1usize..9)) {
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        parallel_map_indexed(Parallelism::Fixed(threads), len, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "index {} ran a wrong number of times", i);
        }
    }

    /// Serial and parallel execution agree for any thread count, including
    /// the per-worker-context variant.
    #[test]
    fn serial_and_parallel_agree((len, threads) in (0usize..300, 2usize..9)) {
        let serial = parallel_map_indexed(Parallelism::Serial, len, |i| i * i + 1);
        let parallel = parallel_map_indexed_with(
            Parallelism::Fixed(threads),
            len,
            || 0u64,
            |scratch, i| {
                *scratch += 1; // exercise the mutable per-worker context
                i * i + 1
            },
        );
        prop_assert_eq!(serial, parallel);
    }

    /// A panicking item propagates for any position and thread count, and
    /// the call returns (no deadlock) with all other work drained.
    #[test]
    fn panic_propagates((len, threads, victim) in (1usize..200, 1usize..9, 0usize..200)) {
        let victim = victim % len;
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_indexed(Parallelism::Fixed(threads), len, |i| {
                if i == victim {
                    panic!("injected failure");
                }
                i
            })
        }));
        prop_assert!(result.is_err(), "panic at index {} must propagate", victim);
    }
}
