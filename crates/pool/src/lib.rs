//! # uops-pool
//!
//! A small, dependency-free, work-stealing scoped thread pool for the
//! embarrassingly parallel sweeps of the characterization engine — plus a
//! long-lived [`TaskPool`] worker loop for continuously arriving work
//! (the accept/worker loop of the `uops-serve` HTTP server).
//!
//! The paper's tool characterizes >13,000 instruction variants per
//! microarchitecture; each variant's microbenchmarks are independent once
//! the per-architecture setup (blocking instructions, chain calibration) has
//! been built, so the sweep parallelizes trivially. This crate provides the
//! scheduling substrate: the input index range is split into chunks, the
//! chunks are distributed round-robin over per-worker deques, and idle
//! workers steal from the *front* of other workers' deques while owners pop
//! from the *back* (the classic Chase–Lev discipline, here with a mutex per
//! deque instead of lock-free operations — the workspace has no crates.io
//! access, so everything is built on `std`, in the same spirit as the
//! API-compatible stand-ins under `crates/compat/`).
//!
//! Results are reassembled in **input order** regardless of which worker ran
//! which chunk, so callers observe deterministic output; a panic in a worker
//! propagates to the caller after all other workers have drained (no
//! deadlock, no lost wakeups — all work is enqueued before the workers
//! start, and nobody blocks waiting for more).
//!
//! ## Quickstart
//!
//! ```rust
//! use uops_pool::{parallel_map_indexed, Parallelism};
//!
//! let squares = parallel_map_indexed(Parallelism::Fixed(4), 100, |i| i * i);
//! assert_eq!(squares[7], 49);
//! // `Parallelism::Serial` runs inline on the calling thread, `Auto` uses
//! // the number of available cores.
//! let same = parallel_map_indexed(Parallelism::Serial, 100, |i| i * i);
//! assert_eq!(squares, same);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use uops_telemetry::{saturating_ns, Counter, Gauge, Histogram};

/// Chunks taken from *another* worker's deque since process start, across
/// all [`parallel_map_indexed`] sweeps. Stealing is transient (the deques
/// live only for the duration of one sweep), so the counter is the one piece
/// of scheduling telemetry that outlives a sweep.
static STEALS: Counter = Counter::new();

/// The process-wide work-steal counter, borrowable into a telemetry
/// `Registry`. Incremented every time an idle worker takes a chunk from the
/// front of another worker's deque.
#[must_use]
pub fn steals_counter() -> &'static Counter {
    &STEALS
}

/// Scheduling telemetry for a [`TaskPool`], recorded wait-free by the
/// workers when the pool is built with [`TaskPool::with_metrics`].
///
/// All fields are live atomics from `uops-telemetry`, safe to borrow into a
/// `Registry` for exposition while the pool is running.
#[derive(Debug, Default)]
pub struct TaskPoolMetrics {
    /// Tasks submitted but not yet picked up by a worker.
    pub queue_depth: Gauge,
    /// Nanoseconds each task spent queued before a worker picked it up.
    pub wait_ns: Histogram,
    /// Nanoseconds each task spent executing (panicking tasks included).
    pub run_ns: Histogram,
    /// Total tasks executed to completion (or panic) by the workers.
    pub executed: Counter,
}

impl TaskPoolMetrics {
    /// Creates zeroed metrics. `const`, so the set can live in a `static`.
    #[must_use]
    pub const fn new() -> TaskPoolMetrics {
        TaskPoolMetrics {
            queue_depth: Gauge::new(),
            wait_ns: Histogram::new(),
            run_ns: Histogram::new(),
            executed: Counter::new(),
        }
    }
}

/// How much parallelism a sweep may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One worker per available core (`std::thread::available_parallelism`).
    #[default]
    Auto,
    /// Exactly `n` workers (clamped to at least 1).
    Fixed(usize),
    /// Run inline on the calling thread; no threads are spawned.
    Serial,
}

impl Parallelism {
    /// The number of worker threads this setting resolves to.
    #[must_use]
    pub fn thread_count(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => {
                std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
            }
        }
    }

    /// Returns `true` if no threads are spawned for this setting.
    #[must_use]
    pub fn is_serial(self) -> bool {
        matches!(self, Parallelism::Serial) || self.thread_count() <= 1
    }
}

/// A scope for spawning threads that may borrow from the caller's stack
/// frame. Thin re-export of [`std::thread::Scope`] so that callers of this
/// crate need no direct `std::thread` imports.
pub type Scope<'scope, 'env> = std::thread::Scope<'scope, 'env>;

/// Runs `f` with a [`Scope`] in which borrowed-data threads can be spawned;
/// all spawned threads are joined before `scope` returns, and a panic in any
/// of them propagates to the caller.
///
/// This is the escape hatch for irregular parallelism (e.g. one long-lived
/// task per microarchitecture); regular index-shaped sweeps should prefer
/// [`parallel_map_indexed`].
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    std::thread::scope(f)
}

/// How many chunks each worker's deque is seeded with. More chunks mean
/// better load balancing when item costs vary (characterization cost varies
/// wildly between a 1-µop ALU instruction and a divider), at slightly more
/// stealing traffic.
const CHUNKS_PER_WORKER: usize = 4;

/// One worker's deque of pending index chunks. The owner pops from the back
/// (LIFO — keeps its cache warm on the most recently pushed range); thieves
/// steal from the front (FIFO — take the oldest, largest-distance work).
struct ChunkDeque {
    chunks: Mutex<VecDeque<Range<usize>>>,
}

impl ChunkDeque {
    fn new() -> ChunkDeque {
        ChunkDeque { chunks: Mutex::new(VecDeque::new()) }
    }

    fn push(&self, chunk: Range<usize>) {
        self.chunks.lock().expect("deque mutex").push_back(chunk);
    }

    fn pop_back(&self) -> Option<Range<usize>> {
        self.chunks.lock().expect("deque mutex").pop_back()
    }

    fn steal_front(&self) -> Option<Range<usize>> {
        let stolen = self.chunks.lock().expect("deque mutex").pop_front();
        if stolen.is_some() {
            STEALS.inc();
        }
        stolen
    }
}

/// Splits `0..len` into roughly equal chunks, at least one item each.
fn chunk_ranges(len: usize, workers: usize) -> Vec<Range<usize>> {
    let target = (workers * CHUNKS_PER_WORKER).max(1);
    let chunk_size = len.div_ceil(target).max(1);
    let mut out = Vec::with_capacity(len.div_ceil(chunk_size));
    let mut start = 0;
    while start < len {
        let end = (start + chunk_size).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

/// Maps `f` over the index range `0..len`, returning the results in index
/// order. Work is distributed over a work-stealing pool sized by
/// `parallelism`; with [`Parallelism::Serial`] (or one worker, or at most
/// one item) everything runs inline on the calling thread.
///
/// Every index is evaluated exactly once. A panic inside `f` propagates to
/// the caller once the remaining workers have drained their queues.
pub fn parallel_map_indexed<T, F>(parallelism: Parallelism, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_indexed_with(parallelism, len, || (), move |(), i| f(i))
}

/// Like [`parallel_map_indexed`], but each worker first builds a private
/// context with `init` and threads it through all of its items. This lets
/// hot loops hoist per-worker state (scratch buffers, a calibrated analyzer)
/// out of the per-item path without sharing or locking.
pub fn parallel_map_indexed_with<C, T, I, F>(
    parallelism: Parallelism,
    len: usize,
    init: I,
    f: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize) -> T + Sync,
{
    let workers = parallelism.thread_count().min(len.max(1));
    if parallelism.is_serial() || workers <= 1 || len <= 1 {
        let mut ctx = init();
        return (0..len).map(|i| f(&mut ctx, i)).collect();
    }

    // All chunks are enqueued before any worker starts: workers terminate
    // when every deque is empty, so there are no missed-wakeup hazards and a
    // panicking worker cannot deadlock the others.
    let deques: Vec<ChunkDeque> = (0..workers).map(|_| ChunkDeque::new()).collect();
    for (i, chunk) in chunk_ranges(len, workers).into_iter().enumerate() {
        deques[i % workers].push(chunk);
    }

    // Each worker returns its finished chunks as `(start, values)` pairs;
    // the chunk count is small (O(workers)), so reassembly is cheap.
    let done: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());

    scope(|s| {
        for w in 0..workers {
            let deques = &deques;
            let done = &done;
            let init = &init;
            let f = &f;
            s.spawn(move || {
                let mut ctx = init();
                let mut finished: Vec<(usize, Vec<T>)> = Vec::new();
                loop {
                    // Own work first (back), then steal (front), scanning
                    // the other deques starting after our own.
                    let chunk = deques[w].pop_back().or_else(|| {
                        (1..workers).find_map(|d| deques[(w + d) % workers].steal_front())
                    });
                    let Some(chunk) = chunk else { break };
                    let mut values = Vec::with_capacity(chunk.len());
                    let start = chunk.start;
                    for i in chunk {
                        values.push(f(&mut ctx, i));
                    }
                    finished.push((start, values));
                }
                if !finished.is_empty() {
                    done.lock().expect("result mutex").extend(finished);
                }
            });
        }
    });

    let mut chunks = done.into_inner().expect("result mutex");
    chunks.sort_unstable_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(len);
    for (start, values) in chunks {
        debug_assert_eq!(start, out.len(), "chunk reassembly out of order");
        out.extend(values);
    }
    assert_eq!(out.len(), len, "every index must be produced exactly once");
    out
}

/// A boxed unit of work for a [`TaskPool`].
type Task = Box<dyn FnOnce() + Send + 'static>;

/// A submitted task plus its enqueue instant (for queue-wait telemetry).
struct Job {
    run: Task,
    enqueued: Instant,
}

struct TaskQueue {
    tasks: Mutex<TaskQueueState>,
    available: Condvar,
    metrics: Option<Arc<TaskPoolMetrics>>,
    /// Maximum queued (not yet picked up) tasks admitted by
    /// [`TaskPool::try_execute`]; `0` means unbounded. [`TaskPool::execute`]
    /// ignores the limit.
    queue_limit: usize,
}

struct TaskQueueState {
    pending: VecDeque<Job>,
    shutting_down: bool,
}

/// A **long-lived** worker pool for services: submitted tasks are consumed
/// by a fixed set of named threads that live until [`TaskPool::shutdown`]
/// (or drop).
///
/// Where [`parallel_map_indexed`] is the fork-join substrate for bounded
/// sweeps — all work known up front, caller blocks until done — `TaskPool`
/// is the serving substrate: work arrives continuously (one task per
/// accepted connection in `uops-serve`), callers never block, and the
/// workers survive across tasks so steady-state dispatch costs one
/// lock + wakeup, not a thread spawn.
///
/// A panicking task is caught and does not kill its worker (a malformed
/// request must not take down the server); the panic payload is dropped
/// and the worker moves on. Shutdown drains: tasks already submitted run
/// to completion before the workers exit.
///
/// ## Example
///
/// ```rust
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = uops_pool::TaskPool::new(2, "doc-worker");
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..8 {
///     let hits = Arc::clone(&hits);
///     pool.execute(move || {
///         hits.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// pool.shutdown();
/// assert_eq!(hits.load(Ordering::Relaxed), 8);
/// ```
pub struct TaskPool {
    queue: Arc<TaskQueue>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for TaskPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskPool")
            .field("threads", &self.workers.len())
            .field("pending", &self.pending())
            .finish()
    }
}

impl TaskPool {
    /// Spawns `threads` workers (clamped to at least 1) named
    /// `"{name}-{index}"`.
    #[must_use]
    pub fn new(threads: usize, name: &str) -> TaskPool {
        TaskPool::build(threads, name, None, 0)
    }

    /// Like [`TaskPool::new`], but the workers record queue depth, task
    /// wait time, and task run time into `metrics`. Recording is wait-free
    /// and allocation-free; the caller keeps (a clone of) the `Arc` to read
    /// or expose the metrics.
    #[must_use]
    pub fn with_metrics(threads: usize, name: &str, metrics: Arc<TaskPoolMetrics>) -> TaskPool {
        TaskPool::build(threads, name, Some(metrics), 0)
    }

    /// Like [`TaskPool::with_metrics`] (pass `None` for no telemetry), but
    /// [`TaskPool::try_execute`] rejects new tasks while `queue_limit` tasks
    /// are already queued. `queue_limit == 0` means unbounded. The limit
    /// bounds *waiting* work only — tasks already running do not count — so
    /// total admitted concurrency is `threads + queue_limit`.
    #[must_use]
    pub fn with_queue_limit(
        threads: usize,
        name: &str,
        metrics: Option<Arc<TaskPoolMetrics>>,
        queue_limit: usize,
    ) -> TaskPool {
        TaskPool::build(threads, name, metrics, queue_limit)
    }

    fn build(
        threads: usize,
        name: &str,
        metrics: Option<Arc<TaskPoolMetrics>>,
        queue_limit: usize,
    ) -> TaskPool {
        let threads = threads.max(1);
        let queue = Arc::new(TaskQueue {
            tasks: Mutex::new(TaskQueueState { pending: VecDeque::new(), shutting_down: false }),
            available: Condvar::new(),
            metrics,
            queue_limit,
        });
        let workers = (0..threads)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("spawn pool worker")
            })
            .collect();
        TaskPool { queue, workers }
    }

    /// The number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Number of tasks submitted but not yet picked up by a worker.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.tasks.lock().expect("task queue mutex").pending.len()
    }

    /// Submits a task. Never blocks; tasks run in submission order per
    /// worker pick-up. Tasks submitted after [`TaskPool::shutdown`] began
    /// are silently dropped.
    pub fn execute(&self, task: impl FnOnce() + Send + 'static) {
        {
            let mut state = self.queue.tasks.lock().expect("task queue mutex");
            if state.shutting_down {
                return;
            }
            state.pending.push_back(Job { run: Box::new(task), enqueued: Instant::now() });
        }
        if let Some(metrics) = &self.queue.metrics {
            metrics.queue_depth.inc();
        }
        self.queue.available.notify_one();
    }

    /// Submits a task *if the queue has room*, returning whether it was
    /// accepted. Never blocks. Returns `false` — without boxing the task or
    /// allocating at all — when the pool was built with a queue limit
    /// ([`TaskPool::with_queue_limit`]) and that many tasks are already
    /// waiting, or when shutdown has begun. This is the admission-control
    /// entry point: callers shed load on `false` instead of growing an
    /// unbounded backlog.
    #[must_use]
    pub fn try_execute(&self, task: impl FnOnce() + Send + 'static) -> bool {
        {
            let mut state = self.queue.tasks.lock().expect("task queue mutex");
            if state.shutting_down {
                return false;
            }
            if self.queue.queue_limit > 0 && state.pending.len() >= self.queue.queue_limit {
                return false;
            }
            state.pending.push_back(Job { run: Box::new(task), enqueued: Instant::now() });
        }
        if let Some(metrics) = &self.queue.metrics {
            metrics.queue_depth.inc();
        }
        self.queue.available.notify_one();
        true
    }

    /// Drains the queue and joins all workers: every task submitted before
    /// the call runs to completion first.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    fn begin_shutdown(&self) {
        self.queue.tasks.lock().expect("task queue mutex").shutting_down = true;
        self.queue.available.notify_all();
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(queue: &TaskQueue) {
    loop {
        let job = {
            let mut state = queue.tasks.lock().expect("task queue mutex");
            loop {
                if let Some(job) = state.pending.pop_front() {
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = queue.available.wait(state).expect("task queue mutex");
            }
        };
        if let Some(metrics) = &queue.metrics {
            metrics.queue_depth.dec();
            metrics.wait_ns.record(saturating_ns(job.enqueued.elapsed()));
            let started = Instant::now();
            // A panicking task must not take its worker down with it.
            let _ = catch_unwind(AssertUnwindSafe(job.run));
            metrics.run_ns.record(saturating_ns(started.elapsed()));
            metrics.executed.inc();
        } else {
            let _ = catch_unwind(AssertUnwindSafe(job.run));
        }
    }
}

/// Maps `f` over a slice, returning results in input order. Convenience
/// wrapper around [`parallel_map_indexed`].
pub fn parallel_map<T, U, F>(parallelism: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_indexed(parallelism, items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallelism_thread_counts() {
        assert_eq!(Parallelism::Serial.thread_count(), 1);
        assert_eq!(Parallelism::Fixed(0).thread_count(), 1);
        assert_eq!(Parallelism::Fixed(7).thread_count(), 7);
        assert!(Parallelism::Auto.thread_count() >= 1);
        assert!(Parallelism::Serial.is_serial());
        assert!(Parallelism::Fixed(1).is_serial());
        assert!(!Parallelism::Fixed(2).is_serial());
    }

    #[test]
    fn chunking_covers_the_range_without_overlap() {
        for len in [0, 1, 2, 7, 100, 1023] {
            for workers in [1, 2, 4, 13] {
                let chunks = chunk_ranges(len, workers);
                let mut next = 0;
                for c in &chunks {
                    assert_eq!(c.start, next);
                    assert!(c.end > c.start);
                    next = c.end;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn map_preserves_order_across_thread_counts() {
        let expected: Vec<usize> = (0..500).map(|i| i * 3 + 1).collect();
        for par in [
            Parallelism::Serial,
            Parallelism::Fixed(1),
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
            Parallelism::Fixed(9),
            Parallelism::Auto,
        ] {
            assert_eq!(parallel_map_indexed(par, 500, |i| i * 3 + 1), expected, "{par:?}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(parallel_map_indexed(Parallelism::Fixed(4), 0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map_indexed(Parallelism::Fixed(4), 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..311).map(|_| AtomicUsize::new(0)).collect();
        parallel_map_indexed(Parallelism::Fixed(4), hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed)
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn per_worker_context_is_reused() {
        // Count context constructions: at most one per worker.
        let inits = AtomicUsize::new(0);
        let out = parallel_map_indexed_with(
            Parallelism::Fixed(3),
            100,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |ctx, i| {
                *ctx += 1;
                i
            },
        );
        assert_eq!(out.len(), 100);
        assert!(inits.load(Ordering::Relaxed) <= 3, "inits = {inits:?}");
    }

    #[test]
    fn panic_in_worker_propagates_without_deadlock() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_map_indexed(Parallelism::Fixed(4), 64, |i| {
                if i == 33 {
                    panic!("boom at {i}");
                }
                i
            })
        }));
        assert!(result.is_err(), "worker panic must propagate");
    }

    #[test]
    fn parallel_map_over_slice() {
        let words = ["a", "bb", "ccc"];
        assert_eq!(parallel_map(Parallelism::Fixed(2), &words, |w| w.len()), vec![1, 2, 3]);
    }

    #[test]
    fn task_pool_runs_every_task() {
        use std::sync::Arc;
        let pool = TaskPool::new(4, "test-worker");
        assert_eq!(pool.threads(), 4);
        let hits: Arc<Vec<AtomicUsize>> = Arc::new((0..257).map(|_| AtomicUsize::new(0)).collect());
        for i in 0..hits.len() {
            let hits = Arc::clone(&hits);
            pool.execute(move || {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {i}");
        }
    }

    #[test]
    fn task_pool_survives_panicking_tasks() {
        use std::sync::Arc;
        let pool = TaskPool::new(1, "panic-worker");
        let after = Arc::new(AtomicUsize::new(0));
        pool.execute(|| panic!("request handler exploded"));
        let after2 = Arc::clone(&after);
        pool.execute(move || {
            after2.fetch_add(1, Ordering::Relaxed);
        });
        pool.shutdown();
        assert_eq!(after.load(Ordering::Relaxed), 1, "worker must outlive the panic");
    }

    #[test]
    fn task_pool_shutdown_drains_then_drops_new_tasks() {
        use std::sync::Arc;
        let pool = TaskPool::new(2, "drain-worker");
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let ran = Arc::clone(&ran);
            pool.execute(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.begin_shutdown();
        let late = Arc::clone(&ran);
        pool.execute(move || {
            late.fetch_add(1000, Ordering::Relaxed);
        });
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 64, "pre-shutdown tasks drain, late ones drop");
    }

    #[test]
    fn try_execute_rejects_past_the_queue_limit_and_recovers() {
        use std::sync::mpsc;
        use std::sync::Arc;
        // One worker, parked on a gate, so queued tasks pile up
        // deterministically.
        let pool = TaskPool::with_queue_limit(1, "bounded-worker", None, 2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (parked_tx, parked_rx) = mpsc::channel::<()>();
        assert!(pool.try_execute(move || {
            parked_tx.send(()).expect("signal parked");
            gate_rx.recv().expect("gate");
        }));
        parked_rx.recv().expect("worker parked");

        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..2 {
            let ran = Arc::clone(&ran);
            assert!(pool.try_execute(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            }));
        }
        // Queue is now at its limit of 2: admission must reject, and the
        // rejected closure must simply be dropped, never run.
        let overflow = Arc::clone(&ran);
        assert!(!pool.try_execute(move || {
            overflow.fetch_add(1000, Ordering::Relaxed);
        }));
        assert_eq!(pool.pending(), 2);

        // Release the worker; the queue drains and admission recovers.
        gate_tx.send(()).expect("open gate");
        while pool.pending() > 0 {
            std::thread::yield_now();
        }
        let late = Arc::clone(&ran);
        assert!(pool.try_execute(move || {
            late.fetch_add(10, Ordering::Relaxed);
        }));
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 12, "2 queued + 1 late ran; the reject never did");
    }

    #[test]
    fn try_execute_is_unbounded_when_the_limit_is_zero() {
        let pool = TaskPool::with_queue_limit(1, "unbounded-worker", None, 0);
        for _ in 0..256 {
            assert!(pool.try_execute(|| {}));
        }
        pool.shutdown();
    }

    #[test]
    fn steal_front_increments_the_process_steal_counter() {
        let deque = ChunkDeque::new();
        deque.push(0..4);
        deque.push(4..8);
        let before = steals_counter().get();
        assert_eq!(deque.steal_front(), Some(0..4));
        assert_eq!(steals_counter().get(), before + 1);
        // Owner pops and misses do not count as steals.
        assert_eq!(deque.pop_back(), Some(4..8));
        assert_eq!(deque.steal_front(), None);
        assert_eq!(steals_counter().get(), before + 1);
    }

    #[test]
    fn task_pool_metrics_track_every_task() {
        use std::sync::Arc;
        let metrics = Arc::new(TaskPoolMetrics::new());
        let pool = TaskPool::with_metrics(2, "metric-worker", Arc::clone(&metrics));
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let ran = Arc::clone(&ran);
            pool.execute(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 32);
        assert_eq!(metrics.executed.get(), 32);
        assert_eq!(metrics.wait_ns.count(), 32);
        assert_eq!(metrics.run_ns.count(), 32);
        assert_eq!(metrics.queue_depth.get(), 0, "drained pool has no queued tasks");
    }

    #[test]
    fn task_pool_metrics_count_panicking_tasks() {
        use std::sync::Arc;
        let metrics = Arc::new(TaskPoolMetrics::new());
        let pool = TaskPool::with_metrics(1, "metric-panic-worker", Arc::clone(&metrics));
        pool.execute(|| panic!("boom"));
        pool.execute(|| {});
        pool.shutdown();
        assert_eq!(metrics.executed.get(), 2, "panicking tasks still count as executed");
        assert_eq!(metrics.run_ns.count(), 2);
        assert_eq!(metrics.queue_depth.get(), 0);
    }

    #[test]
    fn task_pool_clamps_zero_threads() {
        let pool = TaskPool::new(0, "clamp-worker");
        assert_eq!(pool.threads(), 1);
        drop(pool);
    }

    #[test]
    fn scope_joins_spawned_threads() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|| counter.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }
}
