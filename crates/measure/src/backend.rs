//! Measurement backends: where the generated microbenchmarks run.
//!
//! The paper runs its microbenchmarks in kernel space on real hardware and,
//! alternatively, feeds them to Intel IACA (§6.2, §6.3). This crate
//! abstracts the execution target behind the [`MeasurementBackend`] trait so
//! that the inference algorithms are independent of it. The default backend
//! is [`SimBackend`], which executes the benchmarks on the cycle-level
//! pipeline simulator of [`uops_pipeline`]; a backend based on `perf_event`
//! and inline assembly could implement the same trait on real hardware.

use uops_asm::CodeSequence;
use uops_pipeline::{PerfCounters, Pipeline, SimOptions};
use uops_uarch::{MicroArch, UarchConfig};

/// Per-run context: knobs that influence value-dependent behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunContext {
    /// Use operand values that lead to low divider latency (§5.2.5). The
    /// measurement driver runs divider instructions under both settings.
    pub divider_low_latency: bool,
}

/// An execution target for microbenchmarks.
///
/// Implementations must behave like the measurement setup of §6.2: executing
/// the same code twice yields the same counters up to measurement noise, and
/// the counters include a *constant* overhead for the serializing
/// instructions and counter reads, which the harness removes by differencing
/// two different unroll factors.
pub trait MeasurementBackend {
    /// The microarchitecture this backend measures.
    fn arch(&self) -> MicroArch;

    /// The structural configuration of the measured microarchitecture
    /// (number of ports, functional-unit port combinations, ...).
    fn config(&self) -> UarchConfig {
        UarchConfig::for_arch(self.arch())
    }

    /// Executes the code sequence once and returns the raw counter values
    /// (including measurement overhead).
    fn run(&self, code: &CodeSequence, ctx: RunContext) -> PerfCounters;
}

/// The simulator-based measurement backend.
#[derive(Debug, Clone)]
pub struct SimBackend {
    arch: MicroArch,
    seed: u64,
    overhead_cycles: u64,
    overhead_uops: u64,
}

impl SimBackend {
    /// Creates a backend for the given microarchitecture.
    #[must_use]
    pub fn new(arch: MicroArch) -> SimBackend {
        let defaults = SimOptions::default();
        SimBackend {
            arch,
            seed: defaults.seed,
            overhead_cycles: defaults.overhead_cycles,
            overhead_uops: defaults.overhead_uops,
        }
    }

    /// Sets the seed used for the simulator's probabilistic renamer
    /// decisions.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> SimBackend {
        self.seed = seed;
        self
    }

    fn pipeline(&self, ctx: RunContext) -> Pipeline {
        Pipeline::with_options(
            self.arch,
            SimOptions {
                seed: self.seed,
                divider_low_latency: ctx.divider_low_latency,
                overhead_cycles: self.overhead_cycles,
                overhead_uops: self.overhead_uops,
            },
        )
    }
}

impl MeasurementBackend for SimBackend {
    fn arch(&self) -> MicroArch {
        self.arch
    }

    fn run(&self, code: &CodeSequence, ctx: RunContext) -> PerfCounters {
        self.pipeline(ctx).execute(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use uops_asm::{variant_arc, Inst, RegisterPool};
    use uops_isa::Catalog;

    #[test]
    fn sim_backend_reports_its_arch_and_config() {
        let b = SimBackend::new(MicroArch::Haswell);
        assert_eq!(b.arch(), MicroArch::Haswell);
        assert_eq!(b.config().port_count, 8);
    }

    #[test]
    fn sim_backend_is_deterministic() {
        let c = Catalog::intel_core();
        let desc = variant_arc(&c, "ADD", "R64, R64").unwrap();
        let mut pool = RegisterPool::new();
        let mut seq = CodeSequence::new();
        for _ in 0..8 {
            pool.reset();
            seq.push(Inst::bind(&desc, &BTreeMap::new(), &mut pool).unwrap());
        }
        let b = SimBackend::new(MicroArch::Skylake);
        let a1 = b.run(&seq, RunContext::default());
        let a2 = b.run(&seq, RunContext::default());
        assert_eq!(a1, a2);
    }

    #[test]
    fn divider_context_changes_results() {
        let c = Catalog::intel_core();
        let desc = variant_arc(&c, "DIV", "R64").unwrap();
        let mut pool = RegisterPool::new();
        let mut seq = CodeSequence::new();
        for _ in 0..4 {
            pool.reset();
            seq.push(Inst::bind(&desc, &BTreeMap::new(), &mut pool).unwrap());
        }
        let b = SimBackend::new(MicroArch::Skylake);
        let slow = b.run(&seq, RunContext { divider_low_latency: false });
        let fast = b.run(&seq, RunContext { divider_low_latency: true });
        assert!(slow.core_cycles > fast.core_cycles);
    }
}
