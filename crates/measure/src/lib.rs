//! # uops-measure
//!
//! The measurement harness of the uops.info reproduction: it executes
//! generated microbenchmarks on a [`MeasurementBackend`] (by default the
//! cycle-level simulator) following the protocol of §6.2 of the paper
//! (warm-up run, two unroll factors, differencing to cancel the constant
//! measurement overhead, repetition and averaging).
//!
//! ## Example
//!
//! ```rust
//! use std::collections::BTreeMap;
//! use uops_asm::{variant_arc, Inst, RegisterPool};
//! use uops_isa::Catalog;
//! use uops_measure::{measure_single, MeasurementConfig, RunContext, SimBackend};
//! use uops_uarch::MicroArch;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let catalog = Catalog::intel_core();
//! let desc = variant_arc(&catalog, "ADD", "R64, R64")?;
//! let mut pool = RegisterPool::new();
//! let inst = Inst::bind(&desc, &BTreeMap::new(), &mut pool)?;
//! let backend = SimBackend::new(MicroArch::Skylake);
//! let m = measure_single(&backend, inst, &MeasurementConfig::default(), RunContext::default());
//! assert!(m.uops_total > 0.5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod harness;

pub use backend::{MeasurementBackend, RunContext, SimBackend};
pub use harness::{measure, measure_single, Measurement, MeasurementConfig};
// Re-exported so implementors of `MeasurementBackend` can name the trait's
// counter type without depending on `uops-pipeline` directly.
pub use uops_pipeline::PerfCounters;
