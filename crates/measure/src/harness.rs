//! The measurement harness of §6.2 (Algorithm 2).
//!
//! The paper wraps the code under test in serializing instructions and
//! performance-counter reads, which adds a constant overhead. To remove it,
//! the code is measured twice — once unrolled `n = 10` times and once
//! `n = 110` times — and the difference of the two measurements, divided by
//! 100, yields the average cost of one execution of the code sequence. The
//! whole procedure is repeated (after a warm-up run) and averaged.

use serde::{Deserialize, Serialize};

use uops_asm::CodeSequence;
use uops_pipeline::PerfCounters;
use uops_uarch::{PortSet, MAX_PORTS};

use crate::backend::{MeasurementBackend, RunContext};

/// Configuration of the measurement procedure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasurementConfig {
    /// The small unroll factor (`n = 10` in the paper).
    pub base_unroll: usize,
    /// The large unroll factor (`n = 110` in the paper).
    pub large_unroll: usize,
    /// Number of repetitions whose results are averaged (100 in the paper;
    /// the simulator is deterministic, so fewer repetitions suffice by
    /// default).
    pub repetitions: usize,
    /// Whether to perform a warm-up run whose result is discarded.
    pub warmup: bool,
}

impl Default for MeasurementConfig {
    fn default() -> Self {
        MeasurementConfig { base_unroll: 10, large_unroll: 110, repetitions: 3, warmup: true }
    }
}

impl MeasurementConfig {
    /// The configuration used by the paper on real hardware.
    #[must_use]
    pub fn paper() -> MeasurementConfig {
        MeasurementConfig { base_unroll: 10, large_unroll: 110, repetitions: 100, warmup: true }
    }

    /// A faster configuration for large characterization sweeps on the
    /// simulator.
    #[must_use]
    pub fn fast() -> MeasurementConfig {
        MeasurementConfig { base_unroll: 5, large_unroll: 25, repetitions: 1, warmup: false }
    }

    /// The number of iterations the differencing divides by.
    #[must_use]
    pub fn delta(&self) -> usize {
        self.large_unroll - self.base_unroll
    }
}

/// The averaged result of measuring one code sequence: per-execution cycles
/// and µop counts.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Measurement {
    /// Average core cycles per execution of the code sequence.
    pub cycles: f64,
    /// Average µops per port per execution of the code sequence.
    pub uops_port: [f64; MAX_PORTS as usize],
    /// Average total µops per execution of the code sequence.
    pub uops_total: f64,
}

impl Measurement {
    /// Average µops on the given port.
    #[must_use]
    pub fn port(&self, port: u8) -> f64 {
        self.uops_port.get(port as usize).copied().unwrap_or(0.0)
    }

    /// Sum of average µops over a port set.
    #[must_use]
    pub fn uops_on_ports(&self, ports: PortSet) -> f64 {
        ports.iter().map(|p| self.port(p)).sum()
    }

    /// Scales the measurement by `1/divisor` (e.g. to get per-instruction
    /// values from a sequence containing several copies of an instruction).
    #[must_use]
    pub fn per(&self, divisor: f64) -> Measurement {
        assert!(divisor > 0.0, "divisor must be positive");
        Measurement {
            cycles: self.cycles / divisor,
            uops_port: self.uops_port.map(|v| v / divisor),
            uops_total: self.uops_total / divisor,
        }
    }
}

/// Measures the average per-execution cost of `code` on `backend` following
/// the procedure of §6.2 (warm-up, two unroll factors, differencing,
/// repetition, averaging).
pub fn measure<B: MeasurementBackend + ?Sized>(
    backend: &B,
    code: &CodeSequence,
    config: &MeasurementConfig,
    ctx: RunContext,
) -> Measurement {
    assert!(
        config.large_unroll > config.base_unroll,
        "large unroll factor must exceed the base unroll factor"
    );
    let small = code.repeat(config.base_unroll);
    let large = code.repeat(config.large_unroll);

    if config.warmup {
        let _ = backend.run(&small, ctx);
    }

    let delta = config.delta() as f64;
    let repetitions = config.repetitions.max(1);
    let mut acc = Measurement::default();
    for _ in 0..repetitions {
        let counters_small = backend.run(&small, ctx);
        let counters_large = backend.run(&large, ctx);
        let diff: PerfCounters = counters_large - counters_small;
        acc.cycles += diff.core_cycles as f64 / delta;
        acc.uops_total += diff.uops_total as f64 / delta;
        for p in 0..MAX_PORTS as usize {
            acc.uops_port[p] += diff.uops_port[p] as f64 / delta;
        }
    }
    let n = repetitions as f64;
    acc.cycles /= n;
    acc.uops_total /= n;
    for p in 0..MAX_PORTS as usize {
        acc.uops_port[p] /= n;
    }
    acc
}

/// Measures a single instruction in isolation (a sequence containing just the
/// given instruction), returning per-instruction averages.
pub fn measure_single<B: MeasurementBackend + ?Sized>(
    backend: &B,
    inst: uops_asm::Inst,
    config: &MeasurementConfig,
    ctx: RunContext,
) -> Measurement {
    let mut seq = CodeSequence::new();
    seq.push(inst);
    measure(backend, &seq, config, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use std::collections::BTreeMap;
    use uops_asm::{variant_arc, Inst, Op, RegisterPool};
    use uops_isa::{gpr, Catalog, Register, Width};
    use uops_uarch::MicroArch;

    fn catalog() -> Catalog {
        Catalog::intel_core()
    }

    fn movsx_chain(c: &Catalog, len: usize) -> CodeSequence {
        let desc = variant_arc(c, "MOVSX", "R64, R16").unwrap();
        let mut pool = RegisterPool::new();
        let a = Register::gpr(gpr::RBX, Width::W64);
        let b = Register::gpr(gpr::RCX, Width::W64);
        let mut seq = CodeSequence::new();
        for i in 0..len {
            let (dst, src) = if i % 2 == 0 { (a, b) } else { (b, a) };
            let mut assign = BTreeMap::new();
            assign.insert(0, Op::Reg(dst));
            assign.insert(1, Op::Reg(src.with_width(Width::W16)));
            seq.push(Inst::bind(&desc, &assign, &mut pool).unwrap());
        }
        seq
    }

    #[test]
    fn differencing_removes_constant_overhead() {
        let c = catalog();
        let backend = SimBackend::new(MicroArch::Skylake);
        // A 2-instruction MOVSX chain has a latency of 2 cycles per chain
        // iteration; the measured per-sequence cycles must be close to 2
        // even though every raw run includes dozens of overhead cycles.
        let chain = movsx_chain(&c, 2);
        let m = measure(&backend, &chain, &MeasurementConfig::default(), RunContext::default());
        assert!((m.cycles - 2.0).abs() < 0.3, "cycles = {}", m.cycles);
        assert!((m.uops_total - 2.0).abs() < 0.3, "uops = {}", m.uops_total);
    }

    #[test]
    fn per_instruction_scaling() {
        let c = catalog();
        let backend = SimBackend::new(MicroArch::Skylake);
        let chain = movsx_chain(&c, 4);
        let m = measure(&backend, &chain, &MeasurementConfig::default(), RunContext::default());
        let per_inst = m.per(4.0);
        assert!(
            (per_inst.cycles - 1.0).abs() < 0.2,
            "per-instruction cycles = {}",
            per_inst.cycles
        );
    }

    #[test]
    fn port_counters_are_reported_per_iteration() {
        let c = catalog();
        let backend = SimBackend::new(MicroArch::Skylake);
        let desc = variant_arc(&c, "PSHUFD", "XMM, XMM, I8").unwrap();
        let mut pool = RegisterPool::new();
        let inst = Inst::bind(&desc, &BTreeMap::new(), &mut pool).unwrap();
        let m =
            measure_single(&backend, inst, &MeasurementConfig::default(), RunContext::default());
        // PSHUFD is one shuffle µop on port 5.
        assert!((m.uops_total - 1.0).abs() < 0.2);
        assert!(m.port(5) > 0.8, "port 5 share = {}", m.port(5));
        assert!(m.uops_on_ports(PortSet::of(&[5])) > 0.8);
    }

    #[test]
    fn fast_and_paper_configs_are_consistent() {
        let c = catalog();
        let backend = SimBackend::new(MicroArch::Haswell);
        let chain = movsx_chain(&c, 2);
        let fast = measure(&backend, &chain, &MeasurementConfig::fast(), RunContext::default());
        let paper = measure(&backend, &chain, &MeasurementConfig::paper(), RunContext::default());
        assert!((fast.cycles - paper.cycles).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "large unroll factor must exceed")]
    fn invalid_config_panics() {
        let backend = SimBackend::new(MicroArch::Skylake);
        let cfg =
            MeasurementConfig { base_unroll: 10, large_unroll: 10, repetitions: 1, warmup: false };
        let _ = measure(&backend, &CodeSequence::new(), &cfg, RunContext::default());
    }
}
