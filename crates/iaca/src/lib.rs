//! # uops-iaca
//!
//! A functional stand-in for Intel's Architecture Code Analyzer (IACA), used
//! by the paper as the reference point for the hardware-vs-static comparison
//! of Table 1 and for the error analyses of §7.2.
//!
//! The analyzer provides a *static*, version-dependent instruction database
//! (versions 2.1–3.0 with the support matrix of Table 1) that deliberately
//! contains the classes of errors the paper documents: missing load µops,
//! spurious store µops, variant-insensitive µop counts, per-version
//! differences, inconsistent per-port views, and predictions that ignore
//! status-flag and memory dependencies.
//!
//! ## Example
//!
//! ```rust
//! use uops_iaca::{IacaAnalyzer, IacaVersion};
//! use uops_isa::Catalog;
//! use uops_uarch::MicroArch;
//!
//! let catalog = Catalog::intel_core();
//! let analyzer = IacaAnalyzer::new(MicroArch::Skylake, IacaVersion::V30).unwrap();
//! let cmc = catalog.find_variant("CMC", "").unwrap();
//! let data = analyzer.analyze_instruction(cmc).unwrap();
//! // IACA ignores the carry-flag dependency (§7.2).
//! assert!(data.throughput < 0.5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyzer;
pub mod compare;
pub mod version;

pub use analyzer::{IacaAnalyzer, IacaInstructionData, IacaReport};
pub use compare::{compare_against_iaca, AgreementStats, MeasuredInstruction};
pub use version::IacaVersion;
