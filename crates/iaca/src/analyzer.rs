//! The IACA-analogue static analyzer.
//!
//! Intel IACA is a closed-source tool that statically predicts the throughput
//! and port usage of loop kernels (§2.1, §6.3). This module provides a
//! functional stand-in: a static, version-dependent instruction database that
//! is *deliberately imperfect* in the ways the paper documents (§7.2) —
//! missing load µops, spurious store µops, variant-insensitive µop counts,
//! per-version differences, ignored flag and memory dependencies — so that
//! the hardware-vs-IACA comparison of Table 1 can be reproduced in structure.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use uops_asm::{CodeSequence, Inst, RegisterPool};
use uops_isa::InstructionDesc;
use uops_uarch::{characterize, MicroArch, PortSet, TruthOptions, UarchConfig};

use crate::version::IacaVersion;

/// IACA's view of one instruction variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IacaInstructionData {
    /// Total number of µops IACA reports for the instruction.
    pub uop_count: u32,
    /// Port usage as reported in the detailed (per-port) view.
    pub port_usage: Vec<(PortSet, u32)>,
    /// IACA sometimes reports a total µop count that does not match the sum
    /// of the per-port view (e.g. VHADDPD on Skylake, §7.2).
    pub per_port_sum_mismatch: bool,
    /// The throughput IACA predicts for the instruction in isolation
    /// (ignoring all implicit dependencies, §7.2).
    pub throughput: f64,
}

impl IacaInstructionData {
    /// The number of µops in the per-port view.
    #[must_use]
    pub fn per_port_uop_sum(&self) -> u32 {
        self.port_usage.iter().map(|(_, n)| n).sum()
    }

    /// The port usage in the paper's notation.
    #[must_use]
    pub fn port_usage_string(&self) -> String {
        if self.port_usage.is_empty() {
            return "0".to_string();
        }
        self.port_usage.iter().map(|(p, n)| format!("{n}*{p}")).collect::<Vec<_>>().join("+")
    }
}

/// IACA's analysis of a loop kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IacaReport {
    /// Predicted block throughput (cycles per loop iteration).
    pub block_throughput: f64,
    /// Aggregated µops per port combination over the whole kernel.
    pub port_usage: Vec<(PortSet, u32)>,
    /// Total µop count over the kernel.
    pub total_uops: u32,
}

/// The static analyzer for one microarchitecture and one IACA version.
#[derive(Debug, Clone)]
pub struct IacaAnalyzer {
    version: IacaVersion,
    arch: MicroArch,
    cfg: UarchConfig,
}

impl IacaAnalyzer {
    /// Creates an analyzer; returns `None` if the version does not support
    /// the microarchitecture.
    #[must_use]
    pub fn new(arch: MicroArch, version: IacaVersion) -> Option<IacaAnalyzer> {
        if !version.supports(arch) {
            return None;
        }
        Some(IacaAnalyzer { version, arch, cfg: UarchConfig::for_arch(arch) })
    }

    /// The analyzer's version.
    #[must_use]
    pub fn version(&self) -> IacaVersion {
        self.version
    }

    /// The analyzed microarchitecture.
    #[must_use]
    pub fn arch(&self) -> MicroArch {
        self.arch
    }

    /// Returns IACA's data for an instruction variant, or `None` if IACA does
    /// not support the instruction.
    #[must_use]
    pub fn analyze_instruction(&self, desc: &InstructionDesc) -> Option<IacaInstructionData> {
        if desc.attrs.system || !self.arch.supports(desc.extension) {
            return None;
        }
        // A few percent of the instruction set is simply absent from IACA's
        // database (deterministically chosen per version).
        if hash(&[&desc.mnemonic, &desc.variant(), self.version.name()]) % 100 < 3 {
            return None;
        }

        // Start from the microarchitectural model IACA's authors would have
        // had access to (our ground truth), then apply the documented error
        // classes.
        let mut pool = RegisterPool::new();
        let arc = std::sync::Arc::new(desc.clone());
        let inst = Inst::bind(&arc, &BTreeMap::new(), &mut pool).ok()?;
        let truth = characterize(&inst, &self.cfg, TruthOptions::default());
        let mut usage: BTreeMap<PortSet, u32> = BTreeMap::new();
        for (ports, count) in truth.port_usage() {
            *usage.entry(ports).or_insert(0) += count;
        }
        let mut uop_count = truth.uop_count() as u32;
        let mut per_port_sum_mismatch = false;

        self.apply_error_classes(desc, &mut usage, &mut uop_count, &mut per_port_sum_mismatch);
        self.apply_generic_noise(desc, &mut usage, &mut uop_count);

        let port_usage: Vec<(PortSet, u32)> = usage.into_iter().filter(|(_, n)| *n > 0).collect();
        let throughput = self.throughput_of(&port_usage);
        Some(IacaInstructionData { uop_count, port_usage, per_port_sum_mismatch, throughput })
    }

    /// Analyzes a code sequence as the body of a loop, the way IACA does:
    /// dependencies between instructions (including memory and status-flag
    /// dependencies) are ignored; only port pressure counts.
    #[must_use]
    pub fn analyze_sequence(&self, code: &CodeSequence) -> IacaReport {
        let mut usage: BTreeMap<PortSet, u32> = BTreeMap::new();
        let mut total = 0u32;
        for inst in code.iter() {
            if let Some(data) = self.analyze_instruction(inst.desc()) {
                total += data.uop_count;
                for (ports, count) in data.port_usage {
                    *usage.entry(ports).or_insert(0) += count;
                }
            }
        }
        let port_usage: Vec<(PortSet, u32)> = usage.into_iter().collect();
        let block_throughput = self.throughput_of(&port_usage).max(total as f64 / 4.0);
        IacaReport { block_throughput, port_usage, total_uops: total }
    }

    fn throughput_of(&self, usage: &[(PortSet, u32)]) -> f64 {
        if usage.is_empty() {
            return 0.25;
        }
        let mut map = uops_lp::PortUsageMap::new();
        for (ports, count) in usage {
            let mask = ports.iter().fold(0u16, |m, p| m | (1 << p));
            *map.entry(mask).or_insert(0.0) += f64::from(*count);
        }
        let all: u16 = (0..self.cfg.port_count).fold(0, |m, p| m | (1 << p));
        uops_lp::min_max_load(&map, all)
    }

    /// The specific, documented error classes of §7.2.
    fn apply_error_classes(
        &self,
        desc: &InstructionDesc,
        usage: &mut BTreeMap<PortSet, u32>,
        uop_count: &mut u32,
        per_port_sum_mismatch: &mut bool,
    ) {
        use MicroArch as M;
        let mnemonic = desc.mnemonic.as_str();
        let pre_sandy = matches!(self.arch, M::Nehalem | M::Westmere);

        // Missing load µop: IMUL with a memory operand on Nehalem.
        if pre_sandy && mnemonic == "IMUL" && desc.reads_memory() {
            if let Some(count) = usage.get_mut(&self.cfg.load) {
                *uop_count = uop_count.saturating_sub(*count);
                *count = 0;
            }
        }

        // Spurious store µops: TEST with a memory operand on Nehalem.
        if pre_sandy && mnemonic == "TEST" && desc.has_memory_operand() && !desc.writes_memory() {
            *usage.entry(self.cfg.store_addr).or_insert(0) += 1;
            *usage.entry(self.cfg.store_data).or_insert(0) += 1;
            *uop_count += 2;
        }

        // Variant-insensitive µop counts: BSWAP R32 on Skylake reported like
        // the 64-bit variant (2 µops).
        if self.arch.at_least(M::Skylake)
            && mnemonic == "BSWAP"
            && desc.variant() == "R32"
            && *uop_count == 1
        {
            *uop_count = 2;
            *usage.entry(self.cfg.int_shift).or_insert(0) += 1;
        }

        // Per-port sum mismatch: VHADDPD on Skylake shows only one µop in the
        // detailed view even though the total is three.
        if self.arch.at_least(M::Skylake) && mnemonic == "VHADDPD" {
            *per_port_sum_mismatch = true;
            usage.retain(|ports, _| *ports == self.cfg.fp_add);
            for count in usage.values_mut() {
                *count = 1;
            }
        }

        // Version differences: VMINPS on Skylake uses p015 in IACA 2.3 but
        // p01 in 3.0 (and on the hardware).
        if self.arch.at_least(M::Skylake)
            && mnemonic.starts_with("VMIN")
            && self.version == IacaVersion::V23
        {
            let total: u32 = usage.values().sum();
            usage.clear();
            usage.insert(self.cfg.vec_alu, total);
        }

        // Version differences: SAHF on Haswell uses p06 on the hardware and
        // in IACA 2.1, but p0156 in later versions.
        if self.arch == M::Haswell && mnemonic == "SAHF" && self.version != IacaVersion::V21 {
            let total: u32 = usage.values().sum();
            usage.clear();
            usage.insert(self.cfg.int_alu, total.max(1));
        }

        // MOVQ2DQ on Skylake: both µops are reported on port 5 only.
        if self.arch.at_least(M::Skylake) && mnemonic == "MOVQ2DQ" {
            let total: u32 = usage.values().sum();
            usage.clear();
            usage.insert(self.cfg.vec_shuffle, total.max(2));
        }

        // MOVDQ2Q on Haswell: IACA 2.1 matches the hardware; later versions
        // report 1*p01 + 1*p015.
        if self.arch == M::Haswell && mnemonic == "MOVDQ2Q" && self.version != IacaVersion::V21 {
            usage.clear();
            usage.insert(PortSet::of(&[0, 1]), 1);
            usage.insert(PortSet::of(&[0, 1, 5]), 1);
        }

        // LOCK-prefixed instructions: IACA reports a different µop count than
        // the measurements in most cases.
        if desc.attrs.locked {
            *uop_count += 6;
        }
        // REP-prefixed instructions have a variable µop count; IACA reports a
        // fixed (and usually different) number.
        if desc.attrs.rep_prefix {
            *uop_count = 20;
        }
    }

    /// Deterministic pseudo-random perturbations standing in for the many
    /// small undocumented inaccuracies of IACA's tables, so that the
    /// aggregate agreement with the measurements lands in the range reported
    /// in Table 1 (≈ 85–90% of variants with matching µop counts; ≈ 91–98%
    /// matching port usage among those).
    fn apply_generic_noise(
        &self,
        desc: &InstructionDesc,
        usage: &mut BTreeMap<PortSet, u32>,
        uop_count: &mut u32,
    ) {
        let h = hash(&[&desc.mnemonic, &desc.variant(), self.arch.name()]);
        // ~7% of variants: wrong µop count.
        if h % 100 < 7 {
            *uop_count += 1;
            *usage.entry(self.cfg.int_alu).or_insert(0) += 1;
            return;
        }
        // ~4% of variants: same µop count but a coarser port assignment
        // (version-dependent for half of them).
        let version_salt = if h.is_multiple_of(2) { 0 } else { self.version as u8 as u64 };
        let h2 =
            hash(&[&desc.mnemonic, &desc.variant(), self.arch.name(), &version_salt.to_string()]);
        if h2 % 100 < 4 {
            if let Some((&ports, &count)) = usage.iter().next() {
                if ports != self.cfg.int_alu && ports != self.cfg.store_data {
                    usage.remove(&ports);
                    *usage.entry(self.cfg.vec_shuffle).or_insert(0) += count;
                }
            }
        }
    }
}

impl fmt::Display for IacaAnalyzer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} for {}", self.version, self.arch)
    }
}

/// A small FNV-style hash for deterministic pseudo-random decisions.
fn hash(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use uops_isa::Catalog;

    fn analyzer(arch: MicroArch, version: IacaVersion) -> IacaAnalyzer {
        IacaAnalyzer::new(arch, version).expect("supported combination")
    }

    #[test]
    fn unsupported_combinations_are_rejected() {
        assert!(IacaAnalyzer::new(MicroArch::KabyLake, IacaVersion::V30).is_none());
        assert!(IacaAnalyzer::new(MicroArch::Skylake, IacaVersion::V21).is_none());
        assert!(IacaAnalyzer::new(MicroArch::Skylake, IacaVersion::V30).is_some());
    }

    #[test]
    fn simple_instructions_match_the_truth() {
        let catalog = Catalog::intel_core();
        let a = analyzer(MicroArch::Skylake, IacaVersion::V30);
        let add = catalog.find_variant("ADD", "R64, R64").unwrap();
        let data = a.analyze_instruction(add).expect("ADD is supported");
        assert_eq!(data.uop_count, 1);
        assert_eq!(data.port_usage_string(), "1*p0156");
        assert!((data.throughput - 0.25).abs() < 1e-9);
    }

    #[test]
    fn cmc_throughput_ignores_the_flag_dependency() {
        // §7.2: IACA reports 0.25 cycles for CMC even though the carry-flag
        // dependency makes 1 cycle the true throughput.
        let catalog = Catalog::intel_core();
        let a = analyzer(MicroArch::Skylake, IacaVersion::V30);
        let cmc = catalog.find_variant("CMC", "").unwrap();
        let data = a.analyze_instruction(cmc).expect("CMC supported");
        assert!(data.throughput <= 0.3, "IACA throughput = {}", data.throughput);
    }

    #[test]
    fn store_load_sequence_ignores_memory_dependency() {
        // §7.2: mov [RAX], RBX; mov RBX, [RAX] is reported at 1 cycle.
        let catalog = Catalog::intel_core();
        let store = uops_asm::variant_arc(&catalog, "MOV", "M64, R64").unwrap();
        let load = uops_asm::variant_arc(&catalog, "MOV", "R64, M64").unwrap();
        let mut pool = RegisterPool::new();
        let mut seq = CodeSequence::new();
        seq.push(Inst::bind(&store, &BTreeMap::new(), &mut pool).unwrap());
        seq.push(Inst::bind(&load, &BTreeMap::new(), &mut pool).unwrap());
        let a = analyzer(MicroArch::Skylake, IacaVersion::V30);
        let report = a.analyze_sequence(&seq);
        assert!(
            report.block_throughput <= 1.5,
            "IACA block throughput = {}",
            report.block_throughput
        );
        assert!(report.total_uops >= 3);
    }

    #[test]
    fn bswap_32_bit_variant_is_misreported_on_skylake() {
        let catalog = Catalog::intel_core();
        let a = analyzer(MicroArch::Skylake, IacaVersion::V30);
        let b32 = catalog.find_variant("BSWAP", "R32").unwrap();
        let b64 = catalog.find_variant("BSWAP", "R64").unwrap();
        assert_eq!(
            a.analyze_instruction(b32).unwrap().uop_count,
            2,
            "IACA reports 2 µops for BSWAP R32"
        );
        assert_eq!(a.analyze_instruction(b64).unwrap().uop_count, 2);
    }

    #[test]
    fn vhaddpd_per_port_view_is_inconsistent_on_skylake() {
        let catalog = Catalog::intel_core();
        let a = analyzer(MicroArch::Skylake, IacaVersion::V30);
        let v = catalog.find_variant("VHADDPD", "XMM, XMM, XMM").unwrap();
        let data = a.analyze_instruction(v).unwrap();
        assert!(data.per_port_sum_mismatch);
        assert_eq!(data.uop_count, 3);
        assert!(data.per_port_uop_sum() < data.uop_count);
    }

    #[test]
    fn vminps_differs_between_versions_on_skylake() {
        let catalog = Catalog::intel_core();
        let v = catalog.find_variant("VMINPS", "XMM, XMM, XMM").unwrap();
        let v23 = analyzer(MicroArch::Skylake, IacaVersion::V23).analyze_instruction(v).unwrap();
        let v30 = analyzer(MicroArch::Skylake, IacaVersion::V30).analyze_instruction(v).unwrap();
        assert_ne!(v23.port_usage, v30.port_usage);
        assert_eq!(v30.port_usage_string(), "1*p01", "IACA 3.0 matches the hardware");
        assert_eq!(v23.port_usage_string(), "1*p015");
    }

    #[test]
    fn sahf_differs_between_versions_on_haswell() {
        let catalog = Catalog::intel_core();
        let sahf = catalog.find_variant("SAHF", "").unwrap();
        let v21 = analyzer(MicroArch::Haswell, IacaVersion::V21).analyze_instruction(sahf).unwrap();
        let v23 = analyzer(MicroArch::Haswell, IacaVersion::V23).analyze_instruction(sahf).unwrap();
        assert_eq!(v21.port_usage_string(), "1*p06", "IACA 2.1 matches the hardware");
        assert_eq!(v23.port_usage_string(), "1*p0156");
    }

    #[test]
    fn movq2dq_and_movdq2q_errors() {
        let catalog = Catalog::intel_core();
        let movq2dq = catalog.find_variant("MOVQ2DQ", "XMM, MM").unwrap();
        let skl =
            analyzer(MicroArch::Skylake, IacaVersion::V30).analyze_instruction(movq2dq).unwrap();
        assert_eq!(skl.port_usage_string(), "2*p5");
        let movdq2q = catalog.find_variant("MOVDQ2Q", "MM, XMM").unwrap();
        let hsw21 =
            analyzer(MicroArch::Haswell, IacaVersion::V21).analyze_instruction(movdq2q).unwrap();
        let hsw30 =
            analyzer(MicroArch::Haswell, IacaVersion::V30).analyze_instruction(movdq2q).unwrap();
        assert_ne!(hsw21.port_usage, hsw30.port_usage);
    }

    #[test]
    fn imul_memory_load_uop_is_missing_on_nehalem() {
        let catalog = Catalog::intel_core();
        let imul = catalog.find_variant("IMUL", "R64, M64").unwrap();
        let a = analyzer(MicroArch::Nehalem, IacaVersion::V21);
        let data = a.analyze_instruction(imul).unwrap();
        let cfg = UarchConfig::for_arch(MicroArch::Nehalem);
        assert_eq!(
            data.port_usage.iter().find(|(p, _)| *p == cfg.load).map(|(_, n)| *n).unwrap_or(0),
            0,
            "the load µop must be missing: {}",
            data.port_usage_string()
        );
    }

    #[test]
    fn test_with_memory_operand_gains_spurious_store_uops_on_nehalem() {
        let catalog = Catalog::intel_core();
        let test_mem = catalog.find_variant("TEST", "M64, R64").unwrap();
        let a = analyzer(MicroArch::Nehalem, IacaVersion::V21);
        let data = a.analyze_instruction(test_mem).unwrap();
        let cfg = UarchConfig::for_arch(MicroArch::Nehalem);
        assert!(data.port_usage.iter().any(|(p, _)| *p == cfg.store_data));
    }

    #[test]
    fn analysis_is_deterministic() {
        let catalog = Catalog::intel_core();
        let a = analyzer(MicroArch::Broadwell, IacaVersion::V30);
        for desc in catalog.iter().take(200) {
            assert_eq!(a.analyze_instruction(desc), a.analyze_instruction(desc));
        }
    }
}
