//! Hardware-measurement vs. IACA comparison (Table 1 and §7.2).
//!
//! The evaluation compares, for every instruction variant supported by both
//! the measurements and IACA, (1) whether *some* IACA version reports the
//! same µop count and (2) — among the variants where the µop counts agree —
//! whether the port usage also agrees.

use serde::{Deserialize, Serialize};

use uops_isa::InstructionDesc;
use uops_uarch::{MicroArch, PortSet};

use crate::analyzer::IacaAnalyzer;
use crate::version::IacaVersion;

/// A measured instruction characterization, in the minimal form needed for
/// the comparison (produced from `uops-core`'s profiles by the caller).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredInstruction {
    /// Mnemonic.
    pub mnemonic: String,
    /// Variant string.
    pub variant: String,
    /// The instruction has a LOCK prefix.
    pub locked: bool,
    /// The instruction has a REP prefix.
    pub rep_prefix: bool,
    /// Measured µop count.
    pub uop_count: u32,
    /// Measured port usage.
    pub port_usage: Vec<(PortSet, u32)>,
}

impl MeasuredInstruction {
    /// Builds a measured-instruction record from a descriptor and the
    /// measured µop count and port usage.
    #[must_use]
    pub fn new(desc: &InstructionDesc, uop_count: u32, port_usage: Vec<(PortSet, u32)>) -> Self {
        MeasuredInstruction {
            mnemonic: desc.mnemonic.clone(),
            variant: desc.variant(),
            locked: desc.attrs.locked,
            rep_prefix: desc.attrs.rep_prefix,
            uop_count,
            port_usage,
        }
    }
}

/// Aggregate agreement statistics between measurements and IACA for one
/// microarchitecture — one row of Table 1.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AgreementStats {
    /// The microarchitecture.
    pub arch: Option<MicroArch>,
    /// The IACA version range string (e.g. `"2.1–2.3"`), if supported.
    pub versions: Option<String>,
    /// Number of measured variants.
    pub measured_variants: usize,
    /// Number of variants supported by both the measurements and IACA.
    pub compared_variants: usize,
    /// Variants where at least one IACA version reports the same µop count.
    pub uops_match: usize,
    /// Same, but excluding LOCK- and REP-prefixed variants.
    pub uops_match_excluding_lock_rep: usize,
    /// Number of compared variants excluding LOCK/REP.
    pub compared_excluding_lock_rep: usize,
    /// Among the variants with matching µop counts, those where the port
    /// usage also matches for at least one version.
    pub ports_match: usize,
}

impl AgreementStats {
    /// Percentage of compared variants with matching µop counts.
    #[must_use]
    pub fn uops_match_pct(&self) -> f64 {
        percentage(self.uops_match, self.compared_variants)
    }

    /// Percentage of compared variants (excluding LOCK/REP) with matching
    /// µop counts — the fifth column of Table 1.
    #[must_use]
    pub fn uops_match_excl_pct(&self) -> f64 {
        percentage(self.uops_match_excluding_lock_rep, self.compared_excluding_lock_rep)
    }

    /// Percentage of µop-matching variants whose port usage also matches —
    /// the last column of Table 1.
    #[must_use]
    pub fn ports_match_pct(&self) -> f64 {
        percentage(self.ports_match, self.uops_match)
    }
}

fn percentage(num: usize, denom: usize) -> f64 {
    if denom == 0 {
        0.0
    } else {
        100.0 * num as f64 / denom as f64
    }
}

/// Compares measured characterizations against all IACA versions supporting
/// the microarchitecture. Returns `None` statistics (all zeros, `versions:
/// None`) if no IACA version supports the architecture (Kaby Lake, Coffee
/// Lake).
#[must_use]
pub fn compare_against_iaca(
    arch: MicroArch,
    measured: &[(MeasuredInstruction, InstructionDesc)],
) -> AgreementStats {
    let versions = IacaVersion::supporting(arch);
    let mut stats = AgreementStats {
        arch: Some(arch),
        versions: IacaVersion::range_string(arch),
        measured_variants: measured.len(),
        ..AgreementStats::default()
    };
    if versions.is_empty() {
        return stats;
    }
    let analyzers: Vec<IacaAnalyzer> =
        versions.iter().filter_map(|v| IacaAnalyzer::new(arch, *v)).collect();

    for (m, desc) in measured {
        // Collect IACA's views from every supporting version.
        let views: Vec<_> = analyzers.iter().filter_map(|a| a.analyze_instruction(desc)).collect();
        if views.is_empty() {
            continue; // not supported by IACA at all
        }
        stats.compared_variants += 1;
        let excluded = m.locked || m.rep_prefix;
        if !excluded {
            stats.compared_excluding_lock_rep += 1;
        }

        let uops_agree = views.iter().any(|v| v.uop_count == m.uop_count);
        if uops_agree {
            stats.uops_match += 1;
            if !excluded {
                stats.uops_match_excluding_lock_rep += 1;
            }
            let ports_agree = views.iter().any(|v| {
                let mut a = v.port_usage.clone();
                let mut b = m.port_usage.clone();
                a.sort();
                b.sort();
                a == b
            });
            if ports_agree {
                stats.ports_match += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;
    use uops_asm::{Inst, RegisterPool};
    use uops_isa::Catalog;
    use uops_uarch::{characterize, TruthOptions, UarchConfig};

    /// Builds "measured" data directly from the ground truth (the comparison
    /// logic itself is what is under test here).
    fn measured_from_truth(
        catalog: &Catalog,
        arch: MicroArch,
        limit: usize,
    ) -> Vec<(MeasuredInstruction, InstructionDesc)> {
        let cfg = UarchConfig::for_arch(arch);
        let mut out = Vec::new();
        for desc in catalog.iter() {
            if out.len() >= limit {
                break;
            }
            if !arch.supports(desc.extension) || desc.attrs.system {
                continue;
            }
            let arc = Arc::new(desc.clone());
            let mut pool = RegisterPool::new();
            let Ok(inst) = Inst::bind(&arc, &BTreeMap::new(), &mut pool) else { continue };
            let truth = characterize(&inst, &cfg, TruthOptions::default());
            let m = MeasuredInstruction::new(desc, truth.uop_count() as u32, truth.port_usage());
            out.push((m, desc.clone()));
        }
        out
    }

    #[test]
    fn agreement_is_high_but_not_perfect() {
        let catalog = Catalog::intel_core();
        for arch in [MicroArch::Skylake, MicroArch::Haswell, MicroArch::Nehalem] {
            let measured = measured_from_truth(&catalog, arch, 600);
            let stats = compare_against_iaca(arch, &measured);
            assert!(stats.compared_variants > 400, "{arch:?}: too few compared");
            let uops_pct = stats.uops_match_excl_pct();
            assert!(
                (80.0..100.0).contains(&uops_pct),
                "{arch:?}: µop agreement {uops_pct:.1}% out of expected range"
            );
            assert!(uops_pct < 99.9, "{arch:?}: agreement should not be perfect");
            let ports_pct = stats.ports_match_pct();
            assert!(
                (85.0..=100.0).contains(&ports_pct),
                "{arch:?}: port agreement {ports_pct:.1}% out of expected range"
            );
        }
    }

    #[test]
    fn unsupported_architectures_have_no_versions() {
        let catalog = Catalog::intel_core();
        let measured = measured_from_truth(&catalog, MicroArch::KabyLake, 50);
        let stats = compare_against_iaca(MicroArch::KabyLake, &measured);
        assert_eq!(stats.versions, None);
        assert_eq!(stats.compared_variants, 0);
        assert_eq!(stats.uops_match_pct(), 0.0);
    }

    #[test]
    fn lock_and_rep_are_excluded_from_the_adjusted_percentage() {
        let catalog = Catalog::intel_core();
        let arch = MicroArch::Haswell;
        let measured: Vec<_> = measured_from_truth(&catalog, arch, 2000)
            .into_iter()
            .filter(|(m, _)| m.locked || m.rep_prefix)
            .collect();
        assert!(!measured.is_empty(), "catalog contains LOCK/REP variants");
        let stats = compare_against_iaca(arch, &measured);
        assert_eq!(stats.compared_excluding_lock_rep, 0);
        // LOCK/REP µop counts are deliberately wrong in the IACA model.
        assert_eq!(stats.uops_match, 0);
    }

    #[test]
    fn percentages_handle_empty_inputs() {
        let stats = AgreementStats::default();
        assert_eq!(stats.uops_match_pct(), 0.0);
        assert_eq!(stats.ports_match_pct(), 0.0);
    }
}
