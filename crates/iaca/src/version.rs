//! IACA versions and their microarchitecture support matrix.

use std::fmt;

use serde::{Deserialize, Serialize};

use uops_uarch::MicroArch;

/// A version of the Intel Architecture Code Analyzer.
///
/// The paper uses versions 2.1 through 3.0 (§6.3); newer versions add support
/// for more recent microarchitectures and drop older ones, and different
/// versions sometimes disagree about the same instruction (§7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IacaVersion {
    /// IACA 2.1.
    V21,
    /// IACA 2.2.
    V22,
    /// IACA 2.3.
    V23,
    /// IACA 3.0.
    V30,
}

impl IacaVersion {
    /// All versions, oldest first.
    pub const ALL: [IacaVersion; 4] =
        [IacaVersion::V21, IacaVersion::V22, IacaVersion::V23, IacaVersion::V30];

    /// The human-readable version string.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IacaVersion::V21 => "2.1",
            IacaVersion::V22 => "2.2",
            IacaVersion::V23 => "2.3",
            IacaVersion::V30 => "3.0",
        }
    }

    /// Returns `true` if this version supports the given microarchitecture
    /// (matching the fourth column of Table 1: Nehalem/Westmere 2.1–2.2,
    /// Sandy/Ivy Bridge 2.1–2.3, Haswell 2.1–3.0, Broadwell 2.2–3.0,
    /// Skylake 2.3–3.0, Kaby/Coffee Lake unsupported).
    #[must_use]
    pub fn supports(self, arch: MicroArch) -> bool {
        use IacaVersion as V;
        use MicroArch as M;
        match arch {
            M::Nehalem | M::Westmere => matches!(self, V::V21 | V::V22),
            M::SandyBridge | M::IvyBridge => matches!(self, V::V21 | V::V22 | V::V23),
            M::Haswell => true,
            M::Broadwell => matches!(self, V::V22 | V::V23 | V::V30),
            M::Skylake => matches!(self, V::V23 | V::V30),
            M::KabyLake | M::CoffeeLake => false,
        }
    }

    /// The versions that support a given microarchitecture.
    #[must_use]
    pub fn supporting(arch: MicroArch) -> Vec<IacaVersion> {
        IacaVersion::ALL.into_iter().filter(|v| v.supports(arch)).collect()
    }

    /// The version range string for Table 1 (e.g. `"2.1–2.3"`), or `None` if
    /// the microarchitecture is unsupported.
    #[must_use]
    pub fn range_string(arch: MicroArch) -> Option<String> {
        let versions = IacaVersion::supporting(arch);
        let first = versions.first()?;
        let last = versions.last()?;
        Some(format!("{}–{}", first.name(), last.name()))
    }
}

impl fmt::Display for IacaVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IACA {}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_matrix_matches_table_1() {
        assert_eq!(IacaVersion::range_string(MicroArch::Nehalem).unwrap(), "2.1–2.2");
        assert_eq!(IacaVersion::range_string(MicroArch::SandyBridge).unwrap(), "2.1–2.3");
        assert_eq!(IacaVersion::range_string(MicroArch::Haswell).unwrap(), "2.1–3.0");
        assert_eq!(IacaVersion::range_string(MicroArch::Broadwell).unwrap(), "2.2–3.0");
        assert_eq!(IacaVersion::range_string(MicroArch::Skylake).unwrap(), "2.3–3.0");
        assert_eq!(IacaVersion::range_string(MicroArch::KabyLake), None);
        assert_eq!(IacaVersion::range_string(MicroArch::CoffeeLake), None);
    }

    #[test]
    fn display_and_names() {
        assert_eq!(IacaVersion::V21.to_string(), "IACA 2.1");
        assert_eq!(IacaVersion::V30.name(), "3.0");
        assert_eq!(IacaVersion::ALL.len(), 4);
    }

    #[test]
    fn supporting_lists_are_ordered() {
        let versions = IacaVersion::supporting(MicroArch::Haswell);
        assert_eq!(
            versions,
            vec![IacaVersion::V21, IacaVersion::V22, IacaVersion::V23, IacaVersion::V30]
        );
    }
}
