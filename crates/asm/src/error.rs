//! Error types of the `uops-asm` crate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing microbenchmark code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A looked-up instruction variant does not exist in the catalog.
    UnknownVariant {
        /// Mnemonic that was looked up.
        mnemonic: String,
        /// Variant string that was looked up.
        variant: String,
    },
    /// The register pool has no free register of the requested class.
    OutOfRegisters {
        /// The register class that could not be satisfied.
        class: String,
    },
    /// The number of operands supplied does not match the descriptor.
    OperandCount {
        /// Full name of the instruction.
        instruction: String,
        /// Number of operands the descriptor expects.
        expected: usize,
        /// Number of operands that were supplied.
        actual: usize,
    },
    /// No suitable chain or dependency-breaking instruction could be found.
    NoSuitableInstruction {
        /// Description of what was being searched for.
        purpose: String,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnknownVariant { mnemonic, variant } => {
                write!(f, "unknown instruction variant: {mnemonic} ({variant})")
            }
            AsmError::OutOfRegisters { class } => {
                write!(f, "no free register of class {class}")
            }
            AsmError::OperandCount { instruction, expected, actual } => {
                write!(f, "{instruction}: expected {expected} operands, got {actual}")
            }
            AsmError::NoSuitableInstruction { purpose } => {
                write!(f, "no suitable instruction found for {purpose}")
            }
        }
    }
}

impl Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = AsmError::UnknownVariant { mnemonic: "FOO".into(), variant: "R64".into() };
        assert!(e.to_string().contains("FOO"));
        let e = AsmError::OutOfRegisters { class: "XMM".into() };
        assert!(e.to_string().contains("XMM"));
        let e = AsmError::OperandCount { instruction: "ADD".into(), expected: 2, actual: 1 };
        assert!(e.to_string().contains("expected 2"));
        let e = AsmError::NoSuitableInstruction { purpose: "chain".into() };
        assert!(e.to_string().contains("chain"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<AsmError>();
    }
}
