//! Register and scratch-memory allocation for microbenchmark construction.
//!
//! The benchmark generator must choose operand registers "such that no
//! additional dependencies are introduced" (§5.2). The [`RegisterPool`] hands
//! out architecturally distinct registers, keeps track of which registers are
//! already in use, and reserves a small set of registers that the measurement
//! harness needs for itself (the paper reserves two registers for the saved
//! state and the performance-counter data, §6.2; this pool additionally
//! reserves the stack pointer, the base pointer, and the scratch-memory base
//! register).

use std::collections::BTreeSet;

use uops_isa::{gpr, RegClass, RegFile, Register, Width};

use crate::error::AsmError;
use crate::operand::MemOperand;

/// Allocator for architectural registers and scratch-memory cells.
#[derive(Debug, Clone)]
pub struct RegisterPool {
    /// Registers that must never be handed out (by file and index).
    reserved: BTreeSet<(RegFile, u8)>,
    /// Registers currently allocated.
    allocated: BTreeSet<(RegFile, u8)>,
    /// Base register of the scratch memory area.
    mem_base: Register,
    /// Next free displacement in the scratch memory area.
    next_disp: i32,
    /// Stride between distinct scratch cells, in bytes.
    cell_stride: i32,
}

impl Default for RegisterPool {
    fn default() -> Self {
        Self::new()
    }
}

impl RegisterPool {
    /// The default scratch-memory base register (`R14`).
    #[must_use]
    pub fn default_mem_base() -> Register {
        Register::gpr(14, Width::W64)
    }

    /// Creates a pool with the default reservations: `RSP`, `RBP`, `R14`
    /// (scratch-memory base) and `R15` (reserved for the measurement
    /// harness).
    #[must_use]
    pub fn new() -> RegisterPool {
        let mut reserved = BTreeSet::new();
        reserved.insert((RegFile::Gpr, gpr::RSP));
        reserved.insert((RegFile::Gpr, gpr::RBP));
        reserved.insert((RegFile::Gpr, 14));
        reserved.insert((RegFile::Gpr, 15));
        RegisterPool {
            reserved,
            allocated: BTreeSet::new(),
            mem_base: Self::default_mem_base(),
            next_disp: 0,
            cell_stride: 64,
        }
    }

    /// Additionally reserves a register so it will not be handed out.
    pub fn reserve(&mut self, reg: Register) {
        self.reserved.insert((reg.file, reg.index));
    }

    /// Marks a register as allocated (e.g. because an assignment already uses
    /// it), so subsequent allocations will not return it.
    pub fn mark_used(&mut self, reg: Register) {
        self.allocated.insert((reg.file, reg.index));
    }

    /// Returns `true` if the register is currently allocated or reserved.
    #[must_use]
    pub fn is_taken(&self, reg: Register) -> bool {
        let key = (reg.file, reg.index);
        self.reserved.contains(&key) || self.allocated.contains(&key)
    }

    /// Allocates a register of the given class.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::OutOfRegisters`] if no register of the class is
    /// available.
    pub fn alloc(&mut self, class: RegClass) -> Result<Register, AsmError> {
        self.alloc_excluding(class, &[])
    }

    /// Allocates a register of the given class that does not alias any of the
    /// registers in `exclude`.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::OutOfRegisters`] if no suitable register is
    /// available.
    pub fn alloc_excluding(
        &mut self,
        class: RegClass,
        exclude: &[Register],
    ) -> Result<Register, AsmError> {
        let count = class.file.count();
        // Prefer higher-numbered GPRs to avoid the architecturally special
        // low registers (RAX/RCX/RDX are implicit operands of many
        // instructions).
        let order: Vec<u8> = match class.file {
            RegFile::Gpr => vec![3, 6, 7, 8, 9, 10, 11, 12, 13, 1, 2, 0, 5, 4, 14, 15],
            _ => (0..count).collect(),
        };
        for idx in order {
            if idx >= count {
                continue;
            }
            let key = (class.file, idx);
            if self.reserved.contains(&key) || self.allocated.contains(&key) {
                continue;
            }
            if exclude.iter().any(|r| r.file == class.file && r.index == idx) {
                continue;
            }
            self.allocated.insert(key);
            return Ok(Register { file: class.file, index: idx, width: class.width });
        }
        Err(AsmError::OutOfRegisters { class: class.to_string() })
    }

    /// Releases a previously allocated register.
    pub fn release(&mut self, reg: Register) {
        self.allocated.remove(&(reg.file, reg.index));
    }

    /// Releases all allocated registers and resets the scratch-memory
    /// displacement counter. Reservations are kept.
    pub fn reset(&mut self) {
        self.allocated.clear();
        self.next_disp = 0;
    }

    /// The base register of the scratch memory area.
    #[must_use]
    pub fn memory_base(&self) -> Register {
        self.mem_base
    }

    /// Changes the scratch-memory base register (it is reserved
    /// automatically).
    pub fn set_memory_base(&mut self, reg: Register) {
        self.mem_base = reg;
        self.reserve(reg);
    }

    /// Returns a fresh scratch-memory cell of the given width. Each call
    /// returns a distinct cell (cells are spaced one cache line apart).
    pub fn fresh_mem(&mut self, width: Width) -> MemOperand {
        let disp = self.next_disp;
        self.next_disp += self.cell_stride;
        MemOperand::new(self.mem_base, disp, width)
    }

    /// Returns the scratch-memory cell at a specific displacement (useful
    /// when several instructions must touch the *same* cell).
    #[must_use]
    pub fn mem_at(&self, disp: i32, width: Width) -> MemOperand {
        MemOperand::new(self.mem_base, disp, width)
    }

    /// Number of currently allocated registers.
    #[must_use]
    pub fn allocated_count(&self) -> usize {
        self.allocated.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_distinct() {
        let mut pool = RegisterPool::new();
        let a = pool.alloc(RegClass::gpr(Width::W64)).unwrap();
        let b = pool.alloc(RegClass::gpr(Width::W64)).unwrap();
        let c = pool.alloc(RegClass::gpr(Width::W32)).unwrap();
        assert!(!a.aliases(b));
        assert!(!a.aliases(c));
        assert!(!b.aliases(c));
    }

    #[test]
    fn reserved_registers_are_never_allocated() {
        let mut pool = RegisterPool::new();
        let mut allocated = Vec::new();
        while let Ok(r) = pool.alloc(RegClass::gpr(Width::W64)) {
            allocated.push(r);
        }
        for r in &allocated {
            assert_ne!(r.index, gpr::RSP, "RSP must never be allocated");
            assert_ne!(r.index, gpr::RBP, "RBP must never be allocated");
            assert_ne!(r.index, 14, "R14 (memory base) must never be allocated");
            assert_ne!(r.index, 15, "R15 (harness) must never be allocated");
        }
        // 16 GPRs minus 4 reserved.
        assert_eq!(allocated.len(), 12);
    }

    #[test]
    fn out_of_registers_error() {
        let mut pool = RegisterPool::new();
        for _ in 0..8 {
            pool.alloc(RegClass::mmx()).unwrap();
        }
        let err = pool.alloc(RegClass::mmx()).unwrap_err();
        assert!(matches!(err, AsmError::OutOfRegisters { .. }));
    }

    #[test]
    fn release_and_reset() {
        let mut pool = RegisterPool::new();
        let a = pool.alloc(RegClass::gpr(Width::W64)).unwrap();
        assert_eq!(pool.allocated_count(), 1);
        pool.release(a);
        assert_eq!(pool.allocated_count(), 0);
        let _ = pool.alloc(RegClass::vec(Width::W128)).unwrap();
        pool.reset();
        assert_eq!(pool.allocated_count(), 0);
        let m = pool.fresh_mem(Width::W64);
        assert_eq!(m.disp, 0, "reset must rewind the displacement counter");
    }

    #[test]
    fn exclusion_is_respected() {
        let mut pool = RegisterPool::new();
        let rbx = Register::gpr(gpr::RBX, Width::W64);
        let r = pool.alloc_excluding(RegClass::gpr(Width::W64), &[rbx]).unwrap();
        assert!(!r.aliases(rbx));
    }

    #[test]
    fn fresh_mem_cells_are_distinct() {
        let mut pool = RegisterPool::new();
        let a = pool.fresh_mem(Width::W64);
        let b = pool.fresh_mem(Width::W64);
        assert_ne!(a.cell(), b.cell());
        assert_eq!(a.base, pool.memory_base());
        let fixed = pool.mem_at(0, Width::W32);
        assert_eq!(fixed.cell(), a.cell(), "mem_at(0) aliases the first fresh cell");
    }

    #[test]
    fn mark_used_blocks_allocation() {
        let mut pool = RegisterPool::new();
        let rbx = Register::gpr(gpr::RBX, Width::W64);
        pool.mark_used(rbx);
        assert!(pool.is_taken(rbx));
        let next = pool.alloc(RegClass::gpr(Width::W64)).unwrap();
        assert!(!next.aliases(rbx));
    }

    #[test]
    fn custom_memory_base_is_reserved() {
        let mut pool = RegisterPool::new();
        let rdi = Register::gpr(gpr::RDI, Width::W64);
        pool.set_memory_base(rdi);
        assert_eq!(pool.memory_base(), rdi);
        let mut allocated = Vec::new();
        while let Ok(r) = pool.alloc(RegClass::gpr(Width::W64)) {
            allocated.push(r);
        }
        assert!(allocated.iter().all(|r| !r.aliases(rdi)));
    }
}
