//! # uops-asm
//!
//! Assembler-code generation for the uops.info microbenchmarks.
//!
//! The crate turns instruction *descriptors* from [`uops_isa`] into concrete
//! instruction *instances* with bound operands ([`Inst`]), manages register
//! and scratch-memory allocation ([`RegisterPool`]), and assembles instances
//! into [`CodeSequence`]s that the measurement backends execute.
//!
//! ## Example
//!
//! ```rust
//! use std::collections::BTreeMap;
//! use uops_asm::{variant_arc, CodeSequence, Inst, RegisterPool};
//! use uops_isa::Catalog;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let catalog = Catalog::intel_core();
//! let add = variant_arc(&catalog, "ADD", "R64, R64")?;
//! let mut pool = RegisterPool::new();
//! let inst = Inst::bind(&add, &BTreeMap::new(), &mut pool)?;
//! let mut seq = CodeSequence::new();
//! seq.push(inst);
//! assert_eq!(seq.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod inst;
pub mod operand;
pub mod pool;
pub mod sequence;

pub use error::AsmError;
pub use inst::{mem_width_of, variant_arc, Inst};
pub use operand::{MemCell, MemOperand, Op, Resource};
pub use pool::RegisterPool;
pub use sequence::CodeSequence;
