//! Concrete (bound) operands of instruction instances.
//!
//! While [`uops_isa::OperandDesc`] describes what *kind* of operand an
//! instruction variant takes, the types in this module represent the concrete
//! values chosen when the instruction is instantiated in a microbenchmark: a
//! specific register, a specific memory location (base register +
//! displacement), or a specific immediate value.

use std::fmt;

use serde::{Deserialize, Serialize};

use uops_isa::{Flag, FlagSet, RegFile, Register, Width};

/// A concrete memory operand. The tool only uses base-register addressing
/// with a small displacement (the paper does not vary addressing modes, §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemOperand {
    /// The base register holding the address.
    pub base: Register,
    /// Byte displacement added to the base register.
    pub disp: i32,
    /// The access width.
    pub width: Width,
}

impl MemOperand {
    /// Creates a memory operand `[base + disp]` of the given width.
    #[must_use]
    pub fn new(base: Register, disp: i32, width: Width) -> MemOperand {
        MemOperand { base, disp, width }
    }

    /// The abstract identity of the accessed memory cell, used for
    /// dependence analysis: two memory operands with the same base register
    /// (by architectural identity) and displacement refer to the same cell.
    #[must_use]
    pub fn cell(&self) -> MemCell {
        MemCell { base_file: self.base.file, base_index: self.base.index, disp: self.disp }
    }
}

impl fmt::Display for MemOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix = match self.width {
            Width::W8 => "byte ptr ",
            Width::W16 => "word ptr ",
            Width::W32 => "dword ptr ",
            Width::W64 => "qword ptr ",
            Width::W128 => "xmmword ptr ",
            Width::W256 => "ymmword ptr ",
        };
        if self.disp == 0 {
            write!(f, "{prefix}[{}]", self.base.with_width(Width::W64).name())
        } else if self.disp > 0 {
            write!(f, "{prefix}[{}+{}]", self.base.with_width(Width::W64).name(), self.disp)
        } else {
            write!(f, "{prefix}[{}{}]", self.base.with_width(Width::W64).name(), self.disp)
        }
    }
}

/// The identity of a memory cell for dependence analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemCell {
    /// Register file of the base register.
    pub base_file: RegFile,
    /// Index of the base register.
    pub base_index: u8,
    /// Displacement.
    pub disp: i32,
}

/// A concrete operand of an instruction instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// A concrete register.
    Reg(Register),
    /// A concrete memory location.
    Mem(MemOperand),
    /// An immediate value.
    Imm(i64),
    /// The status flags (implicit operand).
    Flags(FlagSet),
}

impl Op {
    /// Returns the register if this is a register operand.
    #[must_use]
    pub fn register(&self) -> Option<Register> {
        match self {
            Op::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// Returns the memory operand if this is one.
    #[must_use]
    pub fn memory(&self) -> Option<MemOperand> {
        match self {
            Op::Mem(m) => Some(*m),
            _ => None,
        }
    }

    /// Returns the immediate value if this is one.
    #[must_use]
    pub fn immediate(&self) -> Option<i64> {
        match self {
            Op::Imm(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Reg(r) => write!(f, "{}", r.name()),
            Op::Mem(m) => write!(f, "{m}"),
            Op::Imm(v) => write!(f, "{v}"),
            Op::Flags(set) => write!(f, "<flags:{set}>"),
        }
    }
}

/// An architectural resource read or written by an instruction instance:
/// either an architectural register (identified by file and index, ignoring
/// the access width), a single status flag, or a memory cell.
///
/// Resources are the granularity at which read-after-write dependencies are
/// detected, both by the benchmark generator (to ensure independence where
/// required) and by the simulator's renamer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Resource {
    /// An architectural register (width-insensitive identity).
    Reg(RegFile, u8),
    /// A single status flag.
    Flag(Flag),
    /// A memory cell.
    Mem(MemCell),
}

impl Resource {
    /// The resource corresponding to a register.
    #[must_use]
    pub fn of_register(r: Register) -> Resource {
        Resource::Reg(r.file, r.index)
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Reg(file, idx) => write!(f, "{file}{idx}"),
            Resource::Flag(flag) => write!(f, "{flag}"),
            Resource::Mem(cell) => {
                write!(f, "[{}{}+{}]", cell.base_file, cell.base_index, cell.disp)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uops_isa::gpr;

    #[test]
    fn memory_operand_display() {
        let base = Register::gpr(gpr::R14, Width::W64);
        assert_eq!(MemOperand::new(base, 0, Width::W64).to_string(), "qword ptr [R14]");
        assert_eq!(MemOperand::new(base, 8, Width::W32).to_string(), "dword ptr [R14+8]");
        assert_eq!(MemOperand::new(base, -16, Width::W128).to_string(), "xmmword ptr [R14-16]");
    }

    #[test]
    fn memory_cell_identity() {
        let r14 = Register::gpr(gpr::R14, Width::W64);
        let a = MemOperand::new(r14, 0, Width::W64);
        let b = MemOperand::new(r14, 0, Width::W32);
        let c = MemOperand::new(r14, 8, Width::W64);
        assert_eq!(a.cell(), b.cell(), "width must not affect cell identity");
        assert_ne!(a.cell(), c.cell());
    }

    #[test]
    fn op_accessors() {
        let reg = Op::Reg(Register::gpr(0, Width::W64));
        let imm = Op::Imm(42);
        let mem = Op::Mem(MemOperand::new(Register::gpr(gpr::R14, Width::W64), 0, Width::W64));
        assert!(reg.register().is_some());
        assert!(reg.memory().is_none());
        assert_eq!(imm.immediate(), Some(42));
        assert!(mem.memory().is_some());
        assert!(mem.register().is_none());
    }

    #[test]
    fn resource_identity_is_width_insensitive() {
        let rax = Register::gpr(gpr::RAX, Width::W64);
        let eax = Register::gpr(gpr::RAX, Width::W32);
        assert_eq!(Resource::of_register(rax), Resource::of_register(eax));
        let xmm0 = Register::vec(0, Width::W128);
        assert_ne!(Resource::of_register(rax), Resource::of_register(xmm0));
    }

    #[test]
    fn op_display() {
        assert_eq!(Op::Reg(Register::gpr(gpr::RBX, Width::W64)).to_string(), "RBX");
        assert_eq!(Op::Imm(7).to_string(), "7");
        assert_eq!(Op::Flags(FlagSet::CF).to_string(), "<flags:CF>");
    }
}
