//! Code sequences: ordered lists of instruction instances forming the body of
//! a microbenchmark.

use std::fmt;

use crate::inst::Inst;
use crate::operand::Resource;

/// An ordered sequence of instruction instances.
///
/// A code sequence is what the measurement harness executes (the `AsmCode`
/// of Algorithm 2 in the paper): the sequence is unrolled a configurable
/// number of times and wrapped in the measurement prologue/epilogue by the
/// backend.
#[derive(Debug, Clone, Default)]
pub struct CodeSequence {
    instructions: Vec<Inst>,
}

impl CodeSequence {
    /// Creates an empty sequence.
    #[must_use]
    pub fn new() -> CodeSequence {
        CodeSequence::default()
    }

    /// Creates a sequence from a list of instructions.
    #[must_use]
    pub fn from_instructions(instructions: Vec<Inst>) -> CodeSequence {
        CodeSequence { instructions }
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Inst) {
        self.instructions.push(inst);
    }

    /// Appends all instructions of another sequence.
    pub fn extend_from(&mut self, other: &CodeSequence) {
        self.instructions.extend(other.instructions.iter().cloned());
    }

    /// Returns a new sequence consisting of `n` copies of this sequence.
    #[must_use]
    pub fn repeat(&self, n: usize) -> CodeSequence {
        let mut out = Vec::with_capacity(self.instructions.len() * n);
        for _ in 0..n {
            out.extend(self.instructions.iter().cloned());
        }
        CodeSequence { instructions: out }
    }

    /// The number of instructions in the sequence.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` if the sequence contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instructions of the sequence.
    #[must_use]
    pub fn instructions(&self) -> &[Inst] {
        &self.instructions
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> impl Iterator<Item = &Inst> {
        self.instructions.iter()
    }

    /// Counts how many instructions use the given mnemonic.
    #[must_use]
    pub fn count_mnemonic(&self, mnemonic: &str) -> usize {
        self.instructions.iter().filter(|i| i.mnemonic() == mnemonic).count()
    }

    /// Returns `true` if instruction `j` has a read-after-write dependency on
    /// instruction `i` (with `i < j`), considering registers, flags, and
    /// memory cells.
    #[must_use]
    pub fn has_raw_dependency(&self, i: usize, j: usize) -> bool {
        if i >= j || j >= self.instructions.len() {
            return false;
        }
        self.instructions[j].depends_on(&self.instructions[i])
    }

    /// Returns `true` if consecutive instructions form a dependency chain
    /// (each instruction reads something the immediately preceding
    /// instruction writes).
    #[must_use]
    pub fn is_dependency_chain(&self) -> bool {
        self.instructions.windows(2).all(|w| w[1].depends_on(&w[0]))
    }

    /// Returns `true` if *no* instruction depends on any earlier instruction
    /// in the sequence (ignoring resources in `ignored`). This is the
    /// independence requirement of the throughput microbenchmarks (§5.3.1);
    /// `ignored` is typically the set of resources for which independence is
    /// impossible (implicit operands that are both read and written).
    #[must_use]
    pub fn is_independent(&self, ignored: &[Resource]) -> bool {
        for j in 1..self.instructions.len() {
            let reads = self.instructions[j].reads();
            for i in 0..j {
                let writes = self.instructions[i].writes();
                if reads.iter().any(|r| !ignored.contains(r) && writes.contains(r)) {
                    return false;
                }
            }
        }
        true
    }

    /// All resources written anywhere in the sequence.
    #[must_use]
    pub fn written_resources(&self) -> Vec<Resource> {
        let mut out: Vec<Resource> = Vec::new();
        for inst in &self.instructions {
            for r in inst.writes() {
                if !out.contains(&r) {
                    out.push(r);
                }
            }
        }
        out
    }

    /// A multi-line Intel-syntax listing of the sequence.
    #[must_use]
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for inst in &self.instructions {
            out.push_str(&inst.to_intel_syntax());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for CodeSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.listing())
    }
}

impl FromIterator<Inst> for CodeSequence {
    fn from_iter<T: IntoIterator<Item = Inst>>(iter: T) -> CodeSequence {
        CodeSequence { instructions: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a CodeSequence {
    type Item = &'a Inst;
    type IntoIter = std::slice::Iter<'a, Inst>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::variant_arc;
    use crate::operand::Op;
    use crate::pool::RegisterPool;
    use std::collections::BTreeMap;
    use uops_isa::{gpr, Catalog, Register, Width};

    fn movsx_chain(len: usize) -> CodeSequence {
        // MOVSX RBX, CX ; MOVSX RCX, BX ; ... a classic latency chain.
        let c = Catalog::intel_core();
        let desc = variant_arc(&c, "MOVSX", "R64, R16").unwrap();
        let mut pool = RegisterPool::new();
        let a = Register::gpr(gpr::RBX, Width::W64);
        let b = Register::gpr(gpr::RCX, Width::W64);
        let mut seq = CodeSequence::new();
        for i in 0..len {
            let (dst, src) = if i % 2 == 0 { (a, b) } else { (b, a) };
            let mut assign = BTreeMap::new();
            assign.insert(0, Op::Reg(dst));
            assign.insert(1, Op::Reg(src.with_width(Width::W16)));
            seq.push(crate::inst::Inst::bind(&desc, &assign, &mut pool).unwrap());
        }
        seq
    }

    #[test]
    fn chain_is_detected() {
        let seq = movsx_chain(6);
        assert_eq!(seq.len(), 6);
        assert!(seq.is_dependency_chain());
        assert!(!seq.is_independent(&[]));
        assert!(seq.has_raw_dependency(0, 1));
        assert!(!seq.has_raw_dependency(1, 0));
    }

    #[test]
    fn repeat_multiplies_length() {
        let seq = movsx_chain(2);
        let repeated = seq.repeat(10);
        assert_eq!(repeated.len(), 20);
        assert_eq!(repeated.count_mnemonic("MOVSX"), 20);
    }

    #[test]
    fn independent_sequence_is_recognized() {
        let c = Catalog::intel_core();
        let desc = variant_arc(&c, "MOVSX", "R64, R16").unwrap();
        let mut pool = RegisterPool::new();
        let mut seq = CodeSequence::new();
        for _ in 0..4 {
            let dst = pool.alloc(uops_isa::RegClass::gpr(Width::W64)).unwrap();
            let src = pool.alloc(uops_isa::RegClass::gpr(Width::W16)).unwrap();
            let mut assign = BTreeMap::new();
            assign.insert(0, Op::Reg(dst));
            assign.insert(1, Op::Reg(src));
            seq.push(crate::inst::Inst::bind(&desc, &assign, &mut pool).unwrap());
        }
        assert!(seq.is_independent(&[]));
        assert!(!seq.is_dependency_chain());
    }

    #[test]
    fn listing_contains_all_instructions() {
        let seq = movsx_chain(3);
        let listing = seq.listing();
        assert_eq!(listing.lines().count(), 3);
        assert!(listing.lines().all(|l| l.starts_with("MOVSX ")));
        assert_eq!(seq.to_string(), listing);
    }

    #[test]
    fn written_resources_are_deduplicated() {
        let seq = movsx_chain(4);
        let written = seq.written_resources();
        // Only RBX and RCX are written, regardless of the chain length.
        assert_eq!(written.len(), 2);
    }

    #[test]
    fn from_iterator_collects() {
        let seq = movsx_chain(5);
        let collected: CodeSequence = seq.iter().cloned().collect();
        assert_eq!(collected.len(), 5);
    }
}
