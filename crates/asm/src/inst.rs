//! Instruction instances: an instruction variant with concrete operands.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use uops_isa::{InstructionDesc, OperandKind, Width};

use crate::error::AsmError;
use crate::operand::{MemOperand, Op, Resource};
use crate::pool::RegisterPool;

/// A concrete instruction instance: a variant descriptor together with one
/// bound operand per operand description (explicit and implicit).
#[derive(Debug, Clone)]
pub struct Inst {
    desc: Arc<InstructionDesc>,
    operands: Vec<Op>,
}

impl Inst {
    /// Creates an instruction instance with explicitly provided operands.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of operands does not match the
    /// descriptor.
    pub fn new(desc: Arc<InstructionDesc>, operands: Vec<Op>) -> Result<Inst, AsmError> {
        if operands.len() != desc.operands.len() {
            return Err(AsmError::OperandCount {
                instruction: desc.full_name(),
                expected: desc.operands.len(),
                actual: operands.len(),
            });
        }
        Ok(Inst { desc, operands })
    }

    /// Instantiates the descriptor, taking operands from `assignment` where
    /// provided (keyed by operand index) and allocating the remaining
    /// operands from the register pool.
    ///
    /// * Register-class operands are allocated from the pool.
    /// * Fixed-register operands are bound to their fixed register.
    /// * Memory operands are bound to a fresh cell in the pool's scratch
    ///   memory area (unless assigned).
    /// * Immediate operands default to the value `1`.
    /// * Flag operands are bound to their flag set.
    ///
    /// # Errors
    ///
    /// Returns an error if the pool runs out of registers.
    pub fn bind(
        desc: &Arc<InstructionDesc>,
        assignment: &BTreeMap<usize, Op>,
        pool: &mut RegisterPool,
    ) -> Result<Inst, AsmError> {
        let mut operands = Vec::with_capacity(desc.operands.len());
        for (i, od) in desc.operands.iter().enumerate() {
            if let Some(op) = assignment.get(&i) {
                operands.push(*op);
                continue;
            }
            let op = match od.kind {
                OperandKind::Reg(class) => Op::Reg(pool.alloc(class)?),
                OperandKind::FixedReg(reg) => Op::Reg(reg),
                OperandKind::Mem(width) => Op::Mem(pool.fresh_mem(width)),
                OperandKind::Imm(_) => Op::Imm(1),
                OperandKind::Flags(set) => Op::Flags(set),
            };
            operands.push(op);
        }
        Ok(Inst { desc: Arc::clone(desc), operands })
    }

    /// The instruction descriptor.
    #[must_use]
    pub fn desc(&self) -> &InstructionDesc {
        &self.desc
    }

    /// Shared handle to the descriptor.
    #[must_use]
    pub fn desc_arc(&self) -> Arc<InstructionDesc> {
        Arc::clone(&self.desc)
    }

    /// The bound operands (one per descriptor operand, explicit and implicit).
    #[must_use]
    pub fn operands(&self) -> &[Op] {
        &self.operands
    }

    /// The operand at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn operand(&self, i: usize) -> Op {
        self.operands[i]
    }

    /// Replaces the operand at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_operand(&mut self, i: usize, op: Op) {
        self.operands[i] = op;
    }

    /// The mnemonic of the instruction.
    #[must_use]
    pub fn mnemonic(&self) -> &str {
        &self.desc.mnemonic
    }

    /// Architectural resources read by this instance, including address
    /// registers of memory operands and individual status flags.
    #[must_use]
    pub fn reads(&self) -> Vec<Resource> {
        let mut out = Vec::new();
        for (od, op) in self.desc.operands.iter().zip(&self.operands) {
            match op {
                Op::Reg(r) => {
                    if od.read {
                        push_unique(&mut out, Resource::of_register(*r));
                    }
                }
                Op::Mem(m) => {
                    // The base register is always read for address generation,
                    // even by stores and LEA.
                    push_unique(&mut out, Resource::of_register(m.base));
                    if od.read {
                        push_unique(&mut out, Resource::Mem(m.cell()));
                    }
                }
                Op::Imm(_) => {}
                Op::Flags(set) => {
                    if od.read {
                        for f in set.iter() {
                            push_unique(&mut out, Resource::Flag(f));
                        }
                    }
                }
            }
        }
        out
    }

    /// Architectural resources written by this instance.
    #[must_use]
    pub fn writes(&self) -> Vec<Resource> {
        let mut out = Vec::new();
        for (od, op) in self.desc.operands.iter().zip(&self.operands) {
            if !od.write {
                continue;
            }
            match op {
                Op::Reg(r) => push_unique(&mut out, Resource::of_register(*r)),
                Op::Mem(m) => push_unique(&mut out, Resource::Mem(m.cell())),
                Op::Imm(_) => {}
                Op::Flags(set) => {
                    for f in set.iter() {
                        push_unique(&mut out, Resource::Flag(f));
                    }
                }
            }
        }
        out
    }

    /// Returns `true` if this instance has a read-after-write dependency on
    /// `earlier` (i.e. it reads a resource that `earlier` writes).
    #[must_use]
    pub fn depends_on(&self, earlier: &Inst) -> bool {
        let writes = earlier.writes();
        self.reads().iter().any(|r| writes.contains(r))
    }

    /// Returns `true` if all explicit register operands that are both read
    /// and written use the same register as some other explicit source
    /// operand — the "same register for both operands" scenario of §5.2.1.
    #[must_use]
    pub fn uses_same_register_for(&self, a: usize, b: usize) -> bool {
        match (self.operands.get(a), self.operands.get(b)) {
            (Some(Op::Reg(ra)), Some(Op::Reg(rb))) => ra.aliases(*rb),
            _ => false,
        }
    }

    /// The memory operands of the instruction.
    #[must_use]
    pub fn memory_operands(&self) -> Vec<MemOperand> {
        self.operands.iter().filter_map(Op::memory).collect()
    }

    /// Formats the instruction in Intel syntax (explicit operands only).
    #[must_use]
    pub fn to_intel_syntax(&self) -> String {
        let explicit: Vec<String> = self
            .desc
            .operands
            .iter()
            .zip(&self.operands)
            .filter(|(od, _)| od.is_explicit())
            .map(|(od, op)| match (od.kind, op) {
                // Print register operands at the width requested by the
                // descriptor (relevant when a wider register was assigned).
                (OperandKind::Reg(class), Op::Reg(r)) => r.with_width(class.width).name(),
                _ => op.to_string(),
            })
            .collect();
        if explicit.is_empty() {
            self.desc.mnemonic.clone()
        } else {
            format!("{} {}", self.desc.mnemonic, explicit.join(", "))
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_intel_syntax())
    }
}

fn push_unique(v: &mut Vec<Resource>, r: Resource) {
    if !v.contains(&r) {
        v.push(r);
    }
}

/// Convenience: looks up a variant in a catalog and returns its interned
/// [`Arc`] handle for repeated instantiation.
///
/// The catalog interns every descriptor behind an `Arc` at insertion time,
/// so this is a reference-count bump, not a deep clone — it is called for
/// every chain/breaker instruction the latency analyzer generates, which
/// made the old clone-and-wrap implementation a per-microbenchmark
/// allocation hot spot.
///
/// # Errors
///
/// Returns an error if the variant does not exist.
pub fn variant_arc(
    catalog: &uops_isa::Catalog,
    mnemonic: &str,
    variant: &str,
) -> Result<Arc<InstructionDesc>, AsmError> {
    catalog.find_variant_arc(mnemonic, variant).cloned().ok_or_else(|| AsmError::UnknownVariant {
        mnemonic: mnemonic.to_string(),
        variant: variant.to_string(),
    })
}

/// Width of a memory operand a descriptor expects at operand index `i`, if
/// that operand is a memory operand.
#[must_use]
pub fn mem_width_of(desc: &InstructionDesc, i: usize) -> Option<Width> {
    match desc.operands.get(i).map(|o| o.kind) {
        Some(OperandKind::Mem(w)) => Some(w),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uops_isa::{gpr, Catalog, Register};

    fn catalog() -> Catalog {
        Catalog::intel_core()
    }

    #[test]
    fn bind_allocates_missing_operands() {
        let c = catalog();
        let desc = variant_arc(&c, "ADD", "R64, R64").unwrap();
        let mut pool = RegisterPool::new();
        let inst = Inst::bind(&desc, &BTreeMap::new(), &mut pool).unwrap();
        assert_eq!(inst.operands().len(), desc.operands.len());
        let r0 = inst.operand(0).register().unwrap();
        let r1 = inst.operand(1).register().unwrap();
        assert!(!r0.aliases(r1), "pool must allocate distinct registers");
        assert!(inst.to_intel_syntax().starts_with("ADD "));
    }

    #[test]
    fn bind_respects_assignment() {
        let c = catalog();
        let desc = variant_arc(&c, "ADD", "R64, R64").unwrap();
        let mut pool = RegisterPool::new();
        let rbx = Register::gpr(gpr::RBX, Width::W64);
        let mut assignment = BTreeMap::new();
        assignment.insert(0, Op::Reg(rbx));
        assignment.insert(1, Op::Reg(rbx));
        let inst = Inst::bind(&desc, &assignment, &mut pool).unwrap();
        assert_eq!(inst.to_intel_syntax(), "ADD RBX, RBX");
        assert!(inst.uses_same_register_for(0, 1));
    }

    #[test]
    fn reads_and_writes_track_flags_and_memory() {
        let c = catalog();
        let desc = variant_arc(&c, "ADD", "R64, M64").unwrap();
        let mut pool = RegisterPool::new();
        let inst = Inst::bind(&desc, &BTreeMap::new(), &mut pool).unwrap();
        let reads = inst.reads();
        let writes = inst.writes();
        // Reads: destination register (rw), memory cell, base register.
        assert!(reads.iter().any(|r| matches!(r, Resource::Mem(_))));
        assert!(reads.iter().filter(|r| matches!(r, Resource::Reg(..))).count() >= 2);
        // Writes: destination register + all six flags.
        assert!(writes.iter().filter(|r| matches!(r, Resource::Flag(_))).count() == 6);
        assert!(writes.iter().any(|r| matches!(r, Resource::Reg(..))));
    }

    #[test]
    fn store_reads_base_register_but_writes_cell() {
        let c = catalog();
        let desc = variant_arc(&c, "MOV", "M64, R64").unwrap();
        let mut pool = RegisterPool::new();
        let inst = Inst::bind(&desc, &BTreeMap::new(), &mut pool).unwrap();
        let reads = inst.reads();
        let writes = inst.writes();
        assert!(
            reads.iter().any(|r| matches!(r, Resource::Reg(..))),
            "store must read its base and data registers"
        );
        assert!(!reads.iter().any(|r| matches!(r, Resource::Mem(_))));
        assert!(writes.iter().any(|r| matches!(r, Resource::Mem(_))));
    }

    #[test]
    fn dependency_detection() {
        let c = catalog();
        let desc = variant_arc(&c, "ADD", "R64, R64").unwrap();
        let mut pool = RegisterPool::new();
        let rbx = Register::gpr(gpr::RBX, Width::W64);
        let rcx = Register::gpr(gpr::RCX, Width::W64);
        let rdx = Register::gpr(gpr::RDX, Width::W64);
        let mk = |dst: Register, src: Register, pool: &mut RegisterPool| {
            let mut a = BTreeMap::new();
            a.insert(0, Op::Reg(dst));
            a.insert(1, Op::Reg(src));
            Inst::bind(&desc, &a, pool).unwrap()
        };
        let first = mk(rbx, rcx, &mut pool);
        let dependent = mk(rdx, rbx, &mut pool);
        let independent_regs = mk(rcx, rdx, &mut pool);
        assert!(dependent.depends_on(&first));
        // Even "independent" ALU instructions depend via the flags they both write...
        // reads of independent_regs include RDX (written by `dependent`), so check a
        // truly independent pair explicitly:
        let other = mk(rcx, rcx, &mut pool);
        assert!(
            !first.depends_on(&other) || first.reads().iter().any(|r| other.writes().contains(r))
        );
        assert!(independent_regs.depends_on(&dependent));
    }

    #[test]
    fn intel_syntax_for_memory_and_immediates() {
        let c = catalog();
        let desc = variant_arc(&c, "SHLD", "R64, R64, I8").unwrap();
        let mut pool = RegisterPool::new();
        let mut assignment = BTreeMap::new();
        assignment.insert(0, Op::Reg(Register::gpr(gpr::RBX, Width::W64)));
        assignment.insert(1, Op::Reg(Register::gpr(gpr::RCX, Width::W64)));
        assignment.insert(2, Op::Imm(5));
        let inst = Inst::bind(&desc, &assignment, &mut pool).unwrap();
        assert_eq!(inst.to_intel_syntax(), "SHLD RBX, RCX, 5");

        let desc = variant_arc(&c, "MOV", "R64, M64").unwrap();
        let inst = Inst::bind(&desc, &BTreeMap::new(), &mut pool).unwrap();
        assert!(inst.to_intel_syntax().contains("qword ptr ["));
    }

    #[test]
    fn register_width_follows_descriptor() {
        let c = catalog();
        let desc = variant_arc(&c, "ADD", "R32, R32").unwrap();
        let mut pool = RegisterPool::new();
        let mut assignment = BTreeMap::new();
        // Assign 64-bit registers; the printer must narrow them to 32 bits.
        assignment.insert(0, Op::Reg(Register::gpr(gpr::RBX, Width::W64)));
        assignment.insert(1, Op::Reg(Register::gpr(gpr::RCX, Width::W64)));
        let inst = Inst::bind(&desc, &assignment, &mut pool).unwrap();
        assert_eq!(inst.to_intel_syntax(), "ADD EBX, ECX");
    }

    #[test]
    fn unknown_variant_error() {
        let c = catalog();
        let err = variant_arc(&c, "FROBNICATE", "R64").unwrap_err();
        assert!(err.to_string().contains("FROBNICATE"));
    }

    #[test]
    fn operand_count_mismatch_error() {
        let c = catalog();
        let desc = variant_arc(&c, "ADD", "R64, R64").unwrap();
        let err = Inst::new(Arc::clone(&desc), vec![Op::Imm(0)]).unwrap_err();
        match err {
            AsmError::OperandCount { expected, actual, .. } => {
                assert_eq!(expected, desc.operands.len());
                assert_eq!(actual, 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn implicit_fixed_registers_are_bound() {
        let c = catalog();
        let desc = variant_arc(&c, "SHL", "R64, CL").unwrap();
        let mut pool = RegisterPool::new();
        let inst = Inst::bind(&desc, &BTreeMap::new(), &mut pool).unwrap();
        let cl = inst.operand(1).register().unwrap();
        assert_eq!(cl.name(), "CL");
        // The CL register must not be handed out by the pool afterwards for
        // a fresh allocation (the pool reserves fixed registers it has seen).
        assert!(inst.reads().contains(&Resource::Reg(uops_isa::RegFile::Gpr, gpr::RCX)));
    }
}
