//! Architectural registers of the x86-64 instruction set.
//!
//! The model distinguishes between *register files* (general-purpose, vector,
//! MMX) and the *width* at which a register is accessed. A [`Register`] is a
//! concrete architectural register (e.g. `RAX`, `EBX`, `XMM3`), while a
//! [`RegClass`] describes the set of registers an operand may use (e.g. "any
//! 64-bit general-purpose register").

use std::fmt;

use serde::{Deserialize, Serialize};

/// The width of a register access or memory/immediate operand, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Width {
    /// 8-bit access (e.g. `AL`).
    W8,
    /// 16-bit access (e.g. `AX`).
    W16,
    /// 32-bit access (e.g. `EAX`).
    W32,
    /// 64-bit access (e.g. `RAX`, `MM0`).
    W64,
    /// 128-bit access (e.g. `XMM0`).
    W128,
    /// 256-bit access (e.g. `YMM0`).
    W256,
}

impl Width {
    /// The width in bits.
    #[must_use]
    pub fn bits(self) -> u32 {
        match self {
            Width::W8 => 8,
            Width::W16 => 16,
            Width::W32 => 32,
            Width::W64 => 64,
            Width::W128 => 128,
            Width::W256 => 256,
        }
    }

    /// The width in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        self.bits() / 8
    }

    /// All general-purpose widths, from narrowest to widest.
    #[must_use]
    pub fn gpr_widths() -> [Width; 4] {
        [Width::W8, Width::W16, Width::W32, Width::W64]
    }

    /// All vector-register widths supported by the model.
    #[must_use]
    pub fn vec_widths() -> [Width; 2] {
        [Width::W128, Width::W256]
    }

    /// Returns `true` if this is a general-purpose width (8–64 bits).
    #[must_use]
    pub fn is_gpr(self) -> bool {
        matches!(self, Width::W8 | Width::W16 | Width::W32 | Width::W64)
    }

    /// Returns `true` if this is a vector width (128 or 256 bits).
    #[must_use]
    pub fn is_vector(self) -> bool {
        matches!(self, Width::W128 | Width::W256)
    }

    /// Constructs a width from a bit count.
    ///
    /// Returns `None` for unsupported bit counts.
    #[must_use]
    pub fn from_bits(bits: u32) -> Option<Width> {
        match bits {
            8 => Some(Width::W8),
            16 => Some(Width::W16),
            32 => Some(Width::W32),
            64 => Some(Width::W64),
            128 => Some(Width::W128),
            256 => Some(Width::W256),
            _ => None,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits())
    }
}

/// A register file: the physical storage pool an architectural register
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RegFile {
    /// General-purpose registers `RAX`–`R15` and their sub-registers.
    Gpr,
    /// SIMD vector registers `XMM0`–`XMM15` / `YMM0`–`YMM15`.
    Vec,
    /// Legacy MMX registers `MM0`–`MM7` (aliased onto the x87 stack).
    Mmx,
}

impl RegFile {
    /// The number of architectural registers in this file (in 64-bit mode).
    #[must_use]
    pub fn count(self) -> u8 {
        match self {
            RegFile::Gpr => 16,
            RegFile::Vec => 16,
            RegFile::Mmx => 8,
        }
    }
}

impl fmt::Display for RegFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegFile::Gpr => write!(f, "GPR"),
            RegFile::Vec => write!(f, "VEC"),
            RegFile::Mmx => write!(f, "MMX"),
        }
    }
}

/// A class of registers an operand may use: a register file together with an
/// access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegClass {
    /// The register file.
    pub file: RegFile,
    /// The access width.
    pub width: Width,
}

impl RegClass {
    /// A general-purpose register class of the given width.
    #[must_use]
    pub fn gpr(width: Width) -> RegClass {
        debug_assert!(width.is_gpr());
        RegClass { file: RegFile::Gpr, width }
    }

    /// A vector register class of the given width (128 or 256 bits).
    #[must_use]
    pub fn vec(width: Width) -> RegClass {
        debug_assert!(width.is_vector());
        RegClass { file: RegFile::Vec, width }
    }

    /// The MMX register class.
    #[must_use]
    pub fn mmx() -> RegClass {
        RegClass { file: RegFile::Mmx, width: Width::W64 }
    }

    /// Returns `true` if this class denotes general-purpose registers.
    #[must_use]
    pub fn is_gpr(self) -> bool {
        self.file == RegFile::Gpr
    }

    /// Returns `true` if this class denotes SIMD vector registers.
    #[must_use]
    pub fn is_vector(self) -> bool {
        self.file == RegFile::Vec
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.file {
            RegFile::Gpr => write!(f, "R{}", self.width.bits()),
            RegFile::Vec => match self.width {
                Width::W128 => write!(f, "XMM"),
                Width::W256 => write!(f, "YMM"),
                _ => write!(f, "VEC{}", self.width.bits()),
            },
            RegFile::Mmx => write!(f, "MM"),
        }
    }
}

/// A concrete architectural register.
///
/// Registers are identified by their file, their index within the file, and
/// the width at which they are accessed. `RAX`, `EAX`, `AX` and `AL` are the
/// same index (0) in the [`RegFile::Gpr`] file at different widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Register {
    /// The register file.
    pub file: RegFile,
    /// The index within the register file (0-based).
    pub index: u8,
    /// The access width.
    pub width: Width,
}

/// Names of the 64-bit general-purpose registers, indexed by register number.
const GPR64_NAMES: [&str; 16] = [
    "RAX", "RCX", "RDX", "RBX", "RSP", "RBP", "RSI", "RDI", "R8", "R9", "R10", "R11", "R12", "R13",
    "R14", "R15",
];
const GPR32_NAMES: [&str; 16] = [
    "EAX", "ECX", "EDX", "EBX", "ESP", "EBP", "ESI", "EDI", "R8D", "R9D", "R10D", "R11D", "R12D",
    "R13D", "R14D", "R15D",
];
const GPR16_NAMES: [&str; 16] = [
    "AX", "CX", "DX", "BX", "SP", "BP", "SI", "DI", "R8W", "R9W", "R10W", "R11W", "R12W", "R13W",
    "R14W", "R15W",
];
const GPR8_NAMES: [&str; 16] = [
    "AL", "CL", "DL", "BL", "SPL", "BPL", "SIL", "DIL", "R8B", "R9B", "R10B", "R11B", "R12B",
    "R13B", "R14B", "R15B",
];

/// Register indices of commonly named general-purpose registers.
pub mod gpr {
    /// Index of `RAX`.
    pub const RAX: u8 = 0;
    /// Index of `RCX`.
    pub const RCX: u8 = 1;
    /// Index of `RDX`.
    pub const RDX: u8 = 2;
    /// Index of `RBX`.
    pub const RBX: u8 = 3;
    /// Index of `RSP`.
    pub const RSP: u8 = 4;
    /// Index of `RBP`.
    pub const RBP: u8 = 5;
    /// Index of `RSI`.
    pub const RSI: u8 = 6;
    /// Index of `RDI`.
    pub const RDI: u8 = 7;
    /// Index of `R8`.
    pub const R8: u8 = 8;
    /// Index of `R9`.
    pub const R9: u8 = 9;
    /// Index of `R10`.
    pub const R10: u8 = 10;
    /// Index of `R11`.
    pub const R11: u8 = 11;
    /// Index of `R12`.
    pub const R12: u8 = 12;
    /// Index of `R13`.
    pub const R13: u8 = 13;
    /// Index of `R14`.
    pub const R14: u8 = 14;
    /// Index of `R15`.
    pub const R15: u8 = 15;
}

impl Register {
    /// Constructs a general-purpose register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16` or `width` is not a general-purpose width.
    #[must_use]
    pub fn gpr(index: u8, width: Width) -> Register {
        assert!(index < 16, "GPR index out of range: {index}");
        assert!(width.is_gpr(), "not a GPR width: {width}");
        Register { file: RegFile::Gpr, index, width }
    }

    /// Constructs a vector register (`XMM`/`YMM`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16` or `width` is not a vector width.
    #[must_use]
    pub fn vec(index: u8, width: Width) -> Register {
        assert!(index < 16, "vector register index out of range: {index}");
        assert!(width.is_vector(), "not a vector width: {width}");
        Register { file: RegFile::Vec, index, width }
    }

    /// Constructs an MMX register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    #[must_use]
    pub fn mmx(index: u8) -> Register {
        assert!(index < 8, "MMX register index out of range: {index}");
        Register { file: RegFile::Mmx, index, width: Width::W64 }
    }

    /// The class this register belongs to.
    #[must_use]
    pub fn class(self) -> RegClass {
        RegClass { file: self.file, width: self.width }
    }

    /// Returns `true` if `self` and `other` alias the same underlying
    /// architectural register (same file and index), regardless of width.
    #[must_use]
    pub fn aliases(self, other: Register) -> bool {
        self.file == other.file && self.index == other.index
    }

    /// Returns the same architectural register accessed at a different width.
    #[must_use]
    pub fn with_width(self, width: Width) -> Register {
        Register { width, ..self }
    }

    /// The canonical assembler name of the register (Intel syntax).
    #[must_use]
    pub fn name(self) -> String {
        match self.file {
            RegFile::Gpr => {
                let idx = self.index as usize;
                match self.width {
                    Width::W64 => GPR64_NAMES[idx].to_string(),
                    Width::W32 => GPR32_NAMES[idx].to_string(),
                    Width::W16 => GPR16_NAMES[idx].to_string(),
                    Width::W8 => GPR8_NAMES[idx].to_string(),
                    _ => format!("GPR{}_{}", self.width.bits(), idx),
                }
            }
            RegFile::Vec => match self.width {
                Width::W128 => format!("XMM{}", self.index),
                Width::W256 => format!("YMM{}", self.index),
                _ => format!("VEC{}_{}", self.width.bits(), self.index),
            },
            RegFile::Mmx => format!("MM{}", self.index),
        }
    }

    /// Parses a register from its canonical Intel-syntax name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Register> {
        let upper = name.to_ascii_uppercase();
        for (i, n) in GPR64_NAMES.iter().enumerate() {
            if *n == upper {
                return Some(Register::gpr(i as u8, Width::W64));
            }
        }
        for (i, n) in GPR32_NAMES.iter().enumerate() {
            if *n == upper {
                return Some(Register::gpr(i as u8, Width::W32));
            }
        }
        for (i, n) in GPR16_NAMES.iter().enumerate() {
            if *n == upper {
                return Some(Register::gpr(i as u8, Width::W16));
            }
        }
        for (i, n) in GPR8_NAMES.iter().enumerate() {
            if *n == upper {
                return Some(Register::gpr(i as u8, Width::W8));
            }
        }
        if let Some(rest) = upper.strip_prefix("XMM") {
            if let Ok(i) = rest.parse::<u8>() {
                if i < 16 {
                    return Some(Register::vec(i, Width::W128));
                }
            }
        }
        if let Some(rest) = upper.strip_prefix("YMM") {
            if let Ok(i) = rest.parse::<u8>() {
                if i < 16 {
                    return Some(Register::vec(i, Width::W256));
                }
            }
        }
        if let Some(rest) = upper.strip_prefix("MM") {
            if let Ok(i) = rest.parse::<u8>() {
                if i < 8 {
                    return Some(Register::mmx(i));
                }
            }
        }
        None
    }
}

impl fmt::Display for Register {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_bits_and_bytes() {
        assert_eq!(Width::W8.bits(), 8);
        assert_eq!(Width::W64.bytes(), 8);
        assert_eq!(Width::W256.bits(), 256);
        assert_eq!(Width::from_bits(128), Some(Width::W128));
        assert_eq!(Width::from_bits(12), None);
    }

    #[test]
    fn width_classification() {
        for w in Width::gpr_widths() {
            assert!(w.is_gpr());
            assert!(!w.is_vector());
        }
        for w in Width::vec_widths() {
            assert!(w.is_vector());
            assert!(!w.is_gpr());
        }
    }

    #[test]
    fn gpr_names_across_widths() {
        assert_eq!(Register::gpr(gpr::RAX, Width::W64).name(), "RAX");
        assert_eq!(Register::gpr(gpr::RAX, Width::W32).name(), "EAX");
        assert_eq!(Register::gpr(gpr::RAX, Width::W16).name(), "AX");
        assert_eq!(Register::gpr(gpr::RAX, Width::W8).name(), "AL");
        assert_eq!(Register::gpr(gpr::R8, Width::W32).name(), "R8D");
        assert_eq!(Register::gpr(15, Width::W8).name(), "R15B");
    }

    #[test]
    fn vector_and_mmx_names() {
        assert_eq!(Register::vec(3, Width::W128).name(), "XMM3");
        assert_eq!(Register::vec(12, Width::W256).name(), "YMM12");
        assert_eq!(Register::mmx(5).name(), "MM5");
    }

    #[test]
    fn roundtrip_from_name() {
        for reg in [
            Register::gpr(0, Width::W64),
            Register::gpr(7, Width::W8),
            Register::gpr(13, Width::W16),
            Register::vec(9, Width::W128),
            Register::vec(2, Width::W256),
            Register::mmx(6),
        ] {
            assert_eq!(Register::from_name(&reg.name()), Some(reg));
        }
        assert_eq!(Register::from_name("not_a_register"), None);
        assert_eq!(Register::from_name("XMM99"), None);
    }

    #[test]
    fn aliasing_ignores_width() {
        let rax = Register::gpr(gpr::RAX, Width::W64);
        let eax = Register::gpr(gpr::RAX, Width::W32);
        let rcx = Register::gpr(gpr::RCX, Width::W64);
        assert!(rax.aliases(eax));
        assert!(!rax.aliases(rcx));
        assert!(!rax.aliases(Register::vec(0, Width::W128)));
    }

    #[test]
    fn with_width_changes_only_width() {
        let rbx = Register::gpr(gpr::RBX, Width::W64);
        let bl = rbx.with_width(Width::W8);
        assert_eq!(bl.name(), "BL");
        assert!(rbx.aliases(bl));
    }

    #[test]
    #[should_panic(expected = "GPR index out of range")]
    fn gpr_index_out_of_range_panics() {
        let _ = Register::gpr(16, Width::W64);
    }

    #[test]
    fn class_display() {
        assert_eq!(RegClass::gpr(Width::W64).to_string(), "R64");
        assert_eq!(RegClass::vec(Width::W128).to_string(), "XMM");
        assert_eq!(RegClass::vec(Width::W256).to_string(), "YMM");
        assert_eq!(RegClass::mmx().to_string(), "MM");
    }
}
