//! Instruction-set extensions and instruction categories.
//!
//! The extension is needed to avoid mixing SSE and AVX code inside one
//! microbenchmark (SSE–AVX transition penalties, §5.1.1 of the paper), and to
//! restrict the catalog per microarchitecture (e.g. AVX2 instructions only
//! exist from Haswell on). The category is a coarse semantic grouping used by
//! the microarchitectural ground truth to assign functional units.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An x86 instruction-set extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Extension {
    /// Base integer instruction set (always available).
    Base,
    /// Legacy MMX instructions.
    Mmx,
    /// SSE (128-bit, single-precision float).
    Sse,
    /// SSE2 (128-bit, double precision + integer).
    Sse2,
    /// SSE3.
    Sse3,
    /// Supplemental SSE3.
    Ssse3,
    /// SSE4.1.
    Sse41,
    /// SSE4.2.
    Sse42,
    /// AES-NI.
    Aes,
    /// Carry-less multiplication.
    Pclmulqdq,
    /// AVX (256-bit float, VEX encodings).
    Avx,
    /// AVX2 (256-bit integer).
    Avx2,
    /// Fused multiply-add.
    Fma,
    /// Bit-manipulation instructions 1.
    Bmi1,
    /// Bit-manipulation instructions 2.
    Bmi2,
    /// POPCNT/LZCNT style bit counting.
    Popcnt,
    /// MOVBE.
    Movbe,
    /// ADX (ADCX/ADOX).
    Adx,
}

impl Extension {
    /// Returns `true` if the extension is part of the "SSE world" (legacy
    /// 128-bit encodings that may incur SSE–AVX transition penalties when
    /// mixed with VEX-encoded code).
    #[must_use]
    pub fn is_sse_family(self) -> bool {
        matches!(
            self,
            Extension::Sse
                | Extension::Sse2
                | Extension::Sse3
                | Extension::Ssse3
                | Extension::Sse41
                | Extension::Sse42
                | Extension::Aes
                | Extension::Pclmulqdq
        )
    }

    /// Returns `true` if the extension uses VEX encodings (the "AVX world").
    #[must_use]
    pub fn is_avx_family(self) -> bool {
        matches!(self, Extension::Avx | Extension::Avx2 | Extension::Fma)
    }

    /// Returns `true` if the extension operates on vector registers at all.
    #[must_use]
    pub fn is_vector(self) -> bool {
        self.is_sse_family() || self.is_avx_family() || self == Extension::Mmx
    }
}

impl fmt::Display for Extension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Extension::Base => "BASE",
            Extension::Mmx => "MMX",
            Extension::Sse => "SSE",
            Extension::Sse2 => "SSE2",
            Extension::Sse3 => "SSE3",
            Extension::Ssse3 => "SSSE3",
            Extension::Sse41 => "SSE4.1",
            Extension::Sse42 => "SSE4.2",
            Extension::Aes => "AES",
            Extension::Pclmulqdq => "PCLMULQDQ",
            Extension::Avx => "AVX",
            Extension::Avx2 => "AVX2",
            Extension::Fma => "FMA",
            Extension::Bmi1 => "BMI1",
            Extension::Bmi2 => "BMI2",
            Extension::Popcnt => "POPCNT",
            Extension::Movbe => "MOVBE",
            Extension::Adx => "ADX",
        };
        write!(f, "{name}")
    }
}

/// A coarse semantic category of an instruction.
///
/// Categories drive the rule-based part of the per-microarchitecture ground
/// truth (which functional units / ports an instruction's µops use, and what
/// their latencies are) and the algorithmic special cases of the inference
/// engine (e.g. division handling, §5.2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Simple integer ALU operation (ADD, SUB, AND, OR, XOR, CMP, TEST, ...).
    IntAlu,
    /// Integer ALU operation that also reads the carry flag (ADC, SBB).
    IntAluCarry,
    /// Increment/decrement (write all flags except CF).
    IncDec,
    /// Integer negate/complement.
    NegNot,
    /// Register-to-register or memory move of general-purpose data.
    Mov,
    /// Sign/zero-extending move (MOVSX, MOVZX).
    MovExtend,
    /// Conditional move.
    CMov,
    /// Set-byte-on-condition.
    SetCC,
    /// Exchange (XCHG).
    Xchg,
    /// Exchange-and-add (XADD).
    Xadd,
    /// Byte swap.
    Bswap,
    /// Shift by immediate or CL (SHL, SHR, SAR).
    Shift,
    /// Rotate (ROL, ROR, RCL, RCR).
    Rotate,
    /// Double-precision shift (SHLD, SHRD).
    DoubleShift,
    /// Bit test/scan operations (BT, BTS, BSF, BSR, TZCNT, LZCNT, POPCNT).
    BitScan,
    /// BMI-style bit field operations (ANDN, BEXTR, BLSI, PDEP, PEXT, ...).
    BitField,
    /// Integer multiplication.
    IntMul,
    /// Integer division (uses the divider unit).
    IntDiv,
    /// Address generation (LEA).
    Lea,
    /// Flag manipulation (CMC, STC, CLC, SAHF, LAHF).
    FlagOp,
    /// Unconditional or conditional branch.
    Branch,
    /// Call/return.
    CallRet,
    /// Push/pop.
    Stack,
    /// No-operation.
    Nop,
    /// String operation (MOVS, STOS, LODS, ...).
    StringOp,
    /// CRC32.
    Crc32,
    /// Vector integer ALU (PADD, PSUB, PAND, POR, PXOR, ...).
    VecIntAlu,
    /// Vector integer multiply (PMULLW, PMULDQ, PMADDWD, ...).
    VecIntMul,
    /// Vector integer compare (PCMPEQ*, PCMPGT*).
    VecIntCmp,
    /// Vector shift (PSLL, PSRL, PSRA).
    VecShift,
    /// Vector shuffle/permute/unpack.
    VecShuffle,
    /// Vector blend (including variable blends).
    VecBlend,
    /// Vector floating-point add/sub/compare/min/max.
    VecFpAdd,
    /// Vector floating-point multiply.
    VecFpMul,
    /// Fused multiply-add.
    VecFma,
    /// Vector floating-point divide / square root (uses the divider unit).
    VecFpDiv,
    /// Vector logic on floating-point domain (ANDPS, ORPD, XORPS, ...).
    VecFpLogic,
    /// Horizontal add / dot product / MPSADBW style multi-µop reductions.
    VecHorizontal,
    /// Conversion between int and float or between float widths.
    VecConvert,
    /// Vector load/store/move (MOVAPS, MOVDQA, MOVD, MOVQ, ...).
    VecMov,
    /// Moves between register files (MOVQ2DQ, MOVDQ2Q, MOVD/MOVQ gpr<->xmm).
    VecMovCross,
    /// Vector insert/extract of scalar elements.
    VecInsertExtract,
    /// AES-NI instruction.
    AesOp,
    /// Carry-less multiplication.
    ClmulOp,
    /// System / privileged / serializing instruction.
    System,
}

impl Category {
    /// Returns `true` if instructions of this category use the (not fully
    /// pipelined) divider unit.
    #[must_use]
    pub fn uses_divider(self) -> bool {
        matches!(self, Category::IntDiv | Category::VecFpDiv)
    }

    /// Returns `true` if the category operates on vector registers.
    #[must_use]
    pub fn is_vector(self) -> bool {
        matches!(
            self,
            Category::VecIntAlu
                | Category::VecIntMul
                | Category::VecIntCmp
                | Category::VecShift
                | Category::VecShuffle
                | Category::VecBlend
                | Category::VecFpAdd
                | Category::VecFpMul
                | Category::VecFma
                | Category::VecFpDiv
                | Category::VecFpLogic
                | Category::VecHorizontal
                | Category::VecConvert
                | Category::VecMov
                | Category::VecMovCross
                | Category::VecInsertExtract
                | Category::AesOp
                | Category::ClmulOp
        )
    }

    /// Returns `true` if the category belongs to the floating-point bypass
    /// domain (as opposed to the integer SIMD domain).
    #[must_use]
    pub fn is_fp_domain(self) -> bool {
        matches!(
            self,
            Category::VecFpAdd
                | Category::VecFpMul
                | Category::VecFma
                | Category::VecFpDiv
                | Category::VecFpLogic
        )
    }

    /// Returns `true` if the category may change control flow.
    #[must_use]
    pub fn is_control_flow(self) -> bool {
        matches!(self, Category::Branch | Category::CallRet)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sse_avx_families_are_disjoint() {
        for ext in [
            Extension::Base,
            Extension::Mmx,
            Extension::Sse,
            Extension::Sse2,
            Extension::Avx,
            Extension::Avx2,
            Extension::Fma,
            Extension::Aes,
            Extension::Bmi1,
        ] {
            assert!(
                !(ext.is_sse_family() && ext.is_avx_family()),
                "{ext} claims to be both SSE and AVX family"
            );
        }
    }

    #[test]
    fn vector_extension_classification() {
        assert!(Extension::Sse2.is_vector());
        assert!(Extension::Avx2.is_vector());
        assert!(Extension::Mmx.is_vector());
        assert!(!Extension::Base.is_vector());
        assert!(!Extension::Bmi2.is_vector());
    }

    #[test]
    fn divider_categories() {
        assert!(Category::IntDiv.uses_divider());
        assert!(Category::VecFpDiv.uses_divider());
        assert!(!Category::IntMul.uses_divider());
        assert!(!Category::VecFpMul.uses_divider());
    }

    #[test]
    fn vector_and_domain_classification() {
        assert!(Category::VecFpMul.is_vector());
        assert!(Category::VecFpMul.is_fp_domain());
        assert!(Category::VecIntAlu.is_vector());
        assert!(!Category::VecIntAlu.is_fp_domain());
        assert!(!Category::IntAlu.is_vector());
        assert!(Category::Branch.is_control_flow());
        assert!(!Category::Shift.is_control_flow());
    }
}
