//! The x86 status flags (`RFLAGS` condition bits) as a small set type.
//!
//! Many instructions have *implicit* operands on the status flags: they read
//! and/or write a subset of the carry, parity, adjust, zero, sign, and
//! overflow flags. These implicit dependencies are central to the paper's
//! latency methodology (dependency-breaking instructions must overwrite flags
//! without reading them) and to its critique of IACA (which ignores flag
//! dependencies, e.g. for `CMC`).

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Not, Sub};

use serde::{Deserialize, Serialize};

/// A single x86 status flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Flag {
    /// Carry flag.
    Cf,
    /// Parity flag.
    Pf,
    /// Adjust (auxiliary carry) flag.
    Af,
    /// Zero flag.
    Zf,
    /// Sign flag.
    Sf,
    /// Overflow flag.
    Of,
}

impl Flag {
    /// All status flags, in canonical order.
    pub const ALL: [Flag; 6] = [Flag::Cf, Flag::Pf, Flag::Af, Flag::Zf, Flag::Sf, Flag::Of];

    /// The bit used to represent this flag inside a [`FlagSet`].
    #[must_use]
    fn bit(self) -> u8 {
        match self {
            Flag::Cf => 1 << 0,
            Flag::Pf => 1 << 1,
            Flag::Af => 1 << 2,
            Flag::Zf => 1 << 3,
            Flag::Sf => 1 << 4,
            Flag::Of => 1 << 5,
        }
    }

    /// The conventional one- or two-letter name of the flag.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Flag::Cf => "CF",
            Flag::Pf => "PF",
            Flag::Af => "AF",
            Flag::Zf => "ZF",
            Flag::Sf => "SF",
            Flag::Of => "OF",
        }
    }
}

impl fmt::Display for Flag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A set of status flags, represented as a compact bitset.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct FlagSet(u8);

impl FlagSet {
    /// The empty flag set.
    pub const EMPTY: FlagSet = FlagSet(0);
    /// All six status flags.
    pub const ALL: FlagSet = FlagSet(0b11_1111);
    /// The carry flag alone.
    pub const CF: FlagSet = FlagSet(1 << 0);
    /// All flags except the adjust flag (written by `TEST`, `AND`, ...).
    pub const ALL_EXCEPT_AF: FlagSet = FlagSet(0b11_1011);
    /// All flags except the carry flag (written by `INC`/`DEC`).
    pub const ALL_EXCEPT_CF: FlagSet = FlagSet(0b11_1110);
    /// The arithmetic condition flags read by most `CMOVcc`/`Jcc`/`SETcc`
    /// condition codes (CF, ZF, SF, OF).
    pub const CONDITION: FlagSet = FlagSet(0b11_1001);
    /// The zero flag alone.
    pub const ZF: FlagSet = FlagSet(1 << 3);

    /// Creates an empty flag set.
    #[must_use]
    pub fn new() -> FlagSet {
        FlagSet::EMPTY
    }

    /// Creates a flag set from an iterator of flags.
    pub fn from_flags<I: IntoIterator<Item = Flag>>(flags: I) -> FlagSet {
        let mut set = FlagSet::EMPTY;
        for f in flags {
            set |= FlagSet::single(f);
        }
        set
    }

    /// The flag set containing exactly one flag.
    #[must_use]
    pub fn single(flag: Flag) -> FlagSet {
        FlagSet(flag.bit())
    }

    /// Returns `true` if the set contains no flags.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if the set contains the given flag.
    #[must_use]
    pub fn contains(self, flag: Flag) -> bool {
        self.0 & flag.bit() != 0
    }

    /// Returns `true` if the two sets share at least one flag.
    #[must_use]
    pub fn intersects(self, other: FlagSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Returns `true` if `self` is a subset of `other`.
    #[must_use]
    pub fn is_subset_of(self, other: FlagSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// The number of flags in the set.
    #[must_use]
    pub fn len(self) -> u32 {
        u32::from(self.0.count_ones() as u8)
    }

    /// Iterates over the flags contained in the set.
    pub fn iter(self) -> impl Iterator<Item = Flag> {
        Flag::ALL.into_iter().filter(move |f| self.contains(*f))
    }
}

impl BitOr for FlagSet {
    type Output = FlagSet;
    fn bitor(self, rhs: FlagSet) -> FlagSet {
        FlagSet(self.0 | rhs.0)
    }
}

impl BitOrAssign for FlagSet {
    fn bitor_assign(&mut self, rhs: FlagSet) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for FlagSet {
    type Output = FlagSet;
    fn bitand(self, rhs: FlagSet) -> FlagSet {
        FlagSet(self.0 & rhs.0)
    }
}

impl Sub for FlagSet {
    type Output = FlagSet;
    fn sub(self, rhs: FlagSet) -> FlagSet {
        FlagSet(self.0 & !rhs.0)
    }
}

impl Not for FlagSet {
    type Output = FlagSet;
    fn not(self) -> FlagSet {
        FlagSet(!self.0 & FlagSet::ALL.0)
    }
}

impl fmt::Debug for FlagSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FlagSet(")?;
        fmt::Display::fmt(self, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for FlagSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "-");
        }
        let mut first = true;
        for flag in self.iter() {
            if !first {
                write!(f, "|")?;
            }
            write!(f, "{flag}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<Flag> for FlagSet {
    fn from_iter<T: IntoIterator<Item = Flag>>(iter: T) -> FlagSet {
        FlagSet::from_flags(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_all() {
        assert!(FlagSet::EMPTY.is_empty());
        assert_eq!(FlagSet::ALL.len(), 6);
        for f in Flag::ALL {
            assert!(FlagSet::ALL.contains(f));
            assert!(!FlagSet::EMPTY.contains(f));
        }
    }

    #[test]
    fn set_operations() {
        let cf_zf = FlagSet::CF | FlagSet::ZF;
        assert_eq!(cf_zf.len(), 2);
        assert!(cf_zf.contains(Flag::Cf));
        assert!(cf_zf.contains(Flag::Zf));
        assert!(!cf_zf.contains(Flag::Of));
        assert!(cf_zf.intersects(FlagSet::CF));
        assert!(!cf_zf.intersects(FlagSet::single(Flag::Of)));
        assert!(FlagSet::CF.is_subset_of(cf_zf));
        assert!(!cf_zf.is_subset_of(FlagSet::CF));
        assert_eq!((cf_zf - FlagSet::CF), FlagSet::ZF);
        assert_eq!(!FlagSet::ALL_EXCEPT_CF, FlagSet::CF);
    }

    #[test]
    fn named_subsets_are_consistent() {
        assert_eq!(FlagSet::ALL_EXCEPT_AF | FlagSet::single(Flag::Af), FlagSet::ALL);
        assert_eq!(FlagSet::ALL_EXCEPT_CF | FlagSet::CF, FlagSet::ALL);
        assert!(FlagSet::CONDITION.contains(Flag::Cf));
        assert!(FlagSet::CONDITION.contains(Flag::Zf));
        assert!(!FlagSet::CONDITION.contains(Flag::Af));
    }

    #[test]
    fn iteration_and_from_iter() {
        let set: FlagSet = [Flag::Sf, Flag::Of].into_iter().collect();
        let collected: Vec<Flag> = set.iter().collect();
        assert_eq!(collected, vec![Flag::Sf, Flag::Of]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(FlagSet::EMPTY.to_string(), "-");
        assert_eq!(FlagSet::CF.to_string(), "CF");
        assert_eq!((FlagSet::CF | FlagSet::ZF).to_string(), "CF|ZF");
    }
}
