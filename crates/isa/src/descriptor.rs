//! Instruction descriptors: the machine-readable description of one
//! instruction *variant* (a mnemonic together with a specific operand form).
//!
//! This plays the role of the XML instruction description that the paper
//! extracts from Intel XED's configuration files (§6.1): it contains
//! everything needed to automatically generate assembler code for the
//! instruction — explicit and implicit operands, their types and widths,
//! read/write sets (including status flags), the ISA extension, and a set of
//! attributes (system instruction, serializing, zero idiom, ...).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::extension::{Category, Extension};
use crate::flags::FlagSet;
use crate::operand::{OperandDesc, OperandKind};
use crate::register::Width;

/// Boolean attributes of an instruction variant that are relevant for
/// microbenchmark generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Attributes {
    /// System/privileged instruction (excluded from blocking-instruction
    /// candidates and from characterization in user-mode-only backends).
    pub system: bool,
    /// Serializing instruction (e.g. CPUID, LFENCE-like behaviour).
    pub serializing: bool,
    /// The instruction may be executed with zero latency by the reorder
    /// buffer on some microarchitectures (register-to-register moves).
    pub may_be_zero_latency: bool,
    /// With identical source registers the instruction is a *zero idiom*
    /// (result is always zero) and breaks the dependency on the source.
    pub zero_idiom: bool,
    /// With identical source registers the instruction is dependency-breaking
    /// even though the result is not necessarily zero (e.g. PCMPGT, §7.3.6).
    pub dependency_breaking_same_reg: bool,
    /// The instruction can change control flow depending on a register value
    /// (excluded from blocking instructions).
    pub control_flow: bool,
    /// The instruction has a LOCK prefix variant semantics (atomic RMW).
    pub locked: bool,
    /// The instruction has a REP prefix (variable µop count).
    pub rep_prefix: bool,
    /// The instruction uses the divider unit (latency/throughput depend on
    /// operand values, §5.2.5).
    pub uses_divider: bool,
    /// The instruction is the PAUSE instruction (excluded from blocking
    /// instructions).
    pub pause: bool,
}

impl Attributes {
    /// Returns `true` if the instruction may be used as a blocking-instruction
    /// candidate according to §5.1.1 (no system, serializing, zero-latency,
    /// PAUSE, or register-dependent control-flow instructions).
    #[must_use]
    pub fn blocking_candidate(&self) -> bool {
        !self.system
            && !self.serializing
            && !self.may_be_zero_latency
            && !self.control_flow
            && !self.pause
    }
}

/// A description of one instruction variant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstructionDesc {
    /// Unique identifier of the variant within its catalog.
    pub uid: usize,
    /// The mnemonic, e.g. `ADD`, `VPBLENDVB`.
    pub mnemonic: String,
    /// All operands, explicit first (in assembler order), then implicit.
    pub operands: Vec<OperandDesc>,
    /// The ISA extension the variant belongs to.
    pub extension: Extension,
    /// The semantic category of the instruction.
    pub category: Category,
    /// Attributes relevant for microbenchmark generation.
    pub attrs: Attributes,
    /// Status flags read by the instruction (implicitly).
    pub flags_read: FlagSet,
    /// Status flags written by the instruction (implicitly).
    pub flags_written: FlagSet,
}

impl InstructionDesc {
    /// The variant string, e.g. `"R64, R64"` for `ADD R64, R64`. Only explicit
    /// operands are listed.
    #[must_use]
    pub fn variant(&self) -> String {
        let parts: Vec<String> =
            self.operands.iter().filter(|o| o.is_explicit()).map(|o| o.kind.type_name()).collect();
        parts.join(", ")
    }

    /// Full human-readable form, e.g. `"ADD (R64, R64)"`.
    #[must_use]
    pub fn full_name(&self) -> String {
        let v = self.variant();
        if v.is_empty() {
            self.mnemonic.clone()
        } else {
            format!("{} ({v})", self.mnemonic)
        }
    }

    /// Iterates over the explicit operands in assembler order.
    pub fn explicit_operands(&self) -> impl Iterator<Item = &OperandDesc> {
        self.operands.iter().filter(|o| o.is_explicit())
    }

    /// Iterates over the implicit operands.
    pub fn implicit_operands(&self) -> impl Iterator<Item = &OperandDesc> {
        self.operands.iter().filter(|o| o.implicit)
    }

    /// Indices of source operands (operands read by the instruction),
    /// including implicit ones. This is the set `S` of the paper's latency
    /// definition.
    #[must_use]
    pub fn source_indices(&self) -> Vec<usize> {
        self.operands.iter().enumerate().filter(|(_, o)| o.is_source()).map(|(i, _)| i).collect()
    }

    /// Indices of destination operands (operands written by the instruction),
    /// including implicit ones. This is the set `D` of the paper's latency
    /// definition.
    #[must_use]
    pub fn destination_indices(&self) -> Vec<usize> {
        self.operands
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_destination())
            .map(|(i, _)| i)
            .collect()
    }

    /// Returns `true` if the instruction has at least one memory operand.
    #[must_use]
    pub fn has_memory_operand(&self) -> bool {
        self.operands.iter().any(|o| o.kind.is_memory())
    }

    /// Returns `true` if the instruction reads from memory.
    #[must_use]
    pub fn reads_memory(&self) -> bool {
        self.operands.iter().any(|o| o.kind.is_memory() && o.read)
    }

    /// Returns `true` if the instruction writes to memory.
    #[must_use]
    pub fn writes_memory(&self) -> bool {
        self.operands.iter().any(|o| o.kind.is_memory() && o.write)
    }

    /// Returns `true` if the instruction has an implicit or explicit
    /// status-flag operand that it reads.
    #[must_use]
    pub fn reads_flags(&self) -> bool {
        !self.flags_read.is_empty()
    }

    /// Returns `true` if the instruction writes at least one status flag.
    #[must_use]
    pub fn writes_flags(&self) -> bool {
        !self.flags_written.is_empty()
    }

    /// Returns `true` if the instruction operates (partly) on vector
    /// registers.
    #[must_use]
    pub fn uses_vector_registers(&self) -> bool {
        self.operands.iter().any(|o| {
            o.kind
                .reg_class()
                .map(|c| c.is_vector() || c.file == crate::register::RegFile::Mmx)
                .unwrap_or(false)
        })
    }

    /// The number of explicit operands.
    #[must_use]
    pub fn explicit_operand_count(&self) -> usize {
        self.explicit_operands().count()
    }

    /// The maximum operand width of the variant (useful as a proxy for the
    /// data path width).
    #[must_use]
    pub fn max_width(&self) -> Option<Width> {
        self.operands.iter().filter_map(|o| o.kind.width()).max()
    }

    /// Returns the operand kind of the `i`-th operand.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn operand_kind(&self, i: usize) -> OperandKind {
        self.operands[i].kind
    }
}

impl fmt::Display for InstructionDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.full_name())
    }
}

/// Builder for [`InstructionDesc`]. The catalog uses this to assemble variants
/// from mnemonic specifications.
#[derive(Debug, Clone)]
pub struct DescBuilder {
    mnemonic: String,
    operands: Vec<OperandDesc>,
    extension: Extension,
    category: Category,
    attrs: Attributes,
    flags_read: FlagSet,
    flags_written: FlagSet,
}

impl DescBuilder {
    /// Starts building a descriptor for the given mnemonic.
    #[must_use]
    pub fn new(mnemonic: &str, category: Category, extension: Extension) -> DescBuilder {
        DescBuilder {
            mnemonic: mnemonic.to_string(),
            operands: Vec::new(),
            extension,
            category,
            attrs: Attributes::default(),
            flags_read: FlagSet::EMPTY,
            flags_written: FlagSet::EMPTY,
        }
    }

    /// Adds an operand.
    #[must_use]
    pub fn operand(mut self, op: OperandDesc) -> DescBuilder {
        self.operands.push(op);
        self
    }

    /// Adds several operands.
    #[must_use]
    pub fn operands<I: IntoIterator<Item = OperandDesc>>(mut self, ops: I) -> DescBuilder {
        self.operands.extend(ops);
        self
    }

    /// Declares the flags read by the instruction (adds an implicit read
    /// operand if non-empty).
    #[must_use]
    pub fn reads_flags(mut self, set: FlagSet) -> DescBuilder {
        self.flags_read |= set;
        self
    }

    /// Declares the flags written by the instruction (adds an implicit write
    /// operand if non-empty).
    #[must_use]
    pub fn writes_flags(mut self, set: FlagSet) -> DescBuilder {
        self.flags_written |= set;
        self
    }

    /// Sets the attributes.
    #[must_use]
    pub fn attrs(mut self, attrs: Attributes) -> DescBuilder {
        self.attrs = attrs;
        self
    }

    /// Mutates the attributes through a closure.
    #[must_use]
    pub fn with_attrs(mut self, f: impl FnOnce(&mut Attributes)) -> DescBuilder {
        f(&mut self.attrs);
        self
    }

    /// Finalizes the descriptor. The `uid` is assigned by the catalog; a
    /// placeholder of `usize::MAX` is used until then.
    ///
    /// If the instruction reads or writes flags, a combined implicit flag
    /// operand is appended automatically.
    #[must_use]
    pub fn build(mut self) -> InstructionDesc {
        if self.flags_read == self.flags_written && !self.flags_read.is_empty() {
            // A single read-write flag operand.
            self.operands.push(OperandDesc {
                kind: OperandKind::Flags(self.flags_read),
                read: true,
                write: true,
                implicit: true,
            });
        } else {
            // Distinct read and written flag sets become separate implicit
            // operands so that no information is lost (e.g. ADC reads CF but
            // writes all flags).
            if !self.flags_read.is_empty() {
                self.operands.push(OperandDesc {
                    kind: OperandKind::Flags(self.flags_read),
                    read: true,
                    write: false,
                    implicit: true,
                });
            }
            if !self.flags_written.is_empty() {
                self.operands.push(OperandDesc {
                    kind: OperandKind::Flags(self.flags_written),
                    read: false,
                    write: true,
                    implicit: true,
                });
            }
        }
        if self.category.uses_divider() {
            self.attrs.uses_divider = true;
        }
        if self.category.is_control_flow() {
            self.attrs.control_flow = true;
        }
        InstructionDesc {
            uid: usize::MAX,
            mnemonic: self.mnemonic,
            operands: self.operands,
            extension: self.extension,
            category: self.category,
            attrs: self.attrs,
            flags_read: self.flags_read,
            flags_written: self.flags_written,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::shorthand::*;

    fn add_r64_r64() -> InstructionDesc {
        DescBuilder::new("ADD", Category::IntAlu, Extension::Base)
            .operand(OperandDesc::read_write(r(Width::W64)))
            .operand(OperandDesc::read(r(Width::W64)))
            .writes_flags(FlagSet::ALL)
            .build()
    }

    #[test]
    fn variant_string_lists_only_explicit_operands() {
        let d = add_r64_r64();
        assert_eq!(d.variant(), "R64, R64");
        assert_eq!(d.full_name(), "ADD (R64, R64)");
        assert_eq!(d.explicit_operand_count(), 2);
        assert_eq!(d.implicit_operands().count(), 1);
    }

    #[test]
    fn flag_operand_is_appended() {
        let d = add_r64_r64();
        assert!(d.writes_flags());
        assert!(!d.reads_flags());
        let flag_op = d.operands.last().unwrap();
        assert!(flag_op.implicit);
        assert!(flag_op.kind.is_flags());
        assert!(flag_op.write && !flag_op.read);
    }

    #[test]
    fn source_and_destination_indices() {
        let d = add_r64_r64();
        // Operand 0 is read+write, operand 1 is read, operand 2 (flags) is written.
        assert_eq!(d.source_indices(), vec![0, 1]);
        assert_eq!(d.destination_indices(), vec![0, 2]);
    }

    #[test]
    fn memory_classification() {
        let load = DescBuilder::new("MOV", Category::Mov, Extension::Base)
            .operand(OperandDesc::write(r(Width::W64)))
            .operand(OperandDesc::read(mem(Width::W64)))
            .build();
        assert!(load.has_memory_operand());
        assert!(load.reads_memory());
        assert!(!load.writes_memory());

        let store = DescBuilder::new("MOV", Category::Mov, Extension::Base)
            .operand(OperandDesc::write(mem(Width::W64)))
            .operand(OperandDesc::read(r(Width::W64)))
            .build();
        assert!(store.writes_memory());
        assert!(!store.reads_memory());
    }

    #[test]
    fn blocking_candidate_rules() {
        let mut attrs = Attributes::default();
        assert!(attrs.blocking_candidate());
        attrs.system = true;
        assert!(!attrs.blocking_candidate());
        attrs = Attributes { may_be_zero_latency: true, ..Attributes::default() };
        assert!(!attrs.blocking_candidate());
        attrs = Attributes { control_flow: true, ..Attributes::default() };
        assert!(!attrs.blocking_candidate());
        attrs = Attributes { pause: true, ..Attributes::default() };
        assert!(!attrs.blocking_candidate());
    }

    #[test]
    fn divider_and_control_flow_attrs_derived_from_category() {
        let div = DescBuilder::new("DIV", Category::IntDiv, Extension::Base)
            .operand(OperandDesc::read(r(Width::W64)))
            .build();
        assert!(div.attrs.uses_divider);
        let jmp = DescBuilder::new("JMP", Category::Branch, Extension::Base)
            .operand(OperandDesc::read(r(Width::W64)))
            .build();
        assert!(jmp.attrs.control_flow);
    }

    #[test]
    fn vector_register_detection() {
        let vec_inst = DescBuilder::new("PADDD", Category::VecIntAlu, Extension::Sse2)
            .operand(OperandDesc::read_write(xmm()))
            .operand(OperandDesc::read(xmm()))
            .build();
        assert!(vec_inst.uses_vector_registers());
        assert!(!add_r64_r64().uses_vector_registers());
        assert_eq!(vec_inst.max_width(), Some(Width::W128));
    }
}
