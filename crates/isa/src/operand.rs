//! Operand descriptions.
//!
//! An *operand description* ([`OperandDesc`]) belongs to an instruction
//! descriptor and states what kind of value the operand is (register class,
//! fixed register, memory, immediate, or status flags), whether it is read
//! and/or written, and whether it is explicit (appears in the assembler
//! syntax) or implicit.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::flags::FlagSet;
use crate::register::{RegClass, Register, Width};

/// The kind of value an operand denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperandKind {
    /// Any register of the given class; the concrete register is chosen when
    /// the instruction is instantiated.
    Reg(RegClass),
    /// A fixed architectural register (used for implicit operands such as
    /// `RAX` for `MUL`, or `CL` for shift counts).
    FixedReg(Register),
    /// A memory location of the given access width. Memory operands are
    /// addressed through a base register chosen at instantiation time (the
    /// tool only uses base-register addressing, §8 of the paper).
    Mem(Width),
    /// An immediate of the given width.
    Imm(Width),
    /// The status flags (or a subset of them).
    Flags(FlagSet),
}

impl OperandKind {
    /// Returns `true` if the operand is a (class or fixed) register operand.
    #[must_use]
    pub fn is_register(self) -> bool {
        matches!(self, OperandKind::Reg(_) | OperandKind::FixedReg(_))
    }

    /// Returns `true` if the operand is a memory operand.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, OperandKind::Mem(_))
    }

    /// Returns `true` if the operand is an immediate.
    #[must_use]
    pub fn is_immediate(self) -> bool {
        matches!(self, OperandKind::Imm(_))
    }

    /// Returns `true` if the operand is a status-flag operand.
    #[must_use]
    pub fn is_flags(self) -> bool {
        matches!(self, OperandKind::Flags(_))
    }

    /// The register class of a register operand, if any.
    #[must_use]
    pub fn reg_class(self) -> Option<RegClass> {
        match self {
            OperandKind::Reg(c) => Some(c),
            OperandKind::FixedReg(r) => Some(r.class()),
            _ => None,
        }
    }

    /// The access width of the operand, if it has one (registers, memory and
    /// immediates do; flag operands do not).
    #[must_use]
    pub fn width(self) -> Option<Width> {
        match self {
            OperandKind::Reg(c) => Some(c.width),
            OperandKind::FixedReg(r) => Some(r.width),
            OperandKind::Mem(w) | OperandKind::Imm(w) => Some(w),
            OperandKind::Flags(_) => None,
        }
    }

    /// A short type name used in variant strings, e.g. `R64`, `XMM`, `M32`,
    /// `I8`, `FLAGS`.
    #[must_use]
    pub fn type_name(self) -> String {
        match self {
            OperandKind::Reg(c) => c.to_string(),
            OperandKind::FixedReg(r) => r.name(),
            OperandKind::Mem(w) => format!("M{}", w.bits()),
            OperandKind::Imm(w) => format!("I{}", w.bits()),
            OperandKind::Flags(_) => "FLAGS".to_string(),
        }
    }
}

impl fmt::Display for OperandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.type_name())
    }
}

/// Description of one operand of an instruction variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OperandDesc {
    /// What kind of value the operand is.
    pub kind: OperandKind,
    /// Whether the instruction reads the operand.
    pub read: bool,
    /// Whether the instruction writes the operand.
    pub write: bool,
    /// Whether the operand is implicit (does not appear in the assembler
    /// syntax).
    pub implicit: bool,
}

impl OperandDesc {
    /// An explicit operand that is only read.
    #[must_use]
    pub fn read(kind: OperandKind) -> OperandDesc {
        OperandDesc { kind, read: true, write: false, implicit: false }
    }

    /// An explicit operand that is only written.
    #[must_use]
    pub fn write(kind: OperandKind) -> OperandDesc {
        OperandDesc { kind, read: false, write: true, implicit: false }
    }

    /// An explicit operand that is both read and written.
    #[must_use]
    pub fn read_write(kind: OperandKind) -> OperandDesc {
        OperandDesc { kind, read: true, write: true, implicit: false }
    }

    /// Marks the operand as implicit.
    #[must_use]
    pub fn implicit(mut self) -> OperandDesc {
        self.implicit = true;
        self
    }

    /// Returns `true` if the operand is a source operand (read by the
    /// instruction). This is the set `S` in the paper's latency definition.
    #[must_use]
    pub fn is_source(&self) -> bool {
        self.read
    }

    /// Returns `true` if the operand is a destination operand (written by the
    /// instruction). This is the set `D` in the paper's latency definition.
    #[must_use]
    pub fn is_destination(&self) -> bool {
        self.write
    }

    /// Returns `true` if this operand is an explicit operand.
    #[must_use]
    pub fn is_explicit(&self) -> bool {
        !self.implicit
    }
}

impl fmt::Display for OperandDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rw = match (self.read, self.write) {
            (true, true) => "rw",
            (true, false) => "r",
            (false, true) => "w",
            (false, false) => "-",
        };
        if self.implicit {
            write!(f, "[{}:{rw}]", self.kind)
        } else {
            write!(f, "{}:{rw}", self.kind)
        }
    }
}

/// Convenience constructors for common operand shapes, used by the catalog.
pub mod shorthand {
    use super::*;

    /// Explicit general-purpose register operand of width `w`.
    #[must_use]
    pub fn r(w: Width) -> OperandKind {
        OperandKind::Reg(RegClass::gpr(w))
    }

    /// Explicit XMM register operand.
    #[must_use]
    pub fn xmm() -> OperandKind {
        OperandKind::Reg(RegClass::vec(Width::W128))
    }

    /// Explicit YMM register operand.
    #[must_use]
    pub fn ymm() -> OperandKind {
        OperandKind::Reg(RegClass::vec(Width::W256))
    }

    /// Explicit MMX register operand.
    #[must_use]
    pub fn mm() -> OperandKind {
        OperandKind::Reg(RegClass::mmx())
    }

    /// Memory operand of width `w`.
    #[must_use]
    pub fn mem(w: Width) -> OperandKind {
        OperandKind::Mem(w)
    }

    /// Immediate operand of width `w`.
    #[must_use]
    pub fn imm(w: Width) -> OperandKind {
        OperandKind::Imm(w)
    }

    /// Status-flag operand covering the given set.
    #[must_use]
    pub fn flags(set: FlagSet) -> OperandKind {
        OperandKind::Flags(set)
    }
}

#[cfg(test)]
mod tests {
    use super::shorthand::*;
    use super::*;
    use crate::register::gpr;

    #[test]
    fn kind_classification() {
        assert!(r(Width::W64).is_register());
        assert!(xmm().is_register());
        assert!(mem(Width::W32).is_memory());
        assert!(imm(Width::W8).is_immediate());
        assert!(flags(FlagSet::ALL).is_flags());
        assert!(!mem(Width::W32).is_register());
    }

    #[test]
    fn widths_and_classes() {
        assert_eq!(r(Width::W16).width(), Some(Width::W16));
        assert_eq!(xmm().width(), Some(Width::W128));
        assert_eq!(mem(Width::W64).width(), Some(Width::W64));
        assert_eq!(flags(FlagSet::CF).width(), None);
        assert_eq!(r(Width::W32).reg_class(), Some(RegClass::gpr(Width::W32)));
        let fixed = OperandKind::FixedReg(Register::gpr(gpr::RAX, Width::W64));
        assert_eq!(fixed.reg_class(), Some(RegClass::gpr(Width::W64)));
        assert_eq!(mem(Width::W8).reg_class(), None);
    }

    #[test]
    fn type_names() {
        assert_eq!(r(Width::W64).type_name(), "R64");
        assert_eq!(xmm().type_name(), "XMM");
        assert_eq!(ymm().type_name(), "YMM");
        assert_eq!(mm().type_name(), "MM");
        assert_eq!(mem(Width::W128).type_name(), "M128");
        assert_eq!(imm(Width::W32).type_name(), "I32");
        assert_eq!(flags(FlagSet::ALL).type_name(), "FLAGS");
    }

    #[test]
    fn source_destination_classification() {
        let src = OperandDesc::read(r(Width::W64));
        let dst = OperandDesc::write(r(Width::W64));
        let both = OperandDesc::read_write(r(Width::W64));
        assert!(src.is_source() && !src.is_destination());
        assert!(!dst.is_source() && dst.is_destination());
        assert!(both.is_source() && both.is_destination());
    }

    #[test]
    fn implicit_marker() {
        let flags_op = OperandDesc::write(flags(FlagSet::ALL)).implicit();
        assert!(flags_op.implicit);
        assert!(!flags_op.is_explicit());
        assert_eq!(flags_op.to_string(), "[FLAGS:w]");
        let explicit = OperandDesc::read_write(r(Width::W32));
        assert_eq!(explicit.to_string(), "R32:rw");
    }
}
