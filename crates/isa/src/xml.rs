//! Machine-readable XML representation of the instruction catalog.
//!
//! The paper converts Intel XED's configuration files into "a simpler XML
//! representation that contains enough information for generating assembler
//! code for each instruction variant, and that also includes information on
//! implicit operands" (§6.1). This module provides the same capability for
//! this repository's catalog: a small, dependency-free XML writer and reader.
//!
//! The format looks like:
//!
//! ```xml
//! <catalog>
//!   <instruction mnemonic="ADD" extension="BASE" category="IntAlu" uid="0">
//!     <operand kind="R64" read="1" write="1" implicit="0"/>
//!     <operand kind="R64" read="1" write="0" implicit="0"/>
//!     <operand kind="FLAGS" read="0" write="1" implicit="1" flags="CF|PF|AF|ZF|SF|OF"/>
//!   </instruction>
//! </catalog>
//! ```

use std::fmt::Write as _;

use crate::catalog::Catalog;
use crate::descriptor::InstructionDesc;
use crate::error::IsaError;
use crate::flags::{Flag, FlagSet};
use crate::operand::{OperandDesc, OperandKind};
use crate::register::{RegClass, RegFile, Register, Width};

/// Serializes a catalog to XML.
#[must_use]
pub fn catalog_to_xml(catalog: &Catalog) -> String {
    let mut out = String::with_capacity(catalog.len() * 256);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str("<catalog>\n");
    for desc in catalog.iter() {
        write_instruction(&mut out, desc);
    }
    out.push_str("</catalog>\n");
    out
}

fn write_instruction(out: &mut String, desc: &InstructionDesc) {
    let _ = write!(
        out,
        "  <instruction mnemonic=\"{}\" extension=\"{}\" category=\"{:?}\" uid=\"{}\"",
        escape(&desc.mnemonic),
        desc.extension,
        desc.category,
        desc.uid
    );
    let a = &desc.attrs;
    let attr_flags: &[(&str, bool)] = &[
        ("system", a.system),
        ("serializing", a.serializing),
        ("zeroLatency", a.may_be_zero_latency),
        ("zeroIdiom", a.zero_idiom),
        ("depBreaking", a.dependency_breaking_same_reg),
        ("controlFlow", a.control_flow),
        ("locked", a.locked),
        ("rep", a.rep_prefix),
        ("divider", a.uses_divider),
        ("pause", a.pause),
    ];
    for (name, value) in attr_flags {
        if *value {
            let _ = write!(out, " {name}=\"1\"");
        }
    }
    out.push_str(">\n");
    for op in &desc.operands {
        write_operand(out, op);
    }
    out.push_str("  </instruction>\n");
}

fn write_operand(out: &mut String, op: &OperandDesc) {
    let _ = write!(
        out,
        "    <operand kind=\"{}\" read=\"{}\" write=\"{}\" implicit=\"{}\"",
        op.kind.type_name(),
        u8::from(op.read),
        u8::from(op.write),
        u8::from(op.implicit)
    );
    if let OperandKind::Flags(set) = op.kind {
        let _ = write!(out, " flags=\"{set}\"");
    }
    out.push_str("/>\n");
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&quot;", "\"").replace("&lt;", "<").replace("&gt;", ">").replace("&amp;", "&")
}

/// Parses a catalog from the XML produced by [`catalog_to_xml`].
///
/// # Errors
///
/// Returns an [`IsaError`] if the XML is malformed or contains unknown
/// operand kinds, categories, or extensions.
pub fn catalog_from_xml(xml: &str) -> Result<Catalog, IsaError> {
    let mut catalog = Catalog::new();
    let mut current: Option<PendingInstruction> = None;
    for (line_no, raw_line) in xml.lines().enumerate() {
        let line = raw_line.trim();
        if line.starts_with("<?xml")
            || line == "<catalog>"
            || line == "</catalog>"
            || line.is_empty()
        {
            continue;
        }
        if let Some(rest) = line.strip_prefix("<instruction ") {
            let attrs = parse_attrs(rest)?;
            current = Some(PendingInstruction::from_attrs(&attrs, line_no)?);
        } else if line.starts_with("<operand ") {
            let rest = line.trim_start_matches("<operand ");
            let attrs = parse_attrs(rest)?;
            let op = parse_operand(&attrs, line_no)?;
            match current.as_mut() {
                Some(pending) => pending.operands.push(op),
                None => {
                    return Err(IsaError::Parse {
                        line: line_no + 1,
                        message: "operand outside of instruction".to_string(),
                    })
                }
            }
        } else if line == "</instruction>" {
            match current.take() {
                Some(pending) => {
                    catalog.add(pending.into_desc());
                }
                None => {
                    return Err(IsaError::Parse {
                        line: line_no + 1,
                        message: "unmatched </instruction>".to_string(),
                    })
                }
            }
        } else {
            return Err(IsaError::Parse {
                line: line_no + 1,
                message: format!("unrecognized XML line: {line}"),
            });
        }
    }
    Ok(catalog)
}

struct PendingInstruction {
    mnemonic: String,
    extension: crate::extension::Extension,
    category: crate::extension::Category,
    attrs: crate::descriptor::Attributes,
    operands: Vec<OperandDesc>,
}

impl PendingInstruction {
    fn from_attrs(
        attrs: &[(String, String)],
        line_no: usize,
    ) -> Result<PendingInstruction, IsaError> {
        let get = |name: &str| attrs.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str());
        let mnemonic = get("mnemonic")
            .ok_or_else(|| IsaError::Parse {
                line: line_no + 1,
                message: "missing mnemonic".to_string(),
            })?
            .to_string();
        let extension = parse_extension(get("extension").unwrap_or("BASE"), line_no)?;
        let category = parse_category(get("category").unwrap_or("IntAlu"), line_no)?;
        let flag = |name: &str| get(name) == Some("1");
        let attrs = crate::descriptor::Attributes {
            system: flag("system"),
            serializing: flag("serializing"),
            may_be_zero_latency: flag("zeroLatency"),
            zero_idiom: flag("zeroIdiom"),
            dependency_breaking_same_reg: flag("depBreaking"),
            control_flow: flag("controlFlow"),
            locked: flag("locked"),
            rep_prefix: flag("rep"),
            uses_divider: flag("divider"),
            pause: flag("pause"),
        };
        Ok(PendingInstruction {
            mnemonic: unescape(&mnemonic),
            extension,
            category,
            attrs,
            operands: Vec::new(),
        })
    }

    fn into_desc(self) -> InstructionDesc {
        let mut flags_read = FlagSet::EMPTY;
        let mut flags_written = FlagSet::EMPTY;
        for op in &self.operands {
            if let OperandKind::Flags(set) = op.kind {
                if op.read {
                    flags_read |= set;
                }
                if op.write {
                    flags_written |= set;
                }
            }
        }
        InstructionDesc {
            uid: usize::MAX,
            mnemonic: self.mnemonic,
            operands: self.operands,
            extension: self.extension,
            category: self.category,
            attrs: self.attrs,
            flags_read,
            flags_written,
        }
    }
}

/// Parses `key="value"` attribute pairs from the inside of an XML tag.
fn parse_attrs(rest: &str) -> Result<Vec<(String, String)>, IsaError> {
    let mut attrs = Vec::new();
    let body = rest.trim_end_matches('>').trim_end_matches('/').trim();
    let mut remaining = body;
    while !remaining.is_empty() {
        let eq = match remaining.find('=') {
            Some(i) => i,
            None => break,
        };
        let key = remaining[..eq].trim().to_string();
        let after_eq = &remaining[eq + 1..];
        let after_quote = after_eq.strip_prefix('"').ok_or_else(|| IsaError::Parse {
            line: 0,
            message: format!("malformed attribute near '{after_eq}'"),
        })?;
        let end_quote = after_quote.find('"').ok_or_else(|| IsaError::Parse {
            line: 0,
            message: "unterminated attribute value".to_string(),
        })?;
        let value = after_quote[..end_quote].to_string();
        attrs.push((key, value));
        remaining = after_quote[end_quote + 1..].trim_start();
    }
    Ok(attrs)
}

fn parse_operand(attrs: &[(String, String)], line_no: usize) -> Result<OperandDesc, IsaError> {
    let get = |name: &str| attrs.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str());
    let kind_str = get("kind").ok_or_else(|| IsaError::Parse {
        line: line_no + 1,
        message: "operand without kind".to_string(),
    })?;
    let flags_str = get("flags");
    let kind = parse_kind(kind_str, flags_str, line_no)?;
    Ok(OperandDesc {
        kind,
        read: get("read") == Some("1"),
        write: get("write") == Some("1"),
        implicit: get("implicit") == Some("1"),
    })
}

fn parse_kind(s: &str, flags: Option<&str>, line_no: usize) -> Result<OperandKind, IsaError> {
    if s == "FLAGS" {
        let set = match flags {
            Some(f) => parse_flagset(f),
            None => FlagSet::ALL,
        };
        return Ok(OperandKind::Flags(set));
    }
    if let Some(rest) = s.strip_prefix('M') {
        if let Ok(bits) = rest.parse::<u32>() {
            if let Some(w) = Width::from_bits(bits) {
                return Ok(OperandKind::Mem(w));
            }
        }
    }
    if let Some(rest) = s.strip_prefix('I') {
        if let Ok(bits) = rest.parse::<u32>() {
            if let Some(w) = Width::from_bits(bits) {
                return Ok(OperandKind::Imm(w));
            }
        }
    }
    match s {
        "R8" => return Ok(OperandKind::Reg(RegClass::gpr(Width::W8))),
        "R16" => return Ok(OperandKind::Reg(RegClass::gpr(Width::W16))),
        "R32" => return Ok(OperandKind::Reg(RegClass::gpr(Width::W32))),
        "R64" => return Ok(OperandKind::Reg(RegClass::gpr(Width::W64))),
        "XMM" => return Ok(OperandKind::Reg(RegClass::vec(Width::W128))),
        "YMM" => return Ok(OperandKind::Reg(RegClass::vec(Width::W256))),
        "MM" => return Ok(OperandKind::Reg(RegClass { file: RegFile::Mmx, width: Width::W64 })),
        _ => {}
    }
    // Fixed registers are written with their concrete name (e.g. "CL", "RAX",
    // "XMM0").
    if let Some(reg) = Register::from_name(s) {
        return Ok(OperandKind::FixedReg(reg));
    }
    Err(IsaError::Parse { line: line_no + 1, message: format!("unknown operand kind '{s}'") })
}

fn parse_flagset(s: &str) -> FlagSet {
    if s == "-" {
        return FlagSet::EMPTY;
    }
    let mut set = FlagSet::EMPTY;
    for part in s.split('|') {
        for f in Flag::ALL {
            if f.name() == part {
                set |= FlagSet::single(f);
            }
        }
    }
    set
}

fn parse_extension(s: &str, line_no: usize) -> Result<crate::extension::Extension, IsaError> {
    use crate::extension::Extension as E;
    let ext = match s {
        "BASE" => E::Base,
        "MMX" => E::Mmx,
        "SSE" => E::Sse,
        "SSE2" => E::Sse2,
        "SSE3" => E::Sse3,
        "SSSE3" => E::Ssse3,
        "SSE4.1" => E::Sse41,
        "SSE4.2" => E::Sse42,
        "AES" => E::Aes,
        "PCLMULQDQ" => E::Pclmulqdq,
        "AVX" => E::Avx,
        "AVX2" => E::Avx2,
        "FMA" => E::Fma,
        "BMI1" => E::Bmi1,
        "BMI2" => E::Bmi2,
        "POPCNT" => E::Popcnt,
        "MOVBE" => E::Movbe,
        "ADX" => E::Adx,
        _ => {
            return Err(IsaError::Parse {
                line: line_no + 1,
                message: format!("unknown extension '{s}'"),
            })
        }
    };
    Ok(ext)
}

fn parse_category(s: &str, line_no: usize) -> Result<crate::extension::Category, IsaError> {
    use crate::extension::Category as C;
    let all = [
        ("IntAlu", C::IntAlu),
        ("IntAluCarry", C::IntAluCarry),
        ("IncDec", C::IncDec),
        ("NegNot", C::NegNot),
        ("Mov", C::Mov),
        ("MovExtend", C::MovExtend),
        ("CMov", C::CMov),
        ("SetCC", C::SetCC),
        ("Xchg", C::Xchg),
        ("Xadd", C::Xadd),
        ("Bswap", C::Bswap),
        ("Shift", C::Shift),
        ("Rotate", C::Rotate),
        ("DoubleShift", C::DoubleShift),
        ("BitScan", C::BitScan),
        ("BitField", C::BitField),
        ("IntMul", C::IntMul),
        ("IntDiv", C::IntDiv),
        ("Lea", C::Lea),
        ("FlagOp", C::FlagOp),
        ("Branch", C::Branch),
        ("CallRet", C::CallRet),
        ("Stack", C::Stack),
        ("Nop", C::Nop),
        ("StringOp", C::StringOp),
        ("Crc32", C::Crc32),
        ("VecIntAlu", C::VecIntAlu),
        ("VecIntMul", C::VecIntMul),
        ("VecIntCmp", C::VecIntCmp),
        ("VecShift", C::VecShift),
        ("VecShuffle", C::VecShuffle),
        ("VecBlend", C::VecBlend),
        ("VecFpAdd", C::VecFpAdd),
        ("VecFpMul", C::VecFpMul),
        ("VecFma", C::VecFma),
        ("VecFpDiv", C::VecFpDiv),
        ("VecFpLogic", C::VecFpLogic),
        ("VecHorizontal", C::VecHorizontal),
        ("VecConvert", C::VecConvert),
        ("VecMov", C::VecMov),
        ("VecMovCross", C::VecMovCross),
        ("VecInsertExtract", C::VecInsertExtract),
        ("AesOp", C::AesOp),
        ("ClmulOp", C::ClmulOp),
        ("System", C::System),
    ];
    all.iter().find(|(name, _)| *name == s).map(|(_, c)| *c).ok_or_else(|| IsaError::Parse {
        line: line_no + 1,
        message: format!("unknown category '{s}'"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_catalog() {
        let mut catalog = Catalog::new();
        crate::gen::populate(&mut catalog);
        let xml = catalog_to_xml(&catalog);
        let parsed = catalog_from_xml(&xml).expect("roundtrip parse");
        assert_eq!(parsed.len(), catalog.len());
        for (a, b) in catalog.iter().zip(parsed.iter()) {
            assert_eq!(a.mnemonic, b.mnemonic);
            assert_eq!(a.variant(), b.variant(), "variant mismatch for {}", a.mnemonic);
            assert_eq!(a.extension, b.extension);
            assert_eq!(a.category, b.category);
            assert_eq!(a.attrs, b.attrs);
            assert_eq!(a.flags_read, b.flags_read);
            assert_eq!(a.flags_written, b.flags_written);
            assert_eq!(a.operands.len(), b.operands.len());
        }
    }

    #[test]
    fn xml_contains_implicit_operands() {
        let mut catalog = Catalog::new();
        crate::gen::populate(&mut catalog);
        let xml = catalog_to_xml(&catalog);
        assert!(xml.contains("implicit=\"1\""));
        assert!(xml.contains("flags=\""));
        assert!(xml.contains("mnemonic=\"AESDEC\""));
    }

    #[test]
    fn malformed_xml_is_rejected() {
        assert!(catalog_from_xml("<garbage/>").is_err());
        assert!(catalog_from_xml("<operand kind=\"R64\"/>").is_err());
        let missing_kind = "<instruction mnemonic=\"X\" extension=\"BASE\" category=\"IntAlu\" uid=\"0\">\n<operand read=\"1\"/>\n</instruction>";
        assert!(catalog_from_xml(missing_kind).is_err());
        let bad_ext = "<instruction mnemonic=\"X\" extension=\"WAT\" category=\"IntAlu\" uid=\"0\">\n</instruction>";
        assert!(catalog_from_xml(bad_ext).is_err());
    }

    #[test]
    fn escape_roundtrip() {
        assert_eq!(unescape(&escape("a<b>&\"c\"")), "a<b>&\"c\"");
    }

    #[test]
    fn parse_kind_handles_fixed_registers() {
        let kind = parse_kind("CL", None, 0).unwrap();
        match kind {
            OperandKind::FixedReg(reg) => assert_eq!(reg.name(), "CL"),
            other => panic!("unexpected kind {other:?}"),
        }
        let kind = parse_kind("XMM0", None, 0).unwrap();
        match kind {
            OperandKind::FixedReg(reg) => assert_eq!(reg.name(), "XMM0"),
            other => panic!("unexpected kind {other:?}"),
        }
        assert!(parse_kind("BOGUS", None, 0).is_err());
    }
}
