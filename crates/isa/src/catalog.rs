//! The instruction catalog: the machine-readable list of all instruction
//! variants known to the tool.
//!
//! The catalog plays the role of the XML representation that the paper
//! derives from Intel XED's configuration files (§6.1): it is the sole input
//! of the benchmark-generation algorithms besides the measurement interface.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::descriptor::InstructionDesc;
use crate::extension::{Category, Extension};

/// A catalog of instruction variants.
///
/// Variants are stored in a stable order and indexed by their `uid`; the
/// catalog additionally maintains a mnemonic index for lookups.
///
/// Descriptors are interned behind [`Arc`] at insertion time: consumers that
/// need a shared handle for repeated instantiation (the assembler's `Inst`
/// stores one per instruction instance) clone the interned `Arc` via
/// [`Catalog::get_arc`] / [`Catalog::find_variant_arc`] instead of
/// deep-cloning mnemonic and operand strings on every use — the
/// characterization hot path does this once per generated microbenchmark
/// instruction.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    descriptors: Vec<Arc<InstructionDesc>>,
    #[serde(skip)]
    by_mnemonic: BTreeMap<String, Vec<usize>>,
}

impl Catalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Builds the full Intel Core catalog used throughout this repository.
    ///
    /// The catalog contains the base integer instruction set, the SSE family
    /// up to SSE4.2, AES-NI, carry-less multiplication, AVX/AVX2/FMA, and the
    /// BMI/ADX extensions — a few thousand instruction variants in total.
    #[must_use]
    pub fn intel_core() -> Catalog {
        let mut catalog = Catalog::new();
        crate::gen::populate(&mut catalog);
        catalog
    }

    /// Adds a descriptor, assigning its `uid`. Returns the assigned uid.
    pub fn add(&mut self, mut desc: InstructionDesc) -> usize {
        let uid = self.descriptors.len();
        desc.uid = uid;
        self.by_mnemonic.entry(desc.mnemonic.clone()).or_default().push(uid);
        self.descriptors.push(Arc::new(desc));
        uid
    }

    /// Rebuilds the mnemonic index (used after deserialization).
    pub fn rebuild_index(&mut self) {
        self.by_mnemonic.clear();
        for (i, d) in self.descriptors.iter().enumerate() {
            self.by_mnemonic.entry(d.mnemonic.clone()).or_default().push(i);
        }
    }

    /// The number of instruction variants in the catalog.
    #[must_use]
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// Returns `true` if the catalog contains no variants.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Returns the descriptor with the given uid.
    ///
    /// # Panics
    ///
    /// Panics if `uid` is out of range.
    #[must_use]
    pub fn get(&self, uid: usize) -> &InstructionDesc {
        &self.descriptors[uid]
    }

    /// Returns the descriptor with the given uid, or `None` if out of range.
    #[must_use]
    pub fn try_get(&self, uid: usize) -> Option<&InstructionDesc> {
        self.descriptors.get(uid).map(Arc::as_ref)
    }

    /// Returns the interned shared handle for the descriptor with the given
    /// uid. Cloning the returned `Arc` is the allocation-free way to obtain
    /// an owned handle for instruction instantiation.
    ///
    /// # Panics
    ///
    /// Panics if `uid` is out of range.
    #[must_use]
    pub fn get_arc(&self, uid: usize) -> &Arc<InstructionDesc> {
        &self.descriptors[uid]
    }

    /// Returns the interned shared handle with the given uid, or `None` if
    /// out of range.
    #[must_use]
    pub fn try_get_arc(&self, uid: usize) -> Option<&Arc<InstructionDesc>> {
        self.descriptors.get(uid)
    }

    /// Iterates over all variants.
    pub fn iter(&self) -> impl Iterator<Item = &InstructionDesc> {
        self.descriptors.iter().map(Arc::as_ref)
    }

    /// Iterates over the interned shared handles of all variants.
    pub fn iter_arcs(&self) -> impl Iterator<Item = &Arc<InstructionDesc>> {
        self.descriptors.iter()
    }

    /// Interned handles of all variants of the given mnemonic (the single
    /// walk of the mnemonic index backing the lookups below).
    fn variant_arcs_of(&self, mnemonic: &str) -> impl Iterator<Item = &Arc<InstructionDesc>> {
        self.by_mnemonic
            .get(mnemonic)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(move |&i| &self.descriptors[i])
    }

    /// All variants of the given mnemonic.
    pub fn variants_of(&self, mnemonic: &str) -> impl Iterator<Item = &InstructionDesc> {
        self.variant_arcs_of(mnemonic).map(Arc::as_ref)
    }

    /// Finds a variant by mnemonic and variant string (e.g. `"R64, R64"`).
    #[must_use]
    pub fn find_variant(&self, mnemonic: &str, variant: &str) -> Option<&InstructionDesc> {
        self.find_variant_arc(mnemonic, variant).map(Arc::as_ref)
    }

    /// Finds a variant's interned shared handle by mnemonic and variant
    /// string. Cloning the result is cheap (reference-count bump).
    #[must_use]
    pub fn find_variant_arc(&self, mnemonic: &str, variant: &str) -> Option<&Arc<InstructionDesc>> {
        let normalized = normalize_variant(variant);
        self.variant_arcs_of(mnemonic).find(|d| normalize_variant(&d.variant()) == normalized)
    }

    /// Returns the interned handle for a descriptor that was obtained from
    /// this catalog (matched by uid and identity), or a freshly allocated
    /// clone for foreign descriptors.
    #[must_use]
    pub fn intern(&self, desc: &InstructionDesc) -> Arc<InstructionDesc> {
        match self.descriptors.get(desc.uid) {
            Some(arc) if std::ptr::eq(arc.as_ref(), desc) => Arc::clone(arc),
            _ => Arc::new(desc.clone()),
        }
    }

    /// All distinct mnemonics in the catalog.
    pub fn mnemonics(&self) -> impl Iterator<Item = &str> {
        self.by_mnemonic.keys().map(String::as_str)
    }

    /// Iterates over variants of a given category.
    pub fn by_category(&self, category: Category) -> impl Iterator<Item = &InstructionDesc> {
        self.iter().filter(move |d| d.category == category)
    }

    /// Iterates over variants of a given extension.
    pub fn by_extension(&self, extension: Extension) -> impl Iterator<Item = &InstructionDesc> {
        self.iter().filter(move |d| d.extension == extension)
    }

    /// Counts variants per extension (useful for reporting).
    #[must_use]
    pub fn extension_histogram(&self) -> BTreeMap<String, usize> {
        let mut map = BTreeMap::new();
        for d in &self.descriptors {
            *map.entry(d.extension.to_string()).or_insert(0) += 1;
        }
        map
    }
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Catalog with {} variants of {} mnemonics", self.len(), self.by_mnemonic.len())
    }
}

impl<'a> IntoIterator for &'a Catalog {
    type Item = &'a InstructionDesc;
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, Arc<InstructionDesc>>,
        fn(&'a Arc<InstructionDesc>) -> &'a InstructionDesc,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.descriptors.iter().map(Arc::as_ref)
    }
}

/// Normalizes a variant string for comparison (whitespace-insensitive,
/// case-insensitive).
fn normalize_variant(v: &str) -> String {
    v.chars().filter(|c| !c.is_whitespace()).collect::<String>().to_ascii_uppercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::DescBuilder;
    use crate::flags::FlagSet;
    use crate::operand::shorthand::*;
    use crate::operand::OperandDesc;
    use crate::register::Width;

    fn small_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(
            DescBuilder::new("ADD", Category::IntAlu, Extension::Base)
                .operand(OperandDesc::read_write(r(Width::W64)))
                .operand(OperandDesc::read(r(Width::W64)))
                .writes_flags(FlagSet::ALL)
                .build(),
        );
        c.add(
            DescBuilder::new("ADD", Category::IntAlu, Extension::Base)
                .operand(OperandDesc::read_write(r(Width::W32)))
                .operand(OperandDesc::read(r(Width::W32)))
                .writes_flags(FlagSet::ALL)
                .build(),
        );
        c.add(
            DescBuilder::new("PADDD", Category::VecIntAlu, Extension::Sse2)
                .operand(OperandDesc::read_write(xmm()))
                .operand(OperandDesc::read(xmm()))
                .build(),
        );
        c
    }

    #[test]
    fn add_assigns_sequential_uids() {
        let c = small_catalog();
        assert_eq!(c.len(), 3);
        for (i, d) in c.iter().enumerate() {
            assert_eq!(d.uid, i);
        }
    }

    #[test]
    fn find_variant_is_whitespace_and_case_insensitive() {
        let c = small_catalog();
        assert!(c.find_variant("ADD", "R64, R64").is_some());
        assert!(c.find_variant("ADD", "r64,r64").is_some());
        assert!(c.find_variant("ADD", "R64 , R64").is_some());
        assert!(c.find_variant("ADD", "R64, M64").is_none());
        assert!(c.find_variant("NOPE", "R64, R64").is_none());
    }

    #[test]
    fn variants_of_and_mnemonics() {
        let c = small_catalog();
        assert_eq!(c.variants_of("ADD").count(), 2);
        assert_eq!(c.variants_of("PADDD").count(), 1);
        let mnemonics: Vec<&str> = c.mnemonics().collect();
        assert_eq!(mnemonics, vec!["ADD", "PADDD"]);
    }

    #[test]
    fn category_and_extension_filters() {
        let c = small_catalog();
        assert_eq!(c.by_category(Category::IntAlu).count(), 2);
        assert_eq!(c.by_category(Category::VecIntAlu).count(), 1);
        assert_eq!(c.by_extension(Extension::Sse2).count(), 1);
        let hist = c.extension_histogram();
        assert_eq!(hist.get("BASE"), Some(&2));
        assert_eq!(hist.get("SSE2"), Some(&1));
    }

    #[test]
    fn interned_arcs_are_shared_not_cloned() {
        let c = small_catalog();
        let desc = c.find_variant("ADD", "R64, R64").unwrap();
        // The interned handle for a catalog-borrowed descriptor aliases the
        // stored Arc (no deep clone)...
        let interned = c.intern(desc);
        assert!(std::ptr::eq(interned.as_ref(), desc));
        assert!(std::ptr::eq(interned.as_ref(), c.get(desc.uid)));
        assert!(std::ptr::eq(c.get_arc(desc.uid).as_ref(), desc));
        assert!(std::ptr::eq(c.find_variant_arc("ADD", "R64, R64").unwrap().as_ref(), desc));
        // ...while a foreign descriptor falls back to a fresh allocation.
        let mut foreign = desc.clone();
        foreign.uid = desc.uid;
        let fresh = c.intern(&foreign);
        assert!(!std::ptr::eq(fresh.as_ref(), desc));
        assert!(c.try_get_arc(usize::MAX).is_none());
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut c = small_catalog();
        c.by_mnemonic.clear();
        assert_eq!(c.variants_of("ADD").count(), 0);
        c.rebuild_index();
        assert_eq!(c.variants_of("ADD").count(), 2);
    }

    #[test]
    fn intel_core_catalog_is_large_and_consistent() {
        let c = Catalog::intel_core();
        assert!(c.len() > 1000, "expected a large catalog, got {}", c.len());
        // Every uid must match its position.
        for (i, d) in c.iter().enumerate() {
            assert_eq!(d.uid, i);
            assert!(!d.mnemonic.is_empty());
        }
        // Spot-check a few well-known variants.
        assert!(c.find_variant("ADD", "R64, R64").is_some());
        assert!(c.find_variant("AESDEC", "XMM, XMM").is_some());
        assert!(c.find_variant("SHLD", "R64, R64, I8").is_some());
        assert!(c.find_variant("MOVQ2DQ", "XMM, MM").is_some());
        assert!(c.find_variant("MOVDQ2Q", "MM, XMM").is_some());
    }
}
