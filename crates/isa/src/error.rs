//! Error types of the `uops-isa` crate.

use std::error::Error;
use std::fmt;

/// Errors produced when parsing or validating instruction-set descriptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A parse error in the XML catalog representation.
    Parse {
        /// 1-based line number where the error occurred (0 if unknown).
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A referenced instruction variant does not exist in the catalog.
    UnknownVariant {
        /// The mnemonic that was looked up.
        mnemonic: String,
        /// The variant string that was looked up.
        variant: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::Parse { line, message } => {
                if *line == 0 {
                    write!(f, "parse error: {message}")
                } else {
                    write!(f, "parse error at line {line}: {message}")
                }
            }
            IsaError::UnknownVariant { mnemonic, variant } => {
                write!(f, "unknown instruction variant: {mnemonic} ({variant})")
            }
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = IsaError::Parse { line: 3, message: "bad tag".into() };
        assert_eq!(e.to_string(), "parse error at line 3: bad tag");
        let e = IsaError::Parse { line: 0, message: "bad tag".into() };
        assert_eq!(e.to_string(), "parse error: bad tag");
        let e = IsaError::UnknownVariant { mnemonic: "FOO".into(), variant: "R64".into() };
        assert_eq!(e.to_string(), "unknown instruction variant: FOO (R64)");
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<IsaError>();
    }
}
