//! # uops-isa
//!
//! A machine-readable model of the x86-64 instruction set, as needed by the
//! microbenchmark-generation algorithms of
//! [uops.info](https://uops.info) (Abel & Reineke, ASPLOS 2019).
//!
//! The crate provides:
//!
//! * [`Register`], [`RegClass`], [`Width`]: architectural registers and the
//!   widths at which they can be accessed.
//! * [`FlagSet`]: the x86 status flags, used to model implicit flag
//!   dependencies.
//! * [`OperandDesc`] / [`OperandKind`]: operand descriptions including
//!   read/write sets and implicit operands.
//! * [`InstructionDesc`]: one instruction *variant* (mnemonic + operand form).
//! * [`Catalog`]: the full set of instruction variants, with
//!   [`Catalog::intel_core`] generating a catalog of a few thousand variants
//!   covering the base instruction set, MMX, SSE–SSE4.2, AES-NI, AVX/AVX2,
//!   FMA, and the BMI/ADX extensions.
//! * [`xml`]: a machine-readable XML representation of the catalog, playing
//!   the role of the XED-derived XML file of the paper (§6.1).
//!
//! ## Example
//!
//! ```rust
//! use uops_isa::Catalog;
//!
//! let catalog = Catalog::intel_core();
//! let add = catalog.find_variant("ADD", "R64, R64").expect("ADD exists");
//! assert!(add.writes_flags());
//! assert_eq!(add.explicit_operand_count(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod descriptor;
pub mod error;
pub mod extension;
pub mod flags;
pub mod gen;
pub mod operand;
pub mod register;
pub mod xml;

pub use catalog::Catalog;
pub use descriptor::{Attributes, DescBuilder, InstructionDesc};
pub use error::IsaError;
pub use extension::{Category, Extension};
pub use flags::{Flag, FlagSet};
pub use operand::{OperandDesc, OperandKind};
pub use register::{gpr, RegClass, RegFile, Register, Width};
