//! Catalog generation: programmatic expansion of the x86 instruction set into
//! instruction variants.
//!
//! This module is the analogue of parsing Intel XED's configuration files
//! (§6.1 of the paper): it produces, for every supported mnemonic, one
//! [`InstructionDesc`] per operand form (register/memory/immediate operands at
//! every supported width), including implicit operands such as status flags,
//! shift counts in `CL`, or the implicit `XMM0` operand of `BLENDV`-style
//! instructions.

use crate::catalog::Catalog;
use crate::descriptor::{DescBuilder, InstructionDesc};
use crate::extension::{Category, Extension};
use crate::flags::FlagSet;
use crate::operand::shorthand::*;
use crate::operand::{OperandDesc, OperandKind};
use crate::register::{gpr, Register, Width};

use Category as C;
use Extension as E;
use Width::*;

/// The standard general-purpose widths used for most integer instructions.
const GPR_WIDTHS: [Width; 4] = [W8, W16, W32, W64];
/// Widths for instructions that have no 8-bit form.
const GPR_WIDE: [Width; 3] = [W16, W32, W64];

/// The sixteen condition codes used by `Jcc`, `CMOVcc` and `SETcc`.
/// Each entry is the suffix together with the flags the condition reads.
fn condition_codes() -> Vec<(&'static str, FlagSet)> {
    use crate::flags::Flag::*;
    vec![
        ("O", FlagSet::single(Of)),
        ("NO", FlagSet::single(Of)),
        ("B", FlagSet::single(Cf)),
        ("NB", FlagSet::single(Cf)),
        ("Z", FlagSet::single(Zf)),
        ("NZ", FlagSet::single(Zf)),
        ("BE", FlagSet::from_flags([Cf, Zf])),
        ("NBE", FlagSet::from_flags([Cf, Zf])),
        ("S", FlagSet::single(Sf)),
        ("NS", FlagSet::single(Sf)),
        ("P", FlagSet::single(Pf)),
        ("NP", FlagSet::single(Pf)),
        ("L", FlagSet::from_flags([Sf, Of])),
        ("NL", FlagSet::from_flags([Sf, Of])),
        ("LE", FlagSet::from_flags([Zf, Sf, Of])),
        ("NLE", FlagSet::from_flags([Zf, Sf, Of])),
    ]
}

/// Immediate width used for an operand of width `w` (x86 immediates are at
/// most 32 bits wide except for `MOV r64, imm64`).
fn imm_for(w: Width) -> Width {
    match w {
        W8 => W8,
        W16 => W16,
        _ => W32,
    }
}

struct Gen<'a> {
    catalog: &'a mut Catalog,
}

impl<'a> Gen<'a> {
    fn add(&mut self, desc: InstructionDesc) {
        self.catalog.add(desc);
    }

    fn builder(&self, mnemonic: &str, cat: Category, ext: Extension) -> DescBuilder {
        DescBuilder::new(mnemonic, cat, ext)
    }

    // ----------------------------------------------------------------------
    // Integer instruction forms
    // ----------------------------------------------------------------------

    /// Standard two-operand ALU instruction (ADD/SUB/AND/...): forms
    /// `(R, R)`, `(R, M)`, `(M, R)`, `(R, I)`, `(M, I)` for each width.
    #[allow(clippy::too_many_arguments)]
    fn alu2(
        &mut self,
        mnemonic: &str,
        cat: Category,
        reads: FlagSet,
        writes: FlagSet,
        first_is_rw: bool,
        zero_idiom: bool,
        widths: &[Width],
    ) {
        for &w in widths {
            let dst = |kind| {
                if first_is_rw {
                    OperandDesc::read_write(kind)
                } else {
                    OperandDesc::read(kind)
                }
            };
            let forms: Vec<Vec<OperandDesc>> = vec![
                vec![dst(r(w)), OperandDesc::read(r(w))],
                vec![dst(r(w)), OperandDesc::read(mem(w))],
                vec![dst(mem(w)), OperandDesc::read(r(w))],
                vec![dst(r(w)), OperandDesc::read(imm(imm_for(w)))],
                vec![dst(mem(w)), OperandDesc::read(imm(imm_for(w)))],
            ];
            for ops in forms {
                let desc = self
                    .builder(mnemonic, cat, E::Base)
                    .operands(ops)
                    .reads_flags(reads)
                    .writes_flags(writes)
                    .with_attrs(|a| a.zero_idiom = zero_idiom)
                    .build();
                self.add(desc);
            }
        }
    }

    /// Unary read-modify-write instruction (INC/DEC/NEG/NOT): `(R)`, `(M)`.
    fn unary(&mut self, mnemonic: &str, cat: Category, writes: FlagSet, widths: &[Width]) {
        for &w in widths {
            for kind in [r(w), mem(w)] {
                let desc = self
                    .builder(mnemonic, cat, E::Base)
                    .operand(OperandDesc::read_write(kind))
                    .writes_flags(writes)
                    .build();
                self.add(desc);
            }
        }
    }

    /// Shift or rotate: `(R, I8)`, `(R, CL)`, `(M, I8)`, `(M, CL)`.
    fn shift(&mut self, mnemonic: &str, cat: Category, reads: FlagSet, widths: &[Width]) {
        let cl = OperandKind::FixedReg(Register::gpr(gpr::RCX, W8));
        for &w in widths {
            for dst in [r(w), mem(w)] {
                for count in [imm(W8), cl] {
                    let desc = self
                        .builder(mnemonic, cat, E::Base)
                        .operand(OperandDesc::read_write(dst))
                        .operand(OperandDesc::read(count))
                        .reads_flags(reads)
                        .writes_flags(FlagSet::ALL)
                        .build();
                    self.add(desc);
                }
            }
        }
    }

    /// Double-precision shift (SHLD/SHRD):
    /// `(R, R, I8)`, `(R, R, CL)`, `(M, R, I8)`, `(M, R, CL)`.
    fn double_shift(&mut self, mnemonic: &str) {
        let cl = OperandKind::FixedReg(Register::gpr(gpr::RCX, W8));
        for &w in &GPR_WIDE {
            for dst in [r(w), mem(w)] {
                for count in [imm(W8), cl] {
                    let desc = self
                        .builder(mnemonic, C::DoubleShift, E::Base)
                        .operand(OperandDesc::read_write(dst))
                        .operand(OperandDesc::read(r(w)))
                        .operand(OperandDesc::read(count))
                        .writes_flags(FlagSet::ALL)
                        .build();
                    self.add(desc);
                }
            }
        }
    }

    /// Data moves: `MOV` with all its forms.
    fn mov(&mut self) {
        for &w in &GPR_WIDTHS {
            let forms: Vec<(Vec<OperandDesc>, bool)> = vec![
                // (operands, may_be_zero_latency)
                (vec![OperandDesc::write(r(w)), OperandDesc::read(r(w))], w == W32 || w == W64),
                (vec![OperandDesc::write(r(w)), OperandDesc::read(mem(w))], false),
                (vec![OperandDesc::write(mem(w)), OperandDesc::read(r(w))], false),
                (
                    vec![
                        OperandDesc::write(r(w)),
                        OperandDesc::read(imm(if w == W64 { W64 } else { imm_for(w) })),
                    ],
                    false,
                ),
                (vec![OperandDesc::write(mem(w)), OperandDesc::read(imm(imm_for(w)))], false),
            ];
            for (ops, zl) in forms {
                let desc = self
                    .builder("MOV", C::Mov, E::Base)
                    .operands(ops)
                    .with_attrs(|a| a.may_be_zero_latency = zl)
                    .build();
                self.add(desc);
            }
        }
    }

    /// Sign- and zero-extending moves (MOVSX/MOVZX/MOVSXD).
    fn movx(&mut self) {
        let combos: &[(Width, Width)] = &[(W16, W8), (W32, W8), (W32, W16), (W64, W8), (W64, W16)];
        for &(dw, sw) in combos {
            for (mnemonic, zl) in [("MOVSX", false), ("MOVZX", dw == W32 || dw == W64)] {
                for src in [r(sw), mem(sw)] {
                    let desc = self
                        .builder(mnemonic, C::MovExtend, E::Base)
                        .operand(OperandDesc::write(r(dw)))
                        .operand(OperandDesc::read(src))
                        .with_attrs(|a| {
                            a.may_be_zero_latency = zl && !matches!(src, OperandKind::Mem(_))
                        })
                        .build();
                    self.add(desc);
                }
            }
        }
        for src in [r(W32), mem(W32)] {
            let desc = self
                .builder("MOVSXD", C::MovExtend, E::Base)
                .operand(OperandDesc::write(r(W64)))
                .operand(OperandDesc::read(src))
                .build();
            self.add(desc);
        }
    }

    /// Conditional moves.
    fn cmov(&mut self) {
        for (cc, reads) in condition_codes() {
            for &w in &GPR_WIDE {
                for src in [r(w), mem(w)] {
                    let desc = self
                        .builder(&format!("CMOV{cc}"), C::CMov, E::Base)
                        .operand(OperandDesc::read_write(r(w)))
                        .operand(OperandDesc::read(src))
                        .reads_flags(reads)
                        .build();
                    self.add(desc);
                }
            }
        }
    }

    /// SETcc.
    fn setcc(&mut self) {
        for (cc, reads) in condition_codes() {
            for dst in [r(W8), mem(W8)] {
                let desc = self
                    .builder(&format!("SET{cc}"), C::SetCC, E::Base)
                    .operand(OperandDesc::write(dst))
                    .reads_flags(reads)
                    .build();
                self.add(desc);
            }
        }
    }

    /// Conditional branches (relative immediate target).
    fn jcc(&mut self) {
        for (cc, reads) in condition_codes() {
            let desc = self
                .builder(&format!("J{cc}"), C::Branch, E::Base)
                .operand(OperandDesc::read(imm(W32)))
                .reads_flags(reads)
                .build();
            self.add(desc);
        }
    }

    /// Multiplication and division with implicit RAX/RDX operands, plus the
    /// 2- and 3-operand forms of IMUL.
    fn mul_div(&mut self) {
        for &w in &GPR_WIDTHS {
            for (mnemonic, cat) in
                [("MUL", C::IntMul), ("IMUL", C::IntMul), ("DIV", C::IntDiv), ("IDIV", C::IntDiv)]
            {
                for src in [r(w), mem(w)] {
                    let rax = OperandKind::FixedReg(Register::gpr(gpr::RAX, w));
                    let rdx = OperandKind::FixedReg(Register::gpr(gpr::RDX, w));
                    let mut b = self
                        .builder(mnemonic, cat, E::Base)
                        .operand(OperandDesc::read(src))
                        .operand(OperandDesc::read_write(rax).implicit());
                    // 8-bit forms use AH:AL instead of RDX:RAX; we model the
                    // second implicit operand only for wider forms.
                    if w != W8 {
                        b = b.operand(OperandDesc::read_write(rdx).implicit());
                    }
                    let desc = b.writes_flags(FlagSet::ALL).build();
                    self.add(desc);
                }
            }
        }
        // IMUL r, r/m and IMUL r, r/m, imm.
        for &w in &GPR_WIDE {
            for src in [r(w), mem(w)] {
                let desc = self
                    .builder("IMUL", C::IntMul, E::Base)
                    .operand(OperandDesc::read_write(r(w)))
                    .operand(OperandDesc::read(src))
                    .writes_flags(FlagSet::ALL)
                    .build();
                self.add(desc);
                let desc3 = self
                    .builder("IMUL", C::IntMul, E::Base)
                    .operand(OperandDesc::write(r(w)))
                    .operand(OperandDesc::read(src))
                    .operand(OperandDesc::read(imm(imm_for(w))))
                    .writes_flags(FlagSet::ALL)
                    .build();
                self.add(desc3);
            }
        }
    }

    /// Bit scan / count instructions.
    fn bitscan(&mut self) {
        for (mnemonic, ext) in [
            ("BSF", E::Base),
            ("BSR", E::Base),
            ("TZCNT", E::Bmi1),
            ("LZCNT", E::Bmi1),
            ("POPCNT", E::Popcnt),
        ] {
            for &w in &GPR_WIDE {
                for src in [r(w), mem(w)] {
                    let desc = self
                        .builder(mnemonic, C::BitScan, ext)
                        .operand(OperandDesc::write(r(w)))
                        .operand(OperandDesc::read(src))
                        .writes_flags(FlagSet::ALL)
                        .build();
                    self.add(desc);
                }
            }
        }
        // Bit test instructions.
        for (mnemonic, modifies) in [("BT", false), ("BTS", true), ("BTR", true), ("BTC", true)] {
            for &w in &GPR_WIDE {
                for bit in [r(w), imm(W8)] {
                    let first = if modifies {
                        OperandDesc::read_write(r(w))
                    } else {
                        OperandDesc::read(r(w))
                    };
                    let desc = self
                        .builder(mnemonic, C::BitScan, E::Base)
                        .operand(first)
                        .operand(OperandDesc::read(bit))
                        .writes_flags(FlagSet::CF)
                        .build();
                    self.add(desc);
                }
            }
        }
    }

    /// BMI1/BMI2 bit-field instructions.
    fn bmi(&mut self) {
        let widths = [W32, W64];
        // Three-operand VEX-encoded GPR instructions.
        for (mnemonic, ext, writes_flags) in [
            ("ANDN", E::Bmi1, true),
            ("BEXTR", E::Bmi1, true),
            ("BZHI", E::Bmi2, true),
            ("PDEP", E::Bmi2, false),
            ("PEXT", E::Bmi2, false),
            ("SARX", E::Bmi2, false),
            ("SHLX", E::Bmi2, false),
            ("SHRX", E::Bmi2, false),
        ] {
            for &w in &widths {
                for src in [r(w), mem(w)] {
                    let mut b = self
                        .builder(mnemonic, C::BitField, ext)
                        .operand(OperandDesc::write(r(w)))
                        .operand(OperandDesc::read(src))
                        .operand(OperandDesc::read(r(w)));
                    if writes_flags {
                        b = b.writes_flags(FlagSet::ALL);
                    }
                    self.add(b.build());
                }
            }
        }
        // Two-operand BMI1 instructions.
        for mnemonic in ["BLSI", "BLSMSK", "BLSR"] {
            for &w in &widths {
                for src in [r(w), mem(w)] {
                    let desc = self
                        .builder(mnemonic, C::BitField, E::Bmi1)
                        .operand(OperandDesc::write(r(w)))
                        .operand(OperandDesc::read(src))
                        .writes_flags(FlagSet::ALL)
                        .build();
                    self.add(desc);
                }
            }
        }
        // RORX (immediate rotate without flags) and MULX.
        for &w in &widths {
            for src in [r(w), mem(w)] {
                let desc = self
                    .builder("RORX", C::BitField, E::Bmi2)
                    .operand(OperandDesc::write(r(w)))
                    .operand(OperandDesc::read(src))
                    .operand(OperandDesc::read(imm(W8)))
                    .build();
                self.add(desc);
                let rdx = OperandKind::FixedReg(Register::gpr(gpr::RDX, w));
                let desc = self
                    .builder("MULX", C::IntMul, E::Bmi2)
                    .operand(OperandDesc::write(r(w)))
                    .operand(OperandDesc::write(r(w)))
                    .operand(OperandDesc::read(src))
                    .operand(OperandDesc::read(rdx).implicit())
                    .build();
                self.add(desc);
            }
        }
        // ADX.
        for mnemonic in ["ADCX", "ADOX"] {
            for &w in &widths {
                for src in [r(w), mem(w)] {
                    let flag = if mnemonic == "ADCX" {
                        FlagSet::CF
                    } else {
                        FlagSet::single(crate::flags::Flag::Of)
                    };
                    let desc = self
                        .builder(mnemonic, C::IntAluCarry, E::Adx)
                        .operand(OperandDesc::read_write(r(w)))
                        .operand(OperandDesc::read(src))
                        .reads_flags(flag)
                        .writes_flags(flag)
                        .build();
                    self.add(desc);
                }
            }
        }
    }

    /// Miscellaneous base instructions: LEA, XCHG, XADD, BSWAP, MOVBE, CRC32,
    /// PUSH/POP, NOP, flag manipulation, branches, string ops, and a few
    /// system/serializing instructions.
    fn misc_base(&mut self) {
        // LEA: the memory operand is only used for address generation.
        for &w in &GPR_WIDE {
            let agen = OperandDesc { kind: mem(W64), read: false, write: false, implicit: false };
            let desc = self
                .builder("LEA", C::Lea, E::Base)
                .operand(OperandDesc::write(r(w)))
                .operand(agen)
                .build();
            self.add(desc);
        }
        // XCHG and XADD.
        for &w in &GPR_WIDTHS {
            for (a, b) in [(r(w), r(w)), (r(w), mem(w)), (mem(w), r(w))] {
                let desc = self
                    .builder("XCHG", C::Xchg, E::Base)
                    .operand(OperandDesc::read_write(a))
                    .operand(OperandDesc::read_write(b))
                    .build();
                self.add(desc);
            }
            for dst in [r(w), mem(w)] {
                let desc = self
                    .builder("XADD", C::Xadd, E::Base)
                    .operand(OperandDesc::read_write(dst))
                    .operand(OperandDesc::read_write(r(w)))
                    .writes_flags(FlagSet::ALL)
                    .build();
                self.add(desc);
            }
        }
        // BSWAP.
        for &w in &[W32, W64] {
            let desc = self
                .builder("BSWAP", C::Bswap, E::Base)
                .operand(OperandDesc::read_write(r(w)))
                .build();
            self.add(desc);
        }
        // MOVBE.
        for &w in &GPR_WIDE {
            for (dst, src) in [(r(w), mem(w)), (mem(w), r(w))] {
                let desc = self
                    .builder("MOVBE", C::Mov, E::Movbe)
                    .operand(OperandDesc::write(dst))
                    .operand(OperandDesc::read(src))
                    .build();
                self.add(desc);
            }
        }
        // CRC32.
        for &w in &GPR_WIDTHS {
            for src in [r(w), mem(w)] {
                let dw = if w == W64 { W64 } else { W32 };
                let desc = self
                    .builder("CRC32", C::Crc32, E::Sse42)
                    .operand(OperandDesc::read_write(r(dw)))
                    .operand(OperandDesc::read(src))
                    .build();
                self.add(desc);
            }
        }
        // PUSH / POP.
        for &w in &[W16, W64] {
            for kind in [r(w), mem(w)] {
                let rsp = OperandKind::FixedReg(Register::gpr(gpr::RSP, W64));
                let desc = self
                    .builder("PUSH", C::Stack, E::Base)
                    .operand(OperandDesc::read(kind))
                    .operand(OperandDesc::read_write(rsp).implicit())
                    .build();
                self.add(desc);
                let desc = self
                    .builder("POP", C::Stack, E::Base)
                    .operand(OperandDesc::write(kind))
                    .operand(OperandDesc::read_write(rsp).implicit())
                    .build();
                self.add(desc);
            }
        }
        // NOP (eliminated in the reorder buffer).
        let desc = self
            .builder("NOP", C::Nop, E::Base)
            .with_attrs(|a| a.may_be_zero_latency = true)
            .build();
        self.add(desc);
        for &w in &[W16, W32] {
            let desc = self
                .builder("NOP", C::Nop, E::Base)
                .operand(OperandDesc::read(r(w)))
                .with_attrs(|a| a.may_be_zero_latency = true)
                .build();
            self.add(desc);
        }
        // Flag manipulation.
        let cf = FlagSet::CF;
        for (mnemonic, reads, writes) in
            [("CMC", cf, cf), ("STC", FlagSet::EMPTY, cf), ("CLC", FlagSet::EMPTY, cf)]
        {
            let desc = self
                .builder(mnemonic, C::FlagOp, E::Base)
                .reads_flags(reads)
                .writes_flags(writes)
                .build();
            self.add(desc);
        }
        // SAHF / LAHF use AH.
        let ah = OperandKind::FixedReg(Register::gpr(gpr::RAX, W8));
        let desc = self
            .builder("SAHF", C::FlagOp, E::Base)
            .operand(OperandDesc::read(ah).implicit())
            .writes_flags(FlagSet::ALL_EXCEPT_AF | FlagSet::single(crate::flags::Flag::Af))
            .build();
        self.add(desc);
        let desc = self
            .builder("LAHF", C::FlagOp, E::Base)
            .operand(OperandDesc::write(ah).implicit())
            .reads_flags(FlagSet::ALL)
            .build();
        self.add(desc);
        // Unconditional control flow.
        for kind in [imm(W32), r(W64), mem(W64)] {
            let desc =
                self.builder("JMP", C::Branch, E::Base).operand(OperandDesc::read(kind)).build();
            self.add(desc);
        }
        let rsp = OperandKind::FixedReg(Register::gpr(gpr::RSP, W64));
        let desc = self
            .builder("CALL", C::CallRet, E::Base)
            .operand(OperandDesc::read(imm(W32)))
            .operand(OperandDesc::read_write(rsp).implicit())
            .build();
        self.add(desc);
        let desc = self
            .builder("RET", C::CallRet, E::Base)
            .operand(OperandDesc::read_write(rsp).implicit())
            .build();
        self.add(desc);
        // String operations, with and without REP prefix.
        for (mnemonic, rep) in [
            ("MOVSB", false),
            ("MOVSQ", false),
            ("STOSB", false),
            ("STOSQ", false),
            ("LODSB", false),
            ("REP MOVSB", true),
            ("REP STOSB", true),
        ] {
            let rsi = OperandKind::FixedReg(Register::gpr(gpr::RSI, W64));
            let rdi = OperandKind::FixedReg(Register::gpr(gpr::RDI, W64));
            let desc = self
                .builder(mnemonic, C::StringOp, E::Base)
                .operand(OperandDesc::read_write(rsi).implicit())
                .operand(OperandDesc::read_write(rdi).implicit())
                .with_attrs(|a| a.rep_prefix = rep)
                .build();
            self.add(desc);
        }
        // PAUSE.
        let desc = self.builder("PAUSE", C::Nop, E::Base).with_attrs(|a| a.pause = true).build();
        self.add(desc);
        // Serializing / system instructions (not characterized by user-mode
        // backends, but present in the catalog).
        let desc = self
            .builder("CPUID", C::System, E::Base)
            .with_attrs(|a| {
                a.system = false;
                a.serializing = true;
            })
            .build();
        self.add(desc);
        let desc =
            self.builder("LFENCE", C::System, E::Sse2).with_attrs(|a| a.serializing = true).build();
        self.add(desc);
        let desc =
            self.builder("MFENCE", C::System, E::Sse2).with_attrs(|a| a.serializing = true).build();
        self.add(desc);
        let desc =
            self.builder("RDTSC", C::System, E::Base).with_attrs(|a| a.system = false).build();
        self.add(desc);
        for mnemonic in ["RDMSR", "WRMSR", "HLT", "INVD", "LGDT"] {
            let desc =
                self.builder(mnemonic, C::System, E::Base).with_attrs(|a| a.system = true).build();
            self.add(desc);
        }
        // A handful of LOCK-prefixed read-modify-write forms.
        for mnemonic in ["LOCK ADD", "LOCK XADD", "LOCK CMPXCHG"] {
            for &w in &[W32, W64] {
                let desc = self
                    .builder(mnemonic, C::IntAlu, E::Base)
                    .operand(OperandDesc::read_write(mem(w)))
                    .operand(OperandDesc::read(r(w)))
                    .writes_flags(FlagSet::ALL)
                    .with_attrs(|a| a.locked = true)
                    .build();
                self.add(desc);
            }
        }
    }

    // ----------------------------------------------------------------------
    // Vector instruction forms
    // ----------------------------------------------------------------------

    /// Legacy-SSE two-operand form: `(XMM rw, XMM r)`, `(XMM rw, M128 r)`.
    fn sse2op(&mut self, mnemonic: &str, cat: Category, ext: Extension, zero_idiom: bool) {
        for src in [xmm(), mem(W128)] {
            let desc = self
                .builder(mnemonic, cat, ext)
                .operand(OperandDesc::read_write(xmm()))
                .operand(OperandDesc::read(src))
                .with_attrs(|a| a.zero_idiom = zero_idiom && matches!(src, OperandKind::Reg(_)))
                .build();
            self.add(desc);
        }
    }

    /// Legacy-SSE two-operand form with an extra immediate.
    fn sse2op_imm(&mut self, mnemonic: &str, cat: Category, ext: Extension) {
        for src in [xmm(), mem(W128)] {
            let desc = self
                .builder(mnemonic, cat, ext)
                .operand(OperandDesc::read_write(xmm()))
                .operand(OperandDesc::read(src))
                .operand(OperandDesc::read(imm(W8)))
                .build();
            self.add(desc);
        }
    }

    /// SSE form where the destination is write-only (shuffles with immediate,
    /// PSHUFD-style): `(XMM w, XMM r, I8)`, `(XMM w, M128 r, I8)`.
    fn sse_shuf_imm(&mut self, mnemonic: &str, cat: Category, ext: Extension) {
        for src in [xmm(), mem(W128)] {
            let desc = self
                .builder(mnemonic, cat, ext)
                .operand(OperandDesc::write(xmm()))
                .operand(OperandDesc::read(src))
                .operand(OperandDesc::read(imm(W8)))
                .build();
            self.add(desc);
        }
    }

    /// VEX-encoded three-operand form at both 128 and 256 bits:
    /// `(XMM w, XMM r, XMM/M128 r)` and `(YMM w, YMM r, YMM/M256 r)`.
    fn avx3op(&mut self, mnemonic: &str, cat: Category, ext: Extension, ymm_form: bool) {
        for src in [xmm(), mem(W128)] {
            let desc = self
                .builder(mnemonic, cat, ext)
                .operand(OperandDesc::write(xmm()))
                .operand(OperandDesc::read(xmm()))
                .operand(OperandDesc::read(src))
                .build();
            self.add(desc);
        }
        if ymm_form {
            for src in [ymm(), mem(W256)] {
                let desc = self
                    .builder(mnemonic, cat, ext)
                    .operand(OperandDesc::write(ymm()))
                    .operand(OperandDesc::read(ymm()))
                    .operand(OperandDesc::read(src))
                    .build();
                self.add(desc);
            }
        }
    }

    /// VEX three-operand form plus immediate.
    fn avx3op_imm(&mut self, mnemonic: &str, cat: Category, ext: Extension, ymm_form: bool) {
        for src in [xmm(), mem(W128)] {
            let desc = self
                .builder(mnemonic, cat, ext)
                .operand(OperandDesc::write(xmm()))
                .operand(OperandDesc::read(xmm()))
                .operand(OperandDesc::read(src))
                .operand(OperandDesc::read(imm(W8)))
                .build();
            self.add(desc);
        }
        if ymm_form {
            for src in [ymm(), mem(W256)] {
                let desc = self
                    .builder(mnemonic, cat, ext)
                    .operand(OperandDesc::write(ymm()))
                    .operand(OperandDesc::read(ymm()))
                    .operand(OperandDesc::read(src))
                    .operand(OperandDesc::read(imm(W8)))
                    .build();
                self.add(desc);
            }
        }
    }

    /// MMX two-operand form.
    fn mmx2op(&mut self, mnemonic: &str, cat: Category, zero_idiom: bool) {
        for src in [mm(), mem(W64)] {
            let desc = self
                .builder(mnemonic, cat, E::Mmx)
                .operand(OperandDesc::read_write(mm()))
                .operand(OperandDesc::read(src))
                .with_attrs(|a| a.zero_idiom = zero_idiom && matches!(src, OperandKind::Reg(_)))
                .build();
            self.add(desc);
        }
    }

    /// The packed-integer instruction family, generated for MMX (64-bit),
    /// SSE2 (128-bit) and, where `avx2` is true, AVX/AVX2 VEX forms.
    fn packed_int_family(&mut self) {
        // (base mnemonic, category, zero idiom with same source registers)
        let ops: &[(&str, Category, bool)] = &[
            ("PADDB", C::VecIntAlu, false),
            ("PADDW", C::VecIntAlu, false),
            ("PADDD", C::VecIntAlu, false),
            ("PADDQ", C::VecIntAlu, false),
            ("PSUBB", C::VecIntAlu, true),
            ("PSUBW", C::VecIntAlu, true),
            ("PSUBD", C::VecIntAlu, true),
            ("PSUBQ", C::VecIntAlu, true),
            ("PADDSB", C::VecIntAlu, false),
            ("PADDSW", C::VecIntAlu, false),
            ("PADDUSB", C::VecIntAlu, false),
            ("PADDUSW", C::VecIntAlu, false),
            ("PSUBSB", C::VecIntAlu, true),
            ("PSUBSW", C::VecIntAlu, true),
            ("PSUBUSB", C::VecIntAlu, true),
            ("PSUBUSW", C::VecIntAlu, true),
            ("PAND", C::VecIntAlu, false),
            ("PANDN", C::VecIntAlu, false),
            ("POR", C::VecIntAlu, false),
            ("PXOR", C::VecIntAlu, true),
            ("PCMPEQB", C::VecIntCmp, true),
            ("PCMPEQW", C::VecIntCmp, true),
            ("PCMPEQD", C::VecIntCmp, true),
            ("PCMPGTB", C::VecIntCmp, false),
            ("PCMPGTW", C::VecIntCmp, false),
            ("PCMPGTD", C::VecIntCmp, false),
            ("PMULLW", C::VecIntMul, false),
            ("PMULHW", C::VecIntMul, false),
            ("PMULHUW", C::VecIntMul, false),
            ("PMULUDQ", C::VecIntMul, false),
            ("PMADDWD", C::VecIntMul, false),
            ("PAVGB", C::VecIntAlu, false),
            ("PAVGW", C::VecIntAlu, false),
            ("PMINUB", C::VecIntAlu, false),
            ("PMAXUB", C::VecIntAlu, false),
            ("PMINSW", C::VecIntAlu, false),
            ("PMAXSW", C::VecIntAlu, false),
            ("PSADBW", C::VecIntMul, false),
            ("PUNPCKLBW", C::VecShuffle, false),
            ("PUNPCKLWD", C::VecShuffle, false),
            ("PUNPCKLDQ", C::VecShuffle, false),
            ("PUNPCKHBW", C::VecShuffle, false),
            ("PUNPCKHWD", C::VecShuffle, false),
            ("PUNPCKHDQ", C::VecShuffle, false),
            ("PACKSSWB", C::VecShuffle, false),
            ("PACKSSDW", C::VecShuffle, false),
            ("PACKUSWB", C::VecShuffle, false),
        ];
        for &(mnemonic, cat, zi) in ops {
            self.mmx2op(mnemonic, cat, zi);
            self.sse2op(mnemonic, cat, E::Sse2, zi);
            self.avx3op(&format!("V{mnemonic}"), cat, E::Avx2, true);
        }
        // SSE2-only packed ops (no MMX form).
        for (mnemonic, cat, zi) in [
            ("PUNPCKLQDQ", C::VecShuffle, false),
            ("PUNPCKHQDQ", C::VecShuffle, false),
            ("PCMPEQQ", C::VecIntCmp, true),
            ("PCMPGTQ", C::VecIntCmp, false),
        ] {
            self.sse2op(
                mnemonic,
                cat,
                if mnemonic.ends_with('Q') { E::Sse41 } else { E::Sse2 },
                zi,
            );
            self.avx3op(&format!("V{mnemonic}"), cat, E::Avx2, true);
        }
        // Vector shifts: register/memory/immediate count forms.
        for mnemonic in ["PSLLW", "PSLLD", "PSLLQ", "PSRLW", "PSRLD", "PSRLQ", "PSRAW", "PSRAD"] {
            self.mmx2op(mnemonic, C::VecShift, false);
            self.sse2op(mnemonic, C::VecShift, E::Sse2, false);
            // Immediate-count form.
            let desc = self
                .builder(mnemonic, C::VecShift, E::Sse2)
                .operand(OperandDesc::read_write(xmm()))
                .operand(OperandDesc::read(imm(W8)))
                .build();
            self.add(desc);
            // AVX forms: count in an XMM register or immediate.
            self.avx3op(&format!("V{mnemonic}"), C::VecShift, E::Avx2, true);
            let desc = self
                .builder(&format!("V{mnemonic}"), C::VecShift, E::Avx2)
                .operand(OperandDesc::write(xmm()))
                .operand(OperandDesc::read(xmm()))
                .operand(OperandDesc::read(imm(W8)))
                .build();
            self.add(desc);
        }
        // Byte shifts (SSE2 only, immediate only).
        for mnemonic in ["PSLLDQ", "PSRLDQ"] {
            let desc = self
                .builder(mnemonic, C::VecShift, E::Sse2)
                .operand(OperandDesc::read_write(xmm()))
                .operand(OperandDesc::read(imm(W8)))
                .build();
            self.add(desc);
        }
    }

    /// SSSE3 / SSE4.1 / SSE4.2 packed instructions.
    fn ssse3_sse4(&mut self) {
        for (mnemonic, cat) in [
            ("PSHUFB", C::VecShuffle),
            ("PHADDW", C::VecHorizontal),
            ("PHADDD", C::VecHorizontal),
            ("PHADDSW", C::VecHorizontal),
            ("PHSUBW", C::VecHorizontal),
            ("PHSUBD", C::VecHorizontal),
            ("PHSUBSW", C::VecHorizontal),
            ("PABSB", C::VecIntAlu),
            ("PABSW", C::VecIntAlu),
            ("PABSD", C::VecIntAlu),
            ("PSIGNB", C::VecIntAlu),
            ("PSIGNW", C::VecIntAlu),
            ("PSIGND", C::VecIntAlu),
            ("PMULHRSW", C::VecIntMul),
            ("PMADDUBSW", C::VecIntMul),
        ] {
            self.sse2op(mnemonic, cat, E::Ssse3, false);
            self.avx3op(&format!("V{mnemonic}"), cat, E::Avx2, true);
        }
        self.sse2op_imm("PALIGNR", C::VecShuffle, E::Ssse3);
        self.avx3op_imm("VPALIGNR", C::VecShuffle, E::Avx2, true);

        for (mnemonic, cat) in [
            ("PMULLD", C::VecIntMul),
            ("PMULDQ", C::VecIntMul),
            ("PMINSB", C::VecIntAlu),
            ("PMAXSB", C::VecIntAlu),
            ("PMINSD", C::VecIntAlu),
            ("PMAXSD", C::VecIntAlu),
            ("PMINUW", C::VecIntAlu),
            ("PMAXUW", C::VecIntAlu),
            ("PMINUD", C::VecIntAlu),
            ("PMAXUD", C::VecIntAlu),
            ("PACKUSDW", C::VecShuffle),
        ] {
            self.sse2op(mnemonic, cat, E::Sse41, false);
            self.avx3op(&format!("V{mnemonic}"), cat, E::Avx2, true);
        }
        self.sse2op_imm("PBLENDW", C::VecBlend, E::Sse41);
        self.avx3op_imm("VPBLENDW", C::VecBlend, E::Avx2, true);
        self.sse2op_imm("MPSADBW", C::VecHorizontal, E::Sse41);
        self.avx3op_imm("VMPSADBW", C::VecHorizontal, E::Avx2, true);

        // Variable blends with the implicit XMM0 operand (SSE4.1) and the
        // explicit fourth operand (AVX).
        let xmm0 = OperandKind::FixedReg(Register::vec(0, W128));
        for mnemonic in ["PBLENDVB", "BLENDVPS", "BLENDVPD"] {
            let cat = C::VecBlend;
            for src in [xmm(), mem(W128)] {
                let desc = self
                    .builder(mnemonic, cat, E::Sse41)
                    .operand(OperandDesc::read_write(xmm()))
                    .operand(OperandDesc::read(src))
                    .operand(OperandDesc::read(xmm0).implicit())
                    .build();
                self.add(desc);
            }
        }
        for mnemonic in ["VPBLENDVB", "VBLENDVPS", "VBLENDVPD"] {
            for (dst, src_w) in [(xmm(), W128), (ymm(), W256)] {
                for src in [dst, mem(src_w)] {
                    let desc = self
                        .builder(mnemonic, C::VecBlend, E::Avx)
                        .operand(OperandDesc::write(dst))
                        .operand(OperandDesc::read(dst))
                        .operand(OperandDesc::read(src))
                        .operand(OperandDesc::read(dst))
                        .build();
                    self.add(desc);
                }
            }
        }

        // PMOVSX / PMOVZX.
        for suffix in ["BW", "BD", "BQ", "WD", "WQ", "DQ"] {
            for prefix in ["PMOVSX", "PMOVZX"] {
                let mnemonic = format!("{prefix}{suffix}");
                for src in [xmm(), mem(W64)] {
                    let desc = self
                        .builder(&mnemonic, C::VecConvert, E::Sse41)
                        .operand(OperandDesc::write(xmm()))
                        .operand(OperandDesc::read(src))
                        .build();
                    self.add(desc);
                }
            }
        }
        // PTEST and PHMINPOSUW.
        for src in [xmm(), mem(W128)] {
            let desc = self
                .builder("PTEST", C::VecIntCmp, E::Sse41)
                .operand(OperandDesc::read(xmm()))
                .operand(OperandDesc::read(src))
                .writes_flags(FlagSet::ALL)
                .build();
            self.add(desc);
            let desc = self
                .builder("PHMINPOSUW", C::VecHorizontal, E::Sse41)
                .operand(OperandDesc::write(xmm()))
                .operand(OperandDesc::read(src))
                .build();
            self.add(desc);
        }
        // Insert/extract.
        for (mnemonic, w) in [("PEXTRB", W8), ("PEXTRW", W16), ("PEXTRD", W32), ("PEXTRQ", W64)] {
            let gw = if w == W64 { W64 } else { W32 };
            let desc = self
                .builder(mnemonic, C::VecInsertExtract, E::Sse41)
                .operand(OperandDesc::write(r(gw)))
                .operand(OperandDesc::read(xmm()))
                .operand(OperandDesc::read(imm(W8)))
                .build();
            self.add(desc);
        }
        for (mnemonic, w) in [("PINSRB", W8), ("PINSRW", W16), ("PINSRD", W32), ("PINSRQ", W64)] {
            let gw = if w == W64 { W64 } else { W32 };
            for src in [r(gw), mem(w)] {
                let desc = self
                    .builder(mnemonic, C::VecInsertExtract, E::Sse41)
                    .operand(OperandDesc::read_write(xmm()))
                    .operand(OperandDesc::read(src))
                    .operand(OperandDesc::read(imm(W8)))
                    .build();
                self.add(desc);
            }
        }
        // String compare instructions (SSE4.2): implicit outputs in ECX/flags.
        for mnemonic in ["PCMPISTRI", "PCMPESTRI"] {
            let ecx = OperandKind::FixedReg(Register::gpr(gpr::RCX, W32));
            let desc = self
                .builder(mnemonic, C::VecHorizontal, E::Sse42)
                .operand(OperandDesc::read(xmm()))
                .operand(OperandDesc::read(xmm()))
                .operand(OperandDesc::read(imm(W8)))
                .operand(OperandDesc::write(ecx).implicit())
                .writes_flags(FlagSet::ALL)
                .build();
            self.add(desc);
        }
    }

    /// SSE / SSE2 floating-point instructions (packed and scalar), plus their
    /// AVX forms.
    fn fp_family(&mut self) {
        // Packed and scalar arithmetic.
        let arith: &[(&str, Category)] = &[
            ("ADD", C::VecFpAdd),
            ("SUB", C::VecFpAdd),
            ("MUL", C::VecFpMul),
            ("DIV", C::VecFpDiv),
            ("MIN", C::VecFpAdd),
            ("MAX", C::VecFpAdd),
        ];
        for &(op, cat) in arith {
            for suffix in ["PS", "PD", "SS", "SD"] {
                let ext =
                    if suffix.ends_with('S') && suffix.starts_with('P') { E::Sse } else { E::Sse2 };
                let mnemonic = format!("{op}{suffix}");
                self.sse2op(&mnemonic, cat, ext, false);
                let ymm_form = suffix.starts_with('P');
                self.avx3op(&format!("V{mnemonic}"), cat, E::Avx, ymm_form);
            }
        }
        // Square root and reciprocal (unary, write-only destination).
        for (mnemonic, cat, ext) in [
            ("SQRTPS", C::VecFpDiv, E::Sse),
            ("SQRTPD", C::VecFpDiv, E::Sse2),
            ("SQRTSS", C::VecFpDiv, E::Sse),
            ("SQRTSD", C::VecFpDiv, E::Sse2),
            ("RCPPS", C::VecFpMul, E::Sse),
            ("RSQRTPS", C::VecFpMul, E::Sse),
        ] {
            for src in [xmm(), mem(W128)] {
                let desc = self
                    .builder(mnemonic, cat, ext)
                    .operand(OperandDesc::write(xmm()))
                    .operand(OperandDesc::read(src))
                    .build();
                self.add(desc);
            }
            for src in [xmm(), mem(W128)] {
                let desc = self
                    .builder(&format!("V{mnemonic}"), cat, E::Avx)
                    .operand(OperandDesc::write(xmm()))
                    .operand(OperandDesc::read(src))
                    .build();
                self.add(desc);
            }
        }
        // FP logic.
        for op in ["AND", "ANDN", "OR", "XOR"] {
            for suffix in ["PS", "PD"] {
                let ext = if suffix == "PS" { E::Sse } else { E::Sse2 };
                let zi = op == "XOR";
                self.sse2op(&format!("{op}{suffix}"), C::VecFpLogic, ext, zi);
                self.avx3op(&format!("V{op}{suffix}"), C::VecFpLogic, E::Avx, true);
            }
        }
        // Compares.
        for suffix in ["PS", "PD", "SS", "SD"] {
            let ext =
                if suffix.contains('S') && suffix.starts_with('P') { E::Sse } else { E::Sse2 };
            self.sse2op_imm(&format!("CMP{suffix}"), C::VecFpAdd, ext);
            self.avx3op_imm(&format!("VCMP{suffix}"), C::VecFpAdd, E::Avx, suffix.starts_with('P'));
        }
        for mnemonic in ["COMISS", "COMISD", "UCOMISS", "UCOMISD"] {
            for src in [xmm(), mem(W64)] {
                let desc = self
                    .builder(
                        mnemonic,
                        C::VecFpAdd,
                        if mnemonic.ends_with("SS") { E::Sse } else { E::Sse2 },
                    )
                    .operand(OperandDesc::read(xmm()))
                    .operand(OperandDesc::read(src))
                    .writes_flags(FlagSet::ALL)
                    .build();
                self.add(desc);
            }
        }
        // Shuffles and unpacks.
        for suffix in ["PS", "PD"] {
            let ext = if suffix == "PS" { E::Sse } else { E::Sse2 };
            self.sse2op_imm(&format!("SHUF{suffix}"), C::VecShuffle, ext);
            self.avx3op_imm(&format!("VSHUF{suffix}"), C::VecShuffle, E::Avx, true);
            for op in ["UNPCKL", "UNPCKH"] {
                self.sse2op(&format!("{op}{suffix}"), C::VecShuffle, ext, false);
                self.avx3op(&format!("V{op}{suffix}"), C::VecShuffle, E::Avx, true);
            }
        }
        // Horizontal adds and dot products.
        for mnemonic in ["HADDPS", "HADDPD", "HSUBPS", "HSUBPD"] {
            self.sse2op(mnemonic, C::VecHorizontal, E::Sse3, false);
            self.avx3op(&format!("V{mnemonic}"), C::VecHorizontal, E::Avx, true);
        }
        self.sse2op_imm("DPPS", C::VecHorizontal, E::Sse41);
        self.sse2op_imm("DPPD", C::VecHorizontal, E::Sse41);
        self.sse2op_imm("ROUNDPS", C::VecFpAdd, E::Sse41);
        self.sse2op_imm("ROUNDPD", C::VecFpAdd, E::Sse41);
        self.sse2op_imm("ROUNDSS", C::VecFpAdd, E::Sse41);
        self.sse2op_imm("ROUNDSD", C::VecFpAdd, E::Sse41);
        self.sse_shuf_imm("INSERTPS", C::VecShuffle, E::Sse41);

        // Conversions.
        for (mnemonic, dst_kind, src_kinds) in [
            ("CVTDQ2PS", xmm(), [xmm(), mem(W128)]),
            ("CVTPS2DQ", xmm(), [xmm(), mem(W128)]),
            ("CVTTPS2DQ", xmm(), [xmm(), mem(W128)]),
            ("CVTDQ2PD", xmm(), [xmm(), mem(W64)]),
            ("CVTPD2DQ", xmm(), [xmm(), mem(W128)]),
            ("CVTPS2PD", xmm(), [xmm(), mem(W64)]),
            ("CVTPD2PS", xmm(), [xmm(), mem(W128)]),
            ("CVTSS2SD", xmm(), [xmm(), mem(W32)]),
            ("CVTSD2SS", xmm(), [xmm(), mem(W64)]),
        ] {
            for src in src_kinds {
                let desc = self
                    .builder(mnemonic, C::VecConvert, E::Sse2)
                    .operand(OperandDesc::write(dst_kind))
                    .operand(OperandDesc::read(src))
                    .build();
                self.add(desc);
            }
        }
        // Conversions between GPRs and XMM.
        for (mnemonic, gw) in
            [("CVTSI2SS", W32), ("CVTSI2SS", W64), ("CVTSI2SD", W32), ("CVTSI2SD", W64)]
        {
            for src in [r(gw), mem(gw)] {
                let desc = self
                    .builder(mnemonic, C::VecConvert, E::Sse2)
                    .operand(OperandDesc::read_write(xmm()))
                    .operand(OperandDesc::read(src))
                    .build();
                self.add(desc);
            }
        }
        for (mnemonic, gw) in [
            ("CVTSS2SI", W32),
            ("CVTSS2SI", W64),
            ("CVTSD2SI", W32),
            ("CVTSD2SI", W64),
            ("CVTTSS2SI", W32),
            ("CVTTSD2SI", W64),
        ] {
            for src in [xmm(), mem(W64)] {
                let desc = self
                    .builder(mnemonic, C::VecConvert, E::Sse2)
                    .operand(OperandDesc::write(r(gw)))
                    .operand(OperandDesc::read(src))
                    .build();
                self.add(desc);
            }
        }

        // FMA (three-operand, destination read+written).
        for variant in ["132", "213", "231"] {
            for suffix in ["PS", "PD", "SS", "SD"] {
                for op in ["VFMADD", "VFMSUB", "VFNMADD"] {
                    let mnemonic = format!("{op}{variant}{suffix}");
                    for src in [xmm(), mem(W128)] {
                        let desc = self
                            .builder(&mnemonic, C::VecFma, E::Fma)
                            .operand(OperandDesc::read_write(xmm()))
                            .operand(OperandDesc::read(xmm()))
                            .operand(OperandDesc::read(src))
                            .build();
                        self.add(desc);
                    }
                    if suffix.starts_with('P') {
                        for src in [ymm(), mem(W256)] {
                            let desc = self
                                .builder(&mnemonic, C::VecFma, E::Fma)
                                .operand(OperandDesc::read_write(ymm()))
                                .operand(OperandDesc::read(ymm()))
                                .operand(OperandDesc::read(src))
                                .build();
                            self.add(desc);
                        }
                    }
                }
            }
        }
    }

    /// Data movement within and between register files, including the
    /// MOVQ2DQ/MOVDQ2Q case-study instructions.
    fn vector_moves(&mut self) {
        // Register/memory vector moves.
        for (mnemonic, ext) in [
            ("MOVAPS", E::Sse),
            ("MOVUPS", E::Sse),
            ("MOVAPD", E::Sse2),
            ("MOVUPD", E::Sse2),
            ("MOVDQA", E::Sse2),
            ("MOVDQU", E::Sse2),
        ] {
            // reg <- reg (may be eliminated), reg <- mem, mem <- reg.
            let desc = self
                .builder(mnemonic, C::VecMov, ext)
                .operand(OperandDesc::write(xmm()))
                .operand(OperandDesc::read(xmm()))
                .with_attrs(|a| a.may_be_zero_latency = true)
                .build();
            self.add(desc);
            for (dst, src) in [(xmm(), mem(W128)), (mem(W128), xmm())] {
                let desc = self
                    .builder(mnemonic, C::VecMov, ext)
                    .operand(OperandDesc::write(dst))
                    .operand(OperandDesc::read(src))
                    .build();
                self.add(desc);
            }
            // VEX forms at 128 and 256 bits.
            let v = format!("V{mnemonic}");
            for (dst, src, zl) in [
                (xmm(), xmm(), true),
                (xmm(), mem(W128), false),
                (mem(W128), xmm(), false),
                (ymm(), ymm(), true),
                (ymm(), mem(W256), false),
                (mem(W256), ymm(), false),
            ] {
                let desc = self
                    .builder(&v, C::VecMov, E::Avx)
                    .operand(OperandDesc::write(dst))
                    .operand(OperandDesc::read(src))
                    .with_attrs(|a| a.may_be_zero_latency = zl)
                    .build();
                self.add(desc);
            }
        }
        // Scalar FP moves.
        for (mnemonic, w) in [("MOVSS", W32), ("MOVSD", W64)] {
            let desc = self
                .builder(mnemonic, C::VecMov, if w == W32 { E::Sse } else { E::Sse2 })
                .operand(OperandDesc::read_write(xmm()))
                .operand(OperandDesc::read(xmm()))
                .build();
            self.add(desc);
            for (dst, src) in [(xmm(), mem(w)), (mem(w), xmm())] {
                let desc = self
                    .builder(mnemonic, C::VecMov, if w == W32 { E::Sse } else { E::Sse2 })
                    .operand(OperandDesc::write(dst))
                    .operand(OperandDesc::read(src))
                    .build();
                self.add(desc);
            }
        }
        // MOVD / MOVQ between GPRs, XMM and memory.
        for (mnemonic, gw) in [("MOVD", W32), ("MOVQ", W64)] {
            for (dst, src) in [(xmm(), r(gw)), (r(gw), xmm()), (xmm(), mem(gw)), (mem(gw), xmm())] {
                let desc = self
                    .builder(mnemonic, C::VecMovCross, E::Sse2)
                    .operand(OperandDesc::write(dst))
                    .operand(OperandDesc::read(src))
                    .build();
                self.add(desc);
            }
            // MMX forms.
            for (dst, src) in [(mm(), r(gw)), (r(gw), mm()), (mm(), mem(gw)), (mem(gw), mm())] {
                let desc = self
                    .builder(mnemonic, C::VecMovCross, E::Mmx)
                    .operand(OperandDesc::write(dst))
                    .operand(OperandDesc::read(src))
                    .build();
                self.add(desc);
            }
        }
        // MOVQ xmm, xmm.
        let desc = self
            .builder("MOVQ", C::VecMov, E::Sse2)
            .operand(OperandDesc::write(xmm()))
            .operand(OperandDesc::read(xmm()))
            .build();
        self.add(desc);
        // The case-study instructions: MOVQ2DQ (xmm <- mm) and MOVDQ2Q (mm <- xmm).
        let desc = self
            .builder("MOVQ2DQ", C::VecMovCross, E::Sse2)
            .operand(OperandDesc::write(xmm()))
            .operand(OperandDesc::read(mm()))
            .build();
        self.add(desc);
        let desc = self
            .builder("MOVDQ2Q", C::VecMovCross, E::Sse2)
            .operand(OperandDesc::write(mm()))
            .operand(OperandDesc::read(xmm()))
            .build();
        self.add(desc);
        // MOVMSK-style extractions.
        for (mnemonic, ext) in [("MOVMSKPS", E::Sse), ("MOVMSKPD", E::Sse2), ("PMOVMSKB", E::Sse2)]
        {
            let desc = self
                .builder(mnemonic, C::VecMovCross, ext)
                .operand(OperandDesc::write(r(W32)))
                .operand(OperandDesc::read(xmm()))
                .build();
            self.add(desc);
        }
        // Shuffles with write-only destination.
        self.sse_shuf_imm("PSHUFD", C::VecShuffle, E::Sse2);
        self.sse_shuf_imm("PSHUFLW", C::VecShuffle, E::Sse2);
        self.sse_shuf_imm("PSHUFHW", C::VecShuffle, E::Sse2);
        self.sse_shuf_imm("VPSHUFD", C::VecShuffle, E::Avx2);
        // MMX shuffle.
        for src in [mm(), mem(W64)] {
            let desc = self
                .builder("PSHUFW", C::VecShuffle, E::Mmx)
                .operand(OperandDesc::write(mm()))
                .operand(OperandDesc::read(src))
                .operand(OperandDesc::read(imm(W8)))
                .build();
            self.add(desc);
        }
        // AVX permutes and broadcasts.
        self.avx3op_imm("VPERM2F128", C::VecShuffle, E::Avx, true);
        self.avx3op_imm("VPERM2I128", C::VecShuffle, E::Avx2, true);
        for (mnemonic, src_w) in [("VBROADCASTSS", W32), ("VBROADCASTSD", W64)] {
            for dst in [xmm(), ymm()] {
                if mnemonic == "VBROADCASTSD" && dst == xmm() {
                    continue;
                }
                for src in [xmm(), mem(src_w)] {
                    let desc = self
                        .builder(mnemonic, C::VecShuffle, E::Avx)
                        .operand(OperandDesc::write(dst))
                        .operand(OperandDesc::read(src))
                        .build();
                    self.add(desc);
                }
            }
        }
        for mnemonic in ["VPERMQ", "VPERMPD"] {
            for src in [ymm(), mem(W256)] {
                let desc = self
                    .builder(mnemonic, C::VecShuffle, E::Avx2)
                    .operand(OperandDesc::write(ymm()))
                    .operand(OperandDesc::read(src))
                    .operand(OperandDesc::read(imm(W8)))
                    .build();
                self.add(desc);
            }
        }
        // VEXTRACTF128/VINSERTF128.
        {
            let desc = self
                .builder("VEXTRACTF128", C::VecInsertExtract, E::Avx)
                .operand(OperandDesc::write(xmm()))
                .operand(OperandDesc::read(ymm()))
                .operand(OperandDesc::read(imm(W8)))
                .build();
            self.add(desc);
        }
        for src in [xmm(), mem(W128)] {
            let desc = self
                .builder("VINSERTF128", C::VecInsertExtract, E::Avx)
                .operand(OperandDesc::write(ymm()))
                .operand(OperandDesc::read(ymm()))
                .operand(OperandDesc::read(src))
                .operand(OperandDesc::read(imm(W8)))
                .build();
            self.add(desc);
        }
        // VZEROUPPER / VZEROALL.
        for mnemonic in ["VZEROUPPER", "VZEROALL"] {
            let desc = self.builder(mnemonic, C::VecMov, E::Avx).build();
            self.add(desc);
        }
        // Non-temporal and aligned stores from vector registers.
        for (mnemonic, ext) in [("MOVNTDQ", E::Sse2), ("MOVNTPS", E::Sse)] {
            let desc = self
                .builder(mnemonic, C::VecMov, ext)
                .operand(OperandDesc::write(mem(W128)))
                .operand(OperandDesc::read(xmm()))
                .build();
            self.add(desc);
        }
    }

    /// AES-NI and carry-less multiplication (the §7.3.1 case study).
    fn aes_clmul(&mut self) {
        for mnemonic in ["AESDEC", "AESDECLAST", "AESENC", "AESENCLAST"] {
            self.sse2op(mnemonic, C::AesOp, E::Aes, false);
            self.avx3op(&format!("V{mnemonic}"), C::AesOp, E::Avx, false);
        }
        for src in [xmm(), mem(W128)] {
            let desc = self
                .builder("AESIMC", C::AesOp, E::Aes)
                .operand(OperandDesc::write(xmm()))
                .operand(OperandDesc::read(src))
                .build();
            self.add(desc);
            let desc = self
                .builder("AESKEYGENASSIST", C::AesOp, E::Aes)
                .operand(OperandDesc::write(xmm()))
                .operand(OperandDesc::read(src))
                .operand(OperandDesc::read(imm(W8)))
                .build();
            self.add(desc);
        }
        self.sse2op_imm("PCLMULQDQ", C::ClmulOp, E::Pclmulqdq);
        self.avx3op_imm("VPCLMULQDQ", C::ClmulOp, E::Avx, false);
    }

    fn base_integer(&mut self) {
        let all = FlagSet::ALL;
        let none = FlagSet::EMPTY;
        let cf = FlagSet::CF;
        self.alu2("ADD", C::IntAlu, none, all, true, false, &GPR_WIDTHS);
        self.alu2("SUB", C::IntAlu, none, all, true, true, &GPR_WIDTHS);
        self.alu2("AND", C::IntAlu, none, all, true, false, &GPR_WIDTHS);
        self.alu2("OR", C::IntAlu, none, all, true, false, &GPR_WIDTHS);
        self.alu2("XOR", C::IntAlu, none, all, true, true, &GPR_WIDTHS);
        self.alu2("CMP", C::IntAlu, none, all, false, false, &GPR_WIDTHS);
        self.alu2("TEST", C::IntAlu, none, FlagSet::ALL_EXCEPT_AF, false, false, &GPR_WIDTHS);
        self.alu2("ADC", C::IntAluCarry, cf, all, true, false, &GPR_WIDTHS);
        self.alu2("SBB", C::IntAluCarry, cf, all, true, false, &GPR_WIDTHS);
        self.unary("INC", C::IncDec, FlagSet::ALL_EXCEPT_CF, &GPR_WIDTHS);
        self.unary("DEC", C::IncDec, FlagSet::ALL_EXCEPT_CF, &GPR_WIDTHS);
        self.unary("NEG", C::NegNot, all, &GPR_WIDTHS);
        self.unary("NOT", C::NegNot, none, &GPR_WIDTHS);
        self.shift("SHL", C::Shift, none, &GPR_WIDTHS);
        self.shift("SHR", C::Shift, none, &GPR_WIDTHS);
        self.shift("SAR", C::Shift, none, &GPR_WIDTHS);
        self.shift("ROL", C::Rotate, none, &GPR_WIDTHS);
        self.shift("ROR", C::Rotate, none, &GPR_WIDTHS);
        self.shift("RCL", C::Rotate, cf, &GPR_WIDTHS);
        self.shift("RCR", C::Rotate, cf, &GPR_WIDTHS);
        self.double_shift("SHLD");
        self.double_shift("SHRD");
        self.mov();
        self.movx();
        self.cmov();
        self.setcc();
        self.jcc();
        self.mul_div();
        self.bitscan();
        self.bmi();
        self.misc_base();
    }
}

/// Populates `catalog` with the full Intel Core instruction catalog.
pub fn populate(catalog: &mut Catalog) {
    let mut g = Gen { catalog };
    g.base_integer();
    g.packed_int_family();
    g.ssse3_sse4();
    g.fp_family();
    g.vector_moves();
    g.aes_clmul();
    g.extras();
}

impl<'a> Gen<'a> {
    /// Additional instruction groups: sign-extension idioms, compare-and-
    /// exchange, non-temporal stores, SSE3 duplication moves, AVX scalar and
    /// integer moves, broadcasts, 128-bit lane insert/extract, conversions,
    /// and rounding — bringing the catalog closer to the coverage of the
    /// paper's tool.
    fn extras(&mut self) {
        // Sign-extension idioms with implicit RAX/RDX operands.
        for (mnemonic, w) in [("CBW", W16), ("CWDE", W32), ("CDQE", W64)] {
            let rax = OperandKind::FixedReg(Register::gpr(gpr::RAX, w));
            let desc = self
                .builder(mnemonic, C::MovExtend, E::Base)
                .operand(OperandDesc::read_write(rax).implicit())
                .build();
            self.add(desc);
        }
        for (mnemonic, w) in [("CWD", W16), ("CDQ", W32), ("CQO", W64)] {
            let rax = OperandKind::FixedReg(Register::gpr(gpr::RAX, w));
            let rdx = OperandKind::FixedReg(Register::gpr(gpr::RDX, w));
            let desc = self
                .builder(mnemonic, C::MovExtend, E::Base)
                .operand(OperandDesc::read(rax).implicit())
                .operand(OperandDesc::write(rdx).implicit())
                .build();
            self.add(desc);
        }
        // Compare-and-exchange (non-LOCK forms).
        for &w in &GPR_WIDTHS {
            for dst in [r(w), mem(w)] {
                let rax = OperandKind::FixedReg(Register::gpr(gpr::RAX, w));
                let desc = self
                    .builder("CMPXCHG", C::Xchg, E::Base)
                    .operand(OperandDesc::read_write(dst))
                    .operand(OperandDesc::read(r(w)))
                    .operand(OperandDesc::read_write(rax).implicit())
                    .writes_flags(FlagSet::ALL)
                    .build();
                self.add(desc);
            }
        }
        // Non-temporal integer store.
        for &w in &[W32, W64] {
            let desc = self
                .builder("MOVNTI", C::Mov, E::Sse2)
                .operand(OperandDesc::write(mem(w)))
                .operand(OperandDesc::read(r(w)))
                .build();
            self.add(desc);
        }
        // SSE3 duplication moves and LDDQU.
        for (mnemonic, src_w) in [("MOVDDUP", W64), ("MOVSHDUP", W128), ("MOVSLDUP", W128)] {
            for src in [xmm(), mem(src_w)] {
                let desc = self
                    .builder(mnemonic, C::VecShuffle, E::Sse3)
                    .operand(OperandDesc::write(xmm()))
                    .operand(OperandDesc::read(src))
                    .build();
                self.add(desc);
            }
        }
        let desc = self
            .builder("LDDQU", C::VecMov, E::Sse3)
            .operand(OperandDesc::write(xmm()))
            .operand(OperandDesc::read(mem(W128)))
            .build();
        self.add(desc);
        // ADDSUB (SSE3) and horizontal min/max style ops.
        for suffix in ["PS", "PD"] {
            self.sse2op(&format!("ADDSUB{suffix}"), C::VecFpAdd, E::Sse3, false);
            self.avx3op(&format!("VADDSUB{suffix}"), C::VecFpAdd, E::Avx, true);
        }
        // Partial-register high/low packed moves.
        for mnemonic in ["MOVHPS", "MOVLPS", "MOVHPD", "MOVLPD"] {
            let ext = if mnemonic.ends_with("PS") { E::Sse } else { E::Sse2 };
            let desc = self
                .builder(mnemonic, C::VecMov, ext)
                .operand(OperandDesc::read_write(xmm()))
                .operand(OperandDesc::read(mem(W64)))
                .build();
            self.add(desc);
            let desc = self
                .builder(mnemonic, C::VecMov, ext)
                .operand(OperandDesc::write(mem(W64)))
                .operand(OperandDesc::read(xmm()))
                .build();
            self.add(desc);
        }
        for mnemonic in ["MOVLHPS", "MOVHLPS"] {
            let desc = self
                .builder(mnemonic, C::VecShuffle, E::Sse)
                .operand(OperandDesc::read_write(xmm()))
                .operand(OperandDesc::read(xmm()))
                .build();
            self.add(desc);
        }
        // AVX scalar/integer moves, broadcasts and lane operations.
        for (mnemonic, gw) in [("VMOVD", W32), ("VMOVQ", W64)] {
            for (dst, src) in [(xmm(), r(gw)), (r(gw), xmm()), (xmm(), mem(gw)), (mem(gw), xmm())] {
                let desc = self
                    .builder(mnemonic, C::VecMovCross, E::Avx)
                    .operand(OperandDesc::write(dst))
                    .operand(OperandDesc::read(src))
                    .build();
                self.add(desc);
            }
        }
        for (mnemonic, src_w) in [
            ("VPBROADCASTB", W8),
            ("VPBROADCASTW", W16),
            ("VPBROADCASTD", W32),
            ("VPBROADCASTQ", W64),
        ] {
            for dst in [xmm(), ymm()] {
                for src in [xmm(), mem(src_w)] {
                    let desc = self
                        .builder(mnemonic, C::VecShuffle, E::Avx2)
                        .operand(OperandDesc::write(dst))
                        .operand(OperandDesc::read(src))
                        .build();
                    self.add(desc);
                }
            }
        }
        for (mnemonic, write_lane) in [("VINSERTI128", true), ("VEXTRACTI128", false)] {
            if write_lane {
                for src in [xmm(), mem(W128)] {
                    let desc = self
                        .builder(mnemonic, C::VecInsertExtract, E::Avx2)
                        .operand(OperandDesc::write(ymm()))
                        .operand(OperandDesc::read(ymm()))
                        .operand(OperandDesc::read(src))
                        .operand(OperandDesc::read(imm(W8)))
                        .build();
                    self.add(desc);
                }
            } else {
                for dst in [xmm(), mem(W128)] {
                    let desc = self
                        .builder(mnemonic, C::VecInsertExtract, E::Avx2)
                        .operand(OperandDesc::write(dst))
                        .operand(OperandDesc::read(ymm()))
                        .operand(OperandDesc::read(imm(W8)))
                        .build();
                    self.add(desc);
                }
            }
        }
        // AVX conversions and rounding.
        for (mnemonic, dst, srcs) in [
            ("VCVTDQ2PS", ymm(), [ymm(), mem(W256)]),
            ("VCVTPS2DQ", ymm(), [ymm(), mem(W256)]),
            ("VCVTTPS2DQ", ymm(), [ymm(), mem(W256)]),
            ("VCVTPD2PS", xmm(), [ymm(), mem(W256)]),
            ("VCVTPS2PD", ymm(), [xmm(), mem(W128)]),
        ] {
            for src in srcs {
                let desc = self
                    .builder(mnemonic, C::VecConvert, E::Avx)
                    .operand(OperandDesc::write(dst))
                    .operand(OperandDesc::read(src))
                    .build();
                self.add(desc);
            }
        }
        for mnemonic in ["VROUNDPS", "VROUNDPD"] {
            for (dst, src_w) in [(xmm(), W128), (ymm(), W256)] {
                for src in [dst, mem(src_w)] {
                    let desc = self
                        .builder(mnemonic, C::VecFpAdd, E::Avx)
                        .operand(OperandDesc::write(dst))
                        .operand(OperandDesc::read(src))
                        .operand(OperandDesc::read(imm(W8)))
                        .build();
                    self.add(desc);
                }
            }
        }
        // VPTEST / VTESTPS set flags from vector comparisons.
        for mnemonic in ["VPTEST", "VTESTPS", "VTESTPD"] {
            for (a, src_w) in [(xmm(), W128), (ymm(), W256)] {
                for src in [a, mem(src_w)] {
                    let desc = self
                        .builder(mnemonic, C::VecIntCmp, E::Avx)
                        .operand(OperandDesc::read(a))
                        .operand(OperandDesc::read(src))
                        .writes_flags(FlagSet::ALL)
                        .build();
                    self.add(desc);
                }
            }
        }
        // Prefetches and fences (no architectural data effects).
        for mnemonic in ["PREFETCHT0", "PREFETCHT1", "PREFETCHT2", "PREFETCHNTA"] {
            let agen = OperandDesc { kind: mem(W8), read: false, write: false, implicit: false };
            let desc = self.builder(mnemonic, C::Lea, E::Sse).operand(agen).build();
            self.add(desc);
        }
        let desc =
            self.builder("SFENCE", C::System, E::Sse).with_attrs(|a| a.serializing = true).build();
        self.add(desc);
        // ENTER/LEAVE-style frame instructions.
        let rsp = OperandKind::FixedReg(Register::gpr(gpr::RSP, W64));
        let rbp = OperandKind::FixedReg(Register::gpr(gpr::RBP, W64));
        let desc = self
            .builder("LEAVE", C::Stack, E::Base)
            .operand(OperandDesc::read_write(rsp).implicit())
            .operand(OperandDesc::read_write(rbp).implicit())
            .build();
        self.add(desc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        Catalog::intel_core()
    }

    #[test]
    fn catalog_has_expected_size() {
        let c = catalog();
        assert!(c.len() >= 1500, "catalog too small: {} variants (expected >= 1500)", c.len());
    }

    #[test]
    fn case_study_instructions_exist() {
        let c = catalog();
        for (mnemonic, variant) in [
            ("AESDEC", "XMM, XMM"),
            ("AESDEC", "XMM, M128"),
            ("SHLD", "R64, R64, I8"),
            ("SHLD", "R32, R32, CL"),
            ("MOVQ2DQ", "XMM, MM"),
            ("MOVDQ2Q", "MM, XMM"),
            ("PBLENDVB", "XMM, XMM"),
            ("VHADDPD", "XMM, XMM, XMM"),
            ("VMINPS", "XMM, XMM, XMM"),
            ("BSWAP", "R32"),
            ("BSWAP", "R64"),
            ("ADC", "R64, R64"),
            ("SBB", "R64, R64"),
            ("CMC", ""),
            ("SAHF", ""),
            ("PCMPGTD", "XMM, XMM"),
            ("PCMPEQD", "XMM, XMM"),
            ("IMUL", "R64, R64"),
            ("DIV", "R64"),
            ("MOVSX", "R64, R16"),
            ("PSHUFD", "XMM, XMM, I8"),
            ("VPBLENDVB", "XMM, XMM, XMM, XMM"),
            ("MPSADBW", "XMM, XMM, I8"),
            ("XCHG", "R64, R64"),
            ("XADD", "R64, R64"),
            ("CMOVNBE", "R64, R64"),
            ("TEST", "M64, R64"),
        ] {
            assert!(
                c.find_variant(mnemonic, variant).is_some(),
                "missing case-study variant {mnemonic} ({variant})"
            );
        }
    }

    #[test]
    fn implicit_flag_operands_are_present() {
        let c = catalog();
        let add = c.find_variant("ADD", "R64, R64").unwrap();
        assert!(add.writes_flags());
        assert!(!add.reads_flags());
        let adc = c.find_variant("ADC", "R64, R64").unwrap();
        assert!(adc.reads_flags());
        assert!(adc.writes_flags());
        let cmc = c.find_variant("CMC", "").unwrap();
        assert!(cmc.reads_flags());
        assert!(cmc.writes_flags());
    }

    #[test]
    fn zero_idiom_attributes() {
        let c = catalog();
        assert!(c.find_variant("XOR", "R64, R64").unwrap().attrs.zero_idiom);
        assert!(c.find_variant("SUB", "R32, R32").unwrap().attrs.zero_idiom);
        assert!(c.find_variant("PXOR", "XMM, XMM").unwrap().attrs.zero_idiom);
        assert!(c.find_variant("PCMPEQD", "XMM, XMM").unwrap().attrs.zero_idiom);
        // PCMPGT is *not* documented as dependency-breaking (§7.3.6): the
        // catalog must not mark it, the measurement has to discover it.
        assert!(!c.find_variant("PCMPGTD", "XMM, XMM").unwrap().attrs.zero_idiom);
        assert!(!c.find_variant("ADD", "R64, R64").unwrap().attrs.zero_idiom);
    }

    #[test]
    fn zero_latency_and_divider_attributes() {
        let c = catalog();
        assert!(c.find_variant("MOV", "R64, R64").unwrap().attrs.may_be_zero_latency);
        assert!(!c.find_variant("MOV", "R64, M64").unwrap().attrs.may_be_zero_latency);
        assert!(!c.find_variant("MOVSX", "R64, R16").unwrap().attrs.may_be_zero_latency);
        assert!(c.find_variant("DIV", "R64").unwrap().attrs.uses_divider);
        assert!(c.find_variant("DIVPS", "XMM, XMM").unwrap().attrs.uses_divider);
        assert!(c.find_variant("SQRTPD", "XMM, XMM").unwrap().attrs.uses_divider);
        assert!(!c.find_variant("MULPS", "XMM, XMM").unwrap().attrs.uses_divider);
    }

    #[test]
    fn control_flow_and_system_attributes() {
        let c = catalog();
        assert!(c.find_variant("JNZ", "I32").unwrap().attrs.control_flow);
        assert!(c.find_variant("JMP", "R64").unwrap().attrs.control_flow);
        assert!(c.find_variant("RDMSR", "").unwrap().attrs.system);
        assert!(c.find_variant("CPUID", "").unwrap().attrs.serializing);
        assert!(c.find_variant("PAUSE", "").unwrap().attrs.pause);
        assert!(c.find_variant("REP MOVSB", "").unwrap().attrs.rep_prefix);
        assert!(c.find_variant("LOCK ADD", "M64, R64").unwrap().attrs.locked);
    }

    #[test]
    fn memory_variant_counts_match_register_variants() {
        let c = catalog();
        // Every AESDEC register variant has a memory sibling.
        assert!(c.find_variant("AESDEC", "XMM, XMM").is_some());
        assert!(c.find_variant("AESDEC", "XMM, M128").is_some());
        // MOV has load and store variants at every width.
        for w in ["8", "16", "32", "64"] {
            assert!(c.find_variant("MOV", &format!("R{w}, M{w}")).is_some());
            assert!(c.find_variant("MOV", &format!("M{w}, R{w}")).is_some());
        }
    }

    #[test]
    fn condition_code_families_are_complete() {
        let c = catalog();
        assert_eq!(condition_codes().len(), 16);
        for (cc, _) in condition_codes() {
            assert!(c.find_variant(&format!("CMOV{cc}"), "R64, R64").is_some(), "CMOV{cc}");
            assert!(c.find_variant(&format!("SET{cc}"), "R8").is_some(), "SET{cc}");
            assert!(c.find_variant(&format!("J{cc}"), "I32").is_some(), "J{cc}");
        }
    }

    #[test]
    fn avx_forms_have_ymm_variants() {
        let c = catalog();
        assert!(c.find_variant("VPADDD", "YMM, YMM, YMM").is_some());
        assert!(c.find_variant("VADDPS", "YMM, YMM, M256").is_some());
        assert!(c.find_variant("VFMADD132PS", "YMM, YMM, YMM").is_some());
        assert!(c.find_variant("VFMADD132SS", "XMM, XMM, XMM").is_some());
    }

    #[test]
    fn implicit_operand_of_blendv_is_xmm0() {
        let c = catalog();
        let blend = c.find_variant("PBLENDVB", "XMM, XMM").unwrap();
        let implicit: Vec<_> = blend.implicit_operands().collect();
        assert_eq!(implicit.len(), 1);
        match implicit[0].kind {
            OperandKind::FixedReg(reg) => {
                assert_eq!(reg, Register::vec(0, W128));
            }
            other => panic!("expected fixed XMM0 operand, got {other:?}"),
        }
    }

    #[test]
    fn shift_count_operand_is_cl() {
        let c = catalog();
        let shl = c.find_variant("SHL", "R64, CL").unwrap();
        let count = &shl.operands[1];
        match count.kind {
            OperandKind::FixedReg(reg) => {
                assert_eq!(reg, Register::gpr(gpr::RCX, W8));
            }
            other => panic!("expected CL operand, got {other:?}"),
        }
    }
}
