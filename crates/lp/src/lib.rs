//! # uops-lp
//!
//! The small linear-program / assignment solver used to compute an
//! instruction's throughput (in Intel's sense, §4.2 of the paper) from its
//! port usage (§5.3.2): the throughput equals the minimum achievable maximum
//! port load when the instruction's µops are spread over their allowed
//! ports.
//!
//! ## Example
//!
//! ```rust
//! use uops_lp::{min_max_load, PortUsageMap};
//!
//! // A 1-µop instruction that can use ports 0, 1 and 5: throughput = 1/3.
//! let mut usage = PortUsageMap::new();
//! usage.insert(0b100011, 1.0);
//! let tp = min_max_load(&usage, 0b1111_1111);
//! assert!((tp - 1.0 / 3.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod solver;

pub use solver::{
    min_max_load, min_max_load_by_flow, optimal_assignment, Assignment, PortUsageMap,
};
